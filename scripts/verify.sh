#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md) plus the static gates:
#   build (release) -> tests (SIMD on and forced off) -> fmt ->
#   clippy (deny warnings) -> benches compile.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> PIC_NO_SIMD=1 cargo test -q"
PIC_NO_SIMD=1 cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> traced diffusion smoke run (--trace + trace_check)"
trace_file="$(mktemp /tmp/pic-trace-smoke.XXXXXX.ndjson)"
./target/release/pic --impl diffusion --ranks 4 --grid 32 --particles 2000 \
    --steps 40 --m 1 --dist geometric:0.9 --lb-interval 5 \
    --trace "$trace_file" --trace-every 2 --quiet
cargo run --release -q -p pic-bench --bin trace_check -- "$trace_file"
rm -f "$trace_file"

echo "verify: OK"
