#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md) plus the static gates:
#   build (release) -> tests (SIMD on and forced off) -> fmt ->
#   clippy (deny warnings) -> benches compile.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> PIC_NO_SIMD=1 cargo test -q (distributed rank suites, then workspace)"
# The distributed rank loop defaults to the binned SIMD kernel; its
# bit-identity contract must also hold with the vector path forced off.
# Run the rank suites explicitly first so a scalar-path regression there
# is reported against the responsible crate, then the whole workspace.
PIC_NO_SIMD=1 cargo test -q -p pic-par -p pic-ampi
PIC_NO_SIMD=1 cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo check --all-targets"
# Stable-toolchain compile gate over every target (the AVX-512 kernel
# instantiations included) even when the test steps above were filtered.
cargo check --all-targets

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> traced diffusion smoke run (binned rank path, --trace + trace_check)"
# 4 thread-ranks on the binned fast-tier rank kernel: the summary must
# name the kernel, verification must PASS, the trace run header must
# record the kernel descriptor, and the ndjson must validate.
trace_file="$(mktemp /tmp/pic-trace-smoke.XXXXXX.ndjson)"
out="$(./target/release/pic --impl diffusion --ranks 4 --grid 32 \
    --particles 2000 --steps 40 --m 1 --dist geometric:0.9 --lb-interval 5 \
    --sweep soa-binned-fast --trace "$trace_file" --trace-every 2)"
echo "$out" | grep -E "rank kernel *: .*/fast"
echo "$out" | grep -q "verification          : PASS"
head -1 "$trace_file" | grep -q '"simd":"[a-z0-9]*/fast"'
cargo run --release -q -p pic-bench --bin trace_check -- "$trace_file"
rm -f "$trace_file"

echo "==> traced adaptive smoke run (online strategy switching)"
# Sustained geometric skew must drive the adaptive balancer through at
# least one deterministic strategy switch; the header/summary must carry
# the balancer identity, the stream must validate (trace_check also
# cross-checks the summary's switch count against the records), and the
# forced-scalar path must pass the same run.
trace_file="$(mktemp /tmp/pic-trace-adaptive.XXXXXX.ndjson)"
out="$(./target/release/pic --balancer adaptive --ranks 4 --grid 32 \
    --particles 2000 --steps 60 --m 1 --dist geometric:0.9 --lb-interval 5 \
    --trace "$trace_file" --trace-every 2)"
echo "$out" | grep -q "verification          : PASS"
head -1 "$trace_file" | grep -q '"balancer":"adaptive"'
switches="$(grep -c '"type":"switch"' "$trace_file")"
test "$switches" -ge 1
cargo run --release -q -p pic-bench --bin trace_check -- "$trace_file"
rm -f "$trace_file"
PIC_NO_SIMD=1 ./target/release/pic --balancer adaptive --ranks 4 --grid 32 \
    --particles 2000 --steps 60 --m 1 --dist geometric:0.9 --lb-interval 5 \
    --quiet | grep -qx PASS

echo "==> overlap-mode equivalence pass (overlapped sparse vs dense oracle)"
# The overlapped sparse exchange (the default) must be bit-identical to
# the dense synchronous oracle. The proptests pin this in-process; this
# gate re-runs the cross-mode equivalence suites end to end, vector and
# forced-scalar, and smokes both CLI modes on every implementation.
cargo test -q -p pic-par --test rank_kernel_equivalence
PIC_NO_SIMD=1 cargo test -q -p pic-par --test rank_kernel_equivalence
for impl in baseline diffusion ampi; do
    for overlap in on off; do
        ./target/release/pic --impl "$impl" --ranks 4 --grid 32 \
            --particles 2000 --steps 30 --k 1 --dist geometric:0.9 \
            --overlap "$overlap" --quiet | grep -qx PASS
    done
done

echo "==> typed-wire equivalence pass (zero-copy lane vs byte oracle)"
# The typed zero-copy particle wire (the default) must be bit-identical
# to the byte-serialization oracle on every implementation and exchange
# mode. The proptests pin this in-process; this gate re-runs the
# cross-wire suites end to end, vector and forced-scalar, and smokes
# both CLI wire formats (crossed with --overlap auto) on every
# implementation.
cargo test -q -p pic-par --test wire_format_equivalence
PIC_NO_SIMD=1 cargo test -q -p pic-par --test wire_format_equivalence
cargo test -q -p pic-ampi --test rank_kernel_equivalence ampi_typed_wire
for impl in baseline diffusion ampi; do
    for wire in typed bytes; do
        ./target/release/pic --impl "$impl" --ranks 4 --grid 32 \
            --particles 2000 --steps 30 --k 1 --dist geometric:0.9 \
            --wire "$wire" --overlap auto --quiet | grep -qx PASS
    done
done

echo "==> fast-tier analytic gate (--sweep soa-binned-fast must PASS)"
# The fast kernel relaxes bit-identity; its correctness gate is the
# analytic trajectory bound (DESIGN.md §12), which verify() applies in
# this mode. A tolerance breach makes the run FAIL and exit non-zero.
./target/release/pic --sweep soa-binned-fast --grid 64 --particles 20000 \
    --steps 60 --k 1 --m 1 --rebin 3 --dist geometric:0.95 --quiet \
    | grep -qx PASS
PIC_NO_SIMD=1 ./target/release/pic --sweep soa-binned-fast --grid 64 \
    --particles 20000 --steps 60 --k 1 --m 1 --rebin 3 \
    --dist geometric:0.95 --quiet | grep -qx PASS

echo "verify: OK"
