#!/usr/bin/env bash
# Regenerate the sweep-engine benchmark baseline.
#
#   scripts/bench.sh            full run (1e4..1e6 particles), writes
#                               BENCH_sweep.json at the repository root
#   scripts/bench.sh --quick    CI smoke run (drops the 1e6 tier)
#
# Interpretation notes live in results/sweep_baseline.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pic-bench --bin bench_sweep
./target/release/bench_sweep "$@"
