#!/usr/bin/env bash
# Regenerate the benchmark baselines.
#
#   scripts/bench.sh                 full sweep-engine run (1e4..1e6
#                                    particles), writes BENCH_sweep.json at
#                                    the repository root
#   scripts/bench.sh --quick         CI smoke run (drops the 1e6 tier)
#   scripts/bench.sh --threads 1,2,4 thread counts for the scaling grid
#                                    (default 1,2,4,8; pooled modes only —
#                                    pre-sizes the pool via PIC_THREADS)
#   scripts/bench.sh --modes soa-serial,soa-binned
#                                    restrict to a subset of sweep modes
#                                    (default: all six; sensitivity scans
#                                    run only when their mode is selected)
#   scripts/bench.sh --fast-report results/sweep_fast.md
#                                    also write the markdown exact-vs-fast
#                                    comparison (soa-binned vs
#                                    soa-binned-fast; needs both modes in
#                                    the run)
#   scripts/bench.sh --par           benchmark the *distributed* rank loop
#                                    instead: rank grid × implementation ×
#                                    kernel tier, writes BENCH_par.json and
#                                    the results/par_* scaling artifacts.
#                                    Remaining flags go to bench_par
#                                    (--quick, --ranks 1,2,4, --out,
#                                    --results DIR; default results dir:
#                                    results/)
#
# The binned sweeps auto-select the widest SIMD backend the host supports
# (reported in the artifact's "simd_backend"/"simd_lanes"/"fma" fields and
# per record); both runs include forced-scalar contrast rows for the exact
# and the fast binned tier. PIC_NO_SIMD=1 forces the scalar kernel for the
# whole run.
#
# All flags are forwarded to the selected binary. Interpretation notes
# live in results/sweep_baseline.md, results/sweep_scaling.md,
# results/sweep_simd.md, results/sweep_fast.md, and results/par_scaling.md.
set -euo pipefail
cd "$(dirname "$0")/.."

HOST_CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# Warn when a requested thread/rank grid exceeds the host's cores: the
# run still works (worker threads and thread-ranks oversubscribe
# deliberately), but wall-clock columns then measure contention, not
# scaling — the artifacts flag this too (host_cores / oversubscribed).
warn_oversubscription() {
    local flag="$1" list="" max=0 t
    shift
    while [ $# -gt 0 ]; do
        if [ "$1" = "$flag" ] && [ $# -gt 1 ]; then
            list="$2"
        fi
        shift
    done
    [ -n "$list" ] || return 0
    IFS=',' read -ra counts <<<"$list"
    for t in "${counts[@]}"; do
        [ "$t" -gt "$max" ] 2>/dev/null && max=$t
    done
    if [ "$max" -gt "$HOST_CORES" ]; then
        echo "WARNING: $flag $list exceeds the host's $HOST_CORES core(s);" >&2
        echo "         wall-clock numbers will measure oversubscription, not scaling." >&2
    fi
}

if [ "${1:-}" = "--par" ]; then
    shift
    # Defaults first so an explicit flag later in "$@" overrides them.
    warn_oversubscription --ranks --ranks 1,2,4 "$@"
    cargo build --release -p pic-bench --bin bench_par
    if [[ " $* " == *" --results "* ]]; then
        ./target/release/bench_par "$@"
    else
        ./target/release/bench_par --results results "$@"
    fi
else
    warn_oversubscription --threads --threads 1,2,4,8 "$@"
    cargo build --release -p pic-bench --bin bench_sweep
    ./target/release/bench_sweep "$@"
fi
