#!/usr/bin/env bash
# Regenerate the sweep-engine benchmark baseline.
#
#   scripts/bench.sh                 full run (1e4..1e6 particles), writes
#                                    BENCH_sweep.json at the repository root
#   scripts/bench.sh --quick         CI smoke run (drops the 1e6 tier)
#   scripts/bench.sh --threads 1,2,4 thread counts for the scaling grid
#                                    (default 1,2,4,8; pooled modes only —
#                                    pre-sizes the pool via PIC_THREADS)
#   scripts/bench.sh --modes soa-serial,soa-binned
#                                    restrict to a subset of sweep modes
#                                    (default: all six; sensitivity scans
#                                    run only when their mode is selected)
#   scripts/bench.sh --fast-report results/sweep_fast.md
#                                    also write the markdown exact-vs-fast
#                                    comparison (soa-binned vs
#                                    soa-binned-fast; needs both modes in
#                                    the run)
#
# The binned sweeps auto-select the widest SIMD backend the host supports
# (reported in the artifact's "simd_backend"/"simd_lanes"/"fma" fields and
# per record); the run includes forced-scalar contrast rows for both the
# exact and the fast binned tier. PIC_NO_SIMD=1 forces the scalar kernel
# for the whole run.
#
# All flags are forwarded to the bench_sweep binary. Interpretation notes
# live in results/sweep_baseline.md, results/sweep_scaling.md,
# results/sweep_simd.md, and results/sweep_fast.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pic-bench --bin bench_sweep
./target/release/bench_sweep "$@"
