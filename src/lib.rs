//! # pic-prk — the PIC Parallel Research Kernel, in Rust
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`core`] — the kernel specification: geometry, charges, particles,
//!   initialization, motion, events, verification, serial engine.
//! * [`comm`] — MPI-like message-passing substrate (threads backend).
//! * [`cluster`] — machine/cost models, BSP phase simulator, analytic load
//!   model for full-scale modeled experiments.
//! * [`par`] — parallel implementations: static 2D baseline (`mpi-2d`) and
//!   diffusion-based application-specific load balancing (`mpi-2d-LB`).
//! * [`ampi`] — Adaptive-MPI-style virtualization: over-decomposition into
//!   VPs with runtime-orchestrated load balancing.
//! * [`trace`] — load-balance telemetry: phase timers, migration counters,
//!   per-rank load snapshots, ndjson emission (`--trace`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use pic_ampi as ampi;
pub use pic_cluster as cluster;
pub use pic_comm as comm;
pub use pic_core as core;
pub use pic_par as par;
pub use pic_trace as trace;

pub use pic_core::prelude;
