//! `pic` — command-line driver for the PIC Parallel Research Kernel.
//!
//! Runs a configurable simulation with any of the implementations and
//! prints the verification verdict plus load-balance statistics, in the
//! spirit of the original PRK driver binaries.
//!
//! ```text
//! pic --grid 64 --particles 20000 --steps 200 --dist geometric:0.95 \
//!     --impl diffusion --ranks 8 --lb-interval 1 --border 3
//! ```
//!
//! Run `pic --help` for all options.

use pic_prk::ampi::balancer::Balancer;
use pic_prk::ampi::model::AmpiParams;
use pic_prk::ampi::runtime::{run_ampi_adaptive_traced, run_ampi_traced};
use pic_prk::comm::world::run_threads;
use pic_prk::core::init::SkewAxis;
use pic_prk::par::balance::run_adaptive_traced;
use pic_prk::par::baseline::run_baseline_traced;
use pic_prk::par::diffusion::{run_diffusion_mode_traced, DiffusionMode, DiffusionParams};
use pic_prk::par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel, WireFormat};
use pic_prk::prelude::*;
use pic_prk::trace::{trace_simulation, Phase, Tracer};
use std::io::Write;
use std::process::exit;
use std::sync::Mutex;

/// Help text. Defaults that mirror library defaults are injected from the
/// source constants so the text can never drift out of date again (it
/// previously advertised `--lb-interval` 10 vs the library's 20, `--border`
/// 2 vs 1, and `--rebin` 1 vs 16).
fn help() -> String {
    let diff = DiffusionParams::default();
    let sweep_modes = SweepMode::ALL
        .iter()
        .map(|m| m.cli_name())
        .collect::<Vec<_>>()
        .join(" | ");
    format!(
        "\
pic — the PIC Parallel Research Kernel (IPDPS 2016 reproduction)

USAGE: pic [OPTIONS]

Workload:
  --grid N            cells per side (even, default 64)
  --particles N       particle count (default 10000)
  --steps N           time steps (default 100)
  --dist SPEC         uniform | geometric:R | sinusoidal |
                      linear:ALPHA,BETA | patch:X0,X1,Y0,Y1
                      (default geometric:0.99)
  --k K               horizontal stride parameter, 2k+1 cells/step (default 0)
  --m M               vertical cells/step (default 0)
  --dir D             +1 or -1 drift direction (default +1)
  --skew-axis A       x | y : axis the distribution profile applies to
  --inject S,X0,X1,Y0,Y1,N   inject N particles at step S in the region
  --remove S,X0,X1,Y0,Y1,N   remove up to N particles at step S

Implementation:
  --impl NAME         serial | baseline | diffusion | ampi | adaptive
                      (default serial)
  --ranks P           thread-ranks for the parallel implementations (default 4)

Load balancing:
  --balancer B        baseline | static | diffusion | ampi | adaptive |
                      refine | greedy | none
                      selects the balancing strategy; without --impl it
                      also picks the implementation that hosts it
                      (baseline/static -> mpi-2d, diffusion -> mpi-2d-LB,
                      ampi/refine/greedy/none -> the AMPI runtime,
                      adaptive -> the online-switching cut balancer).
                      With --impl ampi the historical values
                      refine | greedy | none pick the VP strategy
                      (default refine) and adaptive switches VP
                      strategies online; with other --impl values the
                      implementation wins as before.

Kernel selection (all implementations):
  --sweep MODE        {sweep_modes} :
                      particle sweep strategy and memory layout (default
                      serial; every mode except soa-binned-fast is
                      bit-identical — soa-binned-fast trades bit-identity
                      for speed and is verified against the analytic
                      trajectory bound instead)
                      for the parallel implementations, soa-binned[-fast]
                      select the binned SIMD rank loop at that tier, any
                      other mode selects the scalar AoS reference loop;
                      default without --sweep is soa-binned (bit-identical
                      to the AoS loop)
  --rebin R           counting-sort interval for the binned sweeps
                      (steps between re-sorts, default {rebin})
  --overlap MODE      on | off | auto — particle exchange strategy for
                      the parallel implementations (default on): on =
                      sparse neighbor-aware all-to-all, split-phase
                      overlapped with the interior sweep where the
                      decomposition allows; off = dense synchronous
                      alltoallv (the oracle both paths are verified
                      against); auto = pick per run from the world size
                      and neighbor density (dense at small P, sparse once
                      elided messages outweigh the protocol overhead) —
                      bit-identical results in every mode
  --wire bytes|typed  particle wire representation for the parallel
                      implementations (default typed): typed moves the
                      per-destination particle buffers through the
                      in-process fabric by ownership — zero serialization,
                      zero per-particle copies; bytes encodes to the
                      76-byte portable wire record first (kept as the
                      serialization oracle) — bit-identical results
                      either way

Single-process engine (--impl serial):
  --chunk N           chunk size for --sweep soa-chunked / soa-binned
                      (default: adaptive, max(4096, n / (threads * 4)))
  --threads T         cap the sweep worker pool at T threads (default:
                      all cores; PIC_THREADS overrides the pool size)
                      the binned sweeps auto-select the widest SIMD backend
                      the host supports; set PIC_NO_SIMD=1 to force the
                      scalar kernel on every tier (the fast tier then runs
                      the exact scalar kernel, bit-identical to soa-binned)

Diffusion / adaptive balancer (--impl diffusion | adaptive):
  --lb-interval F     steps between LB invocations (default {diff_interval})
  --tau T             count-difference threshold (default {diff_tau})
  --border W          border width in cells (default {diff_border})
  --mode M            x | y | 2phase (default x)

AMPI runtime (--impl ampi):
  --d D               over-decomposition degree (default 4)
  --lb-interval F     steps between LB invocations (default {ampi_interval})
  --balancer B        refine | greedy | none | adaptive (default refine)

Telemetry:
  --trace FILE        write ndjson load-balance telemetry to FILE
                      (per-step phase times, counters, per-rank loads,
                      cut decisions, end-of-run summary)
  --trace-every N     sample a step record every N steps (default 1;
                      cut decisions and the summary are never sampled away)

Output:
  --quiet             only print PASS/FAIL
  --help              this text
",
        rebin = pic_prk::core::bin::DEFAULT_REBIN,
        diff_interval = diff.interval,
        diff_tau = diff.tau,
        diff_border = diff.border_w,
        ampi_interval = AMPI_LB_INTERVAL_DEFAULT,
    )
}

/// CLI default for the AMPI `--lb-interval`. The library's
/// `AmpiParams::paper_default()` uses the paper's full-scale `F = 160`,
/// which is useless at CLI-scale step counts, so the driver keeps its own.
const AMPI_LB_INTERVAL_DEFAULT: u32 = 10;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for {name}: {v}");
                exit(2);
            }),
        }
    }
}

fn parse_dist(spec: &str) -> Distribution {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "uniform" => Distribution::Uniform,
        "geometric" => Distribution::Geometric {
            r: rest
                .parse()
                .unwrap_or_else(|_| bail(&format!("bad geometric ratio: {rest}"))),
        },
        "sinusoidal" => Distribution::Sinusoidal,
        "linear" => {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 2 {
                bail::<f64>("linear needs ALPHA,BETA");
            }
            Distribution::Linear {
                alpha: parts[0].parse().unwrap_or_else(|_| bail("bad alpha")),
                beta: parts[1].parse().unwrap_or_else(|_| bail("bad beta")),
            }
        }
        "patch" => {
            let p: Vec<usize> = rest
                .split(',')
                .map(|s| s.parse().unwrap_or_else(|_| bail("bad patch coordinate")))
                .collect();
            if p.len() != 4 {
                bail::<usize>("patch needs X0,X1,Y0,Y1");
            }
            Distribution::Patch {
                x0: p[0],
                x1: p[1],
                y0: p[2],
                y1: p[3],
            }
        }
        other => bail(&format!("unknown distribution: {other}")),
    }
}

fn parse_event(spec: &str, inject: bool) -> Event {
    let p: Vec<u64> = spec
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|_| bail("bad event field")))
        .collect();
    if p.len() != 6 {
        bail::<usize>("event needs S,X0,X1,Y0,Y1,N");
    }
    let region = Region {
        x0: p[1] as usize,
        x1: p[2] as usize,
        y0: p[3] as usize,
        y1: p[4] as usize,
    };
    if inject {
        Event::inject(p[0] as u32, region, p[5], 0, 0, 1)
    } else {
        Event::remove(p[0] as u32, region, p[5])
    }
}

fn bail<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    exit(2);
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{}", help());
        return;
    }
    let quiet = args.flag("--quiet");

    // Workload.
    let ncells: usize = args.parse("--grid", 64);
    let n: u64 = args.parse("--particles", 10_000);
    let steps: u32 = args.parse("--steps", 100);
    let dist = parse_dist(args.value("--dist").unwrap_or("geometric:0.99"));
    let k: u32 = args.parse("--k", 0);
    let m: i32 = args.parse("--m", 0);
    let dir: i8 = args.parse("--dir", 1);
    let axis = match args.value("--skew-axis").unwrap_or("x") {
        "x" => SkewAxis::X,
        "y" => SkewAxis::Y,
        other => bail(&format!("bad skew axis: {other}")),
    };

    let grid = Grid::new(ncells).unwrap_or_else(|e| bail(&e.to_string()));
    let mut setup = InitConfig::new(grid, n, dist)
        .with_k(k)
        .with_m(m)
        .with_dir(dir)
        .with_skew_axis(axis)
        .build()
        .unwrap_or_else(|e| bail(&e.to_string()));
    if let Some(spec) = args.value("--inject") {
        setup = setup.with_event(parse_event(spec, true));
    }
    if let Some(spec) = args.value("--remove") {
        setup = setup.with_event(parse_event(spec, false));
    }

    // Implementation resolution: an explicit --impl always wins (the
    // historical contract — --balancer then only refines the strategy
    // inside it). Without --impl, --balancer picks the implementation
    // hosting the requested strategy, so `pic --balancer adaptive` is a
    // complete invocation.
    let balancer_flag = args.value("--balancer");
    let implementation = match args.value("--impl") {
        Some(i) => i.to_string(),
        None => match balancer_flag {
            None => "serial".to_string(),
            Some("baseline") | Some("static") => "baseline".to_string(),
            Some("diffusion") => "diffusion".to_string(),
            Some("adaptive") => "adaptive".to_string(),
            Some("ampi") | Some("refine") | Some("greedy") | Some("none") => "ampi".to_string(),
            Some(other) => bail(&format!("bad balancer: {other}")),
        },
    };
    let ranks: usize = args.parse("--ranks", 4);

    // Telemetry: the file is opened up front (so a bad path fails before
    // the run), then handed to exactly one tracer — rank 0's in the
    // parallel implementations.
    let trace_every: u32 = args.parse("--trace-every", 1);
    let trace_writer: Mutex<Option<Box<dyn Write + Send>>> =
        Mutex::new(args.value("--trace").map(|path| {
            let f = std::fs::File::create(path)
                .unwrap_or_else(|e| bail(&format!("cannot create trace file {path}: {e}")));
            Box::new(std::io::BufWriter::new(f)) as Box<dyn Write + Send>
        }));
    let rank0_tracer = |rank: usize| -> Tracer {
        if rank == 0 {
            match trace_writer.lock().unwrap().take() {
                Some(w) => Tracer::to_writer(w, trace_every),
                None => Tracer::disabled(),
            }
        } else {
            Tracer::disabled()
        }
    };

    if !quiet {
        println!(
            "PIC PRK: {ncells}x{ncells} cells, {n} particles, {steps} steps, \
             dist {dist:?}, k={k} m={m} dir={dir}, impl {implementation}"
        );
    }

    // Rank-kernel selection for the parallel implementations: --sweep maps
    // onto the rank hot loop (binned modes → binned SIMD path at that
    // tier, anything else → the AoS reference loop); without --sweep the
    // ranks run the binned exact tier, bit-identical to the AoS loop.
    let rebin: u32 = args.parse("--rebin", pic_prk::core::bin::DEFAULT_REBIN);
    let exchange = match args.value("--overlap").unwrap_or("on") {
        "on" => ExchangeMode::OverlappedSparse,
        "off" => ExchangeMode::DenseSync,
        "auto" => ExchangeMode::Auto,
        other => bail(&format!("bad --overlap value: {other}")),
    };
    let wire = match args.value("--wire").unwrap_or("typed") {
        "typed" => WireFormat::Typed,
        "bytes" => WireFormat::Bytes,
        other => bail(&format!("bad --wire value: {other}")),
    };
    let rank_kernel = match args.value("--sweep") {
        Some(name) => RankKernel::from_sweep(
            SweepMode::from_cli_name(name)
                .unwrap_or_else(|| bail(&format!("bad sweep mode: {name}"))),
        ),
        None => RankKernel::default(),
    }
    .with_rebin_interval(rebin)
    .with_exchange(exchange)
    .with_wire(wire);

    let outcome: Option<ParOutcome> = match implementation.as_str() {
        "serial" => {
            let sweep_name = args.value("--sweep").unwrap_or("serial");
            let sweep = SweepMode::from_cli_name(sweep_name)
                .unwrap_or_else(|| bail(&format!("bad sweep mode: {sweep_name}")));
            let chunk: Option<usize> = args.value("--chunk").map(|v| match v.parse() {
                Ok(c) => c,
                Err(_) => bail("bad --chunk"),
            });
            let rebin: u32 = args.parse("--rebin", pic_prk::core::bin::DEFAULT_REBIN);
            if let Some(t) = args.value("--threads") {
                let t: usize = t.parse().unwrap_or_else(|_| bail("bad --threads"));
                pic_prk::core::pool::global().set_active_threads(t.max(1));
            }
            let mut sim = Simulation::with_mode(setup, sweep).with_rebin_interval(rebin);
            if let Some(chunk) = chunk {
                sim = sim.with_chunk_size(chunk);
            }
            if !quiet {
                println!(
                    "sweep mode            : {} (kernel {})",
                    sweep.cli_name(),
                    sim.kernel_desc()
                );
            }
            let mut tracer = rank0_tracer(0);
            trace_simulation(&mut sim, steps, &mut tracer);
            tracer.phase_start(Phase::Verify);
            let report = sim.verify();
            tracer.phase_end(Phase::Verify);
            tracer.set_final_particles(sim.particle_count() as u64);
            tracer.finish();
            summarize_serial(&report, sim.particle_count(), quiet);
            if !report.passed() {
                exit(1);
            }
            None
        }
        "baseline" => {
            let cfg = ParConfig::new(setup, steps).with_kernel(rank_kernel);
            Some(
                run_threads(ranks, |comm| {
                    let mut tracer = rank0_tracer(comm.rank());
                    let out = run_baseline_traced(&comm, &cfg, &mut tracer);
                    tracer.finish();
                    out
                })
                .swap_remove(0),
            )
        }
        "diffusion" | "adaptive" => {
            let params = DiffusionParams {
                interval: args.parse("--lb-interval", DiffusionParams::default().interval),
                tau: args.parse("--tau", DiffusionParams::default().tau),
                border_w: args.parse("--border", DiffusionParams::default().border_w),
            };
            let mode = match args.value("--mode").unwrap_or("x") {
                "x" => DiffusionMode::XOnly,
                "y" => DiffusionMode::YOnly,
                "2phase" => DiffusionMode::TwoPhase,
                other => bail(&format!("bad mode: {other}")),
            };
            // `--impl diffusion --balancer adaptive` upgrades to the
            // online-switching balancer over the same cut machinery.
            let adaptive = implementation == "adaptive" || balancer_flag == Some("adaptive");
            let cfg = ParConfig::new(setup, steps).with_kernel(rank_kernel);
            Some(
                run_threads(ranks, |comm| {
                    let mut tracer = rank0_tracer(comm.rank());
                    let out = if adaptive {
                        run_adaptive_traced(&comm, &cfg, params, mode, &mut tracer)
                    } else {
                        run_diffusion_mode_traced(&comm, &cfg, params, mode, &mut tracer)
                    };
                    tracer.finish();
                    out
                })
                .swap_remove(0),
            )
        }
        "ampi" => {
            let d: usize = args.parse("--d", 4);
            let interval: u32 = args.parse("--lb-interval", AMPI_LB_INTERVAL_DEFAULT);
            let cfg = ParConfig::new(setup, steps).with_kernel(rank_kernel);
            if balancer_flag == Some("adaptive") {
                Some(
                    run_threads(ranks, |comm| {
                        let mut tracer = rank0_tracer(comm.rank());
                        let out = run_ampi_adaptive_traced(&comm, &cfg, d, interval, &mut tracer);
                        tracer.finish();
                        out
                    })
                    .swap_remove(0),
                )
            } else {
                let balancer = match balancer_flag.unwrap_or("refine") {
                    "refine" | "ampi" => Balancer::paper_default(),
                    "greedy" => Balancer::Greedy,
                    "none" => Balancer::None,
                    other => bail(&format!("bad balancer: {other}")),
                };
                let params = AmpiParams {
                    d,
                    interval,
                    balancer,
                };
                Some(
                    run_threads(ranks, |comm| {
                        let mut tracer = rank0_tracer(comm.rank());
                        let out = run_ampi_traced(&comm, &cfg, &params, &mut tracer);
                        tracer.finish();
                        out
                    })
                    .swap_remove(0),
                )
            }
        }
        other => bail(&format!("unknown implementation: {other}")),
    };

    if let Some(o) = outcome {
        summarize_parallel(&o, ranks, quiet);
        if !o.verify.passed() {
            exit(1);
        }
    }
}

fn summarize_serial(report: &pic_prk::core::verify::VerifyReport, count: usize, quiet: bool) {
    if quiet {
        println!("{}", if report.passed() { "PASS" } else { "FAIL" });
        return;
    }
    println!("final particles       : {count}");
    println!("position failures     : {}", report.position_failures);
    println!("max trajectory error  : {:.2e}", report.max_error);
    println!(
        "id checksum           : {} (expected {})",
        report.id_sum, report.expected_id_sum
    );
    println!(
        "verification          : {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
}

fn summarize_parallel(o: &ParOutcome, ranks: usize, quiet: bool) {
    if quiet {
        println!("{}", if o.verify.passed() { "PASS" } else { "FAIL" });
        return;
    }
    let ideal = o.total_count as f64 / ranks as f64;
    println!("rank kernel           : {}", o.kernel);
    println!("final particles       : {}", o.total_count);
    println!(
        "max particles/rank    : {} (ideal {:.0}, ratio {:.2}x)",
        o.max_count,
        ideal,
        o.max_count as f64 / ideal
    );
    println!("position failures     : {}", o.verify.position_failures);
    println!("max trajectory error  : {:.2e}", o.verify.max_error);
    println!(
        "id checksum           : {} (expected {})",
        o.verify.id_sum, o.verify.expected_id_sum
    );
    println!(
        "verification          : {}",
        if o.verify.passed() { "PASS" } else { "FAIL" }
    );
}
