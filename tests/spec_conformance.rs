//! Equation-by-equation conformance tests against the paper's
//! specification (§III). Each test names the paper artifact it checks.

use pic_prk::core::charge::{
    charge_denominator, mesh_charge, particle_charge, sign_for_direction, total_force, SimConstants,
};
use pic_prk::core::motion::advance_particle;
use pic_prk::core::verify::expected_position;
use pic_prk::prelude::*;

fn consts() -> SimConstants {
    SimConstants::CANONICAL
}

fn particle(grid: &Grid, col: usize, row: usize, k: u32, m: i32, dir: i8) -> Particle {
    let c = consts();
    let (x, y) = grid.cell_center(col, row);
    Particle {
        id: 1,
        x,
        y,
        vx: 0.0,
        vy: m as f64 * c.h / c.dt,
        q: particle_charge(&c, 0.5, k, sign_for_direction(col, dir)),
        x0: x,
        y0: y,
        k,
        m,
        born_at: 0,
    }
}

/// §III-B, eq. 1: x(t+dt) = x(t) + v·dt + ½·a·dt².
#[test]
fn eq1_position_update() {
    let grid = Grid::new(16).unwrap();
    let c = consts();
    let mut p = particle(&grid, 4, 4, 0, 0, 1);
    p.vx = 0.25; // arbitrary initial velocity to exercise the v·dt term
    let (ax, _) = total_force(&grid, &c, p.x, p.y, p.q);
    let expect = grid.wrap_coord(p.x + p.vx * c.dt + 0.5 * ax * c.dt * c.dt);
    advance_particle(&grid, &c, &mut p);
    assert_eq!(p.x, expect);
}

/// §III-B, eq. 2: v(t+dt) = v(t) + a·dt.
#[test]
fn eq2_velocity_update() {
    let grid = Grid::new(16).unwrap();
    let c = consts();
    let mut p = particle(&grid, 4, 4, 1, 2, 1);
    let (ax, ay) = total_force(&grid, &c, p.x, p.y, p.q);
    let (vx0, vy0) = (p.vx, p.vy);
    advance_particle(&grid, &c, &mut p);
    assert_eq!(p.vx, vx0 + ax * c.dt);
    assert_eq!(p.vy, vy0 + ay * c.dt);
}

/// §III-C, eq. 3: q_π = ±h / (dt²·q·(cosθ/d1² + cosφ/d2²)).
#[test]
fn eq3_charge_formula() {
    let c = consts();
    let x_rel = 0.5f64;
    // Direct evaluation of the printed formula.
    let d1 = (c.h * c.h / 4.0 + x_rel * x_rel).sqrt();
    let d2 = (c.h * c.h / 4.0 + (c.h - x_rel) * (c.h - x_rel)).sqrt();
    let cos_theta = x_rel / d1;
    let cos_phi = (c.h - x_rel) / d2;
    let denom_paper = c.q * (cos_theta / (d1 * d1) + cos_phi / (d2 * d2));
    let q_paper = c.h / (c.dt * c.dt * denom_paper);
    // Our implementation (routed through the runtime force kernel).
    let q_impl = particle_charge(&c, x_rel, 0, 1.0);
    assert!(
        (q_paper - q_impl).abs() < 1e-12 * q_paper.abs(),
        "paper {q_paper} vs impl {q_impl}"
    );
    assert!((charge_denominator(&c, x_rel) - denom_paper).abs() < 1e-12);
    // With h = 1, x_rel = 1/2: q_π = 1/(2√2).
    assert!((q_impl - 1.0 / (2.0 * 2.0f64.sqrt())).abs() < 1e-12);
}

/// §III-C, eq. 4: v0 = m·h/dt·i_y.
#[test]
fn eq4_initial_velocity() {
    let grid = Grid::new(16).unwrap();
    for m in [-3i32, 0, 2, 7] {
        let setup = InitConfig::new(grid, 10, Distribution::Uniform)
            .with_m(m)
            .build()
            .unwrap();
        for p in &setup.particles {
            assert_eq!(p.vx, 0.0, "no initial horizontal velocity");
            assert_eq!(p.vy, m as f64, "v0 = m·h/dt with h = dt = 1");
        }
    }
}

/// §III-D, eq. 5: x_s = (x_0 + sign(a_x,0)·(2k+1)·s·h) mod L.
#[test]
fn eq5_final_x() {
    let grid = Grid::new(16).unwrap();
    for (k, dir, s) in [(0u32, 1i8, 7u64), (1, -1, 12), (2, 1, 33)] {
        let p = particle(&grid, 5, 3, k, 0, dir);
        let (xs, _) = expected_position(&grid, &p, s);
        let direct = {
            let disp = dir as i64 * (2 * k as i64 + 1) * s as i64;
            let col = (((5 + disp) % 16) + 16) % 16;
            col as f64 + 0.5
        };
        assert_eq!(xs, direct, "k={k} dir={dir} s={s}");
    }
}

/// §III-D, eq. 6: y_s = (y_0 + m·h·s) mod L.
#[test]
fn eq6_final_y() {
    let grid = Grid::new(16).unwrap();
    for (m, s) in [(0i32, 9u64), (3, 11), (-5, 20)] {
        let p = particle(&grid, 5, 3, 0, m, 1);
        let (_, ys) = expected_position(&grid, &p, s);
        let direct = {
            let row = (((3 + m as i64 * s as i64) % 16) + 16) % 16;
            row as f64 + 0.5
        };
        assert_eq!(ys, direct, "m={m} s={s}");
    }
}

/// §III-D: id checksum n(n+1)/2 (single sum reduction).
#[test]
fn id_checksum_closed_form() {
    let grid = Grid::new(32).unwrap();
    for n in [1u64, 100, 999] {
        let setup = InitConfig::new(grid, n, Distribution::Sinusoidal)
            .build()
            .unwrap();
        assert_eq!(setup.initial_id_sum(), n as u128 * (n as u128 + 1) / 2);
    }
}

/// §III-E1, eq. 7: block-column particle counts
/// n(I) = c·A·(1−r^(c/P))/(1−r)·r^(Ic/P).
#[test]
fn eq7_block_column_counts() {
    let c = 1_200usize;
    let p = 12usize;
    let r: f64 = 0.997;
    let n = 2_000_000u64;
    let dist = Distribution::Geometric { r };
    let counts = dist.column_counts(c, n);
    // A from the normalization Σ_{i<c} c_col·A·r^i... the per-cell A:
    // total = c·A·(1−r^c)/(1−r) — wait, per-column total is c·A·r^i
    // summed over columns: n = c·A·(1−r^c)/(1−r).
    let a = n as f64 * (1.0 - r) / (c as f64 * (1.0 - r.powi(c as i32)));
    for block in 0..p {
        let measured: u64 = counts[block * c / p..(block + 1) * c / p].iter().sum();
        let predicted = c as f64 * a * (1.0 - r.powi((c / p) as i32)) / (1.0 - r)
            * r.powi((block * c / p) as i32);
        let rel = (measured as f64 - predicted).abs() / predicted;
        assert!(
            rel < 0.01,
            "block {block}: measured {measured} vs eq.7 {predicted}"
        );
    }
}

/// §III-E1, eq. 8: n(I+1)/n(I) = r^(c/P).
#[test]
fn eq8_geometric_block_ratio() {
    let c = 1_000usize;
    let p = 10usize;
    let r: f64 = 0.995;
    let counts = Distribution::Geometric { r }.column_counts(c, 800_000);
    let blocks: Vec<f64> = (0..p)
        .map(|b| counts[b * c / p..(b + 1) * c / p].iter().sum::<u64>() as f64)
        .collect();
    let want = r.powi((c / p) as i32);
    for w in blocks.windows(2) {
        assert!(
            (w[1] / w[0] - want).abs() < 0.01 * want,
            "ratio {} vs eq.8 {want}",
            w[1] / w[0]
        );
    }
}

/// §III-E1: "the particle distribution shifts right with velocity
/// (2k+1) cells per time step".
#[test]
fn distribution_drift_velocity() {
    let grid = Grid::new(32).unwrap();
    for k in [0u32, 1, 2] {
        let setup = InitConfig::new(grid, 800, Distribution::Geometric { r: 0.85 })
            .with_k(k)
            .build()
            .unwrap();
        let mut sim = Simulation::new(setup);
        let before = sim.column_histogram();
        sim.run(4);
        let after = sim.column_histogram();
        let stride = (2 * k as usize + 1) * 4;
        for col in 0..32 {
            assert_eq!(
                after[(col + stride) % 32],
                before[col],
                "k={k}, column {col}"
            );
        }
    }
}

/// §III-C: "L must be an even multiple of h" — odd grids are rejected,
/// and on an even grid periodic crossing preserves the motion pattern.
#[test]
fn even_grid_requirement() {
    assert!(Grid::new(15).is_err());
    let grid = Grid::new(14).unwrap();
    let c = consts();
    let mut p = particle(&grid, 13, 0, 0, 0, 1); // last column, moving right
    advance_particle(&grid, &c, &mut p);
    assert!((p.x - 0.5).abs() < 1e-12, "crossed the seam to column 0");
    advance_particle(&grid, &c, &mut p);
    assert!(
        (p.x - 1.5).abs() < 1e-12,
        "pattern continues after the seam"
    );
    assert!(p.vx.abs() < 1e-12, "decelerated back to rest");
}

/// §III-C: "columns of mesh points with even index have positive charge
/// +q; those with odd index have negative charge −q" (Figure 2).
#[test]
fn mesh_charge_pattern() {
    for col in 0..100usize {
        let q = mesh_charge(col, 1.0);
        assert_eq!(q, if col % 2 == 0 { 1.0 } else { -1.0 });
    }
}
