//! End-to-end tests of the `pic` command-line driver.

use std::process::Command;

fn pic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pic"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    run_env(args, &[])
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = pic();
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.args(args).output().expect("spawn pic");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("--dist"));
    assert!(stdout.contains("diffusion"));
}

#[test]
fn default_serial_run_passes() {
    let (ok, stdout, _) = run(&["--steps", "50", "--quiet"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "PASS");
}

#[test]
fn all_implementations_pass() {
    for imp in ["serial", "baseline", "diffusion", "ampi"] {
        let (ok, stdout, stderr) = run(&[
            "--impl",
            imp,
            "--ranks",
            "3",
            "--grid",
            "32",
            "--particles",
            "500",
            "--steps",
            "40",
            "--m",
            "1",
            "--quiet",
        ]);
        assert!(ok, "impl {imp}: stdout={stdout} stderr={stderr}");
        assert_eq!(stdout.trim(), "PASS", "impl {imp}");
    }
}

#[test]
fn distribution_specs_parse() {
    for dist in [
        "uniform",
        "geometric:0.9",
        "sinusoidal",
        "linear:1.0,2.0",
        "patch:4,12,4,12",
    ] {
        let (ok, stdout, stderr) = run(&[
            "--dist",
            dist,
            "--grid",
            "16",
            "--particles",
            "200",
            "--steps",
            "10",
            "--quiet",
        ]);
        assert!(ok, "dist {dist}: {stderr}");
        assert_eq!(stdout.trim(), "PASS", "dist {dist}");
    }
}

#[test]
fn events_via_cli() {
    let (ok, stdout, _) = run(&[
        "--impl",
        "baseline",
        "--ranks",
        "2",
        "--steps",
        "30",
        "--inject",
        "5,0,16,0,16,300",
        "--remove",
        "15,0,64,0,64,100",
    ]);
    assert!(ok);
    assert!(stdout.contains("final particles       : 10200"), "{stdout}");
    assert!(stdout.contains("PASS"));
}

#[test]
fn rotated_workload_via_cli() {
    let (ok, stdout, _) = run(&[
        "--skew-axis",
        "y",
        "--m",
        "2",
        "--dist",
        "geometric:0.8",
        "--steps",
        "25",
        "--quiet",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "PASS");
}

#[test]
fn two_phase_diffusion_via_cli() {
    let (ok, stdout, _) = run(&[
        "--impl",
        "diffusion",
        "--mode",
        "2phase",
        "--ranks",
        "4",
        "--steps",
        "30",
        "--lb-interval",
        "2",
        "--border",
        "2",
        "--m",
        "1",
        "--quiet",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "PASS");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = run(&["--dist", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown distribution"));
    let (ok, _, stderr) = run(&["--impl", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown implementation"));
    let (ok, _, stderr) = run(&["--grid", "15"]);
    assert!(!ok);
    assert!(stderr.contains("odd"));
}

#[test]
fn help_defaults_match_library_defaults() {
    use pic_prk::par::diffusion::DiffusionParams;
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    let d = DiffusionParams::default();
    // The balancer defaults in the help text are generated from the
    // library constants; spot-check they render with the real values.
    assert!(
        stdout.contains(&format!(
            "steps between LB invocations (default {})",
            d.interval
        )),
        "diffusion lb-interval default drifted: {stdout}"
    );
    assert!(
        stdout.contains(&format!("border width in cells (default {})", d.border_w)),
        "border default drifted"
    );
    assert!(
        stdout.contains(&format!(
            "steps between re-sorts, default {}",
            pic_prk::core::bin::DEFAULT_REBIN
        )),
        "rebin default drifted"
    );
    assert!(stdout.contains("--trace FILE"));
    assert!(stdout.contains("--trace-every N"));
    // The sweep-mode list is generated from SweepMode::ALL, so a new mode
    // can never be missing from the help text.
    let modes = pic_prk::core::engine::SweepMode::ALL
        .iter()
        .map(|m| m.cli_name())
        .collect::<Vec<_>>()
        .join(" | ");
    assert!(
        stdout.contains(&modes),
        "sweep mode list drifted from SweepMode::ALL: {stdout}"
    );
}

#[test]
fn every_sweep_mode_passes_via_cli() {
    // PIC_THREADS=4 sizes the worker pool to 4 even on smaller hosts, so
    // the pooled modes — including the fast tier's bound (run_owned)
    // dispatch across real worker threads — get multi-thread coverage.
    for mode in pic_prk::core::engine::SweepMode::ALL {
        let (ok, stdout, stderr) = run_env(
            &[
                "--sweep",
                mode.cli_name(),
                "--grid",
                "32",
                "--particles",
                "2000",
                "--steps",
                "40",
                "--k",
                "1",
                "--m",
                "1",
                "--rebin",
                "3",
                "--threads",
                "4",
            ],
            &[("PIC_THREADS", "4")],
        );
        assert!(ok, "sweep {}: {stdout} {stderr}", mode.cli_name());
        assert!(stdout.contains("PASS"), "sweep {}", mode.cli_name());
        assert!(
            stdout.contains(&format!("sweep mode            : {}", mode.cli_name())),
            "mode line missing for {}: {stdout}",
            mode.cli_name()
        );
    }
    let (ok, _, stderr) = run(&["--sweep", "warp-drive"]);
    assert!(!ok);
    assert!(stderr.contains("bad sweep mode"), "{stderr}");
}

#[test]
fn pic_no_simd_forces_scalar_kernel_on_every_tier() {
    // The PIC_NO_SIMD=1 override must reach both binned tiers: the exact
    // tier drops to the scalar kernel, and the fast tier falls back to the
    // exact scalar kernel (full bit-identity) — both runs still PASS and
    // report the scalar backend in the kernel descriptor.
    for (mode, want) in [
        ("soa-binned", "kernel scalar/exact"),
        ("soa-binned-fast", "kernel scalar/fast"),
        ("soa-binned-fast", "PASS"),
    ] {
        let (ok, stdout, stderr) = run_env(
            &[
                "--sweep",
                mode,
                "--grid",
                "32",
                "--particles",
                "1000",
                "--steps",
                "30",
                "--m",
                "1",
            ],
            &[("PIC_NO_SIMD", "1")],
        );
        assert!(ok, "sweep {mode}: {stdout} {stderr}");
        assert!(
            stdout.contains(want),
            "sweep {mode} missing {want}: {stdout}"
        );
    }
    // Without the override the binned tiers report the detected backend,
    // never scalar on hosts with any vector ISA (informational only — on a
    // scalar-only host this still holds because detect() returns scalar
    // and the assertion flips to exact equality).
    let (ok, stdout, _) = run(&[
        "--sweep",
        "soa-binned-fast",
        "--grid",
        "32",
        "--particles",
        "500",
        "--steps",
        "10",
    ]);
    assert!(ok);
    let detected = pic_prk::core::simd::SimdBackend::detect();
    assert!(
        stdout.contains(&format!("kernel {}/fast", detected.name())),
        "expected detected backend {} in: {stdout}",
        detected.name()
    );
}

#[test]
fn trace_flag_writes_valid_ndjson() {
    let dir = std::env::temp_dir().join(format!("pic-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (imp, extra) in [
        ("serial", &[][..]),
        ("baseline", &["--ranks", "3"][..]),
        ("diffusion", &["--ranks", "3", "--lb-interval", "4"][..]),
        ("ampi", &["--ranks", "3", "--lb-interval", "4"][..]),
    ] {
        let path = dir.join(format!("{imp}.ndjson"));
        let path = path.to_str().unwrap();
        let mut args = vec![
            "--impl",
            imp,
            "--grid",
            "32",
            "--particles",
            "400",
            "--steps",
            "20",
            "--m",
            "1",
            "--dist",
            "geometric:0.9",
            "--trace",
            path,
            "--trace-every",
            "2",
            "--quiet",
        ];
        args.extend_from_slice(extra);
        let (ok, stdout, stderr) = run(&args);
        assert!(ok, "impl {imp}: {stdout} {stderr}");
        assert_eq!(stdout.trim(), "PASS", "impl {imp}");
        let text = std::fs::read_to_string(path).unwrap();
        let check = pic_prk::trace::validate_ndjson(&text)
            .unwrap_or_else(|e| panic!("impl {imp}: invalid ndjson: {e}"));
        assert_eq!(check.runs, 1, "impl {imp}");
        assert_eq!(check.steps, 10, "impl {imp}: every=2 over 20 steps");
        let summary = check
            .summary
            .as_ref()
            .unwrap_or_else(|| panic!("impl {imp}: no summary"));
        let imb = summary
            .get("max_imbalance")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("impl {imp}: max_imbalance missing/non-finite"));
        assert!(imb.is_finite() && imb >= 1.0, "impl {imp}: imbalance {imb}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_trace_path_fails_cleanly() {
    let (ok, _, stderr) = run(&["--trace", "/nonexistent-dir-xyz/t.ndjson", "--steps", "1"]);
    assert!(!ok);
    assert!(stderr.contains("cannot create trace file"), "{stderr}");
}
