//! The analytic load model and the functional implementations must agree:
//! the model's per-rank counts are exactly what the particle-level runs
//! produce (for even row spread), and its imbalance predictions match the
//! functional `max_count` measurements.

use pic_cluster::loadmodel::ColumnLoadModel;
use pic_comm::world::run_threads;
use pic_par::baseline::run_baseline;
use pic_par::decomp::Decomp2d;
use pic_par::runner::ParConfig;
use pic_prk::prelude::*;

#[test]
fn model_rank_counts_match_functional_baseline() {
    let ncells = 32;
    let n = 2_048u64;
    let steps = 37u32;
    let dist = Distribution::Geometric { r: 0.9 };
    let cfg = ParConfig::new(
        InitConfig::new(Grid::new(ncells).unwrap(), n, dist)
            .build()
            .unwrap(),
        steps,
    );
    let ranks = 4usize;
    let outcomes = run_threads(ranks, |comm| run_baseline(&comm, &cfg));
    assert!(outcomes[0].verify.passed());

    let decomp = Decomp2d::uniform(ncells, ranks);
    let mut model = ColumnLoadModel::new(dist, ncells, n, 0, 1);
    model.advance(steps as u64);
    for (rank, o) in outcomes.iter().enumerate() {
        let (cols, rows) = decomp.bounds(rank);
        let predicted = model.count_in_rect(cols, rows);
        let actual = o.local_count as f64;
        // Even row spread puts each column's particles within ±1 per cell;
        // across a rank's rows the rounding is bounded by the column count.
        assert!(
            (predicted - actual).abs() <= ncells as f64,
            "rank {rank}: model {predicted} vs functional {actual}"
        );
    }
    let max_pred = (0..ranks)
        .map(|r| {
            let (cols, rows) = decomp.bounds(r);
            model.count_in_rect(cols, rows)
        })
        .fold(0.0f64, f64::max);
    let max_actual = outcomes[0].max_count as f64;
    assert!(
        (max_pred - max_actual).abs() / max_actual < 0.05,
        "max-count prediction {max_pred} vs measured {max_actual}"
    );
}

#[test]
fn model_total_is_conserved_through_advance() {
    let mut m = ColumnLoadModel::new(Distribution::PAPER_SKEW, 2_998, 600_000, 0, 1);
    for _ in 0..100 {
        m.advance(61);
        assert_eq!(m.count_in_columns(0, 2_998), 600_000);
    }
}

#[test]
fn modeled_imbalance_matches_eq8_prediction() {
    // Paper eq. 8: per-processor-column counts form a geometric series
    // with ratio r^(c/P). Check the model's initial imbalance against the
    // closed form for a 1D column decomposition.
    let c = 1_000usize;
    let px = 10usize;
    let r: f64 = 0.995;
    let n = 1_000_000u64;
    let model = ColumnLoadModel::new(Distribution::Geometric { r }, c, n, 0, 1);
    let ratio = r.powi((c / px) as i32);
    // Closed-form share of block column 0: (1 − ratio) / (1 − ratio^px).
    let share0 = (1.0 - ratio) / (1.0 - ratio.powi(px as i32));
    let predicted_max = share0 * n as f64;
    let measured_max = (0..px)
        .map(|i| model.count_in_columns(i * c / px, (i + 1) * c / px) as f64)
        .fold(0.0f64, f64::max);
    assert!(
        (predicted_max - measured_max).abs() / predicted_max < 0.02,
        "eq.8 closed form {predicted_max} vs model {measured_max}"
    );
}

#[test]
fn paper_e5_geometry_reproduced_by_pure_counting() {
    // The §V-B numbers are count geometry, independent of the cost model:
    // 2,998² cells, 600 k particles, r = 0.999, 24 ranks ⇒ baseline
    // max/ideal ≈ 2.5 (paper: 62,645 / 25,000 = 2.51).
    let decomp = Decomp2d::uniform(2_998, 24);
    let mut model = ColumnLoadModel::new(Distribution::PAPER_SKEW, 2_998, 600_000, 0, 1);
    model.advance(6_000);
    let max = (0..24)
        .map(|rk| {
            let (cols, rows) = decomp.bounds(rk);
            model.count_in_rect(cols, rows)
        })
        .fold(0.0f64, f64::max);
    let ratio = max / 25_000.0;
    assert!(
        (2.0..3.2).contains(&ratio),
        "baseline max/ideal {ratio}, paper 2.51 (max {max})"
    );
}
