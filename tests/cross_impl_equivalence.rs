//! All implementations — serial engine, `mpi-2d`, `mpi-2d-LB`, `ampi` —
//! must produce the *same* physics: identical surviving id sets and
//! bit-identical final positions for identical setups. Parallelism only
//! reorders the sweep *between* particles, and particles never interact,
//! so even floating-point state must agree exactly.

use pic_ampi::balancer::Balancer;
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi;
use pic_comm::world::run_threads;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::runner::{ParConfig, ParOutcome};
use pic_prk::prelude::*;

fn make_cfg(steps: u32) -> ParConfig {
    let setup = InitConfig::new(
        Grid::new(32).unwrap(),
        600,
        Distribution::Geometric { r: 0.9 },
    )
    .with_k(1)
    .with_m(-1)
    .build()
    .unwrap()
    .with_event(Event::inject(
        5,
        Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        },
        40,
        0,
        1,
        1,
    ))
    .with_event(Event::remove(12, Region::whole(32), 30));
    ParConfig::new(setup, steps)
}

/// (id, x-bits, y-bits, vx-bits, vy-bits) of a serial reference run.
fn serial_final(cfg: &ParConfig) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut sim = Simulation::new(cfg.setup.clone());
    sim.run(cfg.steps);
    assert!(sim.verify().passed());
    let mut v: Vec<_> = sim
        .particles()
        .iter()
        .map(|p| {
            (
                p.id,
                p.x.to_bits(),
                p.y.to_bits(),
                p.vx.to_bits(),
                p.vy.to_bits(),
            )
        })
        .collect();
    v.sort_by_key(|t| t.0);
    v
}

fn gather_finals(outcomes: Vec<ParOutcome>) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut v: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.local_particles.iter())
        .map(|p| {
            (
                p.id,
                p.x.to_bits(),
                p.y.to_bits(),
                p.vx.to_bits(),
                p.vy.to_bits(),
            )
        })
        .collect();
    v.sort_by_key(|t| t.0);
    v
}

#[test]
fn baseline_bitwise_matches_serial() {
    let cfg = make_cfg(40);
    let serial = serial_final(&cfg);
    for p in [1usize, 2, 4, 6] {
        let outcomes = run_threads(p, |comm| {
            let o = run_baseline(&comm, &cfg);
            assert!(o.verify.passed(), "p={p}: {:?}", o.verify);
            o
        });
        let got = gather_finals(outcomes);
        assert_eq!(serial, got, "baseline p={p} differs from serial");
    }
}

#[test]
fn diffusion_bitwise_matches_serial() {
    let cfg = make_cfg(48);
    let serial = serial_final(&cfg);
    let outcomes = run_threads(4, |comm| {
        let o = run_diffusion(
            &comm,
            &cfg,
            DiffusionParams {
                interval: 3,
                tau: 0,
                border_w: 3,
            },
        );
        assert!(o.verify.passed(), "{:?}", o.verify);
        o
    });
    assert_eq!(serial, gather_finals(outcomes));
}

#[test]
fn ampi_bitwise_matches_serial() {
    let cfg = make_cfg(48);
    let serial = serial_final(&cfg);
    for balancer in [Balancer::paper_default(), Balancer::Greedy, Balancer::None] {
        let outcomes = run_threads(4, |comm| {
            let o = run_ampi(
                &comm,
                &cfg,
                &AmpiParams {
                    d: 4,
                    interval: 6,
                    balancer,
                },
            );
            assert!(o.verify.passed(), "{balancer:?}: {:?}", o.verify);
            o
        });
        assert_eq!(serial, gather_finals(outcomes), "{balancer:?}");
    }
}

#[test]
fn two_phase_diffusion_bitwise_matches_serial() {
    use pic_par::diffusion::{run_diffusion_mode, DiffusionMode};
    use pic_prk::core::init::SkewAxis;
    // A rotated workload with vertical drift — the case the two-phase
    // scheme exists for. The physics must still match the serial engine
    // bit for bit whatever the balancer does to the decomposition.
    let setup = InitConfig::new(
        Grid::new(32).unwrap(),
        500,
        Distribution::Geometric { r: 0.85 },
    )
    .with_skew_axis(SkewAxis::Y)
    .with_m(2)
    .build()
    .unwrap()
    .with_event(Event::inject(
        8,
        Region {
            x0: 4,
            x1: 20,
            y0: 4,
            y1: 20,
        },
        50,
        0,
        1,
        1,
    ));
    let cfg = ParConfig::new(setup, 36);
    let serial = serial_final(&cfg);
    for mode in [DiffusionMode::YOnly, DiffusionMode::TwoPhase] {
        let outcomes = run_threads(4, |comm| {
            let o = run_diffusion_mode(
                &comm,
                &cfg,
                DiffusionParams {
                    interval: 2,
                    tau: 0,
                    border_w: 3,
                },
                mode,
            );
            assert!(o.verify.passed(), "{mode:?}: {:?}", o.verify);
            o
        });
        assert_eq!(serial, gather_finals(outcomes), "{mode:?}");
    }
}

#[test]
fn leftward_and_fast_configs_agree() {
    let setup = InitConfig::new(Grid::new(32).unwrap(), 300, Distribution::Sinusoidal)
        .with_k(2)
        .with_m(3)
        .with_dir(-1)
        .build()
        .unwrap();
    let cfg = ParConfig::new(setup, 25);
    let serial = serial_final(&cfg);
    let base = run_threads(4, |comm| run_baseline(&comm, &cfg));
    assert!(base[0].verify.passed());
    assert_eq!(serial, gather_finals(base));
    let ampi = run_threads(4, |comm| {
        run_ampi(
            &comm,
            &cfg,
            &AmpiParams {
                d: 2,
                interval: 5,
                balancer: Balancer::Greedy,
            },
        )
    });
    assert!(ampi[0].verify.passed());
    assert_eq!(serial, gather_finals(ampi));
}

#[test]
fn checksum_matches_ledger_after_events() {
    let cfg = make_cfg(30);
    let serial = serial_final(&cfg);
    let expected: u128 = serial.iter().map(|t| t.0 as u128).sum();
    let out = run_threads(3, |comm| run_baseline(&comm, &cfg));
    assert_eq!(out[0].verify.id_sum, expected);
    assert_eq!(out[0].verify.expected_id_sum, expected);
}
