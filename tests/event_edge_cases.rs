//! Edge cases of the dynamic injection/removal events (§III-E5), checked
//! for graceful handling and ledger agreement across the serial engine and
//! the parallel implementations: a removal asking for more particles than
//! the region holds, an injection into a degenerate (zero-cell) region,
//! and an event scheduled past the final step.

use pic_prk::comm::world::run_threads;
use pic_prk::par::baseline::run_baseline;
use pic_prk::par::diffusion::{run_diffusion, DiffusionParams};
use pic_prk::par::runner::{ParConfig, ParOutcome};
use pic_prk::prelude::*;

const N: u64 = 200;
const STEPS: u32 = 20;

fn setup(events: &[Event]) -> SimulationSetup {
    let mut s = InitConfig::new(Grid::new(32).unwrap(), N, Distribution::Uniform)
        .with_m(1)
        .build()
        .unwrap();
    for &e in events {
        s = s.with_event(e);
    }
    s
}

/// Run serial + baseline + diffusion on the same setup; assert every
/// implementation verifies and all agree on final count and id checksum.
/// Returns (final_count, id_sum).
fn run_all_impls(events: &[Event]) -> (u64, u128) {
    let mut sim = Simulation::new(setup(events));
    sim.run(STEPS);
    let serial_report = sim.verify();
    assert!(serial_report.passed(), "serial: {serial_report:?}");
    let serial_count = sim.particle_count() as u64;

    let cfg = ParConfig::new(setup(events), STEPS);
    let check = |outcomes: Vec<ParOutcome>, name: &str| {
        for o in &outcomes {
            assert!(o.verify.passed(), "{name}: {:?}", o.verify);
            assert_eq!(o.total_count, serial_count, "{name} vs serial count");
            assert_eq!(o.verify.id_sum, serial_report.id_sum, "{name} id_sum");
            assert_eq!(
                o.verify.id_sum, o.verify.expected_id_sum,
                "{name} ledger consistency"
            );
        }
    };
    check(run_threads(4, |comm| run_baseline(&comm, &cfg)), "baseline");
    let params = DiffusionParams {
        interval: 5,
        ..DiffusionParams::default()
    };
    check(
        run_threads(4, |comm| run_diffusion(&comm, &cfg, params)),
        "diffusion",
    );
    (serial_count, serial_report.id_sum)
}

#[test]
fn remove_count_exceeding_candidates_removes_only_residents() {
    // A small region holds far fewer than 10,000 particles; the removal
    // must drain exactly the residents and leave the ledger consistent.
    let small = Region {
        x0: 4,
        x1: 8,
        y0: 4,
        y1: 8,
    };
    let (count, _) = run_all_impls(&[Event::remove(5, small, 10_000)]);
    assert!(count < N, "something must have been removed");
    assert!(
        count > 0,
        "a 4x4 patch of a 32x32 uniform fill is not everyone"
    );
}

#[test]
fn remove_entire_population_leaves_empty_but_verified_run() {
    let (count, id_sum) = run_all_impls(&[Event::remove(5, Region::whole(32), N * 10)]);
    assert_eq!(count, 0);
    assert_eq!(id_sum, 0);
}

#[test]
fn inject_into_zero_cell_region_is_a_noop() {
    // Degenerate in x, and degenerate in y: `SimulationSetup::with_event`
    // skips config validation, so the engines must cope on their own.
    let flat_x = Region {
        x0: 10,
        x1: 10,
        y0: 0,
        y1: 32,
    };
    let flat_y = Region {
        x0: 0,
        x1: 32,
        y0: 7,
        y1: 7,
    };
    let events = [
        Event::inject(3, flat_x, 500, 0, 1, 1),
        Event::inject(4, flat_y, 500, 0, 1, 1),
    ];
    let (count, id_sum) = run_all_impls(&events);
    assert_eq!(count, N, "zero-cell injections must add nothing");
    assert_eq!(id_sum, (N as u128) * (N as u128 + 1) / 2);
}

#[test]
fn event_scheduled_past_final_step_never_fires() {
    let events = [
        Event::inject(STEPS + 50, Region::whole(32), 1_000, 0, 1, 1),
        Event::remove(STEPS + 1, Region::whole(32), N),
    ];
    let (count, id_sum) = run_all_impls(&events);
    assert_eq!(count, N);
    assert_eq!(id_sum, (N as u128) * (N as u128 + 1) / 2);
}

#[test]
fn removal_then_reinjection_at_same_step_stays_consistent() {
    // Same-step ordering: events apply in insertion order after the sort
    // by step — remove then inject at step 10 must keep ids disjoint and
    // the ledger exact.
    let mid = Region {
        x0: 8,
        x1: 24,
        y0: 8,
        y1: 24,
    };
    let events = [
        Event::remove(10, Region::whole(32), 50),
        Event::inject(10, mid, 50, 0, 1, 1),
    ];
    let (count, _) = run_all_impls(&events);
    assert_eq!(count, N, "remove 50 then inject 50");
}
