//! End-to-end failure injection: the PRK's verification must catch the
//! kinds of bugs parallel implementations actually have — a misrouted
//! particle, a dropped exchange payload, a duplicated migration — and must
//! stay quiet on correct runs (no false positives over long horizons).

use pic_comm::collective::{allreduce_u128, alltoallv};
use pic_comm::comm::{Communicator, ReduceOp};
use pic_comm::world::run_threads;
use pic_core::motion::advance_all;
use pic_core::particle::Particle;
use pic_core::verify::{verify_all, DEFAULT_TOLERANCE};
use pic_par::decomp::Decomp2d;
use pic_par::exchange::local_slice;
use pic_prk::prelude::*;

fn setup(n: u64) -> SimulationSetup {
    InitConfig::new(Grid::new(32).unwrap(), n, Distribution::Uniform)
        .with_m(1)
        .build()
        .unwrap()
}

/// A deliberately buggy exchange that silently drops one particle from one
/// payload on one rank at one step — the classic "lost particle in
/// transit". The id checksum must catch it.
fn buggy_exchange(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    me: usize,
    particles: &mut Vec<Particle>,
    drop_one: bool,
) {
    let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); comm.size()];
    let mut kept = Vec::new();
    for p in particles.drain(..) {
        let (c, r) = grid.cell_of_point(p.x, p.y);
        let owner = decomp.owner_of_cell(c, r);
        if owner == me {
            kept.push(p);
        } else {
            outgoing[owner].push(p);
        }
    }
    *particles = kept;
    if drop_one {
        for v in outgoing.iter_mut() {
            if !v.is_empty() {
                v.pop(); // the bug
                break;
            }
        }
    }
    let payloads: Vec<Vec<u8>> = outgoing.iter().map(|v| Particle::encode_all(v)).collect();
    for (src, buf) in alltoallv(comm, payloads).into_iter().enumerate() {
        if src != me && !buf.is_empty() {
            particles.extend(Particle::decode_all(&buf).unwrap());
        }
    }
}

fn run_with_bug(drop_at_step: Option<u32>) -> (bool, u128, u128) {
    let s = setup(400);
    let expected = s.initial_id_sum();
    let grid = s.grid;
    let consts = s.consts;
    let outcomes = run_threads(4, |comm| {
        let decomp = Decomp2d::uniform(32, 4);
        let me = comm.rank();
        let mut particles = local_slice(&decomp, &grid, me, &s.particles);
        for step in 0..20u32 {
            advance_all(&grid, &consts, &mut particles);
            let bug = drop_at_step == Some(step) && me == 0;
            buggy_exchange(&comm, &decomp, &grid, me, &mut particles, bug);
        }
        let local = verify_all(&grid, &particles, 20, 0, DEFAULT_TOLERANCE);
        let id_sum = allreduce_u128(&comm, local.id_sum, ReduceOp::Sum);
        (local.position_failures, id_sum)
    });
    let failures: u64 = outcomes.iter().map(|o| o.0).sum();
    (failures == 0, outcomes[0].1, expected)
}

#[test]
fn clean_run_has_no_failures_and_exact_checksum() {
    let (positions_ok, id_sum, expected) = run_with_bug(None);
    assert!(positions_ok);
    assert_eq!(id_sum, expected);
}

#[test]
fn dropped_particle_in_transit_caught_by_checksum() {
    let (positions_ok, id_sum, expected) = run_with_bug(Some(7));
    // Positions of surviving particles are still fine...
    assert!(positions_ok);
    // ...but the checksum exposes the loss.
    assert_ne!(id_sum, expected, "checksum must catch a dropped particle");
}

#[test]
fn single_force_error_caught_by_trajectory_check() {
    // Corrupt one force evaluation in one step on a 500-particle run.
    let grid = Grid::new(32).unwrap();
    let consts = pic_core::charge::SimConstants::CANONICAL;
    let s = setup(500);
    let mut particles = s.particles.clone();
    for step in 0..30u32 {
        for (i, p) in particles.iter_mut().enumerate() {
            let (mut ax, ay) = pic_core::charge::total_force(&grid, &consts, p.x, p.y, p.q);
            if step == 13 && i == 250 {
                ax *= 1.0 + 1e-3; // one slightly wrong force, once
            }
            pic_core::motion::advance_with_acceleration(&grid, &consts, p, ax, ay);
        }
    }
    let report = verify_all(&grid, &particles, 30, s.initial_id_sum(), DEFAULT_TOLERANCE);
    assert_eq!(
        report.position_failures, 1,
        "exactly the corrupted particle fails"
    );
    assert_eq!(report.failing_ids.len(), 1);
    assert!(!report.passed());
}

#[test]
fn long_horizon_no_false_positives() {
    // 5,000 steps with a fast, wrapping configuration: verification must
    // not drift into false failures.
    let s = InitConfig::new(Grid::new(64).unwrap(), 300, Distribution::Sinusoidal)
        .with_k(2)
        .with_m(-3)
        .build()
        .unwrap();
    let mut sim = Simulation::new(s);
    sim.run(5_000);
    let report = sim.verify();
    assert!(report.passed(), "{report:?}");
    assert!(
        report.max_error < 1e-6,
        "error must stay far from tolerance: {}",
        report.max_error
    );
}

#[test]
fn duplicated_migration_caught() {
    // Simulate a VP migration bug that duplicates a particle.
    let grid = Grid::new(32).unwrap();
    let s = setup(100);
    let mut particles = s.particles.clone();
    let dup = particles[42];
    particles.push(dup);
    let report = verify_all(&grid, &particles, 0, s.initial_id_sum(), DEFAULT_TOLERANCE);
    assert!(!report.passed());
    assert_eq!(report.id_sum, s.initial_id_sum() + dup.id as u128);
}

#[test]
fn tolerance_boundary_behaviour() {
    let grid = Grid::new(32).unwrap();
    let s = setup(1);
    let mut p = s.particles[0];
    // Nudge just under and just over the tolerance.
    p.x += DEFAULT_TOLERANCE * 0.5;
    let r = verify_all(&grid, &[p], 0, p.id as u128, DEFAULT_TOLERANCE);
    assert!(r.passed(), "under-tolerance nudge must pass");
    p.x += DEFAULT_TOLERANCE;
    let r = verify_all(&grid, &[p], 0, p.id as u128, DEFAULT_TOLERANCE);
    assert!(!r.passed(), "over-tolerance nudge must fail");
}
