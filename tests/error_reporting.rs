//! Error-path coverage: every public error type renders a useful message
//! and implements `std::error::Error` (so callers can `?` them into
//! `Box<dyn Error>` pipelines).

use pic_prk::core::checkpoint::{CheckpointData, CheckpointError};
use pic_prk::core::geometry::{Grid, GridError};
use pic_prk::core::init::InitError;
use pic_prk::prelude::*;
use std::error::Error;

fn as_error<E: Error>(e: &E) -> String {
    format!("{e}")
}

#[test]
fn grid_errors_explain_the_constraint() {
    let odd = Grid::new(7).unwrap_err();
    assert_eq!(odd, GridError::OddSize(7));
    assert!(as_error(&odd).contains("even"));
    let tiny = Grid::new(0).unwrap_err();
    assert!(as_error(&tiny).contains("too small"));
}

#[test]
fn init_errors_name_the_offending_value() {
    let grid = Grid::new(8).unwrap();
    let bad_dir = InitConfig::new(grid, 1, Distribution::Uniform)
        .with_dir(0)
        .build()
        .unwrap_err();
    assert!(as_error(&bad_dir).contains("±1"));
    assert!(as_error(&bad_dir).contains('0'));

    let too_fast = InitConfig::new(grid, 1, Distribution::Uniform)
        .with_k(10)
        .build()
        .unwrap_err();
    let msg = as_error(&too_fast);
    assert!(msg.contains("21") && msg.contains('8'), "{msg}");

    let empty = InitConfig::new(
        grid,
        1,
        Distribution::Patch {
            x0: 3,
            x1: 3,
            y0: 0,
            y1: 8,
        },
    )
    .build()
    .unwrap_err();
    assert!(as_error(&empty).contains("no cells"));
}

#[test]
fn checkpoint_errors_are_descriptive() {
    let bad = CheckpointData::decode(b"not a checkpoint at all....");
    assert!(matches!(bad, Err(CheckpointError::BadMagic)));
    assert!(as_error(&bad.unwrap_err()).contains("not a PIC PRK checkpoint"));

    let truncated = CheckpointData::decode(b"PICPRKv\0");
    assert!(as_error(&truncated.unwrap_err()).contains("truncated"));
}

#[test]
fn event_validation_catches_out_of_range_regions() {
    use pic_prk::core::init::validate_event;
    let grid = Grid::new(16).unwrap();
    // Region beyond the grid.
    let e = Event::inject(
        0,
        Region {
            x0: 0,
            x1: 32,
            y0: 0,
            y1: 8,
        },
        5,
        0,
        0,
        1,
    );
    assert!(validate_event(&grid, &e).is_err());
    // Stride too large for the grid.
    let e = Event::inject(
        0,
        Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        },
        5,
        20,
        0,
        1,
    );
    assert!(matches!(
        validate_event(&grid, &e),
        Err(InitError::StrideTooLarge { stride: 41, .. })
    ));
    // Valid event passes.
    let e = Event::remove(
        3,
        Region {
            x0: 0,
            x1: 16,
            y0: 0,
            y1: 16,
        },
        5,
    );
    assert!(validate_event(&grid, &e).is_ok());
}

#[test]
fn errors_box_into_dyn_error() {
    // The `?`-ergonomics check: all error types can flow through a
    // Box<dyn Error> result.
    fn pipeline() -> Result<(), Box<dyn Error>> {
        let grid = Grid::new(9).map_err(Box::new)?;
        let _ = InitConfig::new(grid, 1, Distribution::Uniform).build()?;
        Ok(())
    }
    let err = pipeline().unwrap_err();
    assert!(err.to_string().contains("odd"));
}
