//! System non-uniformity injection (the paper's category-1 sources of
//! load imbalance: OS noise, different core frequencies, non-uniform
//! communication distances).
//!
//! The paper's §II notes that while the PIC PRK does not specifically
//! target category 1, "many of the types in this category are
//! indistinguishable from category 2, which can be used as a substitute" —
//! and points to the Gremlins project for comprehensive coverage. This
//! module is that substitute for the *modeled* runs: deterministic
//! per-core/per-step compute-speed perturbations. It exposes the key
//! qualitative difference between the two balancing philosophies: a
//! runtime balancer measures *time* and compensates for slow cores, while
//! the application-specific diffusion scheme equalizes *particle counts*
//! and is blind to them.

/// Deterministic compute-speed perturbation model.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum NoiseModel {
    /// Perfectly uniform machine (the default).
    #[default]
    None,
    /// Fixed per-core slowdown factors (≥ 1.0 = that much slower), e.g. a
    /// down-clocked socket or a straggler node.
    CoreSpeeds { factors: Vec<f64> },
    /// Per-core, per-step multiplicative jitter: compute is scaled by
    /// `1 + amplitude · u(core, step)` with `u ∈ [0, 1)` from a
    /// deterministic hash — OS-noise-like interference.
    Jitter { amplitude: f64, seed: u64 },
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl NoiseModel {
    /// Helper: the last `n_slow` cores run `slowdown`× slower (a straggler
    /// node), everyone else at full speed.
    pub fn slow_tail(cores: usize, n_slow: usize, slowdown: f64) -> NoiseModel {
        assert!(n_slow <= cores && slowdown >= 1.0);
        let mut factors = vec![1.0; cores];
        for f in factors.iter_mut().skip(cores - n_slow) {
            *f = slowdown;
        }
        NoiseModel::CoreSpeeds { factors }
    }

    /// Compute-time multiplier for `core` at `step` (≥ 1.0).
    #[inline]
    pub fn factor(&self, core: usize, step: u64) -> f64 {
        match self {
            NoiseModel::None => 1.0,
            NoiseModel::CoreSpeeds { factors } => factors.get(core).copied().unwrap_or(1.0),
            NoiseModel::Jitter { amplitude, seed } => {
                let h = splitmix64(seed ^ ((core as u64) << 32) ^ step);
                1.0 + amplitude * (h >> 11) as f64 / (1u64 << 53) as f64
            }
        }
    }

    /// Whether the model perturbs anything (fast-path check).
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseModel::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unity() {
        let n = NoiseModel::None;
        assert_eq!(n.factor(0, 0), 1.0);
        assert_eq!(n.factor(100, 9999), 1.0);
        assert!(n.is_none());
    }

    #[test]
    fn slow_tail_marks_last_cores() {
        let n = NoiseModel::slow_tail(8, 2, 3.0);
        assert_eq!(n.factor(0, 0), 1.0);
        assert_eq!(n.factor(5, 0), 1.0);
        assert_eq!(n.factor(6, 0), 3.0);
        assert_eq!(n.factor(7, 123), 3.0);
        assert!(!n.is_none());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let n = NoiseModel::Jitter {
            amplitude: 0.5,
            seed: 42,
        };
        for core in 0..10 {
            for step in 0..50u64 {
                let f = n.factor(core, step);
                assert!((1.0..1.5).contains(&f), "factor {f}");
                assert_eq!(f, n.factor(core, step), "must be deterministic");
            }
        }
        // Different seeds decorrelate.
        let m = NoiseModel::Jitter {
            amplitude: 0.5,
            seed: 43,
        };
        assert_ne!(n.factor(3, 7), m.factor(3, 7));
    }

    #[test]
    fn jitter_varies_across_cores_and_steps() {
        let n = NoiseModel::Jitter {
            amplitude: 1.0,
            seed: 7,
        };
        let a = n.factor(0, 0);
        let b = n.factor(1, 0);
        let c = n.factor(0, 1);
        assert!(a != b || a != c, "jitter should vary");
    }
}
