//! Load-balancing strategies behind one trait.
//!
//! Every strategy — static (never move), diffusion cut-shifting (§IV-B),
//! greedy/refining VP reassignment (§IV-C), and the online adaptive
//! switcher — implements [`LoadBalancer`]: given replicated load counts
//! plus the current layout, produce a typed [`BalanceDecision`]. The
//! runners own the collectives and the application of decisions; the
//! strategies here are pure, deterministic functions of their inputs so
//! every rank computes the identical decision from allreduced data
//! without any extra communication.

use crate::stats::BalanceStats;
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// Pure cut-diffusion decision functions (paper §IV-B).
// ---------------------------------------------------------------------------

/// One diffusion round over column cuts: shift each interior cut by
/// `border_w` cells toward the heavier neighbor when the load difference
/// exceeds `tau`. Cuts stay strictly sorted and each column keeps at
/// least one cell.
///
/// All arithmetic is carried out on checked integers: proposals are
/// saturating `i64` moves and the final clamp happens before the cast
/// back to `usize`, so non-sensical inputs (huge `border_w`, degenerate
/// histograms) clamp instead of wrapping.
pub fn diffuse_xcuts(
    xcuts: &[usize],
    counts: &[u64],
    tau: u64,
    border_w: usize,
    ncells: usize,
) -> Vec<usize> {
    let px = counts.len();
    assert_eq!(xcuts.len(), px + 1);
    assert!(px >= 1);
    assert!(
        ncells >= px,
        "grid must have at least one cell per processor column"
    );
    if px == 1 {
        return xcuts.to_vec();
    }

    let w = i64::try_from(border_w).unwrap_or(i64::MAX);
    // Cuts are cell indices (<= ncells), far below i64::MAX in practice;
    // the fallback keeps even adversarial inputs from wrapping.
    let mut proposed: Vec<i64> = xcuts
        .iter()
        .map(|&c| i64::try_from(c).unwrap_or(i64::MAX))
        .collect();
    for i in 1..px {
        let left = counts[i - 1];
        let right = counts[i];
        if left > right && left - right > tau {
            proposed[i] = proposed[i].saturating_sub(w);
        } else if right > left && right - left > tau {
            proposed[i] = proposed[i].saturating_add(w);
        }
    }

    // Clamp left-to-right on integers: each cut must sit strictly after
    // the previous one and leave room for the remaining columns. Since
    // ncells >= px, `lo <= hi` holds inductively (out[i-1] <= ncells -
    // (px - i + 1)), so the clamp cannot panic and the result is always
    // in 1..=ncells — the cast back to usize is exact.
    let mut out = vec![0usize; px + 1];
    out[0] = 0;
    out[px] = ncells;
    for i in 1..px {
        let lo = out[i - 1] as i64 + 1;
        let hi = ncells as i64 - (px - i) as i64;
        out[i] = proposed[i].clamp(lo, hi) as usize;
    }
    out
}

/// Per-column particle counts from a global cell histogram and the cut
/// positions. `out` is resized to `xcuts.len() - 1`.
pub fn per_column_counts_into(hist: &[u64], xcuts: &[usize], out: &mut Vec<u64>) {
    assert!(xcuts.len() >= 2);
    assert_eq!(
        *xcuts.last().unwrap(),
        hist.len(),
        "last cut must equal the histogram length"
    );
    let px = xcuts.len() - 1;
    out.clear();
    out.resize(px, 0);
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = hist[xcuts[i]..xcuts[i + 1]].iter().sum();
    }
}

/// Convenience composition: derive per-column counts from a histogram,
/// then run one diffusion round.
pub fn diffuse_xcuts_from_histogram(
    xcuts: &[usize],
    hist: &[u64],
    tau: u64,
    border_w: usize,
) -> Vec<usize> {
    let mut counts = Vec::new();
    per_column_counts_into(hist, xcuts, &mut counts);
    diffuse_xcuts(xcuts, &counts, tau, border_w, hist.len())
}

// ---------------------------------------------------------------------------
// Pure VP-assignment decision functions (paper §IV-C).
// ---------------------------------------------------------------------------

/// Totally-ordered f64 wrapper so load keys can live in ordered
/// containers without panicking on NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Key(pub f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry(f64, usize);

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // total_cmp keeps the heap well-ordered even if a NaN load
        // sneaks in (it sorts above every finite value).
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Longest-processing-time greedy: VPs in decreasing load order, each
/// assigned to the currently lightest core. NaN loads sort as heaviest
/// under the IEEE total order and are placed deterministically instead
/// of panicking.
pub fn greedy_assign(loads: &[f64], cores: usize) -> Vec<usize> {
    assert!(cores >= 1);
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]).then(a.cmp(&b)));

    let mut heap: BinaryHeap<Reverse<Entry>> = (0..cores).map(|c| Reverse(Entry(0.0, c))).collect();
    let mut assignment = vec![0usize; loads.len()];
    for vp in order {
        let Reverse(Entry(load, core)) = heap.pop().expect("heap has `cores` entries");
        assignment[vp] = core;
        heap.push(Reverse(Entry(load + loads[vp], core)));
    }
    assignment
}

/// Refinement balancer: move VPs off the most loaded core onto the
/// least loaded one while that strictly lowers the maximum, up to
/// `max_moves` migrations. Keeps most VPs where they are.
pub fn refine_assign(
    loads: &[f64],
    current: &[usize],
    cores: usize,
    max_moves: usize,
) -> Vec<usize> {
    assert_eq!(loads.len(), current.len());
    assert!(cores >= 1);
    let mut assignment = current.to_vec();
    let mut core_load = vec![0.0f64; cores];
    let mut per_core: Vec<BTreeSet<(Key, usize)>> = vec![BTreeSet::new(); cores];
    for (vp, &core) in assignment.iter().enumerate() {
        assert!(core < cores);
        core_load[core] += loads[vp];
        per_core[core].insert((Key(loads[vp]), vp));
    }

    let budget = max_moves.min(2 * loads.len());
    for _ in 0..budget {
        let (max_core, min_core) = {
            let mut max_c = 0;
            let mut min_c = 0;
            for c in 1..cores {
                if core_load[c] > core_load[max_c] {
                    max_c = c;
                }
                if core_load[c] < core_load[min_c] {
                    min_c = c;
                }
            }
            (max_c, min_c)
        };
        let gap = core_load[max_core] - core_load[min_core];
        if gap <= 1e-9 * core_load[max_core].max(1.0) {
            break;
        }
        // Largest VP on the heavy core that still fits in the gap: moving
        // it strictly reduces the max without making the light core the
        // new max.
        let candidate = per_core[max_core]
            .range(..(Key(gap), 0usize))
            .next_back()
            .copied();
        let Some((key, vp)) = candidate else { break };
        per_core[max_core].remove(&(key, vp));
        per_core[min_core].insert((key, vp));
        core_load[max_core] -= key.0;
        core_load[min_core] += key.0;
        assignment[vp] = min_core;
    }
    assignment
}

/// Max/mean load ratio for an assignment; 1.0 for degenerate inputs.
pub fn imbalance(loads: &[f64], assignment: &[usize], cores: usize) -> f64 {
    assert_eq!(loads.len(), assignment.len());
    if cores == 0 {
        return 1.0;
    }
    let mut core_load = vec![0.0f64; cores];
    for (vp, &core) in assignment.iter().enumerate() {
        core_load[core] += loads[vp];
    }
    let total: f64 = core_load.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mean = total / cores as f64;
    let max = core_load.iter().cloned().fold(f64::MIN, f64::max);
    max / mean
}

/// VP reassignment strategy (paper §IV-C terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpStrategy {
    /// Keep the initial assignment forever.
    None,
    /// Full greedy repack every balance step.
    Greedy,
    /// Incremental refinement with a migration budget per balance step.
    Refine { max_moves: usize },
}

impl VpStrategy {
    /// The paper's AMPI runs use the refinement strategy with an
    /// unbounded per-step budget.
    pub fn paper_default() -> Self {
        VpStrategy::Refine {
            max_moves: usize::MAX,
        }
    }

    /// Compute a fresh VP→core assignment from measured loads.
    pub fn rebalance(&self, loads: &[f64], current: &[usize], cores: usize) -> Vec<usize> {
        match *self {
            VpStrategy::None => current.to_vec(),
            VpStrategy::Greedy => greedy_assign(loads, cores),
            VpStrategy::Refine { max_moves } => refine_assign(loads, current, cores, max_moves),
        }
    }
}

// ---------------------------------------------------------------------------
// The trait and its typed decision.
// ---------------------------------------------------------------------------

/// Current domain layout handed to a balancer alongside the load input.
pub struct Layout<'a> {
    /// Cells per axis of the (square) grid.
    pub ncells: usize,
    /// World size (cores / ranks).
    pub ranks: usize,
    /// Column cuts (len px+1) — empty for VP-family balancers.
    pub xcuts: &'a [usize],
    /// Row cuts (len py+1) — empty for VP-family balancers.
    pub ycuts: &'a [usize],
    /// VP→core assignment — empty for cut-family balancers.
    pub vp_assignment: &'a [usize],
}

/// Which replicated load arrays a balancer needs gathered before
/// `decide` is called. The runner gathers only what is requested, in a
/// fixed order (column histogram, then row counts, then VP counts), so
/// collective traffic is identical across ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BalanceNeeds {
    pub col_hist: bool,
    pub row_counts: bool,
    pub vp_counts: bool,
}

impl BalanceNeeds {
    pub fn union(self, other: BalanceNeeds) -> BalanceNeeds {
        BalanceNeeds {
            col_hist: self.col_hist || other.col_hist,
            row_counts: self.row_counts || other.row_counts,
            vp_counts: self.vp_counts || other.vp_counts,
        }
    }
}

/// Replicated (allreduced) load snapshots for one balance step. Arrays
/// not requested via [`BalanceNeeds`] are empty.
pub struct BalanceInput<'a> {
    /// Simulation step the decision fires at.
    pub step: u64,
    /// Global per-cell column histogram (len = ncells).
    pub col_hist: &'a [u64],
    /// Global per-processor-row particle counts (len = py).
    pub row_counts: &'a [u64],
    /// Global per-VP particle counts (len = nvps).
    pub vp_counts: &'a [u64],
}

/// One proposed cut update along an axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutMove {
    /// 'x' for column cuts, 'y' for row cuts.
    pub axis: char,
    /// Per-column (or per-row) counts the decision was based on — goes
    /// straight into the trace cut record.
    pub counts: Vec<u64>,
    /// The full new cut vector (same length as the current one).
    pub new_cuts: Vec<usize>,
}

/// A proposed VP→core reassignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VpMove {
    /// Per-VP counts the decision was based on.
    pub counts: Vec<u64>,
    /// The full new VP→core assignment.
    pub assignment: Vec<usize>,
}

/// A strategy switch performed by an adaptive balancer.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    pub step: u64,
    pub from: &'static str,
    pub to: &'static str,
    /// The windowed imbalance signal that triggered the switch.
    pub imbalance: f64,
}

/// The typed output of one `decide` call. Default = "do nothing".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BalanceDecision {
    /// Cut updates to apply, in order (x before y).
    pub cuts: Vec<CutMove>,
    /// VP reassignment to apply (recorded even when it is a no-op, to
    /// keep trace streams bit-identical with the historical runners).
    pub vps: Option<VpMove>,
    /// Set when an adaptive balancer switched strategy this step.
    pub switched: Option<SwitchEvent>,
}

/// A load-balancing strategy. Implementations must be deterministic
/// functions of (`decide` call sequence, inputs): runners call `decide`
/// with identical replicated inputs on every rank and apply the
/// decision locally, so any hidden nondeterminism would desynchronize
/// the ranks.
pub trait LoadBalancer {
    /// Stable identifier recorded in trace headers and switch events.
    fn name(&self) -> &'static str;

    /// Whether this balancer wants a balance round at `step`. The
    /// runner additionally skips the final step (matching the
    /// historical `s % interval == 0 && s < steps` cadence).
    fn wants(&self, step: u64) -> bool;

    /// Which load arrays `decide` needs gathered.
    fn needs(&self) -> BalanceNeeds;

    /// Produce a decision from replicated inputs. `&mut self` is for
    /// internal replicated state (e.g. the adaptive window), never for
    /// rank-local data.
    fn decide(&mut self, input: &BalanceInput, layout: &Layout) -> BalanceDecision;
}

// ---------------------------------------------------------------------------
// Strategy implementations.
// ---------------------------------------------------------------------------

/// The baseline: never rebalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticLb;

impl LoadBalancer for StaticLb {
    fn name(&self) -> &'static str {
        "static"
    }
    fn wants(&self, _step: u64) -> bool {
        false
    }
    fn needs(&self) -> BalanceNeeds {
        BalanceNeeds::default()
    }
    fn decide(&mut self, _input: &BalanceInput, _layout: &Layout) -> BalanceDecision {
        BalanceDecision::default()
    }
}

/// Which cut axes a diffusion balancer moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axes {
    X,
    Y,
    XY,
}

/// Cut-diffusion balancer (paper §IV-B): one `diffuse_xcuts` round per
/// requested axis at every `interval`-th step.
#[derive(Debug, Clone)]
pub struct DiffusionLb {
    pub interval: u64,
    pub tau: u64,
    pub border_w: usize,
    pub axes: Axes,
    name: &'static str,
    scratch: Vec<u64>,
}

impl DiffusionLb {
    pub fn new(interval: u64, tau: u64, border_w: usize, axes: Axes) -> Self {
        Self::named("diffusion", interval, tau, border_w, axes)
    }

    /// Same strategy under a distinct trace name — used by the adaptive
    /// balancer to expose differently-tuned arms.
    pub fn named(name: &'static str, interval: u64, tau: u64, border_w: usize, axes: Axes) -> Self {
        assert!(interval > 0, "balance interval must be positive");
        assert!(border_w > 0, "border width must be positive");
        DiffusionLb {
            interval,
            tau,
            border_w,
            axes,
            name,
            scratch: Vec::new(),
        }
    }
}

impl LoadBalancer for DiffusionLb {
    fn name(&self) -> &'static str {
        self.name
    }
    fn wants(&self, step: u64) -> bool {
        step.is_multiple_of(self.interval)
    }
    fn needs(&self) -> BalanceNeeds {
        BalanceNeeds {
            col_hist: matches!(self.axes, Axes::X | Axes::XY),
            row_counts: matches!(self.axes, Axes::Y | Axes::XY),
            vp_counts: false,
        }
    }
    fn decide(&mut self, input: &BalanceInput, layout: &Layout) -> BalanceDecision {
        let mut decision = BalanceDecision::default();
        if matches!(self.axes, Axes::X | Axes::XY) {
            per_column_counts_into(input.col_hist, layout.xcuts, &mut self.scratch);
            let new_cuts = diffuse_xcuts(
                layout.xcuts,
                &self.scratch,
                self.tau,
                self.border_w,
                layout.ncells,
            );
            decision.cuts.push(CutMove {
                axis: 'x',
                counts: self.scratch.clone(),
                new_cuts,
            });
        }
        if matches!(self.axes, Axes::Y | Axes::XY) {
            let new_cuts = diffuse_xcuts(
                layout.ycuts,
                input.row_counts,
                self.tau,
                self.border_w,
                layout.ncells,
            );
            decision.cuts.push(CutMove {
                axis: 'y',
                counts: input.row_counts.to_vec(),
                new_cuts,
            });
        }
        decision
    }
}

/// VP-reassignment balancer (paper §IV-C) wrapping a [`VpStrategy`].
#[derive(Debug, Clone)]
pub struct VpLb {
    pub interval: u64,
    pub strategy: VpStrategy,
    name: &'static str,
    loads: Vec<f64>,
}

impl VpLb {
    pub fn new(interval: u64, strategy: VpStrategy) -> Self {
        assert!(interval > 0, "balance interval must be positive");
        let name = match strategy {
            VpStrategy::None => "vp-none",
            VpStrategy::Greedy => "vp-greedy",
            VpStrategy::Refine { .. } => "vp-refine",
        };
        VpLb {
            interval,
            strategy,
            name,
            loads: Vec::new(),
        }
    }
}

impl LoadBalancer for VpLb {
    fn name(&self) -> &'static str {
        self.name
    }
    fn wants(&self, step: u64) -> bool {
        step.is_multiple_of(self.interval)
    }
    fn needs(&self) -> BalanceNeeds {
        BalanceNeeds {
            col_hist: false,
            row_counts: false,
            vp_counts: true,
        }
    }
    fn decide(&mut self, input: &BalanceInput, layout: &Layout) -> BalanceDecision {
        self.loads.clear();
        self.loads.extend(input.vp_counts.iter().map(|&c| c as f64));
        let assignment = self
            .strategy
            .rebalance(&self.loads, layout.vp_assignment, layout.ranks);
        BalanceDecision {
            cuts: Vec::new(),
            // Always recorded, even when the assignment is unchanged —
            // the historical AMPI runner traced every balance round.
            vps: Some(VpMove {
                counts: input.vp_counts.to_vec(),
                assignment,
            }),
            switched: None,
        }
    }
}

/// Thresholds and window shape for [`AdaptiveLb`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Balance rounds averaged before a switch is considered.
    pub window: usize,
    /// Mean imbalance above this escalates to the next arm.
    pub hi: f64,
    /// Mean imbalance below this de-escalates to the previous arm.
    pub lo: f64,
    /// Balance rounds to wait after a switch before reconsidering.
    pub cooldown: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 3,
            hi: 1.4,
            lo: 1.1,
            cooldown: 2,
        }
    }
}

/// Online adaptive balancer: owns an escalation ladder of arms, watches
/// the measured imbalance over a sliding window of balance rounds, and
/// switches arms when the windowed mean crosses the thresholds.
///
/// Determinism: the signal is computed from the same replicated load
/// arrays every rank already gathered, and the window/cooldown state
/// advances identically on every rank — so all ranks switch at the same
/// step with no extra collectives.
pub struct AdaptiveLb {
    arms: Vec<Box<dyn LoadBalancer>>,
    active: usize,
    interval: u64,
    cfg: AdaptiveConfig,
    window: Vec<f64>,
    cooldown_left: usize,
    scratch: Vec<u64>,
    loads: Vec<f64>,
}

impl AdaptiveLb {
    pub fn new(arms: Vec<Box<dyn LoadBalancer>>, interval: u64, cfg: AdaptiveConfig) -> Self {
        assert!(!arms.is_empty(), "adaptive balancer needs at least one arm");
        assert!(interval > 0, "balance interval must be positive");
        assert!(cfg.window > 0, "adaptive window must be positive");
        AdaptiveLb {
            arms,
            active: 0,
            interval,
            cfg,
            window: Vec::new(),
            cooldown_left: 0,
            scratch: Vec::new(),
            loads: Vec::new(),
        }
    }

    /// The cut-family escalation ladder: static → diffusion → a wider
    /// (2× border) diffusion. Starting static means a skewed workload
    /// demonstrably forces at least one escalation.
    pub fn cut_arms(interval: u64, tau: u64, border_w: usize, axes: Axes) -> Self {
        let arms: Vec<Box<dyn LoadBalancer>> = vec![
            Box::new(StaticLb),
            Box::new(DiffusionLb::named(
                "diffusion",
                interval,
                tau,
                border_w,
                axes,
            )),
            Box::new(DiffusionLb::named(
                "diffusion-wide",
                interval,
                tau,
                border_w.saturating_mul(2).max(border_w),
                axes,
            )),
        ];
        AdaptiveLb::new(arms, interval, AdaptiveConfig::default())
    }

    /// The VP-family escalation ladder: keep → refine → greedy repack.
    pub fn vp_arms(interval: u64) -> Self {
        let arms: Vec<Box<dyn LoadBalancer>> = vec![
            Box::new(VpLb::new(interval, VpStrategy::None)),
            Box::new(VpLb::new(interval, VpStrategy::paper_default())),
            Box::new(VpLb::new(interval, VpStrategy::Greedy)),
        ];
        AdaptiveLb::new(arms, interval, AdaptiveConfig::default())
    }

    /// Name of the currently active arm.
    pub fn active_arm(&self) -> &'static str {
        self.arms[self.active].name()
    }

    /// Imbalance signal from whatever load view is available, in a fixed
    /// precedence (VP counts, then column histogram, then row counts) so
    /// all ranks agree by construction.
    fn signal(&mut self, input: &BalanceInput, layout: &Layout) -> f64 {
        self.loads.clear();
        if !input.vp_counts.is_empty() && !layout.vp_assignment.is_empty() {
            self.loads.resize(layout.ranks, 0.0);
            for (vp, &core) in layout.vp_assignment.iter().enumerate() {
                self.loads[core] += input.vp_counts[vp] as f64;
            }
        } else if !input.col_hist.is_empty() && layout.xcuts.len() >= 2 {
            per_column_counts_into(input.col_hist, layout.xcuts, &mut self.scratch);
            self.loads.extend(self.scratch.iter().map(|&c| c as f64));
        } else if !input.row_counts.is_empty() {
            self.loads
                .extend(input.row_counts.iter().map(|&c| c as f64));
        } else {
            return 1.0;
        }
        BalanceStats::from_loads(&self.loads).imbalance
    }
}

impl LoadBalancer for AdaptiveLb {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn wants(&self, step: u64) -> bool {
        step.is_multiple_of(self.interval)
    }
    fn needs(&self) -> BalanceNeeds {
        // Union over every arm: the gather pattern must not change when
        // the active arm does, or collective traffic would depend on
        // switch history.
        self.arms
            .iter()
            .fold(BalanceNeeds::default(), |acc, arm| acc.union(arm.needs()))
    }
    fn decide(&mut self, input: &BalanceInput, layout: &Layout) -> BalanceDecision {
        let signal = self.signal(input, layout);
        self.window.push(signal);
        if self.window.len() > self.cfg.window {
            self.window.remove(0);
        }

        let mut switched = None;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
        } else if self.window.len() == self.cfg.window {
            let mean = self.window.iter().sum::<f64>() / self.cfg.window as f64;
            // NaN means compare false on both branches: no switch.
            let target = if mean > self.cfg.hi && self.active + 1 < self.arms.len() {
                Some(self.active + 1)
            } else if mean < self.cfg.lo && self.active > 0 {
                Some(self.active - 1)
            } else {
                None
            };
            if let Some(next) = target {
                switched = Some(SwitchEvent {
                    step: input.step,
                    from: self.arms[self.active].name(),
                    to: self.arms[next].name(),
                    imbalance: mean,
                });
                self.active = next;
                self.window.clear();
                self.cooldown_left = self.cfg.cooldown;
            }
        }

        let mut decision = self.arms[self.active].decide(input, layout);
        decision.switched = switched;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- diffusion decision fns (moved from pic-par) --------------------

    #[test]
    fn diffuse_xcuts_moves_toward_heavy() {
        // Heavy left column: the interior cut moves left.
        let cuts = vec![0, 8, 16];
        let counts = vec![100, 10];
        let new = diffuse_xcuts(&cuts, &counts, 0, 1, 16);
        assert_eq!(new, vec![0, 7, 16]);
        // Heavy right column: the cut moves right.
        let counts = vec![10, 100];
        let new = diffuse_xcuts(&cuts, &counts, 0, 1, 16);
        assert_eq!(new, vec![0, 9, 16]);
    }

    #[test]
    fn diffuse_xcuts_respects_tau() {
        let cuts = vec![0, 8, 16];
        let new = diffuse_xcuts(&cuts, &[60, 50], 20, 1, 16);
        assert_eq!(new, cuts, "difference below tau must not move cuts");
    }

    #[test]
    fn diffuse_xcuts_clamps_minimum_width() {
        let cuts = vec![0, 1, 16];
        let counts = vec![100, 1];
        let new = diffuse_xcuts(&cuts, &counts, 0, 4, 16);
        assert_eq!(new[1], 1, "column must keep at least one cell");
    }

    #[test]
    fn diffuse_xcuts_cascading_clamp_stays_sorted() {
        let cuts = vec![0, 2, 3, 4, 16];
        let counts = vec![100, 90, 80, 1];
        let new = diffuse_xcuts(&cuts, &counts, 0, 3, 16);
        for w in new.windows(2) {
            assert!(w[0] < w[1], "cuts must stay strictly sorted: {new:?}");
        }
        assert_eq!(new[0], 0);
        assert_eq!(new[4], 16);
    }

    #[test]
    fn diffuse_xcuts_huge_border_saturates_instead_of_wrapping() {
        let cuts = vec![0, 8, 16];
        let counts = vec![100, 1];
        let new = diffuse_xcuts(&cuts, &counts, 0, usize::MAX, 16);
        assert_eq!(new, vec![0, 1, 16], "saturating move clamps to min width");
        let counts = vec![1, 100];
        let new = diffuse_xcuts(&cuts, &counts, 0, usize::MAX, 16);
        assert_eq!(new, vec![0, 15, 16], "saturating move clamps to max width");
    }

    #[test]
    fn diffuse_xcuts_zero_total_histogram_is_noop() {
        let cuts = vec![0, 5, 11, 16];
        let new = diffuse_xcuts_from_histogram(&cuts, &[0u64; 16], 0, 2);
        assert_eq!(new, cuts);
    }

    #[test]
    fn diffuse_xcuts_single_heavy_column_stays_partition() {
        let mut hist = vec![0u64; 16];
        hist[0] = 1000;
        let cuts = vec![0, 4, 8, 12, 16];
        let new = diffuse_xcuts_from_histogram(&cuts, &hist, 0, 3);
        assert_eq!(new[0], 0);
        assert_eq!(*new.last().unwrap(), 16);
        for w in new.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn per_column_counts_aggregates_histogram_slices() {
        let hist = vec![1, 2, 3, 4, 5, 6];
        let cuts = vec![0, 2, 6];
        let mut out = Vec::new();
        per_column_counts_into(&hist, &cuts, &mut out);
        assert_eq!(out, vec![3, 18]);
    }

    // -- VP assignment fns (moved from pic-ampi) ------------------------

    fn core_loads(loads: &[f64], assignment: &[usize], cores: usize) -> Vec<f64> {
        let mut out = vec![0.0; cores];
        for (vp, &c) in assignment.iter().enumerate() {
            out[c] += loads[vp];
        }
        out
    }

    #[test]
    fn greedy_balances_skewed_loads() {
        let loads = vec![8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = greedy_assign(&loads, 2);
        let cl = core_loads(&loads, &a, 2);
        assert!((cl[0] - cl[1]).abs() <= 1.0, "loads {cl:?}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let loads = vec![3.0, 3.0, 3.0, 3.0];
        assert_eq!(greedy_assign(&loads, 2), greedy_assign(&loads, 2));
    }

    #[test]
    fn greedy_handles_nan_load_without_panicking() {
        // Regression: the sort and the heap both used partial_cmp().unwrap().
        let loads = vec![1.0, f64::NAN, 2.0];
        let a = greedy_assign(&loads, 2);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&c| c < 2));
        assert_eq!(
            a,
            greedy_assign(&loads, 2),
            "NaN placement is deterministic"
        );
    }

    #[test]
    fn vp_strategy_rebalance_tolerates_nan_load() {
        let loads = vec![5.0, f64::NAN, 1.0, 1.0];
        let current = vec![0, 0, 1, 1];
        for strat in [
            VpStrategy::None,
            VpStrategy::Greedy,
            VpStrategy::paper_default(),
        ] {
            let a = strat.rebalance(&loads, &current, 2);
            assert_eq!(a.len(), 4);
            assert!(a.iter().all(|&c| c < 2));
        }
    }

    #[test]
    fn refine_moves_from_most_to_least() {
        let loads = vec![4.0, 4.0, 1.0, 1.0];
        let current = vec![0, 0, 0, 1];
        let a = refine_assign(&loads, &current, 2, usize::MAX);
        let cl = core_loads(&loads, &a, 2);
        assert!(cl[0].max(cl[1]) < 9.0, "max load must drop: {cl:?}");
    }

    #[test]
    fn refine_respects_move_budget() {
        let loads = vec![2.0; 10];
        let current = vec![0; 10];
        let a = refine_assign(&loads, &current, 2, 1);
        let moved = a.iter().filter(|&&c| c != 0).count();
        assert!(moved <= 1, "budget of one move, got {moved}");
    }

    #[test]
    fn refine_never_increases_max_load() {
        let loads = vec![5.0, 3.0, 2.0, 2.0, 1.0];
        let current = vec![0, 1, 1, 0, 1];
        let before = core_loads(&loads, &current, 2);
        let a = refine_assign(&loads, &current, 2, usize::MAX);
        let after = core_loads(&loads, &a, 2);
        let max_b = before.iter().cloned().fold(f64::MIN, f64::max);
        let max_a = after.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_a <= max_b + 1e-12);
    }

    #[test]
    fn refine_noop_when_balanced() {
        let loads = vec![1.0, 1.0, 1.0, 1.0];
        let current = vec![0, 1, 0, 1];
        assert_eq!(refine_assign(&loads, &current, 2, usize::MAX), current);
    }

    #[test]
    fn none_keeps_assignment() {
        let loads = vec![9.0, 1.0];
        let current = vec![1, 1];
        assert_eq!(VpStrategy::None.rebalance(&loads, &current, 2), current);
    }

    #[test]
    fn single_huge_vp_cannot_be_split() {
        let loads = vec![100.0, 1.0, 1.0];
        let a = greedy_assign(&loads, 2);
        let cl = core_loads(&loads, &a, 2);
        assert!(cl.iter().cloned().fold(f64::MIN, f64::max) >= 100.0);
    }

    #[test]
    fn imbalance_of_empty_loads_is_one() {
        assert_eq!(imbalance(&[], &[], 4), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0], &[0, 1], 2), 1.0);
    }

    // -- trait impls -----------------------------------------------------

    #[test]
    fn static_lb_never_wants_and_never_moves() {
        let mut lb = StaticLb;
        assert!(!lb.wants(20));
        assert_eq!(lb.needs(), BalanceNeeds::default());
        let layout = Layout {
            ncells: 16,
            ranks: 4,
            xcuts: &[0, 4, 8, 12, 16],
            ycuts: &[0, 16],
            vp_assignment: &[],
        };
        let input = BalanceInput {
            step: 20,
            col_hist: &[],
            row_counts: &[],
            vp_counts: &[],
        };
        assert_eq!(lb.decide(&input, &layout), BalanceDecision::default());
    }

    #[test]
    fn diffusion_lb_matches_pure_functions() {
        let mut hist = vec![0u64; 16];
        for c in 0..16 {
            hist[c] = (16 - c) as u64 * 10;
        }
        let xcuts = vec![0, 4, 8, 12, 16];
        let ycuts = vec![0, 16];
        let mut lb = DiffusionLb::new(5, 0, 1, Axes::X);
        assert!(lb.wants(5) && lb.wants(10) && !lb.wants(7));
        assert!(lb.needs().col_hist && !lb.needs().row_counts);
        let layout = Layout {
            ncells: 16,
            ranks: 4,
            xcuts: &xcuts,
            ycuts: &ycuts,
            vp_assignment: &[],
        };
        let input = BalanceInput {
            step: 5,
            col_hist: &hist,
            row_counts: &[],
            vp_counts: &[],
        };
        let d = lb.decide(&input, &layout);
        assert_eq!(d.cuts.len(), 1);
        assert_eq!(d.cuts[0].axis, 'x');
        assert_eq!(
            d.cuts[0].new_cuts,
            diffuse_xcuts_from_histogram(&xcuts, &hist, 0, 1)
        );
        let mut counts = Vec::new();
        per_column_counts_into(&hist, &xcuts, &mut counts);
        assert_eq!(d.cuts[0].counts, counts);
        assert!(d.vps.is_none() && d.switched.is_none());
    }

    #[test]
    fn vp_lb_records_even_noop_assignments() {
        let mut lb = VpLb::new(5, VpStrategy::None);
        assert_eq!(lb.name(), "vp-none");
        assert!(lb.needs().vp_counts);
        let assignment = vec![0, 1, 0, 1];
        let layout = Layout {
            ncells: 16,
            ranks: 2,
            xcuts: &[],
            ycuts: &[],
            vp_assignment: &assignment,
        };
        let input = BalanceInput {
            step: 5,
            col_hist: &[],
            row_counts: &[],
            vp_counts: &[10, 10, 10, 10],
        };
        let d = lb.decide(&input, &layout);
        let vp = d.vps.expect("always recorded");
        assert_eq!(vp.assignment, assignment);
        assert_eq!(vp.counts, vec![10, 10, 10, 10]);
    }

    fn skewed_input_decision(lb: &mut AdaptiveLb, step: u64, skew: bool) -> BalanceDecision {
        let hist: Vec<u64> = if skew {
            (0..16).map(|c| if c < 4 { 100 } else { 1 }).collect()
        } else {
            vec![10u64; 16]
        };
        let xcuts = vec![0, 4, 8, 12, 16];
        let ycuts = vec![0, 16];
        let layout = Layout {
            ncells: 16,
            ranks: 4,
            xcuts: &xcuts,
            ycuts: &ycuts,
            vp_assignment: &[],
        };
        let input = BalanceInput {
            step,
            col_hist: &hist,
            row_counts: &[],
            vp_counts: &[],
        };
        lb.decide(&input, &layout)
    }

    #[test]
    fn adaptive_escalates_on_sustained_imbalance_and_relaxes_when_flat() {
        let mut lb = AdaptiveLb::cut_arms(5, 0, 1, Axes::X);
        assert_eq!(lb.active_arm(), "static");
        // Three skewed rounds fill the window; the third decides.
        assert!(skewed_input_decision(&mut lb, 5, true).switched.is_none());
        assert!(skewed_input_decision(&mut lb, 10, true).switched.is_none());
        let d = skewed_input_decision(&mut lb, 15, true);
        let sw = d
            .switched
            .expect("window full + high imbalance must switch");
        assert_eq!((sw.from, sw.to, sw.step), ("static", "diffusion", 15));
        assert!(sw.imbalance > lb.cfg.hi);
        assert_eq!(lb.active_arm(), "diffusion");
        assert!(!d.cuts.is_empty(), "new arm decides in the same round");
        // The window refills during the 2-round cooldown; once it is full
        // and the cooldown has elapsed, a flat window de-escalates back.
        for step in [20, 25] {
            assert!(skewed_input_decision(&mut lb, step, false)
                .switched
                .is_none());
        }
        let d = skewed_input_decision(&mut lb, 30, false);
        let sw = d.switched.expect("flat window must de-escalate");
        assert_eq!((sw.from, sw.to), ("diffusion", "static"));
        assert_eq!(lb.active_arm(), "static");
    }

    #[test]
    fn adaptive_is_deterministic_across_replicas() {
        let run = || {
            let mut lb = AdaptiveLb::cut_arms(5, 0, 1, Axes::X);
            let mut events = Vec::new();
            for i in 1..=10u64 {
                let skew = i <= 4 || i >= 8;
                if let Some(sw) = skewed_input_decision(&mut lb, i * 5, skew).switched {
                    events.push((sw.step, sw.from, sw.to));
                }
            }
            events
        };
        let a = run();
        assert_eq!(a, run(), "identical inputs must produce identical switches");
        assert!(!a.is_empty());
    }

    #[test]
    fn adaptive_needs_is_union_of_arms() {
        let lb = AdaptiveLb::cut_arms(5, 0, 1, Axes::X);
        assert_eq!(
            lb.needs(),
            BalanceNeeds {
                col_hist: true,
                row_counts: false,
                vp_counts: false
            }
        );
        let lb = AdaptiveLb::vp_arms(5);
        assert!(lb.needs().vp_counts && !lb.needs().col_hist);
    }

    #[test]
    fn adaptive_nan_signal_never_switches() {
        // An all-empty layout yields the neutral signal 1.0; a NaN mean
        // (impossible from counts, but guarded) compares false on both
        // thresholds. Either way: no panic, no switch.
        let mut lb = AdaptiveLb::vp_arms(5);
        let layout = Layout {
            ncells: 16,
            ranks: 2,
            xcuts: &[],
            ycuts: &[],
            vp_assignment: &[],
        };
        let input = BalanceInput {
            step: 5,
            col_hist: &[],
            row_counts: &[],
            vp_counts: &[],
        };
        for _ in 0..6 {
            assert!(lb.decide(&input, &layout).switched.is_none());
        }
    }
}
