//! Two-axis analytic load model.
//!
//! [`crate::loadmodel::ColumnLoadModel`] tracks the x profile exactly and
//! treats rows as uniform — sufficient for the paper's experiments, whose
//! distributions are column profiles. The rotated workload (§III-E1's 90°
//! rotation) and patch initializations skew *both* axes; this model keeps
//! one rotating histogram per axis and uses the product form
//!
//! ```text
//! count(cols × rows) = total · colfrac(cols) · rowfrac(rows)
//! ```
//!
//! exact whenever the initial distribution factorizes over x and y (all
//! the spec's initialization modes do: profile axis × uniform-or-range
//! axis).

use crate::loadmodel::ColumnLoadModel;
use pic_core::dist::Distribution;
use pic_core::init::SkewAxis;

/// Product-form load model over both axes.
#[derive(Debug, Clone)]
pub struct LoadModel2d {
    total: u64,
    /// x-axis histogram, stride = dir·(2k+1).
    col: ColumnLoadModel,
    /// y-axis histogram, stride = m.
    row: ColumnLoadModel,
}

impl LoadModel2d {
    /// Build for a distribution whose profile applies to `axis`; the other
    /// axis carries the uniform (or patch-range-restricted) marginal.
    ///
    /// `k`/`dir` give the x stride `dir·(2k+1)`; `m` the y stride.
    pub fn new(
        dist: Distribution,
        axis: SkewAxis,
        c: usize,
        n: u64,
        k: u32,
        dir: i8,
        m: i32,
    ) -> LoadModel2d {
        let profile = dist.column_counts(c, n);
        let range = dist.row_range(c);
        // Uniform marginal over the complementary axis' occupied range.
        let mut marginal = vec![0u64; c];
        let width = (range.1 - range.0).max(1);
        for (i, slot) in marginal.iter_mut().enumerate().take(range.1).skip(range.0) {
            let lo = (i - range.0) as u64 * n / width as u64;
            let hi = (i + 1 - range.0) as u64 * n / width as u64;
            *slot = hi - lo;
        }
        let (m_dir, m_k) = if m >= 0 {
            (1i8, m as i64)
        } else {
            (-1i8, -(m as i64))
        };
        let row_from = |counts: Vec<u64>| {
            // Build a ColumnLoadModel with stride |m| in direction m_dir.
            // The stride parameterization is (2k+1)·dir, so encode |m| via
            // from_counts with an explicit stride below.
            ColumnLoadModel::from_counts_stride(counts, (0, c), m_k * m_dir as i64)
        };
        let col_from = |counts: Vec<u64>| {
            ColumnLoadModel::from_counts_stride(counts, (0, c), dir as i64 * (2 * k as i64 + 1))
        };
        let (colm, rowm) = match axis {
            SkewAxis::X => (col_from(profile), row_from(marginal)),
            SkewAxis::Y => (col_from(marginal), row_from(profile)),
        };
        LoadModel2d {
            total: n,
            col: colm,
            row: rowm,
        }
    }

    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Advance both axes by `steps`.
    pub fn advance(&mut self, steps: u64) {
        self.col.advance(steps);
        self.row.advance(steps);
    }

    /// Expected particles in `cols × rows`.
    pub fn count_in_rect(&self, cols: (usize, usize), rows: (usize, usize)) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cf = self.col.count_in_columns(cols.0, cols.1) as f64 / self.total as f64;
        let rf = self.row.count_in_columns(rows.0, rows.1) as f64 / self.total as f64;
        self.total as f64 * cf * rf
    }

    /// Particles crossing the vertical cut at column `b` next step.
    pub fn crossing_x_cut(&self, b: usize) -> f64 {
        self.col.crossing_cut(b) as f64
    }

    /// Particles crossing the horizontal cut at row `b` next step.
    pub fn crossing_y_cut(&self, b: usize) -> f64 {
        self.row.crossing_cut(b) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_skew_matches_column_model() {
        let dist = Distribution::Geometric { r: 0.9 };
        let mut m2 = LoadModel2d::new(dist, SkewAxis::X, 32, 10_000, 0, 1, 0);
        let mut m1 = ColumnLoadModel::new(dist, 32, 10_000, 0, 1);
        for _ in 0..10 {
            for &(a, b) in &[(0usize, 8usize), (8, 24), (31, 32)] {
                let c2 = m2.count_in_rect((a, b), (0, 32));
                let c1 = m1.count_in_columns(a, b) as f64;
                assert!((c2 - c1).abs() < 1e-9, "cols ({a},{b}): {c2} vs {c1}");
            }
            m1.advance(1);
            m2.advance(1);
        }
    }

    #[test]
    fn y_skew_transposes() {
        let dist = Distribution::Geometric { r: 0.8 };
        let mx = LoadModel2d::new(dist, SkewAxis::X, 16, 4_000, 0, 1, 0);
        let my = LoadModel2d::new(dist, SkewAxis::Y, 16, 4_000, 0, 1, 0);
        for lo in [0usize, 4, 10] {
            let hi = lo + 4;
            let a = mx.count_in_rect((lo, hi), (0, 16));
            let b = my.count_in_rect((0, 16), (lo, hi));
            assert!((a - b).abs() < 1e-9, "({lo},{hi}): {a} vs {b}");
        }
    }

    #[test]
    fn y_drift_rotates_row_profile() {
        let dist = Distribution::Geometric { r: 0.5 };
        let mut m = LoadModel2d::new(dist, SkewAxis::Y, 8, 800, 0, 1, 3);
        let before: Vec<f64> = (0..8)
            .map(|j| m.count_in_rect((0, 8), (j, j + 1)))
            .collect();
        m.advance(1);
        for j in 0..8 {
            let after = m.count_in_rect((0, 8), ((j + 3) % 8, (j + 3) % 8 + 1));
            assert!((after - before[j]).abs() < 1e-9, "row {j}");
        }
    }

    #[test]
    fn negative_m_drifts_down() {
        let dist = Distribution::Geometric { r: 0.5 };
        let mut m = LoadModel2d::new(dist, SkewAxis::Y, 8, 800, 0, 1, -2);
        let top = m.count_in_rect((0, 8), (0, 1));
        m.advance(1);
        let moved = m.count_in_rect((0, 8), (6, 7));
        assert!((moved - top).abs() < 1e-9);
    }

    #[test]
    fn matches_engine_for_rotated_workload() {
        use pic_core::engine::Simulation;
        use pic_core::geometry::Grid;
        use pic_core::init::InitConfig;
        let grid = Grid::new(32).unwrap();
        let dist = Distribution::Sinusoidal;
        let mut sim = Simulation::new(
            InitConfig::new(grid, 3_000, dist)
                .with_skew_axis(SkewAxis::Y)
                .with_m(1)
                .build()
                .unwrap(),
        );
        let mut m = LoadModel2d::new(dist, SkewAxis::Y, 32, 3_000, 0, 1, 1);
        sim.run(9);
        m.advance(9);
        let mut hist = Vec::new();
        sim.row_histogram_into(&mut hist);
        for j in 0..32 {
            let pred = m.count_in_rect((0, 32), (j, j + 1));
            assert!(
                (pred - hist[j] as f64).abs() < 1e-9,
                "row {j}: model {pred} vs engine {}",
                hist[j]
            );
        }
    }

    #[test]
    fn crossing_cuts_both_axes() {
        let m = LoadModel2d::new(Distribution::Uniform, SkewAxis::X, 16, 1_600, 1, 1, -2);
        // Uniform 100/column; x stride 3 → 300 cross any x cut.
        assert!((m.crossing_x_cut(8) - 300.0).abs() < 1e-9);
        // y stride −2 → 200 cross any y cut.
        assert!((m.crossing_y_cut(8) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn patch_restricts_both_axes() {
        let dist = Distribution::Patch {
            x0: 4,
            x1: 8,
            y0: 2,
            y1: 6,
        };
        let m = LoadModel2d::new(dist, SkewAxis::X, 16, 1_000, 0, 1, 0);
        assert!((m.count_in_rect((4, 8), (2, 6)) - 1_000.0).abs() < 1e-9);
        assert!(m.count_in_rect((0, 4), (0, 16)).abs() < 1e-9);
        assert!(m.count_in_rect((0, 16), (6, 16)).abs() < 1e-9);
    }
}
