//! Hierarchical machine model: nodes × sockets × cores.
//!
//! Cores are numbered contiguously (core `c` lives in socket `c / cps`,
//! node `c / (cps·spn)`), matching the usual block placement of MPI ranks
//! on a Cray system. The model exists to classify the *distance* of a
//! message, which selects the latency/bandwidth bucket in
//! [`crate::cost::CostModel`].

/// Communication distance class between two cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// Same core (e.g. two VPs co-located on one core): a memcpy.
    SameCore,
    /// Different cores, same socket: shared L3.
    SameSocket,
    /// Different sockets, same node: QPI hop.
    SameNode,
    /// Different nodes: network (Aries in the reference machine).
    Remote,
}

impl Distance {
    /// Index into per-distance cost arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Distance::SameCore => 0,
            Distance::SameSocket => 1,
            Distance::SameNode => 2,
            Distance::Remote => 3,
        }
    }

    pub const ALL: [Distance; 4] = [
        Distance::SameCore,
        Distance::SameSocket,
        Distance::SameNode,
        Distance::Remote,
    ];
}

/// A homogeneous cluster: `nodes` nodes, each with `sockets_per_node`
/// sockets of `cores_per_socket` cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    pub nodes: usize,
    pub sockets_per_node: usize,
    pub cores_per_socket: usize,
}

impl MachineModel {
    /// An Edison-like node layout (2 × 12-core sockets) with enough nodes
    /// for `cores` cores.
    pub fn edison(cores: usize) -> MachineModel {
        assert!(cores > 0);
        let per_node = 24;
        MachineModel {
            nodes: cores.div_ceil(per_node),
            sockets_per_node: 2,
            cores_per_socket: 12,
        }
    }

    /// A single-socket workstation with `cores` cores.
    pub fn workstation(cores: usize) -> MachineModel {
        assert!(cores > 0);
        MachineModel {
            nodes: 1,
            sockets_per_node: 1,
            cores_per_socket: cores,
        }
    }

    /// Total number of cores.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.nodes * self.sockets_per_node * self.cores_per_socket
    }

    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Node index of a core.
    #[inline]
    pub fn node_of(&self, core: usize) -> usize {
        core / self.cores_per_node()
    }

    /// Global socket index of a core.
    #[inline]
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// Distance class between two cores.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> Distance {
        if a == b {
            Distance::SameCore
        } else if self.socket_of(a) == self.socket_of(b) {
            Distance::SameSocket
        } else if self.node_of(a) == self.node_of(b) {
            Distance::SameNode
        } else {
            Distance::Remote
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edison_layout() {
        let m = MachineModel::edison(192);
        assert_eq!(m.nodes, 8);
        assert_eq!(m.total_cores(), 192);
        assert_eq!(m.cores_per_node(), 24);
    }

    #[test]
    fn edison_rounds_up_partial_nodes() {
        let m = MachineModel::edison(25);
        assert_eq!(m.nodes, 2);
        assert_eq!(m.total_cores(), 48);
    }

    #[test]
    fn distance_classes() {
        let m = MachineModel::edison(48);
        assert_eq!(m.distance(0, 0), Distance::SameCore);
        assert_eq!(m.distance(0, 11), Distance::SameSocket);
        assert_eq!(m.distance(0, 12), Distance::SameNode);
        assert_eq!(m.distance(0, 23), Distance::SameNode);
        assert_eq!(m.distance(0, 24), Distance::Remote);
        assert_eq!(m.distance(25, 30), Distance::SameSocket);
    }

    #[test]
    fn distance_is_symmetric() {
        let m = MachineModel::edison(96);
        for &(a, b) in &[(0usize, 13), (5, 40), (70, 95), (12, 12)] {
            assert_eq!(m.distance(a, b), m.distance(b, a));
        }
    }

    #[test]
    fn workstation_all_same_socket() {
        let m = MachineModel::workstation(8);
        assert_eq!(m.distance(0, 7), Distance::SameSocket);
        assert_eq!(m.total_cores(), 8);
    }

    #[test]
    fn distance_indices_distinct() {
        let idxs: Vec<usize> = Distance::ALL.iter().map(|d| d.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }
}
