//! Bulk-synchronous phase simulator.
//!
//! The PIC PRK is a BSP code: every step, each rank computes on its
//! particles, exchanges leavers with its neighbors, and (implicitly)
//! synchronizes. The modeled step time is therefore
//!
//! ```text
//! t_step = max over cores (compute_ns + comm_ns) + sync_ns(P)
//! ```
//!
//! Load-balancing phases add their own serialized or per-core terms. The
//! simulator accumulates totals plus the imbalance statistics the paper
//! discusses (max particles per core, max/avg compute ratio).

use crate::cost::CostModel;
use crate::machine::MachineModel;

/// Accumulating BSP time model for one run.
#[derive(Debug, Clone)]
pub struct BspSimulator {
    machine: MachineModel,
    cost: CostModel,
    cores: usize,
    steps: u64,
    total_ns: f64,
    compute_max_ns: f64,
    compute_sum_ns: f64,
    comm_max_ns: f64,
    lb_ns: f64,
    migrated_bytes: f64,
}

impl BspSimulator {
    /// `cores` is the number of *active* cores (≤ the machine's total).
    pub fn new(machine: MachineModel, cost: CostModel, cores: usize) -> BspSimulator {
        assert!(cores >= 1 && cores <= machine.total_cores());
        BspSimulator {
            machine,
            cost,
            cores,
            steps: 0,
            total_ns: 0.0,
            compute_max_ns: 0.0,
            compute_sum_ns: 0.0,
            comm_max_ns: 0.0,
            lb_ns: 0.0,
            migrated_bytes: 0.0,
        }
    }

    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Record one simulation step given per-core compute and communication
    /// nanoseconds. Slices must have length `cores`.
    pub fn step(&mut self, compute_ns: &[f64], comm_ns: &[f64]) {
        debug_assert_eq!(compute_ns.len(), self.cores);
        debug_assert_eq!(comm_ns.len(), self.cores);
        let mut max_total = 0.0f64;
        let mut max_compute = 0.0f64;
        let mut max_comm = 0.0f64;
        let mut sum_compute = 0.0f64;
        for i in 0..self.cores {
            let t = compute_ns[i] + comm_ns[i];
            max_total = max_total.max(t);
            max_compute = max_compute.max(compute_ns[i]);
            max_comm = max_comm.max(comm_ns[i]);
            sum_compute += compute_ns[i];
        }
        self.steps += 1;
        self.total_ns += max_total + self.cost.sync_ns(self.cores);
        self.compute_max_ns += max_compute;
        self.compute_sum_ns += sum_compute;
        self.comm_max_ns += max_comm;
    }

    /// Record a load-balancing phase: `critical_path_ns` is added to wall
    /// time (it happens while all ranks wait), `bytes` to the migration
    /// traffic tally.
    pub fn lb_phase(&mut self, critical_path_ns: f64, bytes: f64) {
        self.total_ns += critical_path_ns;
        self.lb_ns += critical_path_ns;
        self.migrated_bytes += bytes;
    }

    /// Finish and summarize.
    pub fn stats(&self) -> RunStats {
        let avg_compute = if self.steps > 0 && self.cores > 0 {
            self.compute_sum_ns / self.cores as f64
        } else {
            0.0
        };
        RunStats {
            seconds: self.total_ns * 1e-9,
            steps: self.steps,
            compute_seconds: self.compute_max_ns * 1e-9,
            comm_seconds: self.comm_max_ns * 1e-9,
            lb_seconds: self.lb_ns * 1e-9,
            migrated_bytes: self.migrated_bytes,
            imbalance: if avg_compute > 0.0 {
                self.compute_max_ns / avg_compute
            } else {
                1.0
            },
        }
    }
}

/// Summary of one modeled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Modeled wall-clock seconds.
    pub seconds: f64,
    /// Steps executed.
    pub steps: u64,
    /// Seconds on the compute critical path (Σ per-step max compute).
    pub compute_seconds: f64,
    /// Seconds on the communication critical path.
    pub comm_seconds: f64,
    /// Seconds spent in load-balancing phases.
    pub lb_seconds: f64,
    /// Total bytes migrated by load balancing.
    pub migrated_bytes: f64,
    /// Load imbalance: (Σ max compute) / (Σ avg compute); 1.0 = perfect.
    pub imbalance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(cores: usize) -> BspSimulator {
        BspSimulator::new(MachineModel::edison(cores), CostModel::edison_like(), cores)
    }

    #[test]
    fn perfectly_balanced_run() {
        let mut s = sim(4);
        for _ in 0..10 {
            s.step(&[100.0; 4], &[0.0; 4]);
        }
        let st = s.stats();
        assert_eq!(st.steps, 10);
        assert!((st.imbalance - 1.0).abs() < 1e-12);
        // 10 × (100 + sync)
        let sync = CostModel::edison_like().sync_ns(4);
        assert!((st.seconds - 10.0 * (100.0 + sync) * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn imbalance_ratio() {
        let mut s = sim(2);
        s.step(&[300.0, 100.0], &[0.0, 0.0]);
        let st = s.stats();
        // max = 300, avg = 200 → 1.5
        assert!((st.imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn comm_adds_to_critical_path() {
        let mut s = sim(2);
        s.step(&[100.0, 100.0], &[0.0, 50.0]);
        let st = s.stats();
        let sync = CostModel::edison_like().sync_ns(2);
        assert!((st.seconds - (150.0 + sync) * 1e-9).abs() < 1e-18);
        assert!((st.comm_seconds - 50.0e-9).abs() < 1e-18);
    }

    #[test]
    fn lb_phase_accumulates() {
        let mut s = sim(2);
        s.step(&[1.0, 1.0], &[0.0, 0.0]);
        s.lb_phase(5_000.0, 1024.0);
        let st = s.stats();
        assert!((st.lb_seconds - 5e-6).abs() < 1e-15);
        assert_eq!(st.migrated_bytes, 1024.0);
        assert!(st.seconds > 5e-6);
    }

    #[test]
    #[should_panic]
    fn too_many_cores_rejected() {
        let _ = BspSimulator::new(MachineModel::edison(24), CostModel::edison_like(), 25);
    }
}
