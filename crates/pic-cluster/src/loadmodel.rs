//! Analytic evolution of the particle distribution.
//!
//! The kernel's verification argument cuts both ways: because every
//! particle moves exactly `stride = ±(2k+1)` cells in x per step, the
//! particle count in any column range at any step is a rotation of the
//! initial per-column histogram. This module maintains that histogram as a
//! prefix-sum array and answers rectangle-count queries in O(1), letting
//! the full-scale modeled experiments run 6,000-step, 3,072-core, million-
//! particle configurations in milliseconds *without approximation* — the
//! counts are exactly what the particle-level engine would produce for
//! even-row-spread initializations (verified against it in tests).

use crate::cost::CostModel;
use pic_core::dist::Distribution;

/// The rotating column histogram of a drifting particle population.
#[derive(Debug, Clone)]
pub struct ColumnLoadModel {
    /// Initial per-column counts (index = original column).
    counts: Vec<u64>,
    /// Prefix sums of `counts`, length `c + 1`.
    prefix: Vec<u64>,
    /// Cells per side.
    c: usize,
    /// Signed cells per step.
    stride: i64,
    /// Accumulated shift (current column `j` holds original column
    /// `(j − shift) mod c`).
    shift: i64,
    /// Total particles.
    total: u64,
    /// Row range `[lo, hi)` occupied by particles (full grid except for
    /// patch distributions). Particles are uniform across these rows.
    row_range: (usize, usize),
}

impl ColumnLoadModel {
    /// Build from an initial distribution. `k` and `dir` define the drift
    /// `stride = dir·(2k+1)` cells per step.
    pub fn new(dist: Distribution, c: usize, n: u64, k: u32, dir: i8) -> ColumnLoadModel {
        assert!(dir == 1 || dir == -1);
        let counts = dist.column_counts(c, n);
        Self::from_counts(counts, dist.row_range(c), k, dir)
    }

    /// Build from explicit per-column counts (e.g. after an injection).
    pub fn from_counts(
        counts: Vec<u64>,
        row_range: (usize, usize),
        k: u32,
        dir: i8,
    ) -> ColumnLoadModel {
        Self::from_counts_stride(counts, row_range, dir as i64 * (2 * k as i64 + 1))
    }

    /// Build with an arbitrary signed stride per step (used by the 2D model
    /// to track the y axis, whose stride is `m` rather than `2k+1`).
    pub fn from_counts_stride(
        counts: Vec<u64>,
        row_range: (usize, usize),
        stride: i64,
    ) -> ColumnLoadModel {
        let c = counts.len();
        assert!(c > 0);
        let mut prefix = Vec::with_capacity(c + 1);
        prefix.push(0u64);
        for &x in &counts {
            prefix.push(prefix.last().unwrap() + x);
        }
        let total = *prefix.last().unwrap();
        ColumnLoadModel {
            counts,
            prefix,
            c,
            stride,
            shift: 0,
            total,
            row_range,
        }
    }

    #[inline]
    pub fn ncells(&self) -> usize {
        self.c
    }

    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn stride(&self) -> i64 {
        self.stride
    }

    #[inline]
    pub fn row_range(&self) -> (usize, usize) {
        self.row_range
    }

    /// Advance the model by `steps` time steps.
    #[inline]
    pub fn advance(&mut self, steps: u64) {
        self.shift = (self.shift + self.stride * steps as i64).rem_euclid(self.c as i64);
    }

    /// Particle count currently in cell column `j`.
    #[inline]
    pub fn count_in_column(&self, j: usize) -> u64 {
        debug_assert!(j < self.c);
        let orig = (j as i64 - self.shift).rem_euclid(self.c as i64) as usize;
        self.counts[orig]
    }

    /// Particle count currently in columns `[a, b)`, `a ≤ b ≤ c`.
    pub fn count_in_columns(&self, a: usize, b: usize) -> u64 {
        debug_assert!(a <= b && b <= self.c);
        if a == b {
            return 0;
        }
        let width = b - a;
        if width == self.c {
            return self.total;
        }
        let start = (a as i64 - self.shift).rem_euclid(self.c as i64) as usize;
        let end = start + width;
        if end <= self.c {
            self.prefix[end] - self.prefix[start]
        } else {
            (self.prefix[self.c] - self.prefix[start]) + self.prefix[end - self.c]
        }
    }

    /// Expected particle count in the rectangle `cols × rows` (rows as a
    /// half-open range). Exact in x; the y dimension is the uniform-row
    /// fraction (exact up to the ±1-per-cell rounding of even row spread).
    pub fn count_in_rect(&self, cols: (usize, usize), rows: (usize, usize)) -> f64 {
        let in_cols = self.count_in_columns(cols.0, cols.1) as f64;
        let (rlo, rhi) = self.row_range;
        let occ = (rhi - rlo) as f64;
        if occ == 0.0 {
            return 0.0;
        }
        let overlap = rows.1.min(rhi).saturating_sub(rows.0.max(rlo)) as f64;
        in_cols * overlap / occ
    }

    /// Particles that will cross the vertical cut at column boundary `b`
    /// (between columns `b−1` and `b`) during the *next* step, moving in
    /// the drift direction. These are the particles currently within
    /// `|stride|` columns upstream of the cut.
    pub fn crossing_cut(&self, b: usize) -> u64 {
        let s = self.stride.unsigned_abs() as usize;
        let s = s.min(self.c);
        if self.stride >= 0 {
            // Columns [b−s, b) mod c.
            let start = (b as i64 - s as i64).rem_euclid(self.c as i64) as usize;
            if start + s <= self.c {
                self.count_in_columns(start, start + s)
            } else {
                self.count_in_columns(start, self.c) + self.count_in_columns(0, start + s - self.c)
            }
        } else {
            // Moving left: columns [b, b+s) mod c cross the cut leftwards.
            if b + s <= self.c {
                self.count_in_columns(b, b + s)
            } else {
                self.count_in_columns(b, self.c) + self.count_in_columns(0, b + s - self.c)
            }
        }
    }

    /// Inject `extra` particles distributed per `per_col` (current column
    /// indexing) — used to model injection events. Rebuilds prefix sums.
    pub fn inject(&mut self, per_col: &[u64]) {
        assert_eq!(per_col.len(), self.c);
        for (j, &cnt) in per_col.iter().enumerate() {
            let orig = (j as i64 - self.shift).rem_euclid(self.c as i64) as usize;
            self.counts[orig] += cnt;
        }
        self.rebuild();
    }

    /// Remove up to `per_col[j]` particles from current column `j`.
    pub fn remove(&mut self, per_col: &[u64]) {
        assert_eq!(per_col.len(), self.c);
        for (j, &cnt) in per_col.iter().enumerate() {
            let orig = (j as i64 - self.shift).rem_euclid(self.c as i64) as usize;
            self.counts[orig] = self.counts[orig].saturating_sub(cnt);
        }
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.prefix.clear();
        self.prefix.push(0);
        for &x in &self.counts {
            self.prefix.push(self.prefix.last().unwrap() + x);
        }
        self.total = *self.prefix.last().unwrap();
    }

    /// Compute time (ns) for a core owning the given rectangle this step.
    pub fn compute_ns(&self, cost: &CostModel, cols: (usize, usize), rows: (usize, usize)) -> f64 {
        self.count_in_rect(cols, rows) * cost.particle_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_core::dist::Distribution;

    fn model(dist: Distribution, c: usize, n: u64) -> ColumnLoadModel {
        ColumnLoadModel::new(dist, c, n, 0, 1)
    }

    #[test]
    fn initial_counts_match_distribution() {
        let d = Distribution::Geometric { r: 0.9 };
        let m = model(d, 16, 10_000);
        let counts = d.column_counts(16, 10_000);
        for j in 0..16 {
            assert_eq!(m.count_in_column(j), counts[j]);
        }
        assert_eq!(m.count_in_columns(0, 16), 10_000);
        assert_eq!(m.total(), 10_000);
    }

    #[test]
    fn advance_rotates_right() {
        let d = Distribution::Geometric { r: 0.8 };
        let mut m = model(d, 8, 1_000);
        let before: Vec<u64> = (0..8).map(|j| m.count_in_column(j)).collect();
        m.advance(3);
        for j in 0..8 {
            assert_eq!(m.count_in_column((j + 3) % 8), before[j]);
        }
    }

    #[test]
    fn leftward_stride_rotates_left() {
        let mut m = ColumnLoadModel::new(Distribution::Geometric { r: 0.8 }, 8, 1_000, 1, -1);
        assert_eq!(m.stride(), -3);
        let before: Vec<u64> = (0..8).map(|j| m.count_in_column(j)).collect();
        m.advance(1);
        for j in 0..8 {
            assert_eq!(m.count_in_column((j + 8 - 3) % 8), before[j]);
        }
    }

    #[test]
    fn range_queries_match_column_sums() {
        let mut m = model(Distribution::Sinusoidal, 32, 44_000);
        for steps in [0u64, 1, 7, 100] {
            m.advance(steps);
            for &(a, b) in &[(0usize, 32usize), (0, 5), (10, 20), (31, 32), (5, 5)] {
                let direct: u64 = (a..b).map(|j| m.count_in_column(j)).sum();
                assert_eq!(
                    m.count_in_columns(a, b),
                    direct,
                    "range ({a},{b}) after {steps}"
                );
            }
        }
    }

    #[test]
    fn wrapped_range_query() {
        let mut m = model(Distribution::Geometric { r: 0.7 }, 8, 1_000);
        m.advance(5);
        // Window that crosses the internal wrap of the rotated histogram.
        let direct: u64 = (2..7).map(|j| m.count_in_column(j)).sum();
        assert_eq!(m.count_in_columns(2, 7), direct);
    }

    #[test]
    fn rect_counts_scale_with_rows() {
        let m = model(Distribution::Uniform, 16, 16_000);
        let full = m.count_in_rect((0, 8), (0, 16));
        let half = m.count_in_rect((0, 8), (0, 8));
        assert!((full - 8_000.0).abs() < 1e-9);
        assert!((half - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn rect_respects_patch_row_range() {
        let d = Distribution::Patch {
            x0: 0,
            x1: 16,
            y0: 4,
            y1: 8,
        };
        let m = model(d, 16, 1_600);
        // All particles live in rows 4..8.
        assert!((m.count_in_rect((0, 16), (0, 4)) - 0.0).abs() < 1e-9);
        assert!((m.count_in_rect((0, 16), (4, 8)) - 1_600.0).abs() < 1e-9);
        assert!((m.count_in_rect((0, 16), (4, 6)) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_cut_counts_upstream_window() {
        let mut m = ColumnLoadModel::new(Distribution::Uniform, 16, 1_600, 1, 1); // stride 3
                                                                                  // Uniform: each column holds 100; 3 columns cross any cut.
        assert_eq!(m.crossing_cut(8), 300);
        assert_eq!(m.crossing_cut(0), 300); // wrap: columns 13,14,15
        m.advance(2);
        assert_eq!(m.crossing_cut(1), 300);
    }

    #[test]
    fn crossing_cut_leftward() {
        let m = ColumnLoadModel::new(Distribution::Uniform, 16, 1_600, 0, -1);
        assert_eq!(m.crossing_cut(8), 100); // column 8 moves left past cut 8
        assert_eq!(m.crossing_cut(15), 100);
    }

    #[test]
    fn inject_and_remove_update_totals() {
        let mut m = model(Distribution::Uniform, 8, 800);
        let mut add = vec![0u64; 8];
        add[3] = 50;
        m.inject(&add);
        assert_eq!(m.total(), 850);
        assert_eq!(m.count_in_column(3), 150);
        let mut del = vec![0u64; 8];
        del[3] = 200; // saturates at the 150 present
        m.remove(&del);
        assert_eq!(m.count_in_column(3), 0);
        assert_eq!(m.total(), 700);
    }

    #[test]
    fn model_matches_particle_engine_counts() {
        // The model's per-column counts must equal the real engine's
        // histogram at every step (even row spread, k = 0).
        use pic_core::engine::Simulation;
        use pic_core::geometry::Grid;
        use pic_core::init::InitConfig;
        let grid = Grid::new(32).unwrap();
        let dist = Distribution::Geometric { r: 0.9 };
        let mut sim = Simulation::new(
            InitConfig::new(grid, 2_000, dist)
                .with_m(1)
                .build()
                .unwrap(),
        );
        let mut m = ColumnLoadModel::new(dist, 32, 2_000, 0, 1);
        let mut hist = Vec::new();
        for step in 0..20 {
            sim.column_histogram_into(&mut hist);
            for j in 0..32 {
                assert_eq!(m.count_in_column(j), hist[j], "step {step}, column {j}");
            }
            sim.step();
            m.advance(1);
        }
    }

    #[test]
    fn model_matches_engine_with_k_stride() {
        use pic_core::engine::Simulation;
        use pic_core::geometry::Grid;
        use pic_core::init::InitConfig;
        let grid = Grid::new(32).unwrap();
        let dist = Distribution::Sinusoidal;
        let mut sim = Simulation::new(
            InitConfig::new(grid, 1_500, dist)
                .with_k(2)
                .build()
                .unwrap(),
        );
        let mut m = ColumnLoadModel::new(dist, 32, 1_500, 2, 1);
        sim.run(13);
        m.advance(13);
        let mut hist = Vec::new();
        sim.column_histogram_into(&mut hist);
        for j in 0..32 {
            assert_eq!(m.count_in_column(j), hist[j], "column {j}");
        }
    }
}
