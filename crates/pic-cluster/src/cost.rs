//! Cost model: how many nanoseconds each primitive operation takes.
//!
//! Defaults are calibrated to the paper's platform (Edison, 2.4 GHz
//! Ivy Bridge, Aries interconnect) so the *shapes* of the reproduced
//! figures — who wins, rough factors, crossovers — land where the paper's
//! do. The headline calibration: the strong-scaling experiment (2,998²
//! cells, 600 k particles, 6,000 steps) takes ≈500 s serial in the paper's
//! Figure 6-left ⇒ ≈140 ns per particle-step (four Coulomb evaluations
//! with `sqrt` + divisions).

use crate::machine::Distance;

/// Nanosecond costs of the model's primitive operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Compute cost per particle per step (force + integration).
    pub particle_ns: f64,
    /// Per-message latency by [`Distance`] index.
    pub msg_latency_ns: [f64; 4],
    /// Per-byte transfer cost by [`Distance`] index.
    pub byte_ns: [f64; 4],
    /// Per-step synchronization cost: `sync_ns_per_log2 × log₂(cores)`
    /// (allreduce/barrier trees).
    pub sync_ns_per_log2: f64,
    /// Fixed bookkeeping cost per load-balancing invocation per core
    /// (count reductions, decision logic).
    pub lb_decision_ns: f64,
    /// Per-VP scheduling overhead per step (context switch between
    /// user-level threads in the AMPI model).
    pub vp_sched_ns: f64,
    /// Wire bytes per migrated/communicated particle.
    pub particle_bytes: f64,
    /// Bytes per migrated grid cell (charge value + bookkeeping).
    pub cell_bytes: f64,
    /// Fixed cost of one runtime (AMPI/Charm++-style) load-balancer
    /// invocation: quiescence detection + centralized strategy setup.
    pub ampi_lb_base_ns: f64,
    /// LB-invocation cost per tree level (`× ⌈log₂ cores⌉`): gathering
    /// instrumented loads to / broadcasting decisions from the central
    /// strategy.
    pub ampi_lb_tree_ns: f64,
    /// Additional LB-invocation cost per VP (strategy input size,
    /// PUP sizing passes).
    pub ampi_lb_per_vp_ns: f64,
    /// Per-message scheduling overhead of the virtualized runtime (user-
    /// level thread wakeup + message routing through the scheduler),
    /// charged on top of the transport cost for VP-to-VP messages.
    pub ampi_msg_overhead_ns: f64,
}

impl CostModel {
    /// Edison-like calibration (see module docs).
    pub fn edison_like() -> CostModel {
        CostModel {
            particle_ns: 140.0,
            // SameCore ≈ memcpy handoff; SameSocket via shared L3;
            // SameNode via QPI; Remote via Aries (~1.5 µs one-sided).
            msg_latency_ns: [80.0, 400.0, 800.0, 1_800.0],
            // ~inverse bandwidth: 30 GB/s socket, 12 GB/s QPI, 8 GB/s NIC.
            byte_ns: [0.008, 0.033, 0.083, 0.125],
            sync_ns_per_log2: 1_200.0,
            lb_decision_ns: 25_000.0,
            vp_sched_ns: 250.0,
            particle_bytes: 88.0, // Particle::WIRE_SIZE + framing
            cell_bytes: 8.0,
            // Calibrated against the paper's Figure 5 sensitivity: at 192
            // cores the gap between F = 20 and F = 160 implies roughly
            // 0.2–0.4 s per load-balancer invocation (Charm++ 6.6.1-era
            // centralized strategies with PUP-based migration). The gather
            // is tree-structured, so the cost grows with log₂(cores) and
            // with the VP count, not linearly with cores.
            ampi_lb_base_ns: 150e6,
            ampi_lb_tree_ns: 10e6,
            ampi_lb_per_vp_ns: 10_000.0,
            ampi_msg_overhead_ns: 2_500.0,
        }
    }

    /// Total fixed cost of one runtime LB invocation on `cores` cores with
    /// `vps` virtual processors (migration volume charged separately).
    #[inline]
    pub fn ampi_lb_invocation_ns(&self, cores: usize, vps: usize) -> f64 {
        let levels = if cores <= 1 {
            0.0
        } else {
            (cores as f64).log2().ceil()
        };
        self.ampi_lb_base_ns + self.ampi_lb_tree_ns * levels + self.ampi_lb_per_vp_ns * vps as f64
    }

    /// Cost of one message of `bytes` bytes over `dist`.
    #[inline]
    pub fn msg_cost_ns(&self, dist: Distance, bytes: f64) -> f64 {
        self.msg_latency_ns[dist.index()] + bytes * self.byte_ns[dist.index()]
    }

    /// Cost of communicating `count` particles over `dist` as one message.
    #[inline]
    pub fn particle_msg_ns(&self, dist: Distance, count: f64) -> f64 {
        if count <= 0.0 {
            // Even an empty exchange round-trips a header in the reference
            // implementations (they post sends/recvs unconditionally).
            return self.msg_latency_ns[dist.index()];
        }
        self.msg_cost_ns(dist, count * self.particle_bytes)
    }

    /// Cost of migrating a subgrid of `cells` cells plus `particles`
    /// particles over `dist`.
    #[inline]
    pub fn migration_ns(&self, dist: Distance, cells: f64, particles: f64) -> f64 {
        self.msg_cost_ns(
            dist,
            cells * self.cell_bytes + particles * self.particle_bytes,
        )
    }

    /// Per-step synchronization cost for a `cores`-core job.
    #[inline]
    pub fn sync_ns(&self, cores: usize) -> f64 {
        if cores <= 1 {
            0.0
        } else {
            self.sync_ns_per_log2 * (cores as f64).log2().ceil()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_orders_with_distance() {
        let c = CostModel::edison_like();
        for w in Distance::ALL.windows(2) {
            assert!(
                c.msg_latency_ns[w[0].index()] < c.msg_latency_ns[w[1].index()],
                "latency must grow with distance"
            );
            assert!(c.byte_ns[w[0].index()] < c.byte_ns[w[1].index()]);
        }
    }

    #[test]
    fn msg_cost_latency_plus_bandwidth() {
        let c = CostModel::edison_like();
        let small = c.msg_cost_ns(Distance::Remote, 0.0);
        let big = c.msg_cost_ns(Distance::Remote, 1_000_000.0);
        assert_eq!(small, c.msg_latency_ns[3]);
        assert!((big - small - 125_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_particle_message_costs_latency() {
        let c = CostModel::edison_like();
        assert_eq!(
            c.particle_msg_ns(Distance::SameNode, 0.0),
            c.msg_latency_ns[Distance::SameNode.index()]
        );
    }

    #[test]
    fn sync_cost_scales_logarithmically() {
        let c = CostModel::edison_like();
        assert_eq!(c.sync_ns(1), 0.0);
        assert!(c.sync_ns(1024) > c.sync_ns(2));
        assert_eq!(c.sync_ns(1024), 10.0 * c.sync_ns_per_log2);
    }

    #[test]
    fn serial_calibration_near_paper() {
        // 600k particles × 6000 steps at the calibrated rate ≈ 500 s,
        // matching the paper's single-core strong-scaling start point.
        let c = CostModel::edison_like();
        let serial_s = 600_000.0 * 6_000.0 * c.particle_ns * 1e-9;
        assert!(
            (400.0..650.0).contains(&serial_s),
            "serial estimate {serial_s}"
        );
    }
}
