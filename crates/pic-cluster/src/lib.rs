//! # pic-cluster — machine model, cost model, and the analytic load model
//!
//! The paper's experiments ran on NERSC's Edison (Cray XC30: 2×12-core
//! Xeon E5-2695 v2 per node, Aries Dragonfly interconnect) at up to 3,072
//! cores. This host has one core, so the scaling figures are reproduced
//! through a deterministic **performance model**:
//!
//! * [`machine`] — a node/socket/core hierarchy with distance classes;
//! * [`cost`] — calibrated per-particle compute cost and per-distance
//!   message latency/bandwidth, Edison-era defaults;
//! * [`bsp`] — a bulk-synchronous phase simulator: per step, the step time
//!   is the maximum over cores of (compute + communication) plus a
//!   synchronization term; totals and imbalance statistics accumulate;
//! * [`loadmodel`] — the key enabler: the PIC PRK's drift is deterministic
//!   (the whole particle distribution shifts `2k+1` cells per step), so the
//!   particle count inside **any** rectangle at **any** step is an O(1)
//!   prefix-sum query. Full-scale runs never move individual particles.
//!
//! Functional correctness of the implementations is established separately
//! at small scale on the `pic-comm` threads backend; this crate only
//! answers "how long would this decomposition/balancing strategy take on a
//! big machine", which is exactly what the paper's figures compare.

pub mod balancer;
pub mod bsp;
pub mod cost;
pub mod loadmodel;
pub mod loadmodel2d;
pub mod machine;
pub mod noise;
pub mod stats;

pub use balancer::{
    diffuse_xcuts, diffuse_xcuts_from_histogram, greedy_assign, imbalance, per_column_counts_into,
    refine_assign, AdaptiveConfig, AdaptiveLb, Axes, BalanceDecision, BalanceInput, BalanceNeeds,
    CutMove, DiffusionLb, Layout, LoadBalancer, StaticLb, SwitchEvent, VpLb, VpMove, VpStrategy,
};
pub use bsp::{BspSimulator, RunStats};
pub use cost::CostModel;
pub use loadmodel::ColumnLoadModel;
pub use loadmodel2d::LoadModel2d;
pub use machine::{Distance, MachineModel};
pub use noise::NoiseModel;
pub use stats::{BalanceStats, LoadTrace};
