//! Load-balance statistics.
//!
//! The paper quantifies imbalance as max particles per core vs the ideal;
//! this module adds the standard complementary metrics (max/mean ratio,
//! coefficient of variation, Gini coefficient) used when reporting how
//! (un)even a load vector is.

/// Summary statistics of a per-core load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceStats {
    pub max: f64,
    pub min: f64,
    pub mean: f64,
    /// `max / mean`; 1.0 = perfectly balanced. The BSP step-time metric.
    pub imbalance: f64,
    /// Coefficient of variation (population std / mean).
    pub cv: f64,
    /// Gini coefficient ∈ [0, 1); 0 = perfectly even.
    pub gini: f64,
}

impl BalanceStats {
    /// Compute from a load vector. Empty or all-zero vectors yield the
    /// neutral statistics (imbalance 1, cv 0, gini 0).
    ///
    /// NaN-tolerant: NaN entries (e.g. 0/0 timing ratios fed in by the
    /// tracer) are excluded from every aggregate instead of poisoning
    /// them; an all-NaN vector behaves like an empty one.
    pub fn from_loads(loads: &[f64]) -> BalanceStats {
        let mut sum = 0.0f64;
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        let mut n = 0usize;
        for &l in loads {
            if l.is_nan() {
                continue;
            }
            sum += l;
            max = max.max(l);
            min = min.min(l);
            n += 1;
        }
        if n == 0 {
            return BalanceStats {
                max: 0.0,
                min: 0.0,
                mean: 0.0,
                imbalance: 1.0,
                cv: 0.0,
                gini: 0.0,
            };
        }
        let mean = sum / n as f64;
        if sum <= 0.0 {
            return BalanceStats {
                max,
                min,
                mean,
                imbalance: 1.0,
                cv: 0.0,
                gini: 0.0,
            };
        }
        let var: f64 = loads
            .iter()
            .filter(|l| !l.is_nan())
            .map(|&l| (l - mean) * (l - mean))
            .sum::<f64>()
            / n as f64;
        let cv = var.sqrt() / mean;
        // Gini via the sorted formula: G = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n,
        // with 1-based i over ascending x.
        let mut sorted: Vec<f64> = loads.iter().copied().filter(|l| !l.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        let gini = (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64;
        BalanceStats {
            max,
            min,
            mean,
            imbalance: max / mean,
            cv,
            gini: gini.max(0.0),
        }
    }
}

/// Per-step time series of balance statistics — the raw material behind
/// "how fast does a balancer converge and how well does it track the
/// drift" plots.
#[derive(Debug, Clone, Default)]
pub struct LoadTrace {
    pub steps: Vec<u64>,
    pub max: Vec<f64>,
    pub mean: Vec<f64>,
    pub imbalance: Vec<f64>,
    pub gini: Vec<f64>,
}

impl LoadTrace {
    pub fn new() -> LoadTrace {
        LoadTrace::default()
    }

    /// Record one step's per-core loads.
    pub fn push(&mut self, step: u64, loads: &[f64]) {
        let s = BalanceStats::from_loads(loads);
        self.steps.push(step);
        self.max.push(s.max);
        self.mean.push(s.mean);
        self.imbalance.push(s.imbalance);
        self.gini.push(s.gini);
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Mean imbalance over the recorded window.
    pub fn mean_imbalance(&self) -> f64 {
        if self.imbalance.is_empty() {
            return 1.0;
        }
        self.imbalance.iter().sum::<f64>() / self.imbalance.len() as f64
    }

    /// CSV rendering: `step,max,mean,imbalance,gini`.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("step,max,mean,imbalance,gini\n");
        for i in 0..self.len() {
            let _ = writeln!(
                out,
                "{},{:.1},{:.1},{:.4},{:.4}",
                self.steps[i], self.max[i], self.mean[i], self.imbalance[i], self.gini[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_vector() {
        let s = BalanceStats::from_loads(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.cv, 0.0);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.min, 5.0);
    }

    #[test]
    fn skewed_vector() {
        let s = BalanceStats::from_loads(&[10.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.imbalance, 4.0);
        assert!(s.gini > 0.7, "gini {}", s.gini);
        assert!(s.cv > 1.5);
    }

    #[test]
    fn gini_ordering_matches_intuition() {
        let even = BalanceStats::from_loads(&[3.0, 3.0, 3.0]).gini;
        let mild = BalanceStats::from_loads(&[2.0, 3.0, 4.0]).gini;
        let harsh = BalanceStats::from_loads(&[0.0, 1.0, 8.0]).gini;
        assert!(even < mild && mild < harsh, "{even} {mild} {harsh}");
    }

    #[test]
    fn degenerate_inputs() {
        let s = BalanceStats::from_loads(&[]);
        assert_eq!(s.imbalance, 1.0);
        let s = BalanceStats::from_loads(&[0.0, 0.0]);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn nan_loads_do_not_panic_or_poison() {
        // Regression: `partial_cmp().unwrap()` in the Gini sort used to
        // panic on any NaN entry. NaN values must be excluded instead.
        let s = BalanceStats::from_loads(&[4.0, f64::NAN, 2.0, f64::NAN]);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.imbalance - 4.0 / 3.0).abs() < 1e-12);
        assert!(s.cv.is_finite() && s.gini.is_finite());
        // The non-NaN subset [4,2] must give the same stats.
        assert_eq!(s, BalanceStats::from_loads(&[4.0, 2.0]));

        // All-NaN behaves like empty: neutral statistics.
        let s = BalanceStats::from_loads(&[f64::NAN, f64::NAN]);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.gini, 0.0);

        // Infinities are not NaN and pass through arithmetic untouched.
        let s = BalanceStats::from_loads(&[f64::INFINITY, 1.0]);
        assert_eq!(s.max, f64::INFINITY);
    }

    #[test]
    fn trace_accumulates_and_renders() {
        let mut t = LoadTrace::new();
        t.push(0, &[1.0, 1.0]);
        t.push(1, &[3.0, 1.0]);
        assert_eq!(t.len(), 2);
        assert!((t.mean_imbalance() - 1.25).abs() < 1e-12);
        let csv = t.to_csv();
        assert!(csv.starts_with("step,max,mean,imbalance,gini\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,3.0,2.0,1.5000"));
    }
}
