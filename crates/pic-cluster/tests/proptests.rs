//! Property tests of the machine model, cost model, BSP accounting and the
//! analytic load model.

use pic_cluster::bsp::BspSimulator;
use pic_cluster::cost::CostModel;
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_cluster::machine::{Distance, MachineModel};
use pic_core::dist::Distribution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distance classification is symmetric and consistent with the
    /// hierarchy (same socket ⊂ same node).
    #[test]
    fn distance_symmetry_and_hierarchy(
        cores_pow in 1usize..8,
        a_sel in any::<u64>(),
        b_sel in any::<u64>(),
    ) {
        let cores = 1usize << cores_pow;
        let m = MachineModel::edison(cores);
        let total = m.total_cores();
        let a = (a_sel % total as u64) as usize;
        let b = (b_sel % total as u64) as usize;
        prop_assert_eq!(m.distance(a, b), m.distance(b, a));
        match m.distance(a, b) {
            Distance::SameCore => prop_assert_eq!(a, b),
            Distance::SameSocket => {
                prop_assert_eq!(m.socket_of(a), m.socket_of(b));
                prop_assert_eq!(m.node_of(a), m.node_of(b));
            }
            Distance::SameNode => {
                prop_assert_ne!(m.socket_of(a), m.socket_of(b));
                prop_assert_eq!(m.node_of(a), m.node_of(b));
            }
            Distance::Remote => prop_assert_ne!(m.node_of(a), m.node_of(b)),
        }
    }

    /// Message cost is monotone in bytes and in distance.
    #[test]
    fn msg_cost_monotone(bytes in 0.0f64..1e9, extra in 1.0f64..1e6) {
        let c = CostModel::edison_like();
        for d in Distance::ALL {
            prop_assert!(c.msg_cost_ns(d, bytes + extra) > c.msg_cost_ns(d, bytes));
        }
        for w in Distance::ALL.windows(2) {
            prop_assert!(c.msg_cost_ns(w[1], bytes) > c.msg_cost_ns(w[0], bytes));
        }
    }

    /// BSP total time is at least the sum of per-step maxima and the
    /// imbalance statistic is ≥ 1.
    #[test]
    fn bsp_accounting_invariants(
        cores in 1usize..16,
        steps in 1usize..50,
        seed in any::<u64>(),
    ) {
        let machine = MachineModel::edison(cores);
        let cost = CostModel::edison_like();
        let mut sim = BspSimulator::new(machine, cost, cores);
        let mut sum_max = 0.0;
        for s in 0..steps {
            let compute: Vec<f64> = (0..cores)
                .map(|c| ((seed >> ((s * cores + c) % 48)) % 1000) as f64)
                .collect();
            let comm = vec![0.0; cores];
            sum_max += compute.iter().cloned().fold(0.0f64, f64::max);
            sim.step(&compute, &comm);
        }
        let st = sim.stats();
        prop_assert!(st.seconds * 1e9 >= sum_max - 1e-6);
        prop_assert!(st.imbalance >= 1.0 - 1e-12, "imbalance {}", st.imbalance);
        prop_assert_eq!(st.steps, steps as u64);
    }

    /// Load-model range queries are additive: count(a,c) = count(a,b) +
    /// count(b,c), after any number of advances.
    #[test]
    fn loadmodel_range_additivity(
        chalf in 4usize..64,
        n in 0u64..100_000,
        k in 0u32..4,
        adv in 0u64..500,
        splits in any::<u64>(),
    ) {
        let c = chalf * 2;
        prop_assume!(2 * k as usize + 1 <= c);
        let mut m = ColumnLoadModel::new(Distribution::Geometric { r: 0.97 }, c, n, k, 1);
        m.advance(adv);
        let a = (splits % c as u64) as usize;
        let cc = a + ((splits >> 16) % (c as u64 - a as u64 + 1)) as usize;
        let b = a + ((splits >> 32) % (cc as u64 - a as u64 + 1)) as usize;
        prop_assert_eq!(
            m.count_in_columns(a, cc),
            m.count_in_columns(a, b) + m.count_in_columns(b, cc)
        );
    }

    /// Advancing by x then y equals advancing by x+y, and a full period
    /// returns the initial histogram.
    #[test]
    fn loadmodel_advance_composition(
        chalf in 4usize..32,
        n in 1u64..50_000,
        x in 0u64..300,
        y in 0u64..300,
    ) {
        let c = chalf * 2;
        let dist = Distribution::Sinusoidal;
        let mut a = ColumnLoadModel::new(dist, c, n, 0, 1);
        let mut b = ColumnLoadModel::new(dist, c, n, 0, 1);
        a.advance(x);
        a.advance(y);
        b.advance(x + y);
        for j in 0..c {
            prop_assert_eq!(a.count_in_column(j), b.count_in_column(j));
        }
        // Full period: stride 1, so c steps restore the histogram.
        let mut p = ColumnLoadModel::new(dist, c, n, 0, 1);
        let initial: Vec<u64> = (0..c).map(|j| p.count_in_column(j)).collect();
        p.advance(c as u64);
        let after: Vec<u64> = (0..c).map(|j| p.count_in_column(j)).collect();
        prop_assert_eq!(initial, after);
    }

    /// Crossing counts never exceed the total and sum of crossing at every
    /// cut equals stride × total for uniform... (bounded sanity).
    #[test]
    fn crossing_cut_bounded(
        chalf in 4usize..32,
        n in 0u64..20_000,
        k in 0u32..3,
        cut_sel in any::<u64>(),
        adv in 0u64..100,
    ) {
        let c = chalf * 2;
        prop_assume!(2 * k as u64 + 1 <= c as u64);
        let mut m = ColumnLoadModel::new(Distribution::Geometric { r: 0.9 }, c, n, k, 1);
        m.advance(adv);
        let cut = (cut_sel % c as u64) as usize;
        prop_assert!(m.crossing_cut(cut) <= n);
    }
}
