//! Property tests of the machine model, cost model, BSP accounting, the
//! analytic load model, and the balance decision functions.

use pic_cluster::balancer::{diffuse_xcuts_from_histogram, greedy_assign, refine_assign};
use pic_cluster::bsp::BspSimulator;
use pic_cluster::cost::CostModel;
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_cluster::machine::{Distance, MachineModel};
use pic_core::dist::Distribution;
use proptest::prelude::*;

/// A uniform partition of `ncells` into `px` columns, `xcuts` style.
fn uniform_cuts(px: usize, ncells: usize) -> Vec<usize> {
    (0..=px).map(|i| i * ncells / px).collect()
}

/// The partition invariant every diffusion decision must keep: pinned
/// ends, strictly increasing interior (≥ 1 cell per column).
fn assert_partition(
    cuts: &[usize],
    px: usize,
    ncells: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(cuts.len(), px + 1);
    prop_assert_eq!(cuts[0], 0);
    prop_assert_eq!(cuts[px], ncells);
    for w in cuts.windows(2) {
        prop_assert!(w[0] < w[1], "cuts not strictly increasing: {cuts:?}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distance classification is symmetric and consistent with the
    /// hierarchy (same socket ⊂ same node).
    #[test]
    fn distance_symmetry_and_hierarchy(
        cores_pow in 1usize..8,
        a_sel in any::<u64>(),
        b_sel in any::<u64>(),
    ) {
        let cores = 1usize << cores_pow;
        let m = MachineModel::edison(cores);
        let total = m.total_cores();
        let a = (a_sel % total as u64) as usize;
        let b = (b_sel % total as u64) as usize;
        prop_assert_eq!(m.distance(a, b), m.distance(b, a));
        match m.distance(a, b) {
            Distance::SameCore => prop_assert_eq!(a, b),
            Distance::SameSocket => {
                prop_assert_eq!(m.socket_of(a), m.socket_of(b));
                prop_assert_eq!(m.node_of(a), m.node_of(b));
            }
            Distance::SameNode => {
                prop_assert_ne!(m.socket_of(a), m.socket_of(b));
                prop_assert_eq!(m.node_of(a), m.node_of(b));
            }
            Distance::Remote => prop_assert_ne!(m.node_of(a), m.node_of(b)),
        }
    }

    /// Message cost is monotone in bytes and in distance.
    #[test]
    fn msg_cost_monotone(bytes in 0.0f64..1e9, extra in 1.0f64..1e6) {
        let c = CostModel::edison_like();
        for d in Distance::ALL {
            prop_assert!(c.msg_cost_ns(d, bytes + extra) > c.msg_cost_ns(d, bytes));
        }
        for w in Distance::ALL.windows(2) {
            prop_assert!(c.msg_cost_ns(w[1], bytes) > c.msg_cost_ns(w[0], bytes));
        }
    }

    /// BSP total time is at least the sum of per-step maxima and the
    /// imbalance statistic is ≥ 1.
    #[test]
    fn bsp_accounting_invariants(
        cores in 1usize..16,
        steps in 1usize..50,
        seed in any::<u64>(),
    ) {
        let machine = MachineModel::edison(cores);
        let cost = CostModel::edison_like();
        let mut sim = BspSimulator::new(machine, cost, cores);
        let mut sum_max = 0.0;
        for s in 0..steps {
            let compute: Vec<f64> = (0..cores)
                .map(|c| ((seed >> ((s * cores + c) % 48)) % 1000) as f64)
                .collect();
            let comm = vec![0.0; cores];
            sum_max += compute.iter().cloned().fold(0.0f64, f64::max);
            sim.step(&compute, &comm);
        }
        let st = sim.stats();
        prop_assert!(st.seconds * 1e9 >= sum_max - 1e-6);
        prop_assert!(st.imbalance >= 1.0 - 1e-12, "imbalance {}", st.imbalance);
        prop_assert_eq!(st.steps, steps as u64);
    }

    /// Load-model range queries are additive: count(a,c) = count(a,b) +
    /// count(b,c), after any number of advances.
    #[test]
    fn loadmodel_range_additivity(
        chalf in 4usize..64,
        n in 0u64..100_000,
        k in 0u32..4,
        adv in 0u64..500,
        splits in any::<u64>(),
    ) {
        let c = chalf * 2;
        prop_assume!(2 * k as usize + 1 <= c);
        let mut m = ColumnLoadModel::new(Distribution::Geometric { r: 0.97 }, c, n, k, 1);
        m.advance(adv);
        let a = (splits % c as u64) as usize;
        let cc = a + ((splits >> 16) % (c as u64 - a as u64 + 1)) as usize;
        let b = a + ((splits >> 32) % (cc as u64 - a as u64 + 1)) as usize;
        prop_assert_eq!(
            m.count_in_columns(a, cc),
            m.count_in_columns(a, b) + m.count_in_columns(b, cc)
        );
    }

    /// Advancing by x then y equals advancing by x+y, and a full period
    /// returns the initial histogram.
    #[test]
    fn loadmodel_advance_composition(
        chalf in 4usize..32,
        n in 1u64..50_000,
        x in 0u64..300,
        y in 0u64..300,
    ) {
        let c = chalf * 2;
        let dist = Distribution::Sinusoidal;
        let mut a = ColumnLoadModel::new(dist, c, n, 0, 1);
        let mut b = ColumnLoadModel::new(dist, c, n, 0, 1);
        a.advance(x);
        a.advance(y);
        b.advance(x + y);
        for j in 0..c {
            prop_assert_eq!(a.count_in_column(j), b.count_in_column(j));
        }
        // Full period: stride 1, so c steps restore the histogram.
        let mut p = ColumnLoadModel::new(dist, c, n, 0, 1);
        let initial: Vec<u64> = (0..c).map(|j| p.count_in_column(j)).collect();
        p.advance(c as u64);
        let after: Vec<u64> = (0..c).map(|j| p.count_in_column(j)).collect();
        prop_assert_eq!(initial, after);
    }

    /// Crossing counts never exceed the total and sum of crossing at every
    /// cut equals stride × total for uniform... (bounded sanity).
    #[test]
    fn crossing_cut_bounded(
        chalf in 4usize..32,
        n in 0u64..20_000,
        k in 0u32..3,
        cut_sel in any::<u64>(),
        adv in 0u64..100,
    ) {
        let c = chalf * 2;
        prop_assume!(2 * k as u64 + 1 <= c as u64);
        let mut m = ColumnLoadModel::new(Distribution::Geometric { r: 0.9 }, c, n, k, 1);
        m.advance(adv);
        let cut = (cut_sel % c as u64) as usize;
        prop_assert!(m.crossing_cut(cut) <= n);
    }

    /// A zero-total histogram never moves a cut: with nothing to balance,
    /// the decision is the identity, whatever the border width.
    #[test]
    fn diffusion_zero_total_histogram_is_identity(
        px in 1usize..8,
        cells_per in 1usize..16,
        border_w in 1usize..1000,
        tau in 0u64..100,
    ) {
        let ncells = px * cells_per;
        let cuts = uniform_cuts(px, ncells);
        let hist = vec![0u64; ncells];
        let out = diffuse_xcuts_from_histogram(&cuts, &hist, tau, border_w);
        prop_assert_eq!(out, cuts);
    }

    /// A single heavy mesh column — the most lopsided histogram possible —
    /// must still produce a valid partition for any border width (the
    /// clamp absorbs arbitrarily wild proposals, including the huge
    /// `border_w` casts that used to wrap).
    #[test]
    fn diffusion_single_heavy_column_keeps_partition(
        px in 2usize..8,
        cells_per in 1usize..16,
        heavy_sel in any::<u64>(),
        weight in 1u64..u64::MAX / 2,
        border_w in 1usize..usize::MAX,
        adv in 0usize..4,
    ) {
        let ncells = px * cells_per;
        let mut cuts = uniform_cuts(px, ncells);
        let mut hist = vec![0u64; ncells];
        hist[(heavy_sel % ncells as u64) as usize] = weight;
        // Iterate the decision a few times: the fixed point must stay a
        // partition too (cascading clamps interact across rounds).
        for _ in 0..=adv {
            cuts = diffuse_xcuts_from_histogram(&cuts, &hist, 0, border_w);
            assert_partition(&cuts, px, ncells)?;
        }
    }

    /// Arbitrary histograms, thresholds and border widths: the decision
    /// always yields a valid partition and is replicated (two evaluations
    /// from identical inputs agree bit-for-bit).
    #[test]
    fn diffusion_always_partitions_and_replicates(
        px in 1usize..8,
        cells_per in 1usize..16,
        seed in any::<u64>(),
        tau in 0u64..10_000,
        border_w in 1usize..100,
    ) {
        let ncells = px * cells_per;
        let cuts = uniform_cuts(px, ncells);
        let hist: Vec<u64> = (0..ncells)
            .map(|i| seed.rotate_left((i % 64) as u32) % 100_000)
            .collect();
        let a = diffuse_xcuts_from_histogram(&cuts, &hist, tau, border_w);
        let b = diffuse_xcuts_from_histogram(&cuts, &hist, tau, border_w);
        assert_partition(&a, px, ncells)?;
        prop_assert_eq!(a, b);
    }

    /// The VP assignment strategies must return a complete, in-range
    /// assignment for any load vector — including non-finite loads (the
    /// NaN-safe total order must never panic and never emit an out-of-range
    /// core id).
    #[test]
    fn vp_assignments_total_and_in_range(
        nvps in 1usize..32,
        cores in 1usize..8,
        seed in any::<u64>(),
        nan_sel in any::<u64>(),
    ) {
        let mut loads: Vec<f64> = (0..nvps)
            .map(|i| (seed.rotate_left((i % 64) as u32) % 1000) as f64)
            .collect();
        if nan_sel % 3 == 0 {
            loads[(nan_sel % nvps as u64) as usize] = f64::NAN;
        }
        let greedy = greedy_assign(&loads, cores);
        prop_assert_eq!(greedy.len(), nvps);
        prop_assert!(greedy.iter().all(|&c| c < cores));
        let current: Vec<usize> = (0..nvps).map(|i| i % cores).collect();
        let refined = refine_assign(&loads, &current, cores, usize::MAX);
        prop_assert_eq!(refined.len(), nvps);
        prop_assert!(refined.iter().all(|&c| c < cores));
    }
}
