//! The trait-driven rank loop: one runner for every cut-family
//! [`LoadBalancer`].
//!
//! The baseline (`StaticLb`), diffusion (`DiffusionLb`), and adaptive
//! (`AdaptiveLb`) implementations all execute through
//! [`run_balanced_traced`]: the runner owns the collectives (gathering
//! exactly the load arrays the strategy's [`BalanceNeeds`] requests, in a
//! fixed order) and the application of the returned [`BalanceDecision`];
//! the strategy itself is a pure replicated function. Decisions are
//! derived only from allreduced data, so every rank computes the same
//! cuts — and, for the adaptive balancer, the same strategy switches —
//! without any decision broadcast.

use crate::decomp::Decomp2d;
use crate::diffusion::{DiffusionMode, DiffusionParams};
use crate::runner::{snapshot_loads, trace_interval, ParConfig, ParOutcome, RankState};
use pic_cluster::balancer::{AdaptiveLb, Axes, BalanceInput, Layout, LoadBalancer};
use pic_comm::comm::Communicator;
use pic_trace::{Counter, Phase, Tracer};

/// Which balancer a [`ParConfig`] run uses; resolved by [`run_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalancerSpec {
    /// Static decomposition, never rebalance (the `mpi-2d` baseline).
    #[default]
    Static,
    /// Cut diffusion with fixed parameters (the `mpi-2d-LB` scheme).
    Diffusion {
        params: DiffusionParams,
        mode: DiffusionMode,
    },
    /// Online adaptive switching over the static → diffusion ladder.
    Adaptive {
        params: DiffusionParams,
        mode: DiffusionMode,
    },
}

impl BalancerSpec {
    /// The strategy name as recorded in trace run headers.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerSpec::Static => "static",
            BalancerSpec::Diffusion { .. } => "diffusion",
            BalancerSpec::Adaptive { .. } => "adaptive",
        }
    }
}

fn axes_of(mode: DiffusionMode) -> Axes {
    match mode {
        DiffusionMode::XOnly => Axes::X,
        DiffusionMode::YOnly => Axes::Y,
        DiffusionMode::TwoPhase => Axes::XY,
    }
}

/// Run this rank's loop under `cfg.balancer`. All ranks must call with an
/// identical `cfg`.
pub fn run_config(comm: &Communicator, cfg: &ParConfig) -> ParOutcome {
    run_config_traced(comm, cfg, &mut Tracer::disabled())
}

/// [`run_config`] with telemetry: dispatches on [`ParConfig::balancer`]
/// to the matching traced runner, keeping the historical `impl` names in
/// the trace header.
pub fn run_config_traced(comm: &Communicator, cfg: &ParConfig, tracer: &mut Tracer) -> ParOutcome {
    match cfg.balancer {
        BalancerSpec::Static => crate::baseline::run_baseline_traced(comm, cfg, tracer),
        BalancerSpec::Diffusion { params, mode } => {
            crate::diffusion::run_diffusion_mode_traced(comm, cfg, params, mode, tracer)
        }
        BalancerSpec::Adaptive { params, mode } => {
            run_adaptive_traced(comm, cfg, params, mode, tracer)
        }
    }
}

/// Run with the online adaptive balancer over the cut-family ladder
/// (static → diffusion → wide diffusion), using `params`/`mode` for the
/// diffusion arms.
pub fn run_adaptive(
    comm: &Communicator,
    cfg: &ParConfig,
    params: DiffusionParams,
    mode: DiffusionMode,
) -> ParOutcome {
    run_adaptive_traced(comm, cfg, params, mode, &mut Tracer::disabled())
}

/// [`run_adaptive`] with telemetry; every strategy switch is emitted as a
/// `"switch"` trace record.
pub fn run_adaptive_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    params: DiffusionParams,
    mode: DiffusionMode,
    tracer: &mut Tracer,
) -> ParOutcome {
    assert!(params.interval > 0, "interval must be positive");
    assert!(params.border_w > 0, "border width must be positive");
    let mut lb = AdaptiveLb::cut_arms(
        params.interval as u64,
        params.tau,
        params.border_w,
        axes_of(mode),
    );
    run_balanced_traced(comm, cfg, "adaptive", &mut lb, tracer)
}

/// The generic trait-driven rank loop: advance + exchange every step,
/// and whenever `balancer.wants(step)` (except the final step, matching
/// the historical cadence) gather the requested load arrays, call
/// `balancer.decide`, and apply the returned decision.
pub fn run_balanced_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    impl_name: &str,
    balancer: &mut dyn LoadBalancer,
    tracer: &mut Tracer,
) -> ParOutcome {
    let decomp = Decomp2d::uniform(cfg.setup.grid.ncells(), comm.size());
    let mut st = RankState::with_kernel(&cfg.setup, decomp, comm.rank(), cfg.kernel);
    let every = trace_interval(comm, tracer);
    tracer.emit_run_header(
        impl_name,
        comm.size(),
        cfg.setup.particles.len() as u64,
        cfg.steps as u64,
        &st.kernel_desc(),
        balancer.name(),
    );
    let mut sent_window = 0u64;
    let mut global_count = cfg.setup.particles.len() as u64;
    for s in 1..=cfg.steps {
        tracer.begin_step(s as u64);
        sent_window += st.step_traced(comm, tracer) as u64;
        if balancer.wants(s as u64) && s < cfg.steps {
            tracer.phase_start(Phase::Balance);
            sent_window += lb_round(comm, &mut st, s as u64, balancer, tracer) as u64;
            tracer.phase_end(Phase::Balance);
        }
        if every > 0 && (s as u64).is_multiple_of(every) {
            let msgs = st.take_message_counts();
            global_count = snapshot_loads(comm, tracer, st.local_count() as u64, sent_window, msgs);
            sent_window = 0;
        }
        tracer.end_step(global_count);
    }
    let out = st.finish_traced(comm, tracer);
    tracer.set_final_particles(out.total_count);
    out
}

/// One balance round: gather what the strategy needs (fixed order —
/// column histogram, then row counts — so collective traffic is
/// identical on every rank), decide, apply cut moves, and rehome border
/// residents. Returns the number of particles this rank sent.
fn lb_round(
    comm: &Communicator,
    st: &mut RankState,
    step: u64,
    balancer: &mut dyn LoadBalancer,
    tracer: &mut Tracer,
) -> usize {
    let needs = balancer.needs();
    let mut hist_scratch = Vec::new();
    let hist: Vec<u64> = if needs.col_hist {
        // One vector allreduce; each rank's contribution comes straight
        // from its own store (O(columns) when the binned store is fresh).
        let h = st.aggregate_column_histogram(comm, &mut hist_scratch);
        tracer.add(Counter::CollectiveBytes, h.len() as u64 * 8);
        h
    } else {
        Vec::new()
    };
    let mut row_counts = Vec::new();
    if needs.row_counts {
        st.aggregate_axis_counts_into(comm, false, &mut row_counts);
        tracer.add(Counter::CollectiveBytes, row_counts.len() as u64 * 8);
    }

    let decision = {
        let layout = Layout {
            ncells: st.decomp.ncells,
            ranks: comm.size(),
            xcuts: &st.decomp.xcuts,
            ycuts: &st.decomp.ycuts,
            vp_assignment: &[],
        };
        let input = BalanceInput {
            step,
            col_hist: &hist,
            row_counts: &row_counts,
            vp_counts: &[],
        };
        balancer.decide(&input, &layout)
    };

    if let Some(sw) = &decision.switched {
        tracer.record_switch(sw.from, sw.to, sw.imbalance);
    }
    let mut changed = false;
    for mv in &decision.cuts {
        let old = match mv.axis {
            'x' => st.decomp.xcuts.clone(),
            _ => st.decomp.ycuts.clone(),
        };
        tracer.record_cuts(mv.axis, &old, &mv.counts, &mv.new_cuts);
        if mv.new_cuts != old {
            tracer.add(
                Counter::BorderCells,
                handed_over_cells(&old, &mv.new_cuts, st.decomp.ncells),
            );
            match mv.axis {
                'x' => st.decomp.set_xcuts(mv.new_cuts.clone()),
                _ => st.decomp.set_ycuts(mv.new_cuts.clone()),
            }
            changed = true;
        }
    }
    if changed {
        debug_assert!(st.decomp.is_partition());
        // The functional analogue of receiving the migrated border
        // subgrid: rebuild this rank's stored mesh for its new bounds.
        st.rebuild_charges();
    }
    // Rehome particles under the new ownership map (border-cell residents
    // migrate to the adjacent ranks), through the rank's reused buffers.
    let (sent, _received) = st.rehome(comm);
    // Every surviving particle is now inside the new bounds, so a binned
    // store can re-anchor its column range to the moved cuts.
    st.rebind_store();
    sent
}

/// Mesh cells handed over by a cut movement: Σ |new − old| per interior
/// cut, times the `ncells` extent of the perpendicular axis. Exact and
/// replicated on every rank, because the decision itself is.
pub(crate) fn handed_over_cells(old: &[usize], new: &[usize], ncells: usize) -> u64 {
    old.iter()
        .zip(new)
        .map(|(&o, &n)| o.abs_diff(n) as u64)
        .sum::<u64>()
        * ncells as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::geometry::Grid;
    use pic_core::init::InitConfig;

    fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
        ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), n, dist)
                .with_m(1)
                .build()
                .unwrap(),
            steps,
        )
    }

    #[test]
    fn adaptive_run_verifies_and_switches_on_skew() {
        // Geometric r=0.9 concentrates ~59% of the particles in the first
        // processor column (imbalance ≈ 2.36 ≫ hi = 1.4), so once the
        // 3-round window fills the adaptive balancer must escalate off
        // the static arm.
        let c = cfg(2000, Distribution::Geometric { r: 0.9 }, 60);
        let params = DiffusionParams {
            interval: 5,
            tau: 0,
            border_w: 2,
        };
        let outcomes = run_threads(4, |comm| {
            let mut tracer = if comm.rank() == 0 {
                Tracer::in_memory(2)
            } else {
                Tracer::disabled()
            };
            let o = run_adaptive_traced(&comm, &c, params, DiffusionMode::XOnly, &mut tracer);
            (o, tracer.finish())
        });
        for (o, _) in &outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
            assert_eq!(o.total_count, 2000);
        }
        let report = outcomes[0].1.as_ref().expect("rank 0 traced");
        assert!(
            !report.switches.is_empty(),
            "sustained skew must trigger at least one strategy switch"
        );
        assert_eq!(report.switches[0].from, "static");
        assert_eq!(report.switches[0].to, "diffusion");
        assert_eq!(report.summary.balancer, "adaptive");
        assert_eq!(report.summary.switches, report.switches.len() as u64);
        assert!(report.ndjson.contains("\"type\":\"switch\""));
    }

    #[test]
    fn run_config_dispatches_all_specs() {
        let c = cfg(600, Distribution::Geometric { r: 0.85 }, 30);
        let params = DiffusionParams {
            interval: 5,
            tau: 0,
            border_w: 2,
        };
        for spec in [
            BalancerSpec::Static,
            BalancerSpec::Diffusion {
                params,
                mode: DiffusionMode::XOnly,
            },
            BalancerSpec::Adaptive {
                params,
                mode: DiffusionMode::XOnly,
            },
        ] {
            let cc = c.clone().with_balancer(spec);
            let outcomes = run_threads(2, |comm| run_config(&comm, &cc));
            for o in &outcomes {
                assert!(o.verify.passed(), "{spec:?}: {:?}", o.verify);
                assert_eq!(o.total_count, 600);
            }
        }
    }

    #[test]
    fn static_spec_matches_baseline_bitwise() {
        let c = cfg(500, Distribution::Geometric { r: 0.85 }, 24);
        let base = run_threads(4, |comm| crate::baseline::run_baseline(&comm, &c));
        let cc = c.clone().with_balancer(BalancerSpec::Static);
        let via_config = run_threads(4, |comm| run_config(&comm, &cc));
        for (a, b) in base.iter().zip(&via_config) {
            assert_eq!(a.local_count, b.local_count);
            assert_eq!(a.verify.id_sum, b.verify.id_sum);
            let mut pa = a.local_particles.clone();
            let mut pb = b.local_particles.clone();
            pa.sort_by_key(|p| p.id);
            pb.sort_by_key(|p| p.id);
            assert_eq!(pa, pb);
        }
    }
}
