//! Particle exchange between ranks.
//!
//! After each step (and after every re-decomposition), particles whose
//! containing cell left the local subdomain are routed to their new owner.
//! Destinations are usually the four Cartesian neighbors (particles move
//! `2k+1 ≪ strip width` cells per step), but the implementation handles
//! arbitrary hops — the paper allows "high particle speeds, in which case
//! load imbalances have a more (pseudo-)random nature" — via an
//! owner-directed personalized all-to-all.

use crate::decomp::Decomp2d;
use pic_comm::comm::Communicator;
use pic_comm::sparse::{
    alltoallv_finish_into, alltoallv_sparse_finish_into, alltoallv_sparse_start, alltoallv_start,
    AlltoallvHandle, SparsePlan,
};
use pic_core::bin::BinnedStore;
use pic_core::geometry::Grid;
use pic_core::particle::Particle;

/// Upper bound on recycled wire buffers held between steps (bounds the
/// capacity the free-list can pin on wildly asymmetric traffic).
const MAX_SPARE_BUFS: usize = 64;

/// How particle payloads are represented on the wire.
///
/// The transport is in-process, so serialization is a choice, not a
/// necessity. `Typed` (the default) moves the per-destination staging
/// buckets — `Vec<Particle>` — through the channel as-is: zero encode and
/// decode passes, zero per-particle copies, ownership transfer only.
/// `Bytes` is the original [`Particle::encode`] wire, kept as the
/// bit-exact oracle and as the representation a checkpoint or a real-MPI
/// backend would need. Both formats are bit-identical in outcome (the
/// equivalence suites pin this); only the exchange cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Serialize into `Vec<u8>` via [`Particle::encode`] / decode on
    /// arrival — the oracle lane.
    Bytes,
    /// Route owned `Vec<Particle>` buffers — the zero-copy fast lane.
    #[default]
    Typed,
}

impl WireFormat {
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Bytes => "bytes",
            WireFormat::Typed => "typed",
        }
    }
}

/// Reusable scratch for the exchange path: per-destination staging
/// buckets, the kept-particle buffer, and the wire-side scratch. Holding
/// one of these in per-rank state makes the steady-state exchange loop
/// allocation-free on the staging side — buckets are `clear()`ed, not
/// dropped, and wire buffers are *recycled*: every payload handed to
/// the transport surrenders its ownership (channel transfer, like an MPI
/// send buffer), but the buffers received from other ranks donate their
/// capacity back to the free-list afterwards, so steady symmetric
/// traffic circulates buffers instead of allocating them.
///
/// On the [`WireFormat::Typed`] lane the staging buckets themselves are
/// the wire payloads — `encode_wire` and the decode pass disappear, and
/// the typed free-list (`spare_t`) recycles arrival buckets into the next
/// step's staging slots.
#[derive(Debug, Default)]
pub struct ExchangeBuffers {
    /// Per-destination staging buckets. On the typed lane these go on the
    /// wire as-is (slots are emptied by the take-based all-to-all and
    /// refilled from `spare_t` next step).
    outgoing: Vec<Vec<Particle>>,
    kept: Vec<Particle>,
    /// Per-destination byte wire payloads (bytes lane only); slots are
    /// emptied by the take-based all-to-all and refilled from `spare`.
    wire: Vec<Vec<u8>>,
    /// Arrival payloads, bytes lane (outer vector reused across steps).
    inbox: Vec<Vec<u8>>,
    /// Recycled byte buffers feeding the next encode pass.
    spare: Vec<Vec<u8>>,
    /// Arrival payloads, typed lane (outer vector reused across steps).
    inbox_t: Vec<Vec<Particle>>,
    /// Recycled typed buckets feeding the next staging pass.
    spare_t: Vec<Vec<Particle>>,
    /// Neighbor topology for the sparse exchange; `None` routes every
    /// payload through the dense synchronous all-to-all (the oracle path).
    plan: Option<SparsePlan>,
    /// Wire representation of particle payloads.
    format: WireFormat,
    /// Payload messages put on the wire since the last counter take.
    msgs_sent: u64,
    /// Payload messages the sparse protocol elided since the last take.
    msgs_skipped: u64,
}

impl ExchangeBuffers {
    pub fn new() -> ExchangeBuffers {
        ExchangeBuffers::default()
    }

    /// Route subsequent exchanges through the sparse neighbor-aware
    /// protocol. `neighbors` must be symmetric across ranks (see
    /// [`SparsePlan`]); calling again replaces the topology while keeping
    /// the plan's recycled scratch, and must keep `size`/`my_rank` fixed.
    pub fn enable_sparse(
        &mut self,
        size: usize,
        my_rank: usize,
        neighbors: impl IntoIterator<Item = usize>,
    ) {
        match &mut self.plan {
            Some(p) => p.set_neighbors(neighbors),
            None => self.plan = Some(SparsePlan::new(size, my_rank, neighbors)),
        }
    }

    /// Is the sparse protocol active for these buffers?
    pub fn sparse_enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// Select the wire representation for subsequent exchanges (see
    /// [`WireFormat`]). Safe to change between steps; both formats are
    /// bit-identical in outcome.
    pub fn set_wire_format(&mut self, format: WireFormat) {
        self.format = format;
    }

    /// The active wire representation.
    pub fn wire_format(&self) -> WireFormat {
        self.format
    }

    /// Drain the accumulated `(sent, skipped)` wire-message counters —
    /// payload messages actually sent vs. elided by the sparse protocol
    /// since the previous take. Feeds the `msgs_sent` / `msgs_skipped`
    /// trace counters.
    pub fn take_message_counts(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.msgs_sent),
            std::mem::take(&mut self.msgs_skipped),
        )
    }

    /// Prepare the per-destination staging buckets for a new exchange:
    /// size the outer vector, clear every bucket, and — on the typed lane,
    /// where sends consume the buckets themselves — refill empty-capacity
    /// slots from the typed free-list.
    fn begin_staging(&mut self, nranks: usize) {
        self.outgoing.resize_with(nranks, Vec::new);
        self.outgoing.iter_mut().for_each(Vec::clear);
        if self.format == WireFormat::Typed {
            for slot in &mut self.outgoing {
                if slot.capacity() == 0 {
                    if let Some(mut recycled) = self.spare_t.pop() {
                        recycled.clear();
                        *slot = recycled;
                    }
                }
            }
        }
    }

    /// Put the staged buckets on the wire through the configured (sparse
    /// or dense) all-to-all and account the message counters. The bytes
    /// lane encodes first; the typed lane sends the buckets themselves.
    fn start_wire(&mut self, comm: &Communicator) -> AlltoallvHandle {
        let h = match self.format {
            WireFormat::Bytes => {
                self.encode_wire(comm.size());
                match &mut self.plan {
                    Some(plan) => alltoallv_sparse_start(comm, &mut self.wire, plan),
                    None => alltoallv_start(comm, &mut self.wire),
                }
            }
            WireFormat::Typed => match &mut self.plan {
                Some(plan) => alltoallv_sparse_start(comm, &mut self.outgoing, plan),
                None => alltoallv_start(comm, &mut self.outgoing),
            },
        };
        self.msgs_sent += h.messages_sent();
        self.msgs_skipped += h.messages_skipped();
        h
    }

    /// Complete an exchange started by [`ExchangeBuffers::start_wire`] and
    /// deliver every arrival (in source-rank order, self excluded) to
    /// `sink`, recycling the arrival buffers afterwards. Returns the
    /// particle count delivered. The bytes lane decodes; the typed lane
    /// drains the received buckets directly — no per-particle decode pass.
    fn finish_arrivals(
        &mut self,
        comm: &Communicator,
        handle: AlltoallvHandle,
        mut sink: impl FnMut(Particle),
    ) -> usize {
        let me = comm.rank();
        let mut received = 0usize;
        match self.format {
            WireFormat::Bytes => {
                match &mut self.plan {
                    Some(plan) => alltoallv_sparse_finish_into(comm, handle, plan, &mut self.inbox),
                    None => alltoallv_finish_into(comm, handle, &mut self.inbox),
                }
                for (src, buf) in self.inbox.iter().enumerate() {
                    if src == me || buf.is_empty() {
                        continue;
                    }
                    received +=
                        Particle::decode_each(buf, &mut sink).expect("corrupt particle payload");
                }
                for buf in self.inbox.drain(..) {
                    if buf.capacity() > 0 && self.spare.len() < MAX_SPARE_BUFS {
                        self.spare.push(buf);
                    }
                }
            }
            WireFormat::Typed => {
                match &mut self.plan {
                    Some(plan) => {
                        alltoallv_sparse_finish_into(comm, handle, plan, &mut self.inbox_t)
                    }
                    None => alltoallv_finish_into(comm, handle, &mut self.inbox_t),
                }
                for (src, bucket) in self.inbox_t.iter_mut().enumerate() {
                    if src == me {
                        continue;
                    }
                    received += bucket.len();
                    for p in bucket.drain(..) {
                        sink(p);
                    }
                }
                for bucket in self.inbox_t.drain(..) {
                    if bucket.capacity() > 0 && self.spare_t.len() < MAX_SPARE_BUFS {
                        self.spare_t.push(bucket);
                    }
                }
            }
        }
        received
    }

    /// Encode the staged `outgoing` buckets into per-destination byte wire
    /// payloads, drawing capacity from the recycled free-list (bytes lane).
    fn encode_wire(&mut self, nranks: usize) {
        self.wire.resize_with(nranks, Vec::new);
        for (dst, bucket) in self.outgoing.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let buf = &mut self.wire[dst];
            debug_assert!(buf.is_empty(), "wire slot {dst} not drained");
            if buf.capacity() == 0 {
                if let Some(mut recycled) = self.spare.pop() {
                    recycled.clear();
                    *buf = recycled;
                }
            }
            buf.reserve(bucket.len() * Particle::WIRE_SIZE);
            for p in bucket {
                p.encode(buf);
            }
        }
    }
}

/// Route every particle whose `owner(particle)` is not `my_rank` to that
/// owner (a communicator rank). Appends the arrivals to `particles`.
/// Returns `(sent, received)` particle counts.
///
/// This is the general routing primitive: the baseline/diffusion codes
/// derive ownership from the Cartesian decomposition; the AMPI runtime
/// derives it from the VP→core assignment table.
pub fn route_particles<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    particles: &mut Vec<Particle>,
) -> (usize, usize)
where
    F: Fn(&Particle) -> usize,
{
    let mut bufs = ExchangeBuffers::new();
    route_particles_with(comm, my_rank, owner, particles, &mut bufs)
}

/// [`route_particles`] with caller-owned scratch buffers (see
/// [`ExchangeBuffers`]). The hot path for per-step rehoming.
pub fn route_particles_with<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    particles: &mut Vec<Particle>,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize)
where
    F: Fn(&Particle) -> usize,
{
    debug_assert_eq!(comm.rank(), my_rank);
    bufs.begin_staging(comm.size());
    bufs.kept.clear();
    bufs.kept.reserve(particles.len());
    let mut sent = 0usize;
    for p in particles.drain(..) {
        let dst = owner(&p);
        debug_assert!(dst < comm.size(), "owner {dst} out of range");
        if dst == my_rank {
            bufs.kept.push(p);
        } else {
            sent += 1;
            bufs.outgoing[dst].push(p);
        }
    }
    std::mem::swap(particles, &mut bufs.kept);

    let handle = bufs.start_wire(comm);
    let received = bufs.finish_arrivals(comm, handle, |p| particles.push(p));
    (sent, received)
}

/// The binned-path exchange: drain every mis-homed particle straight out
/// of the rank's [`BinnedStore`] (stable in-place compaction — no AoS
/// round-trip), route it to `owner(col, row)`, and append arrivals to the
/// store's tail region, leaving the amortized rebin schedule untouched.
/// Returns `(sent, received)` particle counts.
pub fn route_binned_with<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    store: &mut BinnedStore,
    grid: &Grid,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize)
where
    F: Fn(usize, usize) -> usize,
{
    let inflight = route_binned_start(comm, my_rank, owner, |_| true, store, grid, bufs);
    let sent = inflight.sent;
    let received = route_binned_finish(comm, inflight, store, bufs);
    (sent, received)
}

/// An exchange whose sends are posted but whose receives have not been
/// completed — the split between [`route_binned_start`] and
/// [`route_binned_finish`]. Dropping it without finishing strands the
/// matching receives on every peer.
#[must_use = "a started exchange must be completed with route_binned_finish"]
pub struct ExchangeInFlight {
    handle: AlltoallvHandle,
    /// Particles this rank handed to other ranks at the start.
    pub sent: usize,
}

impl ExchangeInFlight {
    /// Did the sparse protocol fall back to the dense pattern because some
    /// rank had a payload for a non-neighbor?
    pub fn escaped(&self) -> bool {
        self.handle.escaped()
    }
}

/// First half of the split-phase binned exchange: drain the leavers of the
/// bins whose **global column** satisfies `active` (plus the tail region,
/// which is always tested), stage them per destination, and post all sends.
/// The overlapped rank step passes the border-column predicate here, then
/// advances the interior while the messages are in flight, and calls
/// [`route_binned_finish`] afterwards. Passing `|_| true` drains everything
/// — the synchronous pattern.
///
/// The caller guarantees inactive columns hold no leavers; for a store
/// swept with per-step column stride `s`, that is exactly the bins within
/// [`BinnedStore::border_width`]`(s)` of a subdomain edge.
pub fn route_binned_start<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    active: impl FnMut(usize) -> bool,
    store: &mut BinnedStore,
    grid: &Grid,
    bufs: &mut ExchangeBuffers,
) -> ExchangeInFlight
where
    F: Fn(usize, usize) -> usize,
{
    debug_assert_eq!(comm.rank(), my_rank);
    bufs.begin_staging(comm.size());
    let outgoing = &mut bufs.outgoing;
    let nranks = comm.size();
    let sent = store.drain_leavers_cols_into(
        grid,
        active,
        |c, r| owner(c, r) == my_rank,
        |p| {
            let (c, r) = grid.cell_of_point(p.x, p.y);
            let dst = owner(c, r);
            debug_assert!(dst < nranks && dst != my_rank, "bad destination {dst}");
            outgoing[dst].push(p);
        },
    );
    let handle = bufs.start_wire(comm);
    ExchangeInFlight { handle, sent }
}

/// Second half of the split-phase binned exchange: complete the receives
/// and append every arrival to the store's tail region (in source-rank
/// order, so the result is identical to the synchronous exchange). Returns
/// the number of particles received.
pub fn route_binned_finish(
    comm: &Communicator,
    inflight: ExchangeInFlight,
    store: &mut BinnedStore,
    bufs: &mut ExchangeBuffers,
) -> usize {
    bufs.finish_arrivals(comm, inflight.handle, |p| store.push_tail(p))
}

/// [`route_binned_with`] under the Cartesian decomposition — the binned
/// analogue of [`rehome_particles_with`].
pub fn rehome_binned_with(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    my_rank: usize,
    store: &mut BinnedStore,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize) {
    debug_assert_eq!(comm.size(), decomp.ranks());
    route_binned_with(
        comm,
        my_rank,
        |c, r| decomp.owner_of_cell(c, r),
        store,
        grid,
        bufs,
    )
}

/// Route every particle not owned by `my_rank` under the Cartesian
/// decomposition to its owner. Returns `(sent, received)` counts.
pub fn rehome_particles(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    my_rank: usize,
    particles: &mut Vec<Particle>,
) -> (usize, usize) {
    let mut bufs = ExchangeBuffers::new();
    rehome_particles_with(comm, decomp, grid, my_rank, particles, &mut bufs)
}

/// [`rehome_particles`] with caller-owned scratch buffers.
pub fn rehome_particles_with(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    my_rank: usize,
    particles: &mut Vec<Particle>,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize) {
    debug_assert_eq!(comm.size(), decomp.ranks());
    route_particles_with(
        comm,
        my_rank,
        |p| {
            let (col, row) = grid.cell_of_point(p.x, p.y);
            decomp.owner_of_cell(col, row)
        },
        particles,
        bufs,
    )
}

/// Partition a full population down to the particles owned by `rank`.
pub fn local_slice(decomp: &Decomp2d, grid: &Grid, rank: usize, all: &[Particle]) -> Vec<Particle> {
    all.iter()
        .filter(|p| {
            let (col, row) = grid.cell_of_point(p.x, p.y);
            decomp.owner_of_cell(col, row) == rank
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::init::InitConfig;

    fn setup(n: u64) -> (Grid, Vec<Particle>) {
        let grid = Grid::new(16).unwrap();
        let s = InitConfig::new(grid, n, Distribution::Uniform)
            .build()
            .unwrap();
        (grid, s.particles)
    }

    #[test]
    fn local_slices_partition_population() {
        let (grid, all) = setup(333);
        let decomp = Decomp2d::uniform(16, 4);
        let mut seen = 0usize;
        for r in 0..4 {
            seen += local_slice(&decomp, &grid, r, &all).len();
        }
        assert_eq!(seen, 333);
    }

    #[test]
    fn rehome_moves_everything_to_owners() {
        let (grid, all) = setup(200);
        let decomp = Decomp2d::uniform(16, 4);
        let totals = run_threads(4, |comm| {
            let rank = comm.rank();
            // Deliberately mis-assign: every rank starts with a strided
            // subset regardless of ownership.
            let mut mine: Vec<Particle> = all
                .iter()
                .filter(|p| (p.id as usize) % 4 == rank)
                .copied()
                .collect();
            let d = decomp.clone();
            rehome_particles(&comm, &d, &grid, rank, &mut mine);
            // Now everything local must be owned.
            for p in &mine {
                let (c, r) = grid.cell_of_point(p.x, p.y);
                assert_eq!(d.owner_of_cell(c, r), rank);
            }
            (mine.len(), mine.iter().map(|p| p.id as u128).sum::<u128>())
        });
        let total: usize = totals.iter().map(|t| t.0).sum();
        let idsum: u128 = totals.iter().map(|t| t.1).sum();
        assert_eq!(total, 200);
        assert_eq!(idsum, 200u128 * 201 / 2, "no particle lost or duplicated");
    }

    #[test]
    fn sparse_escape_rehomes_strided_misassignment() {
        // Strided mis-assignment scatters particles across *non-adjacent*
        // ranks of a 4-column world (neighbor stencil = {left, right}), so
        // the very first sparse exchange must raise the escape flag and
        // fall back to the dense pattern — and still deliver everything.
        let (grid, all) = setup(200);
        let decomp = Decomp2d::columns(16, 4);
        let totals = run_threads(4, |comm| {
            let rank = comm.rank();
            let mut mine: Vec<Particle> = all
                .iter()
                .filter(|p| (p.id as usize) % 4 == rank)
                .copied()
                .collect();
            let d = decomp.clone();
            let mut bufs = ExchangeBuffers::new();
            bufs.enable_sparse(4, rank, d.neighbors_of(rank));
            rehome_particles_with(&comm, &d, &grid, rank, &mut mine, &mut bufs);
            for p in &mine {
                let (c, r) = grid.cell_of_point(p.x, p.y);
                assert_eq!(d.owner_of_cell(c, r), rank);
            }
            // Once settled, a second pass stays on the sparse path and
            // sends no payloads at all.
            bufs.take_message_counts();
            rehome_particles_with(&comm, &d, &grid, rank, &mut mine, &mut bufs);
            let (sent_msgs, skipped) = bufs.take_message_counts();
            assert_eq!(sent_msgs, 0, "settled world must skip every payload");
            assert_eq!(skipped, 4);
            (mine.len(), mine.iter().map(|p| p.id as u128).sum::<u128>())
        });
        let total: usize = totals.iter().map(|t| t.0).sum();
        let idsum: u128 = totals.iter().map(|t| t.1).sum();
        assert_eq!(total, 200);
        assert_eq!(idsum, 200u128 * 201 / 2, "no particle lost or duplicated");
    }

    #[test]
    fn sparse_binned_route_matches_dense_oracle() {
        // The sparse neighbor path must be bit-identical to the dense
        // synchronous exchange over a multi-step binned run — and must
        // actually elide messages while doing so.
        use pic_core::charge::SimConstants;
        let (grid, all) = setup(400);
        let decomp = Decomp2d::columns(16, 4);
        let consts = SimConstants::CANONICAL;
        let steps = 12;
        let run = |sparse: bool| {
            run_threads(4, |comm| {
                let rank = comm.rank();
                let mine = local_slice(&decomp, &grid, rank, &all);
                let ((x0, x1), _) = decomp.bounds(rank);
                let mut store = BinnedStore::new_subdomain(&mine, &grid, 3, x0, x1);
                let mut bufs = ExchangeBuffers::new();
                if sparse {
                    bufs.enable_sparse(4, rank, decomp.neighbors_of(rank));
                }
                for _ in 0..steps {
                    store.sweep_local(&grid, &consts, None);
                    rehome_binned_with(&comm, &decomp, &grid, rank, &mut store, &mut bufs);
                    if store.rebin_due() {
                        store.rebin(&grid);
                    }
                }
                let (sent_msgs, skipped) = bufs.take_message_counts();
                (store.to_particles(), sent_msgs, skipped)
            })
        };
        let dense = run(false);
        let sparse = run(true);
        let flat = |rs: &[(Vec<Particle>, u64, u64)]| {
            let mut v: Vec<Particle> = rs.iter().flat_map(|r| r.0.clone()).collect();
            v.sort_unstable_by_key(|p| p.id);
            v
        };
        assert_eq!(flat(&dense), flat(&sparse), "sparse diverged from dense");
        let dense_msgs: u64 = dense.iter().map(|r| r.1).sum();
        let sparse_msgs: u64 = sparse.iter().map(|r| r.1).sum();
        let skipped: u64 = sparse.iter().map(|r| r.2).sum();
        assert_eq!(dense_msgs, 4 * 4 * steps, "dense sends P per rank per step");
        assert!(sparse_msgs < dense_msgs, "sparse must elide messages");
        assert_eq!(sparse_msgs + skipped, dense_msgs, "counters must partition");
    }

    #[test]
    fn split_phase_start_finish_matches_synchronous() {
        // Split the exchange around an (empty) compute window and restrict
        // the drain to border columns — the tail and border bins still
        // deliver every leaver, matching the synchronous full drain.
        use pic_core::charge::SimConstants;
        let (grid, all) = setup(300);
        let decomp = Decomp2d::columns(16, 4);
        let consts = SimConstants::CANONICAL;
        let steps = 10;
        let stride = 1; // k = 0 population
        let run = |split: bool| {
            run_threads(4, |comm| {
                let rank = comm.rank();
                let mine = local_slice(&decomp, &grid, rank, &all);
                let ((x0, x1), _) = decomp.bounds(rank);
                let mut store = BinnedStore::new_subdomain(&mine, &grid, 3, x0, x1);
                let mut bufs = ExchangeBuffers::new();
                bufs.enable_sparse(4, rank, decomp.neighbors_of(rank));
                for _ in 0..steps {
                    if split {
                        store.prepare_sweep(&grid);
                        let w = store.border_width(stride);
                        let b_lo = (x0 + w).min(x1);
                        let b_hi = x1.saturating_sub(w).max(b_lo);
                        store.sweep_cols(&grid, &consts, None, x0..b_lo);
                        store.sweep_cols(&grid, &consts, None, b_hi..x1);
                        store.sweep_tail_pass(&grid, &consts, None);
                        let inflight = route_binned_start(
                            &comm,
                            rank,
                            |c, r| decomp.owner_of_cell(c, r),
                            |c| !(b_lo..b_hi).contains(&c),
                            &mut store,
                            &grid,
                            &mut bufs,
                        );
                        store.sweep_cols(&grid, &consts, None, b_lo..b_hi);
                        route_binned_finish(&comm, inflight, &mut store, &mut bufs);
                        store.end_sweep();
                    } else {
                        store.sweep_local(&grid, &consts, None);
                        rehome_binned_with(&comm, &decomp, &grid, rank, &mut store, &mut bufs);
                    }
                    if store.rebin_due() {
                        store.rebin(&grid);
                    }
                }
                store.to_particles()
            })
        };
        let sync = run(false);
        let split = run(true);
        let flat = |rs: &[Vec<Particle>]| {
            let mut v: Vec<Particle> = rs.concat();
            v.sort_unstable_by_key(|p| p.id);
            v
        };
        assert_eq!(flat(&sync), flat(&split), "split-phase diverged");
    }

    #[test]
    fn reused_buffers_match_fresh_allocation_routing() {
        // Route the same mis-assigned population twice per rank through one
        // ExchangeBuffers — the second pass (warm buffers) must behave
        // exactly like the allocating wrapper.
        let (grid, all) = setup(240);
        let decomp = Decomp2d::uniform(16, 4);
        let totals = run_threads(4, |comm| {
            let rank = comm.rank();
            let mut bufs = ExchangeBuffers::new();
            let mut fresh: Vec<Particle> = all
                .iter()
                .filter(|p| (p.id as usize) % 4 == rank)
                .copied()
                .collect();
            let mut warm = fresh.clone();
            rehome_particles(&comm, &decomp, &grid, rank, &mut fresh);
            // First pass warms the buckets, second pass reuses them.
            rehome_particles_with(&comm, &decomp, &grid, rank, &mut warm, &mut bufs);
            let (sent, received) =
                rehome_particles_with(&comm, &decomp, &grid, rank, &mut warm, &mut bufs);
            assert_eq!(sent, 0, "second pass must already be settled");
            assert_eq!(received, 0);
            let mut a: Vec<u64> = fresh.iter().map(|p| p.id).collect();
            let mut b: Vec<u64> = warm.iter().map(|p| p.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "warm-buffer routing must match fresh routing");
            warm.len()
        });
        assert_eq!(totals.iter().sum::<usize>(), 240);
    }

    #[test]
    fn binned_route_rehomes_and_matches_serial_sweep() {
        use pic_core::charge::SimConstants;
        use pic_core::soa::ParticleBatch;
        let (grid, all) = setup(400);
        let decomp = Decomp2d::columns(16, 4);
        let consts = SimConstants::CANONICAL;
        let steps = 12;
        let mut reference = ParticleBatch::from_particles(&all);
        for _ in 0..steps {
            reference.advance_all(&grid, &consts);
        }
        let mut want = reference.to_particles();
        want.sort_unstable_by_key(|p| p.id);
        let per_rank = run_threads(4, |comm| {
            let rank = comm.rank();
            let mine = local_slice(&decomp, &grid, rank, &all);
            let ((x0, x1), _) = decomp.bounds(rank);
            let mut store = BinnedStore::new_subdomain(&mine, &grid, 3, x0, x1);
            let mut bufs = ExchangeBuffers::new();
            for _ in 0..steps {
                store.sweep_local(&grid, &consts, None);
                rehome_binned_with(&comm, &decomp, &grid, rank, &mut store, &mut bufs);
                if store.rebin_due() {
                    store.rebin(&grid);
                }
            }
            let local = store.to_particles();
            for p in &local {
                let (c, r) = grid.cell_of_point(p.x, p.y);
                assert_eq!(decomp.owner_of_cell(c, r), rank, "mis-homed survivor");
            }
            local
        });
        let mut got: Vec<Particle> = per_rank.into_iter().flatten().collect();
        got.sort_unstable_by_key(|p| p.id);
        assert_eq!(want, got, "binned rank loop diverged from serial sweep");
    }

    #[test]
    fn rehome_noop_when_all_owned() {
        let (grid, all) = setup(100);
        let decomp = Decomp2d::uniform(16, 2);
        let counts = run_threads(2, |comm| {
            let rank = comm.rank();
            let mut mine = local_slice(&decomp, &grid, rank, &all);
            let before = mine.len();
            let (sent, received) = rehome_particles(&comm, &decomp, &grid, rank, &mut mine);
            assert_eq!(sent, 0);
            assert_eq!(received, 0);
            assert_eq!(mine.len(), before);
            before
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
