//! Particle exchange between ranks.
//!
//! After each step (and after every re-decomposition), particles whose
//! containing cell left the local subdomain are routed to their new owner.
//! Destinations are usually the four Cartesian neighbors (particles move
//! `2k+1 ≪ strip width` cells per step), but the implementation handles
//! arbitrary hops — the paper allows "high particle speeds, in which case
//! load imbalances have a more (pseudo-)random nature" — via an
//! owner-directed personalized all-to-all.

use crate::decomp::Decomp2d;
use pic_comm::collective::alltoallv;
use pic_comm::comm::Communicator;
use pic_core::geometry::Grid;
use pic_core::particle::Particle;

/// Reusable scratch for [`route_particles_with`]: the per-destination
/// staging buckets and the kept-particle buffer. Holding one of these in
/// per-rank state makes the steady-state exchange loop allocation-free on
/// the staging side — buckets are `clear()`ed, not dropped, so their
/// capacity survives across steps. (The wire payloads handed to
/// [`alltoallv`] still allocate: the threaded-MPI substrate transfers
/// message ownership through channels, exactly like an MPI send buffer
/// handed to the transport.)
#[derive(Debug, Default)]
pub struct ExchangeBuffers {
    outgoing: Vec<Vec<Particle>>,
    kept: Vec<Particle>,
}

impl ExchangeBuffers {
    pub fn new() -> ExchangeBuffers {
        ExchangeBuffers::default()
    }
}

/// Route every particle whose `owner(particle)` is not `my_rank` to that
/// owner (a communicator rank). Appends the arrivals to `particles`.
/// Returns `(sent, received)` particle counts.
///
/// This is the general routing primitive: the baseline/diffusion codes
/// derive ownership from the Cartesian decomposition; the AMPI runtime
/// derives it from the VP→core assignment table.
pub fn route_particles<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    particles: &mut Vec<Particle>,
) -> (usize, usize)
where
    F: Fn(&Particle) -> usize,
{
    let mut bufs = ExchangeBuffers::new();
    route_particles_with(comm, my_rank, owner, particles, &mut bufs)
}

/// [`route_particles`] with caller-owned scratch buffers (see
/// [`ExchangeBuffers`]). The hot path for per-step rehoming.
pub fn route_particles_with<F>(
    comm: &Communicator,
    my_rank: usize,
    owner: F,
    particles: &mut Vec<Particle>,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize)
where
    F: Fn(&Particle) -> usize,
{
    debug_assert_eq!(comm.rank(), my_rank);
    bufs.outgoing.resize_with(comm.size(), Vec::new);
    bufs.outgoing.iter_mut().for_each(Vec::clear);
    bufs.kept.clear();
    bufs.kept.reserve(particles.len());
    let mut sent = 0usize;
    for p in particles.drain(..) {
        let dst = owner(&p);
        debug_assert!(dst < comm.size(), "owner {dst} out of range");
        if dst == my_rank {
            bufs.kept.push(p);
        } else {
            sent += 1;
            bufs.outgoing[dst].push(p);
        }
    }
    std::mem::swap(particles, &mut bufs.kept);

    // Wire payloads are moved into the transport (channel ownership
    // transfer), so they are built fresh per call by design.
    let payloads: Vec<Vec<u8>> = bufs
        .outgoing
        .iter()
        .map(|v| Particle::encode_all(v))
        .collect();
    let incoming = alltoallv(comm, payloads);
    let mut received = 0usize;
    for (src, buf) in incoming.into_iter().enumerate() {
        if src == my_rank || buf.is_empty() {
            continue;
        }
        let arrivals = Particle::decode_all(&buf).expect("corrupt particle payload");
        received += arrivals.len();
        particles.extend(arrivals);
    }
    (sent, received)
}

/// Route every particle not owned by `my_rank` under the Cartesian
/// decomposition to its owner. Returns `(sent, received)` counts.
pub fn rehome_particles(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    my_rank: usize,
    particles: &mut Vec<Particle>,
) -> (usize, usize) {
    let mut bufs = ExchangeBuffers::new();
    rehome_particles_with(comm, decomp, grid, my_rank, particles, &mut bufs)
}

/// [`rehome_particles`] with caller-owned scratch buffers.
pub fn rehome_particles_with(
    comm: &Communicator,
    decomp: &Decomp2d,
    grid: &Grid,
    my_rank: usize,
    particles: &mut Vec<Particle>,
    bufs: &mut ExchangeBuffers,
) -> (usize, usize) {
    debug_assert_eq!(comm.size(), decomp.ranks());
    route_particles_with(
        comm,
        my_rank,
        |p| {
            let (col, row) = grid.cell_of_point(p.x, p.y);
            decomp.owner_of_cell(col, row)
        },
        particles,
        bufs,
    )
}

/// Partition a full population down to the particles owned by `rank`.
pub fn local_slice(decomp: &Decomp2d, grid: &Grid, rank: usize, all: &[Particle]) -> Vec<Particle> {
    all.iter()
        .filter(|p| {
            let (col, row) = grid.cell_of_point(p.x, p.y);
            decomp.owner_of_cell(col, row) == rank
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::init::InitConfig;

    fn setup(n: u64) -> (Grid, Vec<Particle>) {
        let grid = Grid::new(16).unwrap();
        let s = InitConfig::new(grid, n, Distribution::Uniform)
            .build()
            .unwrap();
        (grid, s.particles)
    }

    #[test]
    fn local_slices_partition_population() {
        let (grid, all) = setup(333);
        let decomp = Decomp2d::uniform(16, 4);
        let mut seen = 0usize;
        for r in 0..4 {
            seen += local_slice(&decomp, &grid, r, &all).len();
        }
        assert_eq!(seen, 333);
    }

    #[test]
    fn rehome_moves_everything_to_owners() {
        let (grid, all) = setup(200);
        let decomp = Decomp2d::uniform(16, 4);
        let totals = run_threads(4, |comm| {
            let rank = comm.rank();
            // Deliberately mis-assign: every rank starts with a strided
            // subset regardless of ownership.
            let mut mine: Vec<Particle> = all
                .iter()
                .filter(|p| (p.id as usize) % 4 == rank)
                .copied()
                .collect();
            let d = decomp.clone();
            rehome_particles(&comm, &d, &grid, rank, &mut mine);
            // Now everything local must be owned.
            for p in &mine {
                let (c, r) = grid.cell_of_point(p.x, p.y);
                assert_eq!(d.owner_of_cell(c, r), rank);
            }
            (mine.len(), mine.iter().map(|p| p.id as u128).sum::<u128>())
        });
        let total: usize = totals.iter().map(|t| t.0).sum();
        let idsum: u128 = totals.iter().map(|t| t.1).sum();
        assert_eq!(total, 200);
        assert_eq!(idsum, 200u128 * 201 / 2, "no particle lost or duplicated");
    }

    #[test]
    fn reused_buffers_match_fresh_allocation_routing() {
        // Route the same mis-assigned population twice per rank through one
        // ExchangeBuffers — the second pass (warm buffers) must behave
        // exactly like the allocating wrapper.
        let (grid, all) = setup(240);
        let decomp = Decomp2d::uniform(16, 4);
        let totals = run_threads(4, |comm| {
            let rank = comm.rank();
            let mut bufs = ExchangeBuffers::new();
            let mut fresh: Vec<Particle> = all
                .iter()
                .filter(|p| (p.id as usize) % 4 == rank)
                .copied()
                .collect();
            let mut warm = fresh.clone();
            rehome_particles(&comm, &decomp, &grid, rank, &mut fresh);
            // First pass warms the buckets, second pass reuses them.
            rehome_particles_with(&comm, &decomp, &grid, rank, &mut warm, &mut bufs);
            let (sent, received) =
                rehome_particles_with(&comm, &decomp, &grid, rank, &mut warm, &mut bufs);
            assert_eq!(sent, 0, "second pass must already be settled");
            assert_eq!(received, 0);
            let mut a: Vec<u64> = fresh.iter().map(|p| p.id).collect();
            let mut b: Vec<u64> = warm.iter().map(|p| p.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "warm-buffer routing must match fresh routing");
            warm.len()
        });
        assert_eq!(totals.iter().sum::<usize>(), 240);
    }

    #[test]
    fn rehome_noop_when_all_owned() {
        let (grid, all) = setup(100);
        let decomp = Decomp2d::uniform(16, 2);
        let counts = run_threads(2, |comm| {
            let rank = comm.rank();
            let mut mine = local_slice(&decomp, &grid, rank, &all);
            let before = mine.len();
            let (sent, received) = rehome_particles(&comm, &decomp, &grid, rank, &mut mine);
            assert_eq!(sent, 0);
            assert_eq!(received, 0);
            assert_eq!(mine.len(), before);
            before
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
