//! 2D Cartesian domain decomposition with movable x-cuts.
//!
//! The mesh is split by `px + 1` x-cuts and `py + 1` y-cuts into `px × py`
//! rectangular blocks, one per rank. The baseline keeps all cuts static;
//! the diffusion balancer moves the x-cuts (paper §IV-B chooses the
//! "2D scheme with load balancing restricted to the x-direction", which
//! preserves the Cartesian-product structure).
//!
//! Rank numbering: rank = `cy · px + cx` — processor columns are
//! contiguous in `cx`, so a processor column is `{cx, cx + px, ...}`.

/// Factor `p` into `(px, py)` with `px ≥ py` and the pair as close to
/// square as possible (minimizing `px − py`), mirroring the reference
/// code's `MPI_Dims_create`-style choice.
pub fn factor_2d(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1);
    let mut d = 1usize;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = (p / d, d);
        }
        d += 1;
    }
    best
}

/// A Cartesian decomposition of an `ncells × ncells` mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomp2d {
    pub ncells: usize,
    pub px: usize,
    pub py: usize,
    /// x-cuts: strictly increasing, `xcuts[0] = 0`, `xcuts[px] = ncells`.
    pub xcuts: Vec<usize>,
    /// y-cuts, same contract.
    pub ycuts: Vec<usize>,
}

fn even_cuts(ncells: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|i| i * ncells / parts).collect()
}

impl Decomp2d {
    /// Uniform decomposition over `p` ranks (near-square grid).
    pub fn uniform(ncells: usize, p: usize) -> Decomp2d {
        let (px, py) = factor_2d(p);
        Self::uniform_grid(ncells, px, py)
    }

    /// 1D block-column decomposition (`p × 1`): every rank owns a full-
    /// height strip. The decomposition the paper's §III-E1 analysis (eqs.
    /// 7–8) assumes.
    pub fn columns(ncells: usize, p: usize) -> Decomp2d {
        Self::uniform_grid(ncells, p, 1)
    }

    /// 1D block-row decomposition (`1 × p`). §III-E1: switching to this to
    /// dodge a column skew "can easily be defeated by rotating the
    /// particle distribution over 90°".
    pub fn rows(ncells: usize, p: usize) -> Decomp2d {
        Self::uniform_grid(ncells, 1, p)
    }

    /// Uniform decomposition over an explicit `px × py` rank grid.
    pub fn uniform_grid(ncells: usize, px: usize, py: usize) -> Decomp2d {
        assert!(px >= 1 && py >= 1);
        assert!(
            px <= ncells && py <= ncells,
            "more processor columns/rows than cells"
        );
        Decomp2d {
            ncells,
            px,
            py,
            xcuts: even_cuts(ncells, px),
            ycuts: even_cuts(ncells, py),
        }
    }

    /// Total ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// Rank of grid coordinates `(cx, cy)`.
    #[inline]
    pub fn rank_of(&self, cx: usize, cy: usize) -> usize {
        debug_assert!(cx < self.px && cy < self.py);
        cy * self.px + cx
    }

    /// Grid coordinates of a rank.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.ranks());
        (rank % self.px, rank / self.px)
    }

    /// Column range `[lo, hi)` owned by processor column `cx`.
    #[inline]
    pub fn col_range(&self, cx: usize) -> (usize, usize) {
        (self.xcuts[cx], self.xcuts[cx + 1])
    }

    /// Row range `[lo, hi)` owned by processor row `cy`.
    #[inline]
    pub fn row_range(&self, cy: usize) -> (usize, usize) {
        (self.ycuts[cy], self.ycuts[cy + 1])
    }

    /// Cell-rectangle owned by a rank: `((x0, x1), (y0, y1))`.
    pub fn bounds(&self, rank: usize) -> ((usize, usize), (usize, usize)) {
        let (cx, cy) = self.coords_of(rank);
        (self.col_range(cx), self.row_range(cy))
    }

    /// Number of cells owned by a rank.
    pub fn cell_count(&self, rank: usize) -> usize {
        let ((x0, x1), (y0, y1)) = self.bounds(rank);
        (x1 - x0) * (y1 - y0)
    }

    /// Processor column owning mesh column `col`.
    #[inline]
    pub fn pcol_of(&self, col: usize) -> usize {
        debug_assert!(col < self.ncells);
        // partition_point: first cut greater than col, minus one.
        self.xcuts.partition_point(|&c| c <= col) - 1
    }

    /// Processor row owning mesh row `row`.
    #[inline]
    pub fn prow_of(&self, row: usize) -> usize {
        debug_assert!(row < self.ncells);
        self.ycuts.partition_point(|&c| c <= row) - 1
    }

    /// Rank owning cell `(col, row)`.
    #[inline]
    pub fn owner_of_cell(&self, col: usize, row: usize) -> usize {
        self.rank_of(self.pcol_of(col), self.prow_of(row))
    }

    /// Whether a rank owns cell `(col, row)`.
    #[inline]
    pub fn owns(&self, rank: usize, col: usize, row: usize) -> bool {
        let ((x0, x1), (y0, y1)) = self.bounds(rank);
        col >= x0 && col < x1 && row >= y0 && row < y1
    }

    /// Replace the x-cuts (diffusion balancing). The new cuts must keep
    /// every processor column at least one cell wide.
    pub fn set_xcuts(&mut self, xcuts: Vec<usize>) {
        assert_eq!(xcuts.len(), self.px + 1, "cut vector length");
        assert_eq!(xcuts[0], 0);
        assert_eq!(xcuts[self.px], self.ncells);
        for w in xcuts.windows(2) {
            assert!(w[0] < w[1], "cuts must stay strictly increasing: {xcuts:?}");
        }
        self.xcuts = xcuts;
    }

    /// Replace the y-cuts (second phase of the two-phase diffusion
    /// balancer). Same contract as [`Decomp2d::set_xcuts`].
    pub fn set_ycuts(&mut self, ycuts: Vec<usize>) {
        assert_eq!(ycuts.len(), self.py + 1, "cut vector length");
        assert_eq!(ycuts[0], 0);
        assert_eq!(ycuts[self.py], self.ncells);
        for w in ycuts.windows(2) {
            assert!(w[0] < w[1], "cuts must stay strictly increasing: {ycuts:?}");
        }
        self.ycuts = ycuts;
    }

    /// Ranks adjacent to `rank` in the processor grid: the Cartesian
    /// 8-stencil (`cx ± 1`, `cy ± 1`) with periodic wrap (the mesh is a
    /// torus, so particles leaving column `0` arrive in column
    /// `ncells − 1`). Self is excluded and wrap duplicates collapse, so on
    /// small grids (`px ≤ 2`) the set simply shrinks. The relation is
    /// symmetric by construction — the property
    /// [`pic_comm::SparsePlan`] requires.
    ///
    /// Note the set depends only on `(px, py)`, never on the cut
    /// positions: moving cuts re-shapes subdomains but not which ranks
    /// border each other. A particle can still out-run the stencil when a
    /// cut squeezes a processor column thinner than its per-step stride —
    /// the sparse exchange's escape flag covers exactly that case.
    pub fn neighbors_of(&self, rank: usize) -> Vec<usize> {
        let (cx, cy) = self.coords_of(rank);
        let mut out = Vec::with_capacity(8);
        for dy in [self.py - 1, 0, 1] {
            for dx in [self.px - 1, 0, 1] {
                let n = self.rank_of((cx + dx) % self.px, (cy + dy) % self.py);
                if n != rank && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Verify the decomposition partitions the grid (used by tests and
    /// debug assertions).
    pub fn is_partition(&self) -> bool {
        self.xcuts[0] == 0
            && *self.xcuts.last().unwrap() == self.ncells
            && self.xcuts.windows(2).all(|w| w[0] < w[1])
            && self.ycuts[0] == 0
            && *self.ycuts.last().unwrap() == self.ncells
            && self.ycuts.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_near_square() {
        assert_eq!(factor_2d(1), (1, 1));
        assert_eq!(factor_2d(2), (2, 1));
        assert_eq!(factor_2d(4), (2, 2));
        assert_eq!(factor_2d(6), (3, 2));
        assert_eq!(factor_2d(12), (4, 3));
        assert_eq!(factor_2d(24), (6, 4));
        assert_eq!(factor_2d(7), (7, 1));
        assert_eq!(factor_2d(192), (16, 12));
        assert_eq!(factor_2d(384), (24, 16));
        assert_eq!(factor_2d(3072), (64, 48));
    }

    #[test]
    fn uniform_partitions_whole_grid() {
        let d = Decomp2d::uniform(100, 6);
        assert!(d.is_partition());
        assert_eq!(d.ranks(), 6);
        let total: usize = (0..6).map(|r| d.cell_count(r)).sum();
        assert_eq!(total, 100 * 100);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomp2d::uniform_grid(64, 4, 3);
        for r in 0..12 {
            let (cx, cy) = d.coords_of(r);
            assert_eq!(d.rank_of(cx, cy), r);
        }
    }

    #[test]
    fn owner_lookup_matches_bounds() {
        let d = Decomp2d::uniform_grid(60, 5, 3);
        for col in 0..60 {
            for row in [0usize, 19, 20, 40, 59] {
                let owner = d.owner_of_cell(col, row);
                assert!(d.owns(owner, col, row), "cell ({col},{row}) owner {owner}");
            }
        }
    }

    #[test]
    fn uneven_cuts_owner_lookup() {
        let mut d = Decomp2d::uniform_grid(16, 4, 1);
        d.set_xcuts(vec![0, 2, 3, 10, 16]);
        assert_eq!(d.pcol_of(0), 0);
        assert_eq!(d.pcol_of(1), 0);
        assert_eq!(d.pcol_of(2), 1);
        assert_eq!(d.pcol_of(3), 2);
        assert_eq!(d.pcol_of(9), 2);
        assert_eq!(d.pcol_of(10), 3);
        assert_eq!(d.pcol_of(15), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn zero_width_column_rejected() {
        let mut d = Decomp2d::uniform_grid(16, 4, 1);
        d.set_xcuts(vec![0, 4, 4, 10, 16]);
    }

    #[test]
    fn one_dimensional_decompositions() {
        let cols = Decomp2d::columns(64, 8);
        assert_eq!((cols.px, cols.py), (8, 1));
        assert!(cols.is_partition());
        let rows = Decomp2d::rows(64, 8);
        assert_eq!((rows.px, rows.py), (1, 8));
        assert!(rows.is_partition());
        // A block-row rank owns full-width strips.
        let ((x0, x1), (y0, y1)) = rows.bounds(3);
        assert_eq!((x0, x1), (0, 64));
        assert_eq!((y1 - y0), 8);
    }

    #[test]
    fn row_decomposition_defeated_by_rotated_skew() {
        // The §III-E1 argument, in counts: a block-ROW decomposition is
        // immune to a column skew, but the 90°-rotated skew hits it with
        // exactly the imbalance the column skew inflicts on block columns.
        use pic_cluster::loadmodel2d::LoadModel2d;
        use pic_core::dist::Distribution;
        use pic_core::init::SkewAxis;
        let dist = Distribution::Geometric { r: 0.8 };
        let p = 8usize;
        let max_load = |decomp: &Decomp2d, axis: SkewAxis| {
            let m = LoadModel2d::new(dist, axis, 64, 64_000, 0, 1, 1);
            (0..p)
                .map(|r| {
                    let (cols, rows) = decomp.bounds(r);
                    m.count_in_rect(cols, rows)
                })
                .fold(0.0f64, f64::max)
        };
        let rows = Decomp2d::rows(64, p);
        let cols = Decomp2d::columns(64, p);
        let ideal = 64_000.0 / p as f64;
        // Column skew: rows are balanced, columns are not.
        assert!(max_load(&rows, SkewAxis::X) < 1.01 * ideal);
        assert!(max_load(&cols, SkewAxis::X) > 3.0 * ideal);
        // Rotated skew: the mirror image.
        assert!(max_load(&rows, SkewAxis::Y) > 3.0 * ideal);
        assert!(max_load(&cols, SkewAxis::Y) < 1.01 * ideal);
    }

    #[test]
    fn neighbor_stencil_is_symmetric_and_wraps() {
        // 4×3 grid: every interior/edge rank sees the full 8-stencil via
        // periodic wrap, and the relation is symmetric.
        let d = Decomp2d::uniform_grid(64, 4, 3);
        for r in 0..12 {
            let ns = d.neighbors_of(r);
            assert_eq!(ns.len(), 8, "rank {r}: {ns:?}");
            assert!(!ns.contains(&r));
            for &n in &ns {
                assert!(d.neighbors_of(n).contains(&r), "{r} <-> {n}");
            }
        }
        // 2×2: wrap duplicates collapse — everyone borders everyone.
        let d = Decomp2d::uniform_grid(16, 2, 2);
        for r in 0..4 {
            let mut want: Vec<usize> = (0..4).filter(|&x| x != r).collect();
            want.sort_unstable();
            assert_eq!(d.neighbors_of(r), want);
        }
        // Column world: ring of two sides.
        let d = Decomp2d::columns(64, 8);
        assert_eq!(d.neighbors_of(0), vec![1, 7]);
        assert_eq!(d.neighbors_of(3), vec![2, 4]);
        // Degenerate single rank: no neighbors.
        assert!(Decomp2d::columns(8, 1).neighbors_of(0).is_empty());
    }

    #[test]
    fn processor_column_ranks_share_col_range() {
        let d = Decomp2d::uniform_grid(64, 4, 4);
        for cx in 0..4 {
            let range = d.col_range(cx);
            for cy in 0..4 {
                let ((x0, x1), _) = d.bounds(d.rank_of(cx, cy));
                assert_eq!((x0, x1), range);
            }
        }
    }
}
