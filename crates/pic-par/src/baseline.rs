//! The `mpi-2d` baseline (paper §IV-A): static 2D block decomposition,
//! no load balancing.
//!
//! "This scheme is easy to implement and is efficient when the particle
//! distribution remains uniform during the simulation. However, if the
//! particle distribution is skewed then load imbalance arises and parallel
//! performance suffers." — it is the baseline the balanced implementations
//! are compared against.

use crate::balance::run_balanced_traced;
use crate::runner::{ParConfig, ParOutcome};
use pic_cluster::balancer::StaticLb;
use pic_comm::comm::Communicator;
use pic_trace::Tracer;

/// Run the baseline implementation on this rank. All ranks of `comm` must
/// call it with an identical `cfg`.
pub fn run_baseline(comm: &Communicator, cfg: &ParConfig) -> ParOutcome {
    run_baseline_traced(comm, cfg, &mut Tracer::disabled())
}

/// [`run_baseline`] with telemetry: per-step phase timing, rehome counts,
/// and per-rank load snapshots at the agreed sampling interval. Every
/// rank passes its own tracer (typically enabled on rank 0 only); the
/// collective telemetry steps are agreed via [`trace_interval`], so all
/// ranks stay in lockstep regardless of which one records.
pub fn run_baseline_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    tracer: &mut Tracer,
) -> ParOutcome {
    // The baseline is the static strategy through the shared trait-driven
    // loop: `StaticLb::wants` is always false, so no balance phase ever
    // opens and the step sequence is exactly the historical baseline's.
    run_balanced_traced(comm, cfg, "baseline", &mut StaticLb, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::events::{Event, Region};
    use pic_core::geometry::Grid;
    use pic_core::init::InitConfig;
    use pic_core::verify::triangular_id_sum;

    fn cfg(n: u64, dist: Distribution, steps: u32, k: u32, m: i32) -> ParConfig {
        ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), n, dist)
                .with_k(k)
                .with_m(m)
                .build()
                .unwrap(),
            steps,
        )
    }

    #[test]
    fn verifies_on_various_world_sizes() {
        for p in [1usize, 2, 4, 6] {
            let c = cfg(400, Distribution::PAPER_SKEW, 64, 0, 1);
            let outcomes = run_threads(p, |comm| run_baseline(&comm, &c));
            for o in &outcomes {
                assert!(o.verify.passed(), "p={p}: {:?}", o.verify);
                assert_eq!(o.total_count, 400);
                assert_eq!(o.verify.id_sum, triangular_id_sum(400));
            }
            let local_total: usize = outcomes.iter().map(|o| o.local_count).sum();
            assert_eq!(local_total, 400);
        }
    }

    #[test]
    fn fast_particles_cross_many_ranks() {
        // Stride 9 on a 32-cell grid with 4 ranks: particles hop over a
        // whole rank column every step — exercises non-neighbor routing.
        let c = cfg(150, Distribution::Uniform, 40, 4, -2);
        let outcomes = run_threads(4, |comm| run_baseline(&comm, &c));
        for o in outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
        }
    }

    #[test]
    fn injection_and_removal_during_parallel_run() {
        let region = Region {
            x0: 8,
            x1: 24,
            y0: 8,
            y1: 24,
        };
        let mut c = cfg(200, Distribution::Uniform, 50, 0, 1);
        c.setup = c
            .setup
            .with_event(Event::inject(10, region, 60, 0, 1, 1))
            .with_event(Event::remove(30, Region::whole(32), 40));
        let outcomes = run_threads(4, |comm| run_baseline(&comm, &c));
        for o in &outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
            assert_eq!(o.total_count, 220);
        }
    }

    #[test]
    fn skewed_distribution_shows_imbalance() {
        // With a strong geometric skew and no balancing, the max-loaded
        // rank holds far more than the ideal share.
        let c = cfg(1000, Distribution::Geometric { r: 0.8 }, 8, 0, 0);
        let outcomes = run_threads(4, |comm| run_baseline(&comm, &c));
        let ideal = 1000 / 4;
        assert!(
            outcomes[0].max_count as usize > 3 * ideal / 2,
            "max {} should far exceed ideal {}",
            outcomes[0].max_count,
            ideal
        );
    }

    #[test]
    fn single_rank_matches_serial_engine() {
        use pic_core::engine::Simulation;
        let c = cfg(250, Distribution::Sinusoidal, 30, 1, 2);
        let serial = {
            let mut sim = Simulation::new(c.setup.clone());
            sim.run(30);
            let mut v: Vec<_> = sim.particles().to_vec();
            v.sort_by_key(|p| p.id);
            v
        };
        let outcomes = run_threads(1, |comm| {
            let o = run_baseline(&comm, &c);
            o
        });
        assert!(outcomes[0].verify.passed());
        assert_eq!(outcomes[0].total_count, 250);
        // Position agreement is implied by both verifying against the same
        // analytic trajectories; spot-check the serial run too.
        assert_eq!(serial.len(), 250);
    }
}
