//! # pic-par — parallel PIC PRK implementations
//!
//! The paper's two MPI reference implementations, ported onto the
//! `pic-comm` substrate:
//!
//! * [`baseline`] — **`mpi-2d`** (paper §IV-A): static 2D block
//!   decomposition, no load balancing. Each rank advances the particles in
//!   its subdomain and exchanges leavers with the owners of their new
//!   cells every step.
//! * [`diffusion`] — **`mpi-2d-LB`** (paper §IV-B): the same, plus a
//!   diffusion-based application-specific balancer: every `interval` steps
//!   the per-processor-column particle counts are aggregated; adjacent
//!   columns whose counts differ by more than the threshold `τ` shift the
//!   cut between them by `border_w` cells toward the heavy side, and the
//!   affected cells' particles migrate to the horizontal neighbor. The
//!   decomposition stays a Cartesian product (rectangular subdomains,
//!   regular neighbor communication) exactly as the paper argues for.
//!
//! Both are *verified*: each rank checks its final particles against the
//! analytic trajectories and the world reduces the id checksum.
//!
//! [`model_impl`] re-expresses the same two strategies against the
//! analytic load model for full-scale modeled runs (Figures 6–7).

pub mod balance;
pub mod baseline;
pub mod decomp;
pub mod diffusion;
pub mod exchange;
pub mod model_impl;
pub mod runner;

pub use balance::{
    run_adaptive, run_adaptive_traced, run_balanced_traced, run_config, run_config_traced,
    BalancerSpec,
};
pub use baseline::run_baseline;
pub use decomp::Decomp2d;
pub use diffusion::{run_diffusion, run_diffusion_mode, DiffusionMode, DiffusionParams};
pub use model_impl::{model_baseline, model_diffusion, ModelConfig, ModelOutcome};
pub use runner::{ExchangeMode, ParConfig, ParOutcome, WireFormat};
