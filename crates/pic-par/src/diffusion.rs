//! The `mpi-2d-LB` implementation (paper §IV-B): diffusion-based,
//! application-specific load balancing restricted to the x direction.
//!
//! Every `interval` steps, the per-processor-column particle counts are
//! aggregated; for each pair of adjacent processor columns whose counts
//! differ by more than the threshold `τ`, the cut between them moves
//! `border_w` cells toward the heavy side, handing the border cells — and
//! the particles inside them — to the lighter neighbor. Because only
//! x-cuts move, subdomains stay rectangular and the decomposition remains
//! a Cartesian product: communication stays regular nearest-neighbor, the
//! property the paper credits for this scheme's strong-scaling advantage.

use crate::balance::run_balanced_traced;
use crate::runner::{ParConfig, ParOutcome};
use pic_cluster::balancer::{Axes, DiffusionLb};
use pic_comm::comm::Communicator;
use pic_trace::Tracer;

// The pure decision functions live in `pic_cluster::balancer` now (shared
// with every other strategy); re-exported here for source compatibility.
pub use pic_cluster::balancer::{
    diffuse_xcuts, diffuse_xcuts_from_histogram, per_column_counts_into,
};

/// Tuning knobs of the diffusion balancer (the paper's three interfering
/// parameters: frequency, threshold, border width — "should be co-tuned").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionParams {
    /// Steps between load-balancing invocations.
    pub interval: u32,
    /// Count difference between adjacent processor columns that triggers a
    /// transfer.
    pub tau: u64,
    /// Number of mesh-cell columns handed over per transfer.
    pub border_w: usize,
}

impl Default for DiffusionParams {
    fn default() -> Self {
        DiffusionParams {
            interval: 20,
            tau: 0,
            border_w: 1,
        }
    }
}

/// Which phases of the paper's two-phase scheme run.
///
/// §IV-B: "Another relatively simple 2D solution performs load balancing in
/// only one coordinate direction ... as long as the drift velocity of the
/// 'particle cloud' matches the direction in which we perform the
/// diffusion-based load balancing." The paper's experiments use
/// [`DiffusionMode::XOnly`]; the full [`DiffusionMode::TwoPhase`] scheme
/// also moves the y-cuts and handles rotated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffusionMode {
    /// Balance x-cuts only (the paper's experimental choice).
    #[default]
    XOnly,
    /// Balance y-cuts only.
    YOnly,
    /// Phase 1 in x, then phase 2 in y (the full §IV-B scheme).
    TwoPhase,
}

/// Run the diffusion-balanced implementation on this rank with the
/// paper's experimental x-only balancing.
pub fn run_diffusion(comm: &Communicator, cfg: &ParConfig, params: DiffusionParams) -> ParOutcome {
    run_diffusion_mode(comm, cfg, params, DiffusionMode::XOnly)
}

/// Run with an explicit phase selection.
pub fn run_diffusion_mode(
    comm: &Communicator,
    cfg: &ParConfig,
    params: DiffusionParams,
    mode: DiffusionMode,
) -> ParOutcome {
    run_diffusion_mode_traced(comm, cfg, params, mode, &mut Tracer::disabled())
}

/// [`run_diffusion_mode`] with telemetry: per-step phase timing, a
/// `"cuts"` record for every cut-movement decision (old cuts, the counts
/// the decision saw, new cuts), border-cell handover and rehome counters,
/// and per-rank load snapshots at the agreed sampling interval.
pub fn run_diffusion_mode_traced(
    comm: &Communicator,
    cfg: &ParConfig,
    params: DiffusionParams,
    mode: DiffusionMode,
    tracer: &mut Tracer,
) -> ParOutcome {
    assert!(params.interval > 0, "interval must be positive");
    assert!(params.border_w > 0, "border width must be positive");
    let axes = match mode {
        DiffusionMode::XOnly => Axes::X,
        DiffusionMode::YOnly => Axes::Y,
        DiffusionMode::TwoPhase => Axes::XY,
    };
    let mut lb = DiffusionLb::new(params.interval as u64, params.tau, params.border_w, axes);
    run_balanced_traced(comm, cfg, "diffusion", &mut lb, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::geometry::Grid;
    use pic_core::init::InitConfig;
    use pic_core::verify::triangular_id_sum;

    fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
        ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), n, dist)
                .with_m(1)
                .build()
                .unwrap(),
            steps,
        )
    }

    #[test]
    fn diffuse_xcuts_moves_toward_heavy() {
        // Heavy left column: cut 1 moves left.
        let cuts = diffuse_xcuts(&[0, 8, 16], &[100, 10], 0, 2, 16);
        assert_eq!(cuts, vec![0, 6, 16]);
        // Heavy right column: cut moves right.
        let cuts = diffuse_xcuts(&[0, 8, 16], &[10, 100], 0, 2, 16);
        assert_eq!(cuts, vec![0, 10, 16]);
        // Within threshold: no move.
        let cuts = diffuse_xcuts(&[0, 8, 16], &[100, 95], 10, 2, 16);
        assert_eq!(cuts, vec![0, 8, 16]);
    }

    #[test]
    fn diffuse_xcuts_clamps_minimum_width() {
        // Column 0 is already one cell wide; it cannot shrink further.
        let cuts = diffuse_xcuts(&[0, 1, 16], &[100, 10], 0, 3, 16);
        assert_eq!(cuts, vec![0, 1, 16]);
        // Right end clamp: last column keeps one cell.
        let cuts = diffuse_xcuts(&[0, 15, 16], &[10, 100], 0, 3, 16);
        assert_eq!(cuts, vec![0, 15, 16]);
    }

    #[test]
    fn diffuse_xcuts_cascading_clamp_stays_sorted() {
        let cuts = diffuse_xcuts(&[0, 2, 4, 6, 16], &[1000, 900, 800, 0], 0, 3, 16);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "{cuts:?}");
        }
        assert_eq!(cuts[0], 0);
        assert_eq!(cuts[4], 16);
    }

    #[test]
    fn per_column_counts_aggregates_histogram_slices() {
        let hist = [5u64, 0, 3, 7, 1, 2, 0, 4];
        let mut out = vec![99; 7]; // stale contents must be overwritten
        per_column_counts_into(&hist, &[0, 2, 5, 8], &mut out);
        assert_eq!(out, vec![5, 11, 6]);
        // Degenerate single-column world.
        per_column_counts_into(&hist, &[0, 8], &mut out);
        assert_eq!(out, vec![22]);
        // The histogram-driven decision equals the counts-driven one.
        let cuts = diffuse_xcuts_from_histogram(&[0, 2, 5, 8], &hist, 0, 1);
        assert_eq!(cuts, diffuse_xcuts(&[0, 2, 5, 8], &[5, 11, 6], 0, 1, 8));
    }

    #[test]
    fn binned_histogram_fast_path_drives_cut_movement() {
        // End-to-end tentpole path: a SoaBinned simulation at rebin 1 keeps
        // its column histogram fresh (O(columns) prefix-sum read, no
        // per-particle scan), and that readback alone steers the diffusion
        // cuts after the paper's drifting skewed cloud.
        use pic_core::engine::{Simulation, SweepMode};
        let grid = Grid::new(32).unwrap();
        let setup = InitConfig::new(grid, 2000, Distribution::Geometric { r: 0.8 })
            .with_m(1)
            .build()
            .unwrap();
        let mut sim = Simulation::with_mode(setup, SweepMode::SoaBinned).with_rebin_interval(1);
        let ncells = grid.ncells();
        let px = 4;
        let mut cuts: Vec<usize> = (0..=px).map(|i| i * ncells / px).collect();
        let static_cuts = cuts.clone();
        let mut hist = Vec::new();
        let mut counts = Vec::new();
        let (mut max_balanced, mut max_static) = (0u64, 0u64);
        for _ in 0..40 {
            sim.step();
            sim.column_histogram_into(&mut hist);
            // The fast-path histogram agrees with an O(n) rescan of the
            // canonical population.
            let mut scan = vec![0u64; ncells];
            for p in sim.particles() {
                scan[grid.cell_of(p.x)] += 1;
            }
            assert_eq!(hist, scan);
            // Track worst-case per-processor-column load under moving vs
            // frozen cuts (border_w 2 per step outruns the 1 cell/step
            // drift, as in `balancing_reduces_max_count_vs_baseline`).
            cuts = diffuse_xcuts_from_histogram(&cuts, &hist, 0, 2);
            per_column_counts_into(&hist, &cuts, &mut counts);
            max_balanced = max_balanced.max(*counts.iter().max().unwrap());
            per_column_counts_into(&hist, &static_cuts, &mut counts);
            max_static = max_static.max(*counts.iter().max().unwrap());
        }
        assert!(sim.verify().passed());
        assert!(
            max_balanced < max_static,
            "histogram-driven cuts max {max_balanced} must beat static cuts max {max_static}"
        );
    }

    #[test]
    fn fast_tier_histogram_drives_cut_movement_within_analytic_gate() {
        // The soa-binned-fast tier feeds the same O(columns) histogram
        // fast path: cut decisions steered by a fast-kernel run match the
        // load-balance behavior of the exact tier (same cells-per-step
        // motion — the tiers differ only below the analytic drift bound),
        // and the run passes its analytic verification gate.
        use pic_core::engine::{Simulation, SweepMode};
        let grid = Grid::new(32).unwrap();
        let setup = InitConfig::new(grid, 2000, Distribution::Geometric { r: 0.8 })
            .with_m(1)
            .build()
            .unwrap();
        let mut fast =
            Simulation::with_mode(setup.clone(), SweepMode::SoaBinnedFast).with_rebin_interval(1);
        let mut exact = Simulation::with_mode(setup, SweepMode::SoaBinned).with_rebin_interval(1);
        let ncells = grid.ncells();
        let px = 4;
        let mut cuts_fast: Vec<usize> = (0..=px).map(|i| i * ncells / px).collect();
        let mut cuts_exact = cuts_fast.clone();
        let (mut hist_fast, mut hist_exact) = (Vec::new(), Vec::new());
        for _ in 0..40 {
            fast.step();
            exact.step();
            fast.column_histogram_into(&mut hist_fast);
            exact.column_histogram_into(&mut hist_exact);
            // Sub-tolerance kernel drift never moves a particle across a
            // cell boundary here, so the histograms — and therefore every
            // cut decision — are identical between tiers.
            assert_eq!(hist_fast, hist_exact);
            cuts_fast = diffuse_xcuts_from_histogram(&cuts_fast, &hist_fast, 0, 2);
            cuts_exact = diffuse_xcuts_from_histogram(&cuts_exact, &hist_exact, 0, 2);
            assert_eq!(cuts_fast, cuts_exact);
        }
        assert!(fast.verify().passed(), "{:?}", fast.verify());
        assert!(exact.verify().passed());
    }

    #[test]
    fn verified_run_with_balancing() {
        let c = cfg(600, Distribution::Geometric { r: 0.85 }, 60);
        let params = DiffusionParams {
            interval: 5,
            tau: 0,
            border_w: 2,
        };
        let outcomes = run_threads(4, |comm| run_diffusion(&comm, &c, params));
        for o in &outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
            assert_eq!(o.total_count, 600);
            assert_eq!(o.verify.id_sum, triangular_id_sum(600));
        }
    }

    #[test]
    fn balancing_reduces_max_count_vs_baseline() {
        let c = cfg(2000, Distribution::Geometric { r: 0.8 }, 40);
        let base = run_threads(4, |comm| crate::baseline::run_baseline(&comm, &c));
        // The skew drifts one cell per step, so the cut must be able to
        // move faster than that: border_w / interval > 1.
        let params = DiffusionParams {
            interval: 1,
            tau: 0,
            border_w: 2,
        };
        let balanced = run_threads(4, |comm| run_diffusion(&comm, &c, params));
        assert!(base[0].verify.passed());
        assert!(balanced[0].verify.passed());
        assert!(
            balanced[0].max_count < base[0].max_count,
            "diffusion max {} must beat baseline max {}",
            balanced[0].max_count,
            base[0].max_count
        );
    }

    #[test]
    fn single_column_world_is_a_noop_balancer() {
        // px = 1 (p = 1): no internal cuts, balancer must be harmless.
        let c = cfg(100, Distribution::Geometric { r: 0.9 }, 12);
        let outcomes = run_threads(1, |comm| {
            run_diffusion(&comm, &c, DiffusionParams::default())
        });
        assert!(outcomes[0].verify.passed());
    }

    #[test]
    fn x_only_defeated_by_rotated_distribution() {
        // Paper §III-E1: rotating the particle distribution 90° defeats a
        // balancer that only works in the other direction; the full
        // two-phase scheme handles it.
        use pic_core::init::SkewAxis;
        let c = ParConfig::new(
            InitConfig::new(
                Grid::new(32).unwrap(),
                2000,
                Distribution::Geometric { r: 0.8 },
            )
            .with_skew_axis(SkewAxis::Y)
            .with_m(1) // the skew drifts vertically
            .build()
            .unwrap(),
            40,
        );
        let params = DiffusionParams {
            interval: 1,
            tau: 0,
            border_w: 2,
        };
        let base = run_threads(4, |comm| crate::baseline::run_baseline(&comm, &c));
        let xonly = run_threads(4, |comm| {
            run_diffusion_mode(&comm, &c, params, DiffusionMode::XOnly)
        });
        let twophase = run_threads(4, |comm| {
            run_diffusion_mode(&comm, &c, params, DiffusionMode::TwoPhase)
        });
        for o in [&base[0], &xonly[0], &twophase[0]] {
            assert!(o.verify.passed(), "{:?}", o.verify);
        }
        // x-only balancing cannot help a row-skewed load...
        assert!(
            xonly[0].max_count as f64 > 0.9 * base[0].max_count as f64,
            "x-only should be ineffective: {} vs baseline {}",
            xonly[0].max_count,
            base[0].max_count
        );
        // ...while the two-phase scheme substantially reduces the max.
        assert!(
            (twophase[0].max_count as f64) < 0.8 * base[0].max_count as f64,
            "two-phase must help: {} vs baseline {}",
            twophase[0].max_count,
            base[0].max_count
        );
    }

    #[test]
    fn y_only_mode_balances_row_skew() {
        use pic_core::init::SkewAxis;
        let c = ParConfig::new(
            InitConfig::new(Grid::new(32).unwrap(), 1500, Distribution::Sinusoidal)
                .with_skew_axis(SkewAxis::Y)
                .with_m(-1)
                .build()
                .unwrap(),
            30,
        );
        let params = DiffusionParams {
            interval: 1,
            tau: 0,
            border_w: 2,
        };
        let out = run_threads(4, |comm| {
            run_diffusion_mode(&comm, &c, params, DiffusionMode::YOnly)
        });
        assert!(out[0].verify.passed(), "{:?}", out[0].verify);
    }

    #[test]
    fn sinusoidal_distribution_balances_too() {
        let c = cfg(800, Distribution::Sinusoidal, 48);
        let params = DiffusionParams {
            interval: 4,
            tau: 10,
            border_w: 1,
        };
        let outcomes = run_threads(6, |comm| run_diffusion(&comm, &c, params));
        for o in outcomes {
            assert!(o.verify.passed(), "{:?}", o.verify);
        }
    }
}
