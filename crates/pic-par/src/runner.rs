//! Shared machinery for the rank-parallel runs: per-rank state, collective
//! event application, and distributed verification.

use crate::decomp::Decomp2d;
pub use crate::exchange::WireFormat;
use crate::exchange::{
    local_slice, rehome_binned_with, rehome_particles_with, route_binned_finish,
    route_binned_start, ExchangeBuffers,
};
use pic_comm::collective::{
    allgatherv, allreduce_f64, allreduce_u128, allreduce_u64, allreduce_vec_u64,
    allreduce_vec_u64_into, decode_u64s, encode_u64s,
};
use pic_comm::comm::{Communicator, ReduceOp};
use pic_core::bin::{BinnedStore, KernelTier, DEFAULT_REBIN};
use pic_core::charge::SimConstants;
use pic_core::charge_grid::ChargeGrid;
use pic_core::engine::SweepMode;
use pic_core::events::{Event, EventKind};
use pic_core::geometry::Grid;
use pic_core::init::{build_injection, SimulationSetup};
use pic_core::motion::advance_with_acceleration;
use pic_core::particle::Particle;
use pic_core::simd::SimdBackend;
use pic_core::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE, MAX_FAILING_IDS};
use pic_trace::{Counter, Phase, Tracer};

/// Which particle container the rank hot loop advances through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankPath {
    /// The original scalar AoS loop — kept selectable as the reference for
    /// the cross-implementation equivalence contract and bench contrast.
    Aos,
    /// The SoA cell-binned SIMD path (the serial engine's kernel stack,
    /// subdomain-aware). Exact tier is bit-identical to [`RankPath::Aos`].
    #[default]
    Binned,
}

/// How the per-step exchange routes particle payloads between ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Dense synchronous all-to-all after the full sweep: every rank sends
    /// `P` payloads (most of them empty markers) and blocks until all are
    /// received. Kept selectable as the equivalence oracle.
    DenseSync,
    /// Sparse neighbor-aware exchange (counts to the Cartesian 8-stencil,
    /// payloads only where non-empty, global escape flag for fast
    /// particles), split-phase overlapped with the interior sweep whenever
    /// the decomposition permits (`py == 1`, or no vertical motion at
    /// all); sparse-but-synchronous otherwise. Bit-identical results to
    /// [`ExchangeMode::DenseSync`].
    #[default]
    OverlappedSparse,
    /// Decide per run from the world size and the declared neighbor
    /// density (see [`ExchangeMode::resolve`]): the sparse protocol pays a
    /// fixed per-step overhead (escape dissemination plus per-neighbor
    /// count wires) that only amortizes when it elides enough payload
    /// messages — at small world sizes the dense oracle is measurably
    /// faster (`BENCH_par.json` `comm` rows). Resolved to one of the two
    /// concrete modes before the first step.
    Auto,
}

impl ExchangeMode {
    /// Resolve [`ExchangeMode::Auto`] against a concrete topology; the
    /// concrete modes return themselves.
    ///
    /// The model behind the crossover: per step, dense sends `P − 1`
    /// wire messages; sparse sends `⌈log₂P⌉` escape-flag messages plus
    /// `degree` count messages plus the non-empty payloads, and elides up
    /// to `P − 1 − degree` empty-marker messages. Sparse wins when the
    /// elided messages exceed the protocol overhead:
    /// `P − 1 − degree > ⌈log₂P⌉ + degree`. The `bench_comm` crossover
    /// table (results/par_scaling.md) confirms the break-even on a ring
    /// topology sits between P=8 and P=16 — dense is faster at P≤8,
    /// sparse from P=16 up — matching this inequality (ties go dense).
    pub fn resolve(self, world_size: usize, neighbor_degree: usize) -> ExchangeMode {
        match self {
            ExchangeMode::Auto => {
                let elided = world_size.saturating_sub(1 + neighbor_degree);
                let overhead = (usize::BITS - world_size.next_power_of_two().leading_zeros() - 1)
                    as usize
                    + neighbor_degree;
                if elided > overhead {
                    ExchangeMode::OverlappedSparse
                } else {
                    ExchangeMode::DenseSync
                }
            }
            concrete => concrete,
        }
    }
}

/// Rank-loop kernel selection, threaded from the CLI's `--sweep`/`--rebin`
/// into every distributed implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKernel {
    pub path: RankPath,
    /// Force-kernel tier for the binned path (ignored by AoS).
    pub tier: KernelTier,
    /// Instruction-set override; `None` = runtime detection.
    pub backend: Option<SimdBackend>,
    /// Sweeps between counting sorts (binned path).
    pub rebin_interval: u32,
    /// Exchange routing (default: overlapped sparse; dense synchronous is
    /// the oracle escape hatch).
    pub exchange: ExchangeMode,
    /// Wire representation for particle payloads (default: typed
    /// zero-copy; the byte wire is the serialization oracle).
    pub wire: WireFormat,
}

impl Default for RankKernel {
    fn default() -> RankKernel {
        RankKernel {
            path: RankPath::Binned,
            tier: KernelTier::Exact,
            backend: None,
            rebin_interval: DEFAULT_REBIN,
            exchange: ExchangeMode::OverlappedSparse,
            wire: WireFormat::Typed,
        }
    }
}

impl RankKernel {
    /// The reference AoS rank loop.
    pub fn aos() -> RankKernel {
        RankKernel {
            path: RankPath::Aos,
            ..RankKernel::default()
        }
    }

    /// The binned path at a given tier.
    pub fn binned(tier: KernelTier) -> RankKernel {
        RankKernel {
            tier,
            ..RankKernel::default()
        }
    }

    /// Map the CLI sweep mode onto a rank kernel: the binned modes select
    /// the binned path at their tier; every unbinned serial mode selects
    /// the AoS rank loop (bit-identical to all of them).
    pub fn from_sweep(mode: SweepMode) -> RankKernel {
        match mode {
            SweepMode::SoaBinned => RankKernel::binned(KernelTier::Exact),
            SweepMode::SoaBinnedFast => RankKernel::binned(KernelTier::Fast),
            _ => RankKernel::aos(),
        }
    }

    pub fn with_rebin_interval(mut self, rebin: u32) -> RankKernel {
        self.rebin_interval = rebin.max(1);
        self
    }

    pub fn with_backend(mut self, backend: SimdBackend) -> RankKernel {
        self.backend = Some(backend);
        self
    }

    pub fn with_exchange(mut self, exchange: ExchangeMode) -> RankKernel {
        self.exchange = exchange;
        self
    }

    pub fn with_wire(mut self, wire: WireFormat) -> RankKernel {
        self.wire = wire;
        self
    }
}

/// Configuration of a rank-parallel run.
#[derive(Debug, Clone)]
pub struct ParConfig {
    pub setup: SimulationSetup,
    pub steps: u32,
    /// Hot-loop kernel every rank runs (default: binned, exact tier —
    /// bit-identical to the AoS loop it replaced).
    pub kernel: RankKernel,
    /// Load-balancing strategy for [`crate::balance::run_config`]
    /// dispatch (default: static, i.e. the baseline).
    pub balancer: crate::balance::BalancerSpec,
}

impl ParConfig {
    pub fn new(setup: SimulationSetup, steps: u32) -> ParConfig {
        ParConfig {
            setup,
            steps,
            kernel: RankKernel::default(),
            balancer: crate::balance::BalancerSpec::default(),
        }
    }

    pub fn with_kernel(mut self, kernel: RankKernel) -> ParConfig {
        self.kernel = kernel;
        self
    }

    pub fn with_balancer(mut self, balancer: crate::balance::BalancerSpec) -> ParConfig {
        self.balancer = balancer;
        self
    }
}

/// Result reported by every rank (identical across ranks for the global
/// fields, thanks to the final allreduces).
#[derive(Debug, Clone)]
pub struct ParOutcome {
    /// Globally merged verification report.
    pub verify: VerifyReport,
    /// This rank's particle count at the end.
    pub local_count: usize,
    /// Maximum per-rank particle count at the end — the paper's §V-B
    /// imbalance indicator.
    pub max_count: u64,
    /// Total particles at the end.
    pub total_count: u64,
    /// Steps executed.
    pub steps: u32,
    /// Kernel descriptor of the rank hot loop (`"<backend>/<tier>"` for
    /// the binned path, `"none"` for the AoS reference loop — the same
    /// convention the serial engine emits).
    pub kernel: String,
    /// This rank's final particles (for cross-implementation equivalence
    /// checks; cheap at test scales, and callers can drop it).
    pub local_particles: Vec<Particle>,
}

/// The rank's particle container (see [`RankPath`]).
pub enum RankStore {
    Aos(Vec<Particle>),
    Binned(Box<BinnedStore>),
}

impl RankStore {
    /// Build a store over `particles` per the kernel selection. The binned
    /// store bins the columns `cols.0..cols.1` (a rank subdomain, or the
    /// whole grid for ownership maps that are not column-contiguous).
    pub fn build(
        particles: Vec<Particle>,
        grid: &Grid,
        kernel: RankKernel,
        cols: (usize, usize),
    ) -> RankStore {
        match kernel.path {
            RankPath::Aos => RankStore::Aos(particles),
            RankPath::Binned => {
                let mut b = BinnedStore::new_subdomain(
                    &particles,
                    grid,
                    kernel.rebin_interval,
                    cols.0,
                    cols.1,
                );
                if let Some(backend) = kernel.backend {
                    b.set_simd_backend(backend);
                }
                b.set_kernel_tier(kernel.tier);
                RankStore::Binned(Box::new(b))
            }
        }
    }

    /// Number of particles currently held.
    pub fn len(&self) -> usize {
        match self {
            RankStore::Aos(v) => v.len(),
            RankStore::Binned(b) => b.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the particles (allocates; verification path).
    pub fn to_particles(&self) -> Vec<Particle> {
        match self {
            RankStore::Aos(v) => v.clone(),
            RankStore::Binned(b) => b.to_particles(),
        }
    }

    /// Append a particle that is already homed on this rank (binned: tail
    /// append, folded in at the next amortized rebin).
    pub fn push(&mut self, p: Particle) {
        match self {
            RankStore::Aos(v) => v.push(p),
            RankStore::Binned(b) => b.push_tail(p),
        }
    }

    /// Kernel descriptor of the hot loop this store drives:
    /// `"<backend>/<tier>"` for the binned path, `"none"` for the AoS loop
    /// (the serial engine's convention for unbinned stores).
    pub fn kernel_desc(&self) -> String {
        match self {
            RankStore::Aos(_) => "none".to_string(),
            RankStore::Binned(b) => {
                format!("{}/{}", b.simd_backend().name(), b.kernel_tier().name())
            }
        }
    }

    /// Ids of held particles inside `region`, for collective removal.
    pub fn ids_in_region(&self, region: &pic_core::events::Region) -> Vec<u64> {
        match self {
            RankStore::Aos(v) => v
                .iter()
                .filter(|p| region.contains_point(p.x, p.y))
                .map(|p| p.id)
                .collect(),
            RankStore::Binned(b) => {
                let batch = b.batch();
                (0..batch.len())
                    .filter(|&i| region.contains_point(batch.x[i], batch.y[i]))
                    .map(|i| batch.id[i])
                    .collect()
            }
        }
    }

    /// Remove every particle whose id is in `doomed`.
    pub fn remove_ids(&mut self, doomed: &std::collections::HashSet<u64>) {
        match self {
            RankStore::Aos(v) => v.retain(|p| !doomed.contains(&p.id)),
            RankStore::Binned(b) => {
                b.remove_ids(doomed);
            }
        }
    }
}

/// Per-rank simulation state.
pub struct RankState {
    pub grid: Grid,
    pub consts: SimConstants,
    pub decomp: Decomp2d,
    pub rank: usize,
    /// Local particles: the AoS vector of the reference loop, or the
    /// subdomain-aware binned store of the vectorized path.
    pub store: RankStore,
    /// Materialized mesh-charge subgrid with ghost ring (paper §IV-A:
    /// fringe mesh points are replicated). Forces are read from it, and it
    /// is rebuilt whenever the balancer changes this rank's subdomain.
    pub charges: ChargeGrid,
    pub step: u32,
    events: Vec<Event>,
    next_event: usize,
    /// Global id ledger — identical on every rank because events are
    /// applied deterministically everywhere.
    expected_id_sum: u128,
    next_id: u64,
    /// Reused exchange staging buffers: the steady-state step loop routes
    /// particles without reallocating the per-destination buckets.
    bufs: ExchangeBuffers,
    /// Reused per-axis count scratch for the diffusion balancer.
    lb_scratch: Vec<u64>,
    /// Exchange routing mode (from the rank kernel).
    exchange: ExchangeMode,
    /// Per-step column stride bound: `2·k_max + 1` over the initial
    /// population and every injection event — no particle can hop more
    /// columns than this in one sweep (the analytic motion contract).
    stride_x: usize,
    /// Largest `|m|` over the population and injections: the exact
    /// per-step row hop. Zero means no particle ever crosses a row.
    max_abs_m: i64,
}

impl RankState {
    /// Build rank-local state from the (deterministically shared) setup,
    /// with the default (binned, exact-tier) rank kernel.
    pub fn new(setup: &SimulationSetup, decomp: Decomp2d, rank: usize) -> RankState {
        RankState::with_kernel(setup, decomp, rank, RankKernel::default())
    }

    /// [`RankState::new`] with an explicit rank kernel.
    pub fn with_kernel(
        setup: &SimulationSetup,
        decomp: Decomp2d,
        rank: usize,
        kernel: RankKernel,
    ) -> RankState {
        let particles = local_slice(&decomp, &setup.grid, rank, &setup.particles);
        let mut events = setup.events.clone();
        events.sort_by_key(|e| e.at_step);
        let (cols, rows) = decomp.bounds(rank);
        let charges = ChargeGrid::build(&setup.grid, &setup.consts, cols, rows);
        let store = RankStore::build(particles, &setup.grid, kernel, cols);
        let (stride_x, max_abs_m) = motion_bounds(setup);
        let mut bufs = ExchangeBuffers::new();
        bufs.set_wire_format(kernel.wire);
        let neighbors = decomp.neighbors_of(rank);
        let exchange = kernel.exchange.resolve(decomp.ranks(), neighbors.len());
        if exchange == ExchangeMode::OverlappedSparse {
            bufs.enable_sparse(decomp.ranks(), rank, neighbors);
        }
        RankState {
            grid: setup.grid,
            consts: setup.consts,
            decomp,
            rank,
            store,
            charges,
            step: 0,
            events,
            next_event: 0,
            expected_id_sum: setup.initial_id_sum(),
            next_id: setup.next_id,
            bufs,
            lb_scratch: Vec::new(),
            exchange,
            stride_x,
            max_abs_m,
        }
    }

    /// Number of particles currently homed on this rank.
    pub fn local_count(&self) -> usize {
        self.store.len()
    }

    /// This rank's particles, materialized. Allocates; verification path.
    pub fn local_particles(&self) -> Vec<Particle> {
        self.store.to_particles()
    }

    /// Kernel descriptor of the hot loop (see [`RankStore::kernel_desc`]).
    pub fn kernel_desc(&self) -> String {
        self.store.kernel_desc()
    }

    /// Fill `h` with this rank's per-column particle counts (global column
    /// indexing, zero outside the subdomain) — O(columns) when the binned
    /// histogram is fresh, O(n) otherwise. Summed across ranks this is the
    /// balancer's input histogram.
    pub fn column_histogram_into(&self, h: &mut Vec<u64>) {
        match &self.store {
            RankStore::Aos(v) => {
                h.clear();
                h.resize(self.grid.ncells(), 0);
                for p in v {
                    h[self.grid.cell_of(p.x)] += 1;
                }
            }
            RankStore::Binned(b) => b.column_histogram_into(&self.grid, h),
        }
    }

    /// Re-anchor the binned store's column range after a decomposition
    /// change. Leavers must already have been drained under the *new*
    /// decomposition (the balancer rehomes first); a no-op when the range
    /// is unchanged or the store is AoS.
    pub fn rebind_store(&mut self) {
        if let RankStore::Binned(b) = &mut self.store {
            let ((x0, x1), _) = self.decomp.bounds(self.rank);
            if b.columns() != (x0, x1) {
                b.set_columns(&self.grid, x0, x1);
            }
        }
    }

    /// Rebuild the charge subgrid after a re-decomposition (the functional
    /// analogue of migrating border subgrids).
    pub fn rebuild_charges(&mut self) {
        let (cols, rows) = self.decomp.bounds(self.rank);
        self.charges = ChargeGrid::build(&self.grid, &self.consts, cols, rows);
        debug_assert!(self
            .charges
            .verify_against_formula(&self.grid, &self.consts));
    }

    pub fn expected_id_sum(&self) -> u128 {
        self.expected_id_sum
    }

    /// Apply events due at the current step. Injections are materialized
    /// identically on every rank (same id assignment) and filtered to the
    /// local subdomain; removals are resolved collectively so all ranks
    /// agree on the doomed id set.
    pub fn apply_due_events(&mut self, comm: &Communicator) {
        while self.next_event < self.events.len()
            && self.events[self.next_event].at_step == self.step
        {
            let e = self.events[self.next_event];
            self.next_event += 1;
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    let newcomers = build_injection(
                        self.grid,
                        self.consts,
                        e.region,
                        count,
                        k,
                        m,
                        dir,
                        self.step,
                        &mut self.next_id,
                    );
                    for p in &newcomers {
                        self.expected_id_sum += p.id as u128;
                        let (c, r) = self.grid.cell_of_point(p.x, p.y);
                        if self.decomp.owner_of_cell(c, r) == self.rank {
                            // Homed by the owner filter, so the binned
                            // tail append keeps the rebin amortized.
                            self.store.push(*p);
                        }
                    }
                }
                EventKind::Remove { count } => {
                    // Gather candidate ids (in-region residents) globally,
                    // pick the lowest `count`, remove the local ones.
                    let mut local_ids = self.store.ids_in_region(&e.region);
                    local_ids.sort_unstable();
                    let gathered = allgatherv(comm, encode_u64s(&local_ids));
                    let mut all: Vec<u64> = gathered.iter().flat_map(|b| decode_u64s(b)).collect();
                    all.sort_unstable();
                    all.truncate(count as usize);
                    let doomed: std::collections::HashSet<u64> = all.iter().copied().collect();
                    for &id in &all {
                        self.expected_id_sum -= id as u128;
                    }
                    self.store.remove_ids(&doomed);
                }
            }
        }
    }

    /// One full step: events, advance (forces read from the stored mesh —
    /// bit-identical to the formulaic path), exchange.
    pub fn step(&mut self, comm: &Communicator) {
        self.step_traced(comm, &mut Tracer::disabled());
    }

    /// Can this step run the overlapped border/interior split? The split
    /// is column-based, so it only catches leavers through the x-cuts: it
    /// is sound when the rank rows cannot be crossed at all — a single
    /// processor row, or a population with no vertical motion. Otherwise
    /// the step falls back to the sparse-but-synchronous exchange (the
    /// full drain catches row leavers from any column).
    fn overlap_ready(&self) -> bool {
        self.exchange == ExchangeMode::OverlappedSparse
            && matches!(self.store, RankStore::Binned(_))
            && (self.decomp.py == 1 || self.max_abs_m == 0)
    }

    /// [`RankState::step`] with telemetry: the advance loop is timed as
    /// the `advance` phase, rehoming as `exchange` (interleaved when the
    /// overlapped path runs). Returns the number of particles this rank
    /// sent away (feeds the `rehomed` counter, which is globally summed
    /// at traced steps by [`snapshot_loads`]).
    pub fn step_traced(&mut self, comm: &Communicator, tracer: &mut Tracer) -> usize {
        self.apply_due_events(comm);
        let rebins_before = match &self.store {
            RankStore::Binned(b) => b.rebin_count(),
            RankStore::Aos(_) => 0,
        };
        let sent = if self.overlap_ready() {
            self.step_overlapped(comm, tracer)
        } else {
            tracer.phase_start(Phase::Advance);
            match &mut self.store {
                RankStore::Aos(particles) => {
                    for p in particles.iter_mut() {
                        let (ax, ay) =
                            self.charges
                                .total_force(&self.grid, &self.consts, p.x, p.y, p.q);
                        advance_with_acceleration(&self.grid, &self.consts, p, ax, ay);
                    }
                }
                // The serial engine's kernel stack, serial on this rank's
                // own thread (each rank is already a parallel unit), forces
                // read from the ghost-ringed charge subgrid.
                RankStore::Binned(b) => {
                    b.sweep_local(&self.grid, &self.consts, Some(&self.charges))
                }
            }
            tracer.phase_end(Phase::Advance);
            tracer.phase_start(Phase::Exchange);
            let (sent, _received) = self.rehome(comm);
            tracer.phase_end(Phase::Exchange);
            sent
        };
        // The amortized rebin runs *after* the exchange so the counting
        // sort only ever sees homed particles (arrivals fold in from the
        // tail; column range is exactly the subdomain).
        tracer.phase_start(Phase::Exchange);
        if let RankStore::Binned(b) = &mut self.store {
            if b.rebin_due() {
                b.rebin(&self.grid);
            }
            tracer.add(Counter::Rebins, b.rebin_count() - rebins_before);
        }
        tracer.phase_end(Phase::Exchange);
        self.step += 1;
        sent
    }

    /// The overlapped step (paper-faithful split-phase exchange): advance
    /// the *border* columns first, launch the exchange for their leavers,
    /// advance the *interior* while the messages are in flight, then
    /// complete the receives into the tail. Bit-identical to the
    /// synchronous step: bins run the same tier kernel at the same age
    /// parity against the same fixed per-step mesh regardless of the
    /// column partition, the stable drain visits leavers in the same
    /// order (interior bins cannot produce leavers — that is what
    /// [`BinnedStore::border_width`] guarantees), and arrivals append in
    /// source-rank order either way.
    fn step_overlapped(&mut self, comm: &Communicator, tracer: &mut Tracer) -> usize {
        let RankStore::Binned(b) = &mut self.store else {
            unreachable!("overlap_ready checked the store path");
        };
        tracer.phase_start(Phase::Advance);
        b.prepare_sweep(&self.grid);
        let ((x0, x1), _) = self.decomp.bounds(self.rank);
        // Bin-space border: particles drift from their bin column between
        // rebins, so the border widens with the store's age.
        let w = b.border_width(self.stride_x);
        let b_lo = (x0 + w).min(x1);
        let b_hi = x1.saturating_sub(w).max(b_lo);
        b.sweep_cols(&self.grid, &self.consts, Some(&self.charges), x0..b_lo);
        b.sweep_cols(&self.grid, &self.consts, Some(&self.charges), b_hi..x1);
        b.sweep_tail_pass(&self.grid, &self.consts, Some(&self.charges));
        tracer.phase_end(Phase::Advance);

        tracer.phase_start(Phase::Exchange);
        let decomp = &self.decomp;
        let inflight = route_binned_start(
            comm,
            self.rank,
            |c, r| decomp.owner_of_cell(c, r),
            |c| !(b_lo..b_hi).contains(&c),
            b,
            &self.grid,
            &mut self.bufs,
        );
        let sent = inflight.sent;
        tracer.phase_end(Phase::Exchange);

        tracer.phase_start(Phase::Advance);
        let window_start = std::time::Instant::now();
        b.sweep_cols(&self.grid, &self.consts, Some(&self.charges), b_lo..b_hi);
        let overlap_ns = window_start.elapsed().as_nanos() as u64;
        tracer.phase_end(Phase::Advance);

        tracer.phase_start(Phase::Exchange);
        route_binned_finish(comm, inflight, b, &mut self.bufs);
        b.end_sweep();
        tracer.add(Counter::OverlapNs, overlap_ns);
        tracer.phase_end(Phase::Exchange);
        sent
    }

    /// Drain the `(sent, skipped)` wire-message counters accumulated by
    /// this rank's exchanges since the previous take (see
    /// [`ExchangeBuffers::take_message_counts`]).
    pub fn take_message_counts(&mut self) -> (u64, u64) {
        self.bufs.take_message_counts()
    }

    /// Route every mis-homed particle to its owner, reusing this rank's
    /// staging buffers (steady-state: no staging allocation). The binned
    /// store drains leavers in place — no AoS round-trip.
    pub fn rehome(&mut self, comm: &Communicator) -> (usize, usize) {
        match &mut self.store {
            RankStore::Aos(particles) => rehome_particles_with(
                comm,
                &self.decomp,
                &self.grid,
                self.rank,
                particles,
                &mut self.bufs,
            ),
            RankStore::Binned(store) => rehome_binned_with(
                comm,
                &self.decomp,
                &self.grid,
                self.rank,
                store,
                &mut self.bufs,
            ),
        }
    }

    /// Collectively aggregate per-processor-column (`along_x`) or per-row
    /// particle counts for the diffusion balancer. This rank's contribution
    /// vector lives in a reused scratch buffer; the reduced result is
    /// allocated by the collective (message ownership crosses the
    /// transport, as with any MPI receive buffer).
    pub fn aggregate_axis_counts(&mut self, comm: &Communicator, along_x: bool) -> Vec<u64> {
        let mut out = Vec::new();
        self.aggregate_axis_counts_into(comm, along_x, &mut out);
        out
    }

    /// [`RankState::aggregate_axis_counts`] into a caller-owned buffer —
    /// the fully allocation-free form for steady-state balancer loops.
    pub fn aggregate_axis_counts_into(
        &mut self,
        comm: &Communicator,
        along_x: bool,
        out: &mut Vec<u64>,
    ) {
        let (slots, idx) = {
            let (cx, cy) = self.decomp.coords_of(self.rank);
            if along_x {
                (self.decomp.px, cx)
            } else {
                (self.decomp.py, cy)
            }
        };
        self.lb_scratch.clear();
        self.lb_scratch.resize(slots, 0);
        self.lb_scratch[idx] = self.local_count() as u64;
        allreduce_vec_u64_into(comm, &self.lb_scratch, ReduceOp::Sum, out);
    }

    /// Collectively aggregate the global per-cell-column histogram from
    /// every rank's own store — O(columns) local work on a fresh binned
    /// store. [`crate::diffusion::per_column_counts_into`] folds the
    /// result onto processor columns, giving bit-identical cut decisions
    /// to [`RankState::aggregate_axis_counts`] (both count homed
    /// particles per column). Reuses `h` as local scratch.
    pub fn aggregate_column_histogram(&self, comm: &Communicator, h: &mut Vec<u64>) -> Vec<u64> {
        self.column_histogram_into(h);
        allreduce_vec_u64(comm, h, ReduceOp::Sum)
    }

    /// Distributed verification: local analytic check, global reduction of
    /// failures, checksum, and max error.
    pub fn verify(&self, comm: &Communicator) -> VerifyReport {
        let local = verify_all(
            &self.grid,
            &self.local_particles(),
            self.step,
            0, // expected sum handled globally below
            DEFAULT_TOLERANCE,
        );
        let checked = allreduce_u64(comm, local.checked, ReduceOp::Sum);
        let failures = allreduce_u64(comm, local.position_failures, ReduceOp::Sum);
        let max_error = allreduce_f64(comm, local.max_error, ReduceOp::Max);
        let id_sum = allreduce_u128(comm, local.id_sum, ReduceOp::Sum);
        VerifyReport {
            checked,
            position_failures: failures,
            max_error,
            failing_ids: merge_failing_ids(comm, &local.failing_ids),
            id_sum,
            expected_id_sum: self.expected_id_sum,
            tolerance: DEFAULT_TOLERANCE,
        }
    }

    /// Collective imbalance probe: (max per-rank count, total count).
    pub fn count_stats(&self, comm: &Communicator) -> (u64, u64) {
        let local = self.local_count() as u64;
        let max = allreduce_u64(comm, local, ReduceOp::Max);
        let total = allreduce_u64(comm, local, ReduceOp::Sum);
        (max, total)
    }

    /// Final outcome assembly.
    pub fn finish(&self, comm: &Communicator) -> ParOutcome {
        self.finish_traced(comm, &mut Tracer::disabled())
    }

    /// [`RankState::finish`] with the verification collectives timed as
    /// the `verify` phase.
    pub fn finish_traced(&self, comm: &Communicator, tracer: &mut Tracer) -> ParOutcome {
        tracer.phase_start(Phase::Verify);
        let verify = self.verify(comm);
        tracer.phase_end(Phase::Verify);
        let (max_count, total_count) = self.count_stats(comm);
        ParOutcome {
            verify,
            local_count: self.local_count(),
            max_count,
            total_count,
            steps: self.step,
            kernel: self.kernel_desc(),
            local_particles: self.local_particles(),
        }
    }
}

/// Agree on the trace sampling interval across ranks (max of every rank's
/// `sample_every`; 0 when no rank traces). Collectives in the telemetry
/// path must be entered by *every* rank at the same steps even though
/// typically only rank 0 holds an enabled tracer — runners call this once
/// up front and gate [`snapshot_loads`] on the agreed value.
pub fn trace_interval(comm: &Communicator, tracer: &Tracer) -> u64 {
    allreduce_u64(comm, tracer.sample_every() as u64, ReduceOp::Max)
}

/// Collective telemetry snapshot at a traced step: the per-rank load
/// vector plus three windowed scalars (particles rehomed, wire messages
/// sent, wire messages elided by the sparse protocol) merged into a
/// single `(size + 3)`-slot vector allreduce. Feeds the tracer's load
/// statistics and the `rehomed` / `msgs_sent` / `msgs_skipped` /
/// `collective_bytes` counters; returns the global particle count. Must
/// be called by every rank at the same step.
pub fn snapshot_loads(
    comm: &Communicator,
    tracer: &mut Tracer,
    local_count: u64,
    sent_window: u64,
    msgs_window: (u64, u64),
) -> u64 {
    let n = comm.size();
    let mut slots = vec![0u64; n + 3];
    slots[comm.rank()] = local_count;
    slots[n] = sent_window;
    slots[n + 1] = msgs_window.0;
    slots[n + 2] = msgs_window.1;
    let counts = allreduce_vec_u64(comm, &slots, ReduceOp::Sum);
    tracer.add(Counter::Rehomed, counts[n]);
    tracer.add(Counter::MsgsSent, counts[n + 1]);
    tracer.add(Counter::MsgsSkipped, counts[n + 2]);
    tracer.add(Counter::CollectiveBytes, slots.len() as u64 * 8);
    let loads: Vec<f64> = counts[..n].iter().map(|&c| c as f64).collect();
    tracer.record_loads(&loads);
    counts[..n].iter().sum()
}

/// Bounds on per-step motion over the whole simulation (initial
/// population plus every scheduled injection): the maximum x-stride
/// `2·k + 1` and the largest per-step row displacement `|m|`. Both are
/// exact analytic contracts of the kernel (see
/// [`Particle::cells_per_step_x`] / `cells_per_step_y`), so the border
/// width computed from the stride is a guarantee, not a heuristic.
fn motion_bounds(setup: &SimulationSetup) -> (usize, i64) {
    let mut max_k = 0u32;
    let mut max_m = 0i64;
    for p in &setup.particles {
        max_k = max_k.max(p.k);
        max_m = max_m.max((p.m as i64).abs());
    }
    for e in &setup.events {
        if let EventKind::Inject { k, m, .. } = e.kind {
            max_k = max_k.max(k);
            max_m = max_m.max((m as i64).abs());
        }
    }
    (2 * max_k as usize + 1, max_m)
}

/// Globally merge per-rank failing-id diagnostics: allgather, sort, dedup,
/// cap at [`MAX_FAILING_IDS`]. Every rank ends with the identical list no
/// matter which rank held the failing particles — previously each rank
/// reported only its local ids while the rest of the report was global.
pub fn merge_failing_ids(comm: &Communicator, local: &[u64]) -> Vec<u64> {
    let gathered = allgatherv(comm, encode_u64s(local));
    let mut all: Vec<u64> = gathered.iter().flat_map(|b| decode_u64s(b)).collect();
    all.sort_unstable();
    all.dedup();
    all.truncate(MAX_FAILING_IDS);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::events::Region;
    use pic_core::init::InitConfig;
    use pic_core::verify::triangular_id_sum;

    #[test]
    fn auto_exchange_resolves_from_topology() {
        use ExchangeMode::{Auto, DenseSync, OverlappedSparse};
        // Concrete modes pass through untouched, whatever the topology.
        assert_eq!(DenseSync.resolve(64, 8), DenseSync);
        assert_eq!(OverlappedSparse.resolve(2, 1), OverlappedSparse);
        // 8-stencil decompositions: a 1×P row of columns has degree 2
        // (left/right wrap). P−1−2 elided vs ⌈log₂P⌉+2 overhead:
        // dense through P=8 (5 elided vs 5 overhead — tie goes dense),
        // sparse from P=16 (13 vs 6). Matches the bench_comm crossover.
        assert_eq!(Auto.resolve(2, 1), DenseSync);
        assert_eq!(Auto.resolve(4, 2), DenseSync);
        assert_eq!(Auto.resolve(8, 2), DenseSync);
        assert_eq!(Auto.resolve(16, 2), OverlappedSparse);
        assert_eq!(Auto.resolve(64, 2), OverlappedSparse);
        // Square 2-D decompositions keep degree 8; still sparse at scale.
        assert_eq!(Auto.resolve(16, 8), DenseSync);
        assert_eq!(Auto.resolve(64, 8), OverlappedSparse);
        // All-pairs neighborhoods (the AMPI VP router) can never elide
        // a message: always dense.
        assert_eq!(Auto.resolve(64, 63), DenseSync);
        assert_eq!(Auto.resolve(1, 0), DenseSync);
    }

    #[test]
    fn rank_states_partition_the_population() {
        let setup = InitConfig::new(Grid::new(16).unwrap(), 500, Distribution::PAPER_SKEW)
            .build()
            .unwrap();
        let decomp = Decomp2d::uniform(16, 4);
        let counts: usize = (0..4)
            .map(|r| RankState::new(&setup, decomp.clone(), r).local_count())
            .sum();
        assert_eq!(counts, 500);
    }

    #[test]
    fn collective_removal_agrees_across_ranks() {
        let grid = Grid::new(16).unwrap();
        let setup = InitConfig::new(grid, 200, Distribution::Uniform)
            .build()
            .unwrap()
            .with_event(Event::remove(
                0,
                Region {
                    x0: 0,
                    x1: 16,
                    y0: 0,
                    y1: 8,
                },
                40,
            ));
        let outcomes = run_threads(4, |comm| {
            let mut st = RankState::new(&setup, Decomp2d::uniform(16, 4), comm.rank());
            st.apply_due_events(&comm);
            (st.expected_id_sum(), st.local_count() as u64)
        });
        let ledger0 = outcomes[0].0;
        assert!(
            outcomes.iter().all(|o| o.0 == ledger0),
            "ledgers must agree"
        );
        let total: u64 = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(total, 160);
        assert!(ledger0 < triangular_id_sum(200));
    }

    #[test]
    fn injection_lands_on_owning_ranks_only() {
        let grid = Grid::new(16).unwrap();
        let region = Region {
            x0: 0,
            x1: 4,
            y0: 0,
            y1: 4,
        };
        let setup = InitConfig::new(grid, 50, Distribution::Uniform)
            .build()
            .unwrap()
            .with_event(Event::inject(0, region, 30, 0, 0, 1));
        let outcomes = run_threads(4, |comm| {
            let mut st = RankState::new(&setup, Decomp2d::uniform(16, 4), comm.rank());
            st.apply_due_events(&comm);
            (st.expected_id_sum(), st.local_count() as u64)
        });
        let total: u64 = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(total, 80);
        assert_eq!(outcomes[0].0, triangular_id_sum(80));
    }
}
