//! Shared machinery for the rank-parallel runs: per-rank state, collective
//! event application, and distributed verification.

use crate::decomp::Decomp2d;
use crate::exchange::{local_slice, rehome_particles_with, ExchangeBuffers};
use pic_comm::collective::{
    allgatherv, allreduce_f64, allreduce_u128, allreduce_u64, allreduce_vec_u64, decode_u64s,
    encode_u64s,
};
use pic_comm::comm::{Communicator, ReduceOp};
use pic_core::charge::SimConstants;
use pic_core::charge_grid::ChargeGrid;
use pic_core::events::{Event, EventKind};
use pic_core::geometry::Grid;
use pic_core::init::{build_injection, SimulationSetup};
use pic_core::motion::advance_with_acceleration;
use pic_core::particle::Particle;
use pic_core::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE, MAX_FAILING_IDS};
use pic_trace::{Counter, Phase, Tracer};

/// Configuration of a rank-parallel run.
#[derive(Debug, Clone)]
pub struct ParConfig {
    pub setup: SimulationSetup,
    pub steps: u32,
}

/// Result reported by every rank (identical across ranks for the global
/// fields, thanks to the final allreduces).
#[derive(Debug, Clone)]
pub struct ParOutcome {
    /// Globally merged verification report.
    pub verify: VerifyReport,
    /// This rank's particle count at the end.
    pub local_count: usize,
    /// Maximum per-rank particle count at the end — the paper's §V-B
    /// imbalance indicator.
    pub max_count: u64,
    /// Total particles at the end.
    pub total_count: u64,
    /// Steps executed.
    pub steps: u32,
    /// This rank's final particles (for cross-implementation equivalence
    /// checks; cheap at test scales, and callers can drop it).
    pub local_particles: Vec<Particle>,
}

/// Per-rank simulation state.
pub struct RankState {
    pub grid: Grid,
    pub consts: SimConstants,
    pub decomp: Decomp2d,
    pub rank: usize,
    pub particles: Vec<Particle>,
    /// Materialized mesh-charge subgrid with ghost ring (paper §IV-A:
    /// fringe mesh points are replicated). Forces are read from it, and it
    /// is rebuilt whenever the balancer changes this rank's subdomain.
    pub charges: ChargeGrid,
    pub step: u32,
    events: Vec<Event>,
    next_event: usize,
    /// Global id ledger — identical on every rank because events are
    /// applied deterministically everywhere.
    expected_id_sum: u128,
    next_id: u64,
    /// Reused exchange staging buffers: the steady-state step loop routes
    /// particles without reallocating the per-destination buckets.
    bufs: ExchangeBuffers,
    /// Reused per-axis count scratch for the diffusion balancer.
    lb_scratch: Vec<u64>,
}

impl RankState {
    /// Build rank-local state from the (deterministically shared) setup.
    pub fn new(setup: &SimulationSetup, decomp: Decomp2d, rank: usize) -> RankState {
        let particles = local_slice(&decomp, &setup.grid, rank, &setup.particles);
        let mut events = setup.events.clone();
        events.sort_by_key(|e| e.at_step);
        let (cols, rows) = decomp.bounds(rank);
        let charges = ChargeGrid::build(&setup.grid, &setup.consts, cols, rows);
        RankState {
            grid: setup.grid,
            consts: setup.consts,
            decomp,
            rank,
            particles,
            charges,
            step: 0,
            events,
            next_event: 0,
            expected_id_sum: setup.initial_id_sum(),
            next_id: setup.next_id,
            bufs: ExchangeBuffers::new(),
            lb_scratch: Vec::new(),
        }
    }

    /// Rebuild the charge subgrid after a re-decomposition (the functional
    /// analogue of migrating border subgrids).
    pub fn rebuild_charges(&mut self) {
        let (cols, rows) = self.decomp.bounds(self.rank);
        self.charges = ChargeGrid::build(&self.grid, &self.consts, cols, rows);
        debug_assert!(self
            .charges
            .verify_against_formula(&self.grid, &self.consts));
    }

    pub fn expected_id_sum(&self) -> u128 {
        self.expected_id_sum
    }

    /// Apply events due at the current step. Injections are materialized
    /// identically on every rank (same id assignment) and filtered to the
    /// local subdomain; removals are resolved collectively so all ranks
    /// agree on the doomed id set.
    pub fn apply_due_events(&mut self, comm: &Communicator) {
        while self.next_event < self.events.len()
            && self.events[self.next_event].at_step == self.step
        {
            let e = self.events[self.next_event];
            self.next_event += 1;
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    let newcomers = build_injection(
                        self.grid,
                        self.consts,
                        e.region,
                        count,
                        k,
                        m,
                        dir,
                        self.step,
                        &mut self.next_id,
                    );
                    for p in &newcomers {
                        self.expected_id_sum += p.id as u128;
                        let (c, r) = self.grid.cell_of_point(p.x, p.y);
                        if self.decomp.owner_of_cell(c, r) == self.rank {
                            self.particles.push(*p);
                        }
                    }
                }
                EventKind::Remove { count } => {
                    // Gather candidate ids (in-region residents) globally,
                    // pick the lowest `count`, remove the local ones.
                    let mut local_ids: Vec<u64> = self
                        .particles
                        .iter()
                        .filter(|p| e.region.contains_point(p.x, p.y))
                        .map(|p| p.id)
                        .collect();
                    local_ids.sort_unstable();
                    let gathered = allgatherv(comm, encode_u64s(&local_ids));
                    let mut all: Vec<u64> = gathered.iter().flat_map(|b| decode_u64s(b)).collect();
                    all.sort_unstable();
                    all.truncate(count as usize);
                    let doomed: std::collections::HashSet<u64> = all.iter().copied().collect();
                    for &id in &all {
                        self.expected_id_sum -= id as u128;
                    }
                    self.particles.retain(|p| !doomed.contains(&p.id));
                }
            }
        }
    }

    /// One full step: events, advance (forces read from the stored mesh —
    /// bit-identical to the formulaic path), exchange.
    pub fn step(&mut self, comm: &Communicator) {
        self.step_traced(comm, &mut Tracer::disabled());
    }

    /// [`RankState::step`] with telemetry: the advance loop is timed as
    /// the `advance` phase, rehoming as `exchange`. Returns the number of
    /// particles this rank sent away (feeds the `rehomed` counter, which
    /// is globally summed at traced steps by [`snapshot_loads`]).
    pub fn step_traced(&mut self, comm: &Communicator, tracer: &mut Tracer) -> usize {
        self.apply_due_events(comm);
        tracer.phase_start(Phase::Advance);
        for p in &mut self.particles {
            let (ax, ay) = self
                .charges
                .total_force(&self.grid, &self.consts, p.x, p.y, p.q);
            advance_with_acceleration(&self.grid, &self.consts, p, ax, ay);
        }
        tracer.phase_end(Phase::Advance);
        tracer.phase_start(Phase::Exchange);
        let (sent, _received) = self.rehome(comm);
        tracer.phase_end(Phase::Exchange);
        self.step += 1;
        sent
    }

    /// Route every mis-homed particle to its owner, reusing this rank's
    /// staging buffers (steady-state: no staging allocation).
    pub fn rehome(&mut self, comm: &Communicator) -> (usize, usize) {
        rehome_particles_with(
            comm,
            &self.decomp,
            &self.grid,
            self.rank,
            &mut self.particles,
            &mut self.bufs,
        )
    }

    /// Collectively aggregate per-processor-column (`along_x`) or per-row
    /// particle counts for the diffusion balancer. This rank's contribution
    /// vector lives in a reused scratch buffer; the reduced result is
    /// allocated by the collective (message ownership crosses the
    /// transport, as with any MPI receive buffer).
    pub fn aggregate_axis_counts(&mut self, comm: &Communicator, along_x: bool) -> Vec<u64> {
        let (slots, idx) = {
            let (cx, cy) = self.decomp.coords_of(self.rank);
            if along_x {
                (self.decomp.px, cx)
            } else {
                (self.decomp.py, cy)
            }
        };
        self.lb_scratch.clear();
        self.lb_scratch.resize(slots, 0);
        self.lb_scratch[idx] = self.particles.len() as u64;
        allreduce_vec_u64(comm, &self.lb_scratch, ReduceOp::Sum)
    }

    /// Distributed verification: local analytic check, global reduction of
    /// failures, checksum, and max error.
    pub fn verify(&self, comm: &Communicator) -> VerifyReport {
        let local = verify_all(
            &self.grid,
            &self.particles,
            self.step,
            0, // expected sum handled globally below
            DEFAULT_TOLERANCE,
        );
        let checked = allreduce_u64(comm, local.checked, ReduceOp::Sum);
        let failures = allreduce_u64(comm, local.position_failures, ReduceOp::Sum);
        let max_error = allreduce_f64(comm, local.max_error, ReduceOp::Max);
        let id_sum = allreduce_u128(comm, local.id_sum, ReduceOp::Sum);
        VerifyReport {
            checked,
            position_failures: failures,
            max_error,
            failing_ids: merge_failing_ids(comm, &local.failing_ids),
            id_sum,
            expected_id_sum: self.expected_id_sum,
            tolerance: DEFAULT_TOLERANCE,
        }
    }

    /// Collective imbalance probe: (max per-rank count, total count).
    pub fn count_stats(&self, comm: &Communicator) -> (u64, u64) {
        let local = self.particles.len() as u64;
        let max = allreduce_u64(comm, local, ReduceOp::Max);
        let total = allreduce_u64(comm, local, ReduceOp::Sum);
        (max, total)
    }

    /// Final outcome assembly.
    pub fn finish(&self, comm: &Communicator) -> ParOutcome {
        self.finish_traced(comm, &mut Tracer::disabled())
    }

    /// [`RankState::finish`] with the verification collectives timed as
    /// the `verify` phase.
    pub fn finish_traced(&self, comm: &Communicator, tracer: &mut Tracer) -> ParOutcome {
        tracer.phase_start(Phase::Verify);
        let verify = self.verify(comm);
        tracer.phase_end(Phase::Verify);
        let (max_count, total_count) = self.count_stats(comm);
        ParOutcome {
            verify,
            local_count: self.particles.len(),
            max_count,
            total_count,
            steps: self.step,
            local_particles: self.particles.clone(),
        }
    }
}

/// Agree on the trace sampling interval across ranks (max of every rank's
/// `sample_every`; 0 when no rank traces). Collectives in the telemetry
/// path must be entered by *every* rank at the same steps even though
/// typically only rank 0 holds an enabled tracer — runners call this once
/// up front and gate [`snapshot_loads`] on the agreed value.
pub fn trace_interval(comm: &Communicator, tracer: &Tracer) -> u64 {
    allreduce_u64(comm, tracer.sample_every() as u64, ReduceOp::Max)
}

/// Collective telemetry snapshot at a traced step: the per-rank load
/// vector (one slot per rank, vector allreduce) and the global number of
/// particles rehomed since the previous snapshot. Feeds the tracer's load
/// statistics, `rehomed`, and `collective_bytes` counters; returns the
/// global particle count. Must be called by every rank at the same step.
pub fn snapshot_loads(
    comm: &Communicator,
    tracer: &mut Tracer,
    local_count: u64,
    sent_window: u64,
) -> u64 {
    let mut slots = vec![0u64; comm.size()];
    slots[comm.rank()] = local_count;
    let counts = allreduce_vec_u64(comm, &slots, ReduceOp::Sum);
    let moved = allreduce_u64(comm, sent_window, ReduceOp::Sum);
    tracer.add(Counter::Rehomed, moved);
    // This rank's contribution bytes: the slot vector plus the scalar.
    tracer.add(Counter::CollectiveBytes, (slots.len() as u64 + 1) * 8);
    let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    tracer.record_loads(&loads);
    counts.iter().sum()
}

/// Globally merge per-rank failing-id diagnostics: allgather, sort, dedup,
/// cap at [`MAX_FAILING_IDS`]. Every rank ends with the identical list no
/// matter which rank held the failing particles — previously each rank
/// reported only its local ids while the rest of the report was global.
pub fn merge_failing_ids(comm: &Communicator, local: &[u64]) -> Vec<u64> {
    let gathered = allgatherv(comm, encode_u64s(local));
    let mut all: Vec<u64> = gathered.iter().flat_map(|b| decode_u64s(b)).collect();
    all.sort_unstable();
    all.dedup();
    all.truncate(MAX_FAILING_IDS);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_comm::world::run_threads;
    use pic_core::dist::Distribution;
    use pic_core::events::Region;
    use pic_core::init::InitConfig;
    use pic_core::verify::triangular_id_sum;

    #[test]
    fn rank_states_partition_the_population() {
        let setup = InitConfig::new(Grid::new(16).unwrap(), 500, Distribution::PAPER_SKEW)
            .build()
            .unwrap();
        let decomp = Decomp2d::uniform(16, 4);
        let counts: usize = (0..4)
            .map(|r| RankState::new(&setup, decomp.clone(), r).particles.len())
            .sum();
        assert_eq!(counts, 500);
    }

    #[test]
    fn collective_removal_agrees_across_ranks() {
        let grid = Grid::new(16).unwrap();
        let setup = InitConfig::new(grid, 200, Distribution::Uniform)
            .build()
            .unwrap()
            .with_event(Event::remove(
                0,
                Region {
                    x0: 0,
                    x1: 16,
                    y0: 0,
                    y1: 8,
                },
                40,
            ));
        let outcomes = run_threads(4, |comm| {
            let mut st = RankState::new(&setup, Decomp2d::uniform(16, 4), comm.rank());
            st.apply_due_events(&comm);
            (st.expected_id_sum(), st.particles.len() as u64)
        });
        let ledger0 = outcomes[0].0;
        assert!(
            outcomes.iter().all(|o| o.0 == ledger0),
            "ledgers must agree"
        );
        let total: u64 = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(total, 160);
        assert!(ledger0 < triangular_id_sum(200));
    }

    #[test]
    fn injection_lands_on_owning_ranks_only() {
        let grid = Grid::new(16).unwrap();
        let region = Region {
            x0: 0,
            x1: 4,
            y0: 0,
            y1: 4,
        };
        let setup = InitConfig::new(grid, 50, Distribution::Uniform)
            .build()
            .unwrap()
            .with_event(Event::inject(0, region, 30, 0, 0, 1));
        let outcomes = run_threads(4, |comm| {
            let mut st = RankState::new(&setup, Decomp2d::uniform(16, 4), comm.rank());
            st.apply_due_events(&comm);
            (st.expected_id_sum(), st.particles.len() as u64)
        });
        let total: u64 = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(total, 80);
        assert_eq!(outcomes[0].0, triangular_id_sum(80));
    }
}
