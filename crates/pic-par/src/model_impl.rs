//! The baseline and diffusion strategies expressed against the analytic
//! load model, for full-scale modeled runs.
//!
//! The decision logic (decomposition, [`crate::diffusion::diffuse_xcuts`])
//! is shared verbatim with the functional threaded implementations; only
//! the particle bookkeeping is replaced by O(1) count queries, and time is
//! charged through [`pic_cluster::CostModel`] + [`pic_cluster::BspSimulator`].
//! This is what lets Figures 6–7 run at 24–3,072 modeled cores on one host.

use crate::decomp::Decomp2d;
use crate::diffusion::{diffuse_xcuts, DiffusionParams};
use pic_cluster::bsp::{BspSimulator, RunStats};
use pic_cluster::cost::CostModel;
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_cluster::machine::MachineModel;
use pic_cluster::noise::NoiseModel;
use pic_core::dist::Distribution;

/// Configuration of a modeled run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    pub ncells: usize,
    pub n: u64,
    pub steps: u64,
    pub dist: Distribution,
    /// Horizontal stride parameter (cells/step = 2k+1).
    pub k: u32,
    /// Drift direction.
    pub dir: i8,
    pub cores: usize,
    pub machine: MachineModel,
    pub cost: CostModel,
    /// System non-uniformity injection (category-1 imbalance; defaults to
    /// a uniform machine).
    pub noise: NoiseModel,
}

impl ModelConfig {
    /// The paper's strong-scaling experiment (Figure 6): 2,998² cells,
    /// 600 k particles, 6,000 steps, geometric skew r = 0.999, k = 0.
    pub fn paper_strong(cores: usize) -> ModelConfig {
        ModelConfig {
            ncells: 2998,
            n: 600_000,
            steps: 6_000,
            dist: Distribution::PAPER_SKEW,
            k: 0,
            dir: 1,
            cores,
            machine: MachineModel::edison(cores),
            cost: CostModel::edison_like(),
            noise: NoiseModel::None,
        }
    }

    /// The paper's AMPI-tuning experiment (Figure 5): 5,998² cells,
    /// 6.4 M particles, 6,000 steps, 192 cores.
    pub fn paper_tuning() -> ModelConfig {
        ModelConfig {
            ncells: 5998,
            n: 6_400_000,
            steps: 6_000,
            dist: Distribution::PAPER_SKEW,
            k: 0,
            dir: 1,
            cores: 192,
            machine: MachineModel::edison(192),
            cost: CostModel::edison_like(),
            noise: NoiseModel::None,
        }
    }

    /// The paper's weak-scaling experiment (Figure 7): 11,998² cells,
    /// 400 k particles at 48 cores, particles scale with cores.
    pub fn paper_weak(cores: usize) -> ModelConfig {
        ModelConfig {
            ncells: 11_998,
            n: 400_000 * (cores as u64) / 48,
            steps: 6_000,
            dist: Distribution::PAPER_SKEW,
            k: 0,
            dir: 1,
            cores,
            machine: MachineModel::edison(cores),
            cost: CostModel::edison_like(),
            noise: NoiseModel::None,
        }
    }

    /// Scale the run length down by `factor` (for tests/benches); the
    /// per-step dynamics are periodic in the drift, so shapes survive.
    ///
    /// Per-*invocation* load-balancing costs are divided by the same
    /// factor: tuned LB intervals are proportional to the run length, so
    /// invocation counts are scale-invariant — dividing their fixed cost
    /// preserves the overhead-to-compute ratio of the full-scale run.
    pub fn shortened(mut self, factor: u64) -> ModelConfig {
        self.steps = (self.steps / factor).max(1);
        let f = factor as f64;
        self.cost.ampi_lb_base_ns /= f;
        self.cost.ampi_lb_tree_ns /= f;
        self.cost.ampi_lb_per_vp_ns /= f;
        self.cost.lb_decision_ns /= f;
        self
    }
}

/// Result of a modeled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOutcome {
    pub stats: RunStats,
    /// Modeled wall seconds (= `stats.seconds`).
    pub seconds: f64,
    /// Max particles on any rank at the end (paper §V-B).
    pub max_particles_end: f64,
    /// Ideal particles per rank.
    pub ideal_particles: f64,
    /// Fraction of neighbor-exchange channels that cross a node boundary
    /// at the end of the run — the fragmentation indicator behind the
    /// paper's locality argument (§V-B: migrated interior VPs turn local
    /// traffic into network traffic).
    pub remote_neighbor_frac: f64,
}

/// Per-step per-core compute and communication charges for a Cartesian
/// decomposition with identity rank→core placement.
// Takes the full modeled-run context piecewise so callers can keep the
// output buffers borrowed separately from the config.
#[allow(clippy::too_many_arguments)]
fn charge_step(
    decomp: &Decomp2d,
    load: &ColumnLoadModel,
    machine: &MachineModel,
    cost: &CostModel,
    noise: &NoiseModel,
    step: u64,
    compute: &mut [f64],
    comm: &mut [f64],
) {
    let px = decomp.px;
    let py = decomp.py;
    let ncells = decomp.ncells;
    for cy in 0..py {
        let rows = decomp.row_range(cy);
        for cx in 0..px {
            let rank = decomp.rank_of(cx, cy);
            let cols = decomp.col_range(cx);
            compute[rank] =
                load.count_in_rect(cols, rows) * cost.particle_ns * noise.factor(rank, step);
        }
    }
    // Horizontal neighbor exchange: leavers cross each processor column's
    // downstream cut. (The model assumes the stride does not skip over a
    // whole processor column; the functional implementation handles the
    // general case.)
    let rightward = load.stride() >= 0;
    for cy in 0..py {
        let rows = decomp.row_range(cy);
        let frac = {
            // Fraction of a column's particles lying in this row block.
            let total = load.total();
            if total == 0 {
                0.0
            } else {
                load.count_in_rect((0, ncells), rows) / total as f64
            }
        };
        for cx in 0..px {
            let rank = decomp.rank_of(cx, cy);
            let (nb_out, cut_out) = if rightward {
                (
                    decomp.rank_of((cx + 1) % px, cy),
                    decomp.xcuts[cx + 1] % ncells,
                )
            } else {
                (decomp.rank_of((cx + px - 1) % px, cy), decomp.xcuts[cx])
            };
            let sent = load.crossing_cut(cut_out) as f64 * frac;
            let d_out = machine.distance(rank, nb_out);
            comm[rank] += cost.particle_msg_ns(d_out, sent);
            comm[nb_out] += cost.particle_msg_ns(d_out, sent);
        }
    }
}

/// Fraction of (rank → x-neighbor) channels that cross a node boundary.
fn remote_neighbor_fraction(decomp: &Decomp2d, machine: &MachineModel) -> f64 {
    use pic_cluster::machine::Distance;
    let total = decomp.ranks();
    if total == 0 {
        return 0.0;
    }
    let mut remote = 0usize;
    for r in 0..total {
        let (cx, cy) = decomp.coords_of(r);
        let nb = decomp.rank_of((cx + 1) % decomp.px, cy);
        if machine.distance(r, nb) == Distance::Remote {
            remote += 1;
        }
    }
    remote as f64 / total as f64
}

/// Max per-rank particle count under the current decomposition.
fn max_rank_count(decomp: &Decomp2d, load: &ColumnLoadModel) -> f64 {
    let mut max = 0.0f64;
    for r in 0..decomp.ranks() {
        let (cols, rows) = decomp.bounds(r);
        max = max.max(load.count_in_rect(cols, rows));
    }
    max
}

/// Modeled `mpi-2d` baseline run.
pub fn model_baseline(cfg: &ModelConfig) -> ModelOutcome {
    let decomp = Decomp2d::uniform(cfg.ncells, cfg.cores);
    let mut load = ColumnLoadModel::new(cfg.dist, cfg.ncells, cfg.n, cfg.k, cfg.dir);
    let mut bsp = BspSimulator::new(cfg.machine, cfg.cost, cfg.cores);
    let mut compute = vec![0.0; cfg.cores];
    let mut comm = vec![0.0; cfg.cores];
    for s in 0..cfg.steps {
        compute.iter_mut().for_each(|v| *v = 0.0);
        comm.iter_mut().for_each(|v| *v = 0.0);
        charge_step(
            &decomp,
            &load,
            &cfg.machine,
            &cfg.cost,
            &cfg.noise,
            s,
            &mut compute,
            &mut comm,
        );
        bsp.step(&compute, &comm);
        load.advance(1);
    }
    ModelOutcome {
        stats: bsp.stats(),
        seconds: bsp.stats().seconds,
        max_particles_end: max_rank_count(&decomp, &load),
        ideal_particles: cfg.n as f64 / cfg.cores as f64,
        remote_neighbor_frac: remote_neighbor_fraction(&decomp, &cfg.machine),
    }
}

/// Modeled `mpi-2d-LB` (diffusion) run.
pub fn model_diffusion(cfg: &ModelConfig, params: DiffusionParams) -> ModelOutcome {
    assert!(params.interval > 0 && params.border_w > 0);
    let mut decomp = Decomp2d::uniform(cfg.ncells, cfg.cores);
    let mut load = ColumnLoadModel::new(cfg.dist, cfg.ncells, cfg.n, cfg.k, cfg.dir);
    let mut bsp = BspSimulator::new(cfg.machine, cfg.cost, cfg.cores);
    let mut compute = vec![0.0; cfg.cores];
    let mut comm = vec![0.0; cfg.cores];
    // Reused across LB invocations: per-processor-column counts and the
    // proposed cuts never reallocate in steady state.
    let mut col_counts: Vec<u64> = Vec::with_capacity(decomp.px);
    let px = decomp.px;
    let py = decomp.py;
    for s in 1..=cfg.steps {
        compute.iter_mut().for_each(|v| *v = 0.0);
        comm.iter_mut().for_each(|v| *v = 0.0);
        charge_step(
            &decomp,
            &load,
            &cfg.machine,
            &cfg.cost,
            &cfg.noise,
            s,
            &mut compute,
            &mut comm,
        );
        bsp.step(&compute, &comm);
        load.advance(1);
        if s % params.interval as u64 == 0 && s < cfg.steps {
            // Aggregate per-processor-column counts (the two reductions of
            // the paper's two-phase scheme collapse to one here).
            col_counts.clear();
            col_counts.extend((0..px).map(|cx| {
                let (a, b) = decomp.col_range(cx);
                load.count_in_columns(a, b)
            }));
            let new_cuts = diffuse_xcuts(
                &decomp.xcuts,
                &col_counts,
                params.tau,
                params.border_w,
                cfg.ncells,
            );
            // Charge the LB phase: reduction + decision + migration.
            let mut max_migration_ns = 0.0f64;
            let mut total_bytes = 0.0f64;
            let moved_cuts = decomp
                .xcuts
                .iter()
                .zip(&new_cuts)
                .enumerate()
                .take(px)
                .skip(1);
            for (i, (&old, &new)) in moved_cuts {
                if old == new {
                    continue;
                }
                let (a, b) = (old.min(new), old.max(new));
                let moved_particles = load.count_in_columns(a, b) as f64;
                let moved_cols = (b - a) as f64;
                for cy in 0..py {
                    let rows = decomp.row_range(cy);
                    let rank_l = decomp.rank_of(i - 1, cy);
                    let rank_r = decomp.rank_of(i, cy);
                    let d = cfg.machine.distance(rank_l, rank_r);
                    let cells = moved_cols * (rows.1 - rows.0) as f64;
                    let parts = moved_particles * (rows.1 - rows.0) as f64 / cfg.ncells as f64;
                    let ns = cfg.cost.migration_ns(d, cells, parts);
                    max_migration_ns = max_migration_ns.max(ns);
                    total_bytes += cells * cfg.cost.cell_bytes + parts * cfg.cost.particle_bytes;
                }
            }
            let lb_ns = cfg.cost.sync_ns(cfg.cores) + cfg.cost.lb_decision_ns + max_migration_ns;
            bsp.lb_phase(lb_ns, total_bytes);
            decomp.set_xcuts(new_cuts);
        }
    }
    ModelOutcome {
        stats: bsp.stats(),
        seconds: bsp.stats().seconds,
        max_particles_end: max_rank_count(&decomp, &load),
        ideal_particles: cfg.n as f64 / cfg.cores as f64,
        remote_neighbor_frac: remote_neighbor_fraction(&decomp, &cfg.machine),
    }
}

/// Sweep diffusion parameters and keep the best run — the paper "tuned the
/// relevant parameters and picked the best performing execution at each
/// level of concurrency".
pub fn model_diffusion_tuned(cfg: &ModelConfig) -> (ModelOutcome, DiffusionParams) {
    let mut best: Option<(ModelOutcome, DiffusionParams)> = None;
    // Candidate intervals scale with the run length (the paper's tuned
    // values are for 6,000-step runs); the border width must cover the
    // drift accumulated between invocations, so it is tied to the
    // interval × stride.
    // Interval candidates span the practical co-tuning range (the paper's
    // 6,000-step runs → F ∈ {5, 10, 20, 50}); balancing every other step
    // is outside what an MPI implementation would realistically sweep.
    let steps = cfg.steps;
    let mut intervals: Vec<u32> = [steps / 1200, steps / 600, steps / 300, steps / 120]
        .iter()
        .map(|&i| (i.max(1)) as u32)
        .collect();
    intervals.dedup();
    for &interval in &intervals {
        for &w_per_step in &[1usize, 2, 4, 8, 12] {
            let params = DiffusionParams {
                interval,
                tau: (cfg.n / cfg.cores as u64 / 20).max(1),
                border_w: w_per_step * interval as usize * (2 * cfg.k as usize + 1),
            };
            let out = model_diffusion(cfg, params);
            if best.as_ref().is_none_or(|(b, _)| out.seconds < b.seconds) {
                best = Some((out, params));
            }
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(cores: usize) -> ModelConfig {
        ModelConfig {
            ncells: 256,
            n: 64_000,
            steps: 400,
            dist: Distribution::Geometric { r: 0.99 },
            k: 0,
            dir: 1,
            cores,
            machine: MachineModel::edison(cores),
            cost: CostModel::edison_like(),
            noise: NoiseModel::None,
        }
    }

    #[test]
    fn baseline_single_core_has_no_imbalance() {
        let out = model_baseline(&small_cfg(1));
        assert!((out.stats.imbalance - 1.0).abs() < 1e-9);
        assert_eq!(out.stats.steps, 400);
    }

    #[test]
    fn baseline_shows_skew_imbalance() {
        let out = model_baseline(&small_cfg(16));
        assert!(
            out.stats.imbalance > 1.5,
            "geometric skew must show up as imbalance: {}",
            out.stats.imbalance
        );
        assert!(out.max_particles_end > 1.5 * out.ideal_particles);
    }

    #[test]
    fn diffusion_beats_baseline_on_skew() {
        let cfg = small_cfg(16);
        let base = model_baseline(&cfg);
        let (diff, _) = model_diffusion_tuned(&cfg);
        assert!(
            diff.seconds < base.seconds,
            "diffusion {:.3}s must beat baseline {:.3}s",
            diff.seconds,
            base.seconds
        );
        assert!(diff.max_particles_end < base.max_particles_end);
    }

    #[test]
    fn uniform_distribution_gains_nothing_from_lb() {
        let mut cfg = small_cfg(16);
        cfg.dist = Distribution::Uniform;
        let base = model_baseline(&cfg);
        let diff = model_diffusion(
            &cfg,
            DiffusionParams {
                interval: 20,
                tau: 1000,
                border_w: 20,
            },
        );
        // LB pays its overhead but moves nothing: slightly slower or equal.
        assert!(diff.seconds >= base.seconds * 0.999);
        assert!((base.stats.imbalance - 1.0).abs() < 0.1);
    }

    #[test]
    fn strong_scaling_reduces_time() {
        let t1 = model_baseline(&small_cfg(1)).seconds;
        let t4 = model_baseline(&small_cfg(4)).seconds;
        let t16 = model_baseline(&small_cfg(16)).seconds;
        assert!(t4 < t1, "4 cores {t4} < 1 core {t1}");
        assert!(t16 < t4, "16 cores {t16} < 4 cores {t4}");
    }

    #[test]
    fn paper_config_presets() {
        let s = ModelConfig::paper_strong(24);
        assert_eq!(s.ncells, 2998);
        assert_eq!(s.n, 600_000);
        let w = ModelConfig::paper_weak(3072);
        assert_eq!(w.n, 400_000 * 64);
        let t = ModelConfig::paper_tuning();
        assert_eq!(t.cores, 192);
    }

    #[test]
    fn paper_e5_max_count_shape() {
        // Paper §V-B at 24 cores: baseline max 62,645, diffusion 30,585,
        // ideal 25,000 (ratios 2.5× and 1.22×). Check the model lands in
        // the right neighborhood (shortened run keeps the same end-state
        // geometry because the drift is periodic).
        let cfg = ModelConfig::paper_strong(24).shortened(10);
        let base = model_baseline(&cfg);
        let ratio = base.max_particles_end / base.ideal_particles;
        assert!(
            (1.8..3.5).contains(&ratio),
            "baseline max/ideal {ratio} should be ≈2.5 (paper: 62,645/25,000)"
        );
        let (diff, _) = model_diffusion_tuned(&cfg);
        let ratio_lb = diff.max_particles_end / diff.ideal_particles;
        assert!(
            ratio_lb < ratio * 0.7,
            "diffusion should cut the max count substantially: {ratio_lb} vs {ratio}"
        );
    }
}
