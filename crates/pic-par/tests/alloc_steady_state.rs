//! Steady-state allocation audit for the distributed rank loop.
//!
//! The single-process engine promises zero per-step allocations
//! (`pic-core/tests/alloc_steady_state.rs`). The rank loop cannot promise
//! zero — message payloads surrender their ownership to the transport on
//! every send, like MPI eager buffers — but it does promise *steady state*:
//! once warmed, a step's staging side (per-destination buckets, wire
//! encode/decode scratch, the binned store's bins and tail) reuses its
//! capacity, and recycled arrival buffers circulate back into the next
//! encode pass. Before the exchange-scratch rework, every step allocated
//! fresh encode buffers per destination and a decoded `Vec<Particle>` per
//! source; this audit pins the reworked behavior with a per-rank counting
//! allocator: a later measurement window must not allocate more than an
//! earlier one, and the absolute per-step budget stays small.
//!
//! Counters are thread-local, so each rank audits exactly its own work and
//! the harness threads cannot pollute the numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_par::decomp::Decomp2d;
use pic_par::runner::{ExchangeMode, RankKernel, RankState, WireFormat};

struct CountingAlloc;

thread_local! {
    /// True only inside a rank's measurement window (const-initialized so
    /// reading it never allocates).
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
    static LOCAL_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn note_alloc() {
    let counted = IN_SCOPE.try_with(Cell::get).unwrap_or(false);
    if counted {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RANKS: usize = 4;
const WARM_STEPS: u32 = 12;
const WINDOW_STEPS: u32 = 16;

/// Steps this rank through one measured window, returning its own
/// allocation count. Every rank runs identical loop trip counts, so the
/// collectives inside `step` stay in lockstep.
fn measured_window(st: &mut RankState, comm: &pic_comm::comm::Communicator) -> usize {
    LOCAL_ALLOCS.with(|c| c.set(0));
    IN_SCOPE.with(|s| s.set(true));
    for _ in 0..WINDOW_STEPS {
        st.step(comm);
    }
    IN_SCOPE.with(|s| s.set(false));
    LOCAL_ALLOCS.with(Cell::get)
}

fn audit(kernel: RankKernel) -> Vec<(usize, usize)> {
    // A *uniform* drifting cloud: per-rank populations are stationary (what
    // leaves a subdomain each step is replaced from the neighbor), so any
    // allocation in a warmed window is staging churn, not workload growth.
    // Boundary-cell residents still cross a cut every step, keeping the
    // exchange path busy.
    let setup = InitConfig::new(Grid::new(32).unwrap(), 3_000, Distribution::Uniform)
        .with_m(1)
        .build()
        .unwrap();
    run_threads(RANKS, |comm| {
        let decomp = Decomp2d::uniform(32, RANKS);
        let mut st = RankState::with_kernel(&setup, decomp, comm.rank(), kernel);
        for _ in 0..WARM_STEPS {
            st.step(&comm);
        }
        let first = measured_window(&mut st, &comm);
        let second = measured_window(&mut st, &comm);
        // The run did real cross-rank work while we counted.
        assert!(st.local_count() > 0, "rank {} went empty", comm.rank());
        (first, second)
    })
}

#[test]
fn rank_step_loop_reaches_allocation_steady_state() {
    // The drifting uniform cloud keeps the exchange busy: every step moves
    // boundary particles across at least one cut. Audit the binned default
    // (typed zero-copy wire over the overlapped sparse exchange — escape
    // dissemination, per-neighbor counts, the split-phase handle, and the
    // typed spare-buffer free-list must all run off pooled buffers), the
    // dense synchronous oracle, the byte-wire serialization oracle under
    // both exchange modes, the fast tier, and the AoS reference loop
    // (sparse-synchronous: AoS has no column split to overlap).
    for kernel in [
        RankKernel::default(),
        RankKernel::default().with_exchange(ExchangeMode::DenseSync),
        RankKernel::default().with_wire(WireFormat::Bytes),
        RankKernel::default()
            .with_wire(WireFormat::Bytes)
            .with_exchange(ExchangeMode::DenseSync),
        RankKernel::default().with_rebin_interval(1),
        RankKernel::from_sweep(pic_core::engine::SweepMode::SoaBinnedFast),
        RankKernel::aos(),
    ] {
        let windows = audit(kernel);
        for (rank, &(first, second)) in windows.iter().enumerate() {
            // Steady state: a later warmed window allocates no more than
            // the one before it, modulo transport-queue jitter (channel
            // queue depth — and thus its rare capacity growth — depends on
            // thread interleaving, not on the staging code under audit).
            assert!(
                second <= first + 2,
                "{kernel:?} rank {rank}: allocation growth between warmed \
                 windows ({first} then {second})"
            );
            // Absolute budget: the old per-step staging path allocated at
            // least one encode buffer per active destination plus one
            // decoded vector per source every step (≥ 2 per step per rank
            // even with a single active neighbor). The reworked path's
            // residue is occasional capacity growth only — far under one
            // allocation per step.
            assert!(
                second as u32 <= WINDOW_STEPS / 2,
                "{kernel:?} rank {rank}: {second} allocations in a \
                 {WINDOW_STEPS}-step warmed window"
            );
        }
    }
}
