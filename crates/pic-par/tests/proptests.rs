//! Property tests of the decomposition and the diffusion decision logic.

use pic_par::decomp::{factor_2d, Decomp2d};
use pic_par::diffusion::diffuse_xcuts;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// factor_2d always factors exactly with px ≥ py.
    #[test]
    fn factor_2d_exact(p in 1usize..10_000) {
        let (px, py) = factor_2d(p);
        prop_assert_eq!(px * py, p);
        prop_assert!(px >= py);
    }

    /// A uniform decomposition is always a partition and owner lookups are
    /// consistent with bounds.
    #[test]
    fn uniform_decomp_partitions(
        ncells_half in 8usize..64,
        p in 1usize..24,
    ) {
        let ncells = ncells_half * 2;
        prop_assume!(factor_2d(p).0 <= ncells);
        let d = Decomp2d::uniform(ncells, p);
        prop_assert!(d.is_partition());
        let total: usize = (0..p).map(|r| d.cell_count(r)).sum();
        prop_assert_eq!(total, ncells * ncells);
        // Spot-check owner lookups.
        for col in [0, ncells / 3, ncells - 1] {
            for row in [0, ncells / 2, ncells - 1] {
                let owner = d.owner_of_cell(col, row);
                prop_assert!(d.owns(owner, col, row));
            }
        }
    }

    /// diffuse_xcuts always yields a valid strictly-increasing cut vector
    /// with pinned ends, whatever the counts and parameters.
    #[test]
    fn diffuse_xcuts_always_valid(
        px in 2usize..32,
        ncells_mult in 2usize..64,
        tau in 0u64..1000,
        w in 1usize..200,
        seed in any::<u64>(),
    ) {
        let ncells = px * ncells_mult;
        let xcuts: Vec<usize> = (0..=px).map(|i| i * ncells / px).collect();
        let counts: Vec<u64> = (0..px).map(|i| (seed >> (i % 48)) % 10_000).collect();
        let new = diffuse_xcuts(&xcuts, &counts, tau, w, ncells);
        prop_assert_eq!(new.len(), px + 1);
        prop_assert_eq!(new[0], 0);
        prop_assert_eq!(new[px], ncells);
        for win in new.windows(2) {
            prop_assert!(win[0] < win[1], "{:?}", new);
        }
    }

    /// Repeated diffusion on static counts converges: cuts stop moving
    /// once all adjacent differences are within τ, and the final max
    /// column width imbalance reflects the count balance.
    #[test]
    fn diffusion_reaches_fixed_point_on_static_uniform(
        px in 2usize..12,
        width in 8usize..40,
    ) {
        let ncells = px * width;
        let mut xcuts: Vec<usize> = (0..=px).map(|i| i * ncells / px).collect();
        // Uniform density: count proportional to width.
        let density = 100u64;
        for _ in 0..10_000 {
            let counts: Vec<u64> = (0..px)
                .map(|i| (xcuts[i + 1] - xcuts[i]) as u64 * density)
                .collect();
            let new = diffuse_xcuts(&xcuts, &counts, density, 1, ncells);
            if new == xcuts {
                break;
            }
            xcuts = new;
        }
        let counts: Vec<u64> = (0..px)
            .map(|i| (xcuts[i + 1] - xcuts[i]) as u64 * density)
            .collect();
        let new = diffuse_xcuts(&xcuts, &counts, density, 1, ncells);
        prop_assert_eq!(&new, &xcuts, "must be at a fixed point");
        // At the fixed point adjacent widths differ by ≤ 1 cell (τ = one
        // cell's worth of particles).
        for w2 in xcuts.windows(3) {
            let a = w2[1] - w2[0];
            let b = w2[2] - w2[1];
            prop_assert!(a.abs_diff(b) <= 1, "widths {a} vs {b}");
        }
    }

    /// pcol_of is the inverse of the cut ranges for arbitrary valid cuts.
    #[test]
    fn pcol_lookup_matches_ranges(
        widths in prop::collection::vec(1usize..20, 2..16),
    ) {
        let ncells_raw: usize = widths.iter().sum();
        let ncells = if ncells_raw % 2 == 0 { ncells_raw } else { ncells_raw + 1 };
        let mut widths = widths;
        if ncells_raw % 2 != 0 {
            *widths.last_mut().unwrap() += 1;
        }
        let px = widths.len();
        let mut d = Decomp2d::uniform_grid(ncells, px, 1);
        let mut cuts = vec![0usize];
        for w in &widths {
            cuts.push(cuts.last().unwrap() + w);
        }
        d.set_xcuts(cuts.clone());
        for cx in 0..px {
            for col in cuts[cx]..cuts[cx + 1] {
                prop_assert_eq!(d.pcol_of(col), cx);
            }
        }
    }
}
