//! Rank-path equivalence (DESIGN.md §13): the binned SIMD rank loop is a
//! drop-in replacement for the AoS reference loop.
//!
//! - **Exact tier**: bit-identical final state — same surviving ids, same
//!   position/velocity bit patterns — across distributions, rank counts,
//!   rebin intervals, SIMD backends, and both distributed implementations
//!   in this crate (static baseline and diffusion LB). Particles never
//!   interact, so binning may reorder the sweep but must not change one
//!   bit of any particle's trajectory.
//! - **Fast tier**: positional drift against the AoS loop stays within
//!   the derived analytic bound (`verify::analytic_tolerance`), the same
//!   gate the serial engine applies to its fast sweep.
//!
//! The whole file also passes with `PIC_NO_SIMD=1` (CI runs it both
//! ways): forcing scalar must change nothing for the exact tier.

use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::engine::SweepMode;
use pic_core::events::{Event, Region};
use pic_core::geometry::Grid;
use pic_core::init::{InitConfig, SimulationSetup};
use pic_core::simd::SimdBackend;
use pic_core::verify::analytic_tolerance;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel};
use proptest::prelude::*;

const STEPS: u32 = 30;
const N: u64 = 600;

/// A setup that exercises every rank-loop phase: drift (k=1, m=1 ⇒ max
/// stride 3), cross-cut exchange, and the event path (injection and
/// removal mid-run).
fn setup(dist: Distribution) -> SimulationSetup {
    InitConfig::new(Grid::new(32).unwrap(), N, dist)
        .with_k(1)
        .with_m(1)
        .build()
        .unwrap()
        .with_event(Event::inject(
            7,
            Region {
                x0: 2,
                x1: 12,
                y0: 2,
                y1: 12,
            },
            40,
            0,
            1,
            1,
        ))
        .with_event(Event::remove(15, Region::whole(32), 25))
}

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Geometric { r: 0.9 },
        Distribution::Sinusoidal,
        Distribution::Linear {
            alpha: 2.0,
            beta: 3.0,
        },
    ]
}

/// Sorted (id, x-bits, y-bits, vx-bits, vy-bits) across all ranks.
fn bit_finals(outcomes: &[ParOutcome]) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut v: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.local_particles.iter())
        .map(|p| {
            (
                p.id,
                p.x.to_bits(),
                p.y.to_bits(),
                p.vx.to_bits(),
                p.vy.to_bits(),
            )
        })
        .collect();
    v.sort_by_key(|t| t.0);
    v
}

fn run_impl(
    dist: Distribution,
    ranks: usize,
    diffusion: bool,
    kernel: RankKernel,
) -> Vec<ParOutcome> {
    let cfg = ParConfig::new(setup(dist), STEPS).with_kernel(kernel);
    run_threads(ranks, |comm| {
        let o = if diffusion {
            run_diffusion(
                &comm,
                &cfg,
                DiffusionParams {
                    interval: 3,
                    tau: 0,
                    border_w: 3,
                },
            )
        } else {
            run_baseline(&comm, &cfg)
        };
        assert!(o.verify.passed(), "{:?}", o.verify);
        o
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole contract: Binned/Exact ≡ AoS, bit for bit, across the
    /// sampled cross product of distribution × rank count × rebin
    /// interval × implementation × exchange mode. The AoS reference runs
    /// the dense synchronous exchange (the oracle); the binned kernel must
    /// match it under both the oracle and the overlapped sparse default.
    #[test]
    fn binned_exact_bitwise_matches_aos_rank_loop(
        dist_i in 0usize..4,
        ranks in prop::sample::select(vec![1usize, 2, 4]),
        rebin in prop::sample::select(vec![1u32, 3, 16]),
        diffusion in any::<bool>(),
    ) {
        let dist = distributions()[dist_i];
        let aos_kernel = RankKernel::aos().with_exchange(ExchangeMode::DenseSync);
        let aos = bit_finals(&run_impl(dist, ranks, diffusion, aos_kernel));
        for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
            let kernel = RankKernel::default()
                .with_rebin_interval(rebin)
                .with_exchange(exchange);
            let binned = bit_finals(&run_impl(dist, ranks, diffusion, kernel));
            prop_assert_eq!(
                &aos, &binned,
                "dist {:?}, {} ranks, rebin {}, diffusion={}, exchange={:?}",
                dist, ranks, rebin, diffusion, exchange
            );
        }
    }
}

/// Every SIMD backend the host offers produces the same bits as the AoS
/// loop on the exact tier — the lane width is an implementation detail —
/// under both exchange modes.
#[test]
fn binned_exact_bitwise_identical_across_backends() {
    let dist = Distribution::Geometric { r: 0.9 };
    let aos = bit_finals(&run_impl(
        dist,
        4,
        true,
        RankKernel::aos().with_exchange(ExchangeMode::DenseSync),
    ));
    for backend in SimdBackend::available() {
        for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
            let kernel = RankKernel::default()
                .with_backend(backend)
                .with_exchange(exchange);
            let got = bit_finals(&run_impl(dist, 4, true, kernel));
            assert_eq!(
                aos,
                got,
                "backend {} exchange {:?}",
                backend.name(),
                exchange
            );
        }
    }
}

/// The split-phase overlapped path specifically (not the sparse-synchronous
/// fallback): horizontal-only motion keeps every rank row uncrossable, so
/// the border/interior column split is active on every binned rank even
/// under a 2D decomposition. Fast stride (k=2 ⇒ 5 cells/step) plus a
/// mid-run injection keeps the exchange and the escape machinery busy; the
/// result must still match the dense synchronous oracle bit for bit.
#[test]
fn overlapped_split_phase_matches_dense_oracle_bitwise() {
    let setup = InitConfig::new(
        Grid::new(32).unwrap(),
        N,
        Distribution::Geometric { r: 0.85 },
    )
    .with_k(2)
    .build()
    .unwrap()
    .with_event(Event::inject(
        9,
        Region {
            x0: 4,
            x1: 20,
            y0: 4,
            y1: 20,
        },
        50,
        1,
        0,
        -1,
    ));
    for ranks in [1usize, 2, 4] {
        for rebin in [1u32, 3, 16] {
            let mut finals = Vec::new();
            for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
                let kernel = RankKernel::default()
                    .with_rebin_interval(rebin)
                    .with_exchange(exchange);
                let cfg = ParConfig::new(setup.clone(), STEPS).with_kernel(kernel);
                let outcomes = run_threads(ranks, |comm| {
                    let o = run_baseline(&comm, &cfg);
                    assert!(o.verify.passed(), "{:?}", o.verify);
                    o
                });
                finals.push(bit_finals(&outcomes));
            }
            assert_eq!(
                finals[0], finals[1],
                "overlapped sparse diverged from dense oracle ({ranks} ranks, rebin {rebin})"
            );
        }
    }
}

/// Fast-tier drift against the AoS reference stays within the analytic
/// gate, on both implementations and at the extreme rebin intervals. The
/// id sets must still agree exactly — only float trajectories may drift.
#[test]
fn fast_tier_drift_within_analytic_tolerance() {
    // k=1, m=1 ⇒ max stride max(2k+1, |m|) = 3 (same formula the serial
    // engine's `verify_analytic` uses).
    let tol = analytic_tolerance(STEPS as u64, 3);
    let dist = Distribution::Sinusoidal;
    for diffusion in [false, true] {
        let aos = bit_finals(&run_impl(dist, 4, diffusion, RankKernel::aos()));
        for rebin in [1u32, 16] {
            let kernel =
                RankKernel::from_sweep(SweepMode::SoaBinnedFast).with_rebin_interval(rebin);
            let fast = bit_finals(&run_impl(dist, 4, diffusion, kernel));
            assert_eq!(fast.len(), aos.len(), "population diverged");
            for (a, f) in aos.iter().zip(&fast) {
                assert_eq!(a.0, f.0, "id sets diverged");
                let dx = (f64::from_bits(a.1) - f64::from_bits(f.1)).abs();
                let dy = (f64::from_bits(a.2) - f64::from_bits(f.2)).abs();
                assert!(
                    dx <= tol && dy <= tol,
                    "id {}: fast-tier drift ({dx:e}, {dy:e}) exceeds analytic \
                     tolerance {tol:e} (diffusion={diffusion}, rebin={rebin})",
                    a.0
                );
            }
        }
    }
}
