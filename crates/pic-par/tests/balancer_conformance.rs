//! Trait-conformance suite: every strategy behind the [`LoadBalancer`]
//! trait must reproduce the pre-refactor runner loops **bit-identically**.
//!
//! The `oracle` module below is a frozen copy of the baseline and
//! diffusion run loops exactly as they existed before the balancers were
//! unified behind the trait (decision functions included — the hardened
//! library versions are exercised by the real runners on the other side
//! of the comparison). Each conformance case runs the same configuration
//! through both, on every rank, and demands equality of:
//!
//! * the final particle sets (sorted by id), the id checksum, and the
//!   per-rank / global counts;
//! * every cut decision the tracer recorded (step, axis, old cuts, the
//!   counts the decision saw, new cuts);
//! * the per-step trace records and the deterministic summary counters
//!   (everything except the timing fields and the timing-derived
//!   `overlap_ns` counter).
//!
//! The matrix covers the paper's skewed and uniform distributions, rank
//! counts {1, 2, 4}, balancing intervals {1, 5}, and both the x-only and
//! two-phase diffusion modes. A final case pins the adaptive balancer's
//! replicated determinism: all ranks must compute the identical switch
//! sequence without any extra collectives.

use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_par::baseline::run_baseline_traced;
use pic_par::diffusion::{run_diffusion_mode_traced, DiffusionMode, DiffusionParams};
use pic_par::runner::{ParConfig, ParOutcome};
use pic_trace::{Counter, TraceReport, Tracer};

/// Pre-refactor runner loops, copied verbatim from the last commit before
/// the `LoadBalancer` trait existed. The only mechanical adaptation is the
/// run header's added `balancer` argument (the header string is not part
/// of the comparison; the structured records are).
mod oracle {
    use pic_comm::comm::Communicator;
    use pic_par::decomp::Decomp2d;
    use pic_par::diffusion::{DiffusionMode, DiffusionParams};
    use pic_par::runner::{snapshot_loads, trace_interval, ParConfig, ParOutcome, RankState};
    use pic_trace::{Counter, Phase, Tracer};

    fn diffuse_xcuts(
        xcuts: &[usize],
        counts: &[u64],
        tau: u64,
        border_w: usize,
        ncells: usize,
    ) -> Vec<usize> {
        let px = counts.len();
        assert_eq!(xcuts.len(), px + 1);
        let mut proposed: Vec<i64> = xcuts.iter().map(|&c| c as i64).collect();
        for i in 1..px {
            let left = counts[i - 1];
            let right = counts[i];
            if left > right && left - right > tau {
                proposed[i] -= border_w as i64;
            } else if right > left && right - left > tau {
                proposed[i] += border_w as i64;
            }
        }
        let mut out = vec![0usize; px + 1];
        out[px] = ncells;
        for i in 1..px {
            let lo = out[i - 1] as i64 + 1;
            let hi = ncells as i64 - (px - i) as i64;
            out[i] = proposed[i].clamp(lo, hi) as usize;
        }
        out
    }

    fn per_column_counts_into(hist: &[u64], xcuts: &[usize], out: &mut Vec<u64>) {
        let px = xcuts.len().checked_sub(1).expect("xcuts must be non-empty");
        assert_eq!(*xcuts.last().unwrap(), hist.len());
        out.clear();
        out.resize(px, 0);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = hist[xcuts[i]..xcuts[i + 1]].iter().sum();
        }
    }

    fn handed_over_cells(old: &[usize], new: &[usize], ncells: usize) -> u64 {
        old.iter()
            .zip(new)
            .map(|(&o, &n)| o.abs_diff(n) as u64)
            .sum::<u64>()
            * ncells as u64
    }

    pub fn run_baseline_traced(
        comm: &Communicator,
        cfg: &ParConfig,
        tracer: &mut Tracer,
    ) -> ParOutcome {
        let decomp = Decomp2d::uniform(cfg.setup.grid.ncells(), comm.size());
        let mut st = RankState::with_kernel(&cfg.setup, decomp, comm.rank(), cfg.kernel);
        let every = trace_interval(comm, tracer);
        tracer.emit_run_header(
            "baseline",
            comm.size(),
            cfg.setup.particles.len() as u64,
            cfg.steps as u64,
            &st.kernel_desc(),
            "static",
        );
        let mut sent_window = 0u64;
        let mut global_count = cfg.setup.particles.len() as u64;
        for s in 1..=cfg.steps as u64 {
            tracer.begin_step(s);
            sent_window += st.step_traced(comm, tracer) as u64;
            if every > 0 && s.is_multiple_of(every) {
                let msgs = st.take_message_counts();
                global_count =
                    snapshot_loads(comm, tracer, st.local_count() as u64, sent_window, msgs);
                sent_window = 0;
            }
            tracer.end_step(global_count);
        }
        let out = st.finish_traced(comm, tracer);
        tracer.set_final_particles(out.total_count);
        out
    }

    pub fn run_diffusion_mode_traced(
        comm: &Communicator,
        cfg: &ParConfig,
        params: DiffusionParams,
        mode: DiffusionMode,
        tracer: &mut Tracer,
    ) -> ParOutcome {
        assert!(params.interval > 0, "interval must be positive");
        assert!(params.border_w > 0, "border width must be positive");
        let decomp = Decomp2d::uniform(cfg.setup.grid.ncells(), comm.size());
        let mut st = RankState::with_kernel(&cfg.setup, decomp, comm.rank(), cfg.kernel);
        let every = trace_interval(comm, tracer);
        tracer.emit_run_header(
            "diffusion",
            comm.size(),
            cfg.setup.particles.len() as u64,
            cfg.steps as u64,
            &st.kernel_desc(),
            "diffusion",
        );
        let mut sent_window = 0u64;
        let mut global_count = cfg.setup.particles.len() as u64;
        for s in 1..=cfg.steps {
            tracer.begin_step(s as u64);
            sent_window += st.step_traced(comm, tracer) as u64;
            if s % params.interval == 0 && s < cfg.steps {
                tracer.phase_start(Phase::Balance);
                sent_window += lb_step(comm, &mut st, params, mode, tracer) as u64;
                tracer.phase_end(Phase::Balance);
            }
            if every > 0 && (s as u64).is_multiple_of(every) {
                let msgs = st.take_message_counts();
                global_count =
                    snapshot_loads(comm, tracer, st.local_count() as u64, sent_window, msgs);
                sent_window = 0;
            }
            tracer.end_step(global_count);
        }
        let out = st.finish_traced(comm, tracer);
        tracer.set_final_particles(out.total_count);
        out
    }

    fn lb_step(
        comm: &Communicator,
        st: &mut RankState,
        params: DiffusionParams,
        mode: DiffusionMode,
        tracer: &mut Tracer,
    ) -> usize {
        let mut changed = false;
        if matches!(mode, DiffusionMode::XOnly | DiffusionMode::TwoPhase) {
            let mut hist_scratch = Vec::new();
            let hist = st.aggregate_column_histogram(comm, &mut hist_scratch);
            tracer.add(Counter::CollectiveBytes, hist.len() as u64 * 8);
            let mut col_counts = Vec::new();
            per_column_counts_into(&hist, &st.decomp.xcuts, &mut col_counts);
            let new_cuts = diffuse_xcuts(
                &st.decomp.xcuts,
                &col_counts,
                params.tau,
                params.border_w,
                st.decomp.ncells,
            );
            tracer.record_cuts('x', &st.decomp.xcuts, &col_counts, &new_cuts);
            if new_cuts != st.decomp.xcuts {
                tracer.add(
                    Counter::BorderCells,
                    handed_over_cells(&st.decomp.xcuts, &new_cuts, st.decomp.ncells),
                );
                st.decomp.set_xcuts(new_cuts);
                changed = true;
            }
        }
        if matches!(mode, DiffusionMode::YOnly | DiffusionMode::TwoPhase) {
            let mut row_counts = Vec::new();
            st.aggregate_axis_counts_into(comm, false, &mut row_counts);
            tracer.add(Counter::CollectiveBytes, row_counts.len() as u64 * 8);
            let new_cuts = diffuse_xcuts(
                &st.decomp.ycuts,
                &row_counts,
                params.tau,
                params.border_w,
                st.decomp.ncells,
            );
            tracer.record_cuts('y', &st.decomp.ycuts, &row_counts, &new_cuts);
            if new_cuts != st.decomp.ycuts {
                tracer.add(
                    Counter::BorderCells,
                    handed_over_cells(&st.decomp.ycuts, &new_cuts, st.decomp.ncells),
                );
                st.decomp.set_ycuts(new_cuts);
                changed = true;
            }
        }
        if changed {
            debug_assert!(st.decomp.is_partition());
            st.rebuild_charges();
        }
        let (sent, _received) = st.rehome(comm);
        st.rebind_store();
        sent
    }
}

fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
    ParConfig::new(
        InitConfig::new(Grid::new(32).unwrap(), n, dist)
            .with_m(1)
            .build()
            .unwrap(),
        steps,
    )
}

const DISTS: [Distribution; 3] = [
    Distribution::Geometric { r: 0.85 },
    Distribution::Sinusoidal,
    Distribution::Uniform,
];

/// Assert two per-rank (outcome, report) sets are bit-identical in every
/// deterministic dimension.
fn assert_identical(
    label: &str,
    new: &[(ParOutcome, Option<TraceReport>)],
    old: &[(ParOutcome, Option<TraceReport>)],
) {
    assert_eq!(new.len(), old.len());
    for (rank, ((no, nr), (oo, or))) in new.iter().zip(old).enumerate() {
        assert!(no.verify.passed(), "{label} rank {rank}: {:?}", no.verify);
        assert_eq!(no.local_count, oo.local_count, "{label} rank {rank}");
        assert_eq!(no.max_count, oo.max_count, "{label} rank {rank}");
        assert_eq!(no.total_count, oo.total_count, "{label} rank {rank}");
        assert_eq!(no.verify.id_sum, oo.verify.id_sum, "{label} rank {rank}");
        let mut pn = no.local_particles.clone();
        let mut po = oo.local_particles.clone();
        pn.sort_by_key(|p| p.id);
        po.sort_by_key(|p| p.id);
        assert_eq!(pn, po, "{label} rank {rank}: particle sets differ");
        let (nr, or) = (nr.as_ref().expect(label), or.as_ref().expect(label));
        assert_eq!(nr.cuts, or.cuts, "{label} rank {rank}: cut decisions");
        // Step records: everything except the wall-clock phase times and
        // the timing-derived overlap counter is deterministic.
        assert_eq!(nr.steps.len(), or.steps.len(), "{label} rank {rank}");
        for (sn, so) in nr.steps.iter().zip(&or.steps) {
            assert_eq!(sn.step, so.step, "{label} rank {rank}");
            assert_eq!(sn.particles, so.particles, "{label} rank {rank}");
            assert_eq!(sn.loads, so.loads, "{label} rank {rank} step {}", sn.step);
            assert_eq!(sn.stats, so.stats, "{label} rank {rank} step {}", sn.step);
            let mut cn = sn.counters;
            let mut co = so.counters;
            cn[Counter::OverlapNs.idx()] = 0;
            co[Counter::OverlapNs.idx()] = 0;
            assert_eq!(cn, co, "{label} rank {rank} step {} counters", sn.step);
        }
        assert_eq!(nr.summary.steps, or.summary.steps, "{label} rank {rank}");
        assert_eq!(
            nr.summary.final_particles, or.summary.final_particles,
            "{label} rank {rank}"
        );
        assert_eq!(
            nr.summary.max_imbalance, or.summary.max_imbalance,
            "{label} rank {rank}"
        );
        assert_eq!(
            nr.summary.mean_imbalance, or.summary.mean_imbalance,
            "{label} rank {rank}"
        );
        // Counters are deterministic except the timing-derived overlap.
        let mut cn = nr.summary.counters;
        let mut co = or.summary.counters;
        cn[Counter::OverlapNs.idx()] = 0;
        co[Counter::OverlapNs.idx()] = 0;
        assert_eq!(cn, co, "{label} rank {rank}: summary counters");
    }
}

fn run_pair(
    c: &ParConfig,
    ranks: usize,
    run_new: impl Fn(&pic_comm::comm::Communicator, &ParConfig, &mut Tracer) -> ParOutcome + Send + Sync,
    run_old: impl Fn(&pic_comm::comm::Communicator, &ParConfig, &mut Tracer) -> ParOutcome + Send + Sync,
) -> (
    Vec<(ParOutcome, Option<TraceReport>)>,
    Vec<(ParOutcome, Option<TraceReport>)>,
) {
    // Every rank traces, so conformance is checked on all replicas, not
    // just rank 0's view.
    let new = run_threads(ranks, |comm| {
        let mut t = Tracer::in_memory(1);
        let o = run_new(&comm, c, &mut t);
        (o, t.finish())
    });
    let old = run_threads(ranks, |comm| {
        let mut t = Tracer::in_memory(1);
        let o = run_old(&comm, c, &mut t);
        (o, t.finish())
    });
    (new, old)
}

#[test]
fn baseline_matches_pre_refactor_loop() {
    for dist in DISTS {
        for ranks in [1usize, 2, 4] {
            let c = cfg(1200, dist, 24);
            let (new, old) = run_pair(
                &c,
                ranks,
                |comm, c, t| run_baseline_traced(comm, c, t),
                |comm, c, t| oracle::run_baseline_traced(comm, c, t),
            );
            assert_identical(&format!("baseline {dist:?} ranks={ranks}"), &new, &old);
        }
    }
}

#[test]
fn diffusion_xonly_matches_pre_refactor_loop() {
    for dist in DISTS {
        for ranks in [1usize, 2, 4] {
            for interval in [1u32, 5] {
                let params = DiffusionParams {
                    interval,
                    tau: 0,
                    border_w: 2,
                };
                let c = cfg(1200, dist, 24);
                let (new, old) = run_pair(
                    &c,
                    ranks,
                    |comm, c, t| {
                        run_diffusion_mode_traced(comm, c, params, DiffusionMode::XOnly, t)
                    },
                    |comm, c, t| {
                        oracle::run_diffusion_mode_traced(comm, c, params, DiffusionMode::XOnly, t)
                    },
                );
                assert_identical(
                    &format!("diffusion-x {dist:?} ranks={ranks} F={interval}"),
                    &new,
                    &old,
                );
            }
        }
    }
}

#[test]
fn diffusion_twophase_matches_pre_refactor_loop() {
    // The two-phase mode is the interesting collective-ordering case: the
    // old loop gathered row counts *after* applying the x-cuts, the
    // unified runner gathers both before one decide() — bit-identical
    // because the row aggregation never depends on the x-cuts.
    for dist in DISTS {
        for ranks in [2usize, 4] {
            let params = DiffusionParams {
                interval: 5,
                tau: 0,
                border_w: 1,
            };
            let c = cfg(1500, dist, 30);
            let (new, old) = run_pair(
                &c,
                ranks,
                |comm, c, t| run_diffusion_mode_traced(comm, c, params, DiffusionMode::TwoPhase, t),
                |comm, c, t| {
                    oracle::run_diffusion_mode_traced(comm, c, params, DiffusionMode::TwoPhase, t)
                },
            );
            assert_identical(&format!("diffusion-2p {dist:?} ranks={ranks}"), &new, &old);
        }
    }
}

#[test]
fn adaptive_switch_sequence_is_replicated_on_every_rank() {
    // Determinism contract: the adaptive balancer derives its decisions
    // only from already-replicated collectives, so every rank must compute
    // the identical switch sequence with no extra communication.
    let params = DiffusionParams {
        interval: 5,
        tau: 0,
        border_w: 2,
    };
    let c = cfg(2000, Distribution::Geometric { r: 0.9 }, 60);
    let outcomes = run_threads(4, |comm| {
        let mut t = Tracer::in_memory(1);
        let o = pic_par::run_adaptive_traced(&comm, &c, params, DiffusionMode::XOnly, &mut t);
        (o, t.finish())
    });
    let reference = outcomes[0]
        .1
        .as_ref()
        .expect("rank 0 traced")
        .switches
        .clone();
    assert!(
        !reference.is_empty(),
        "sustained geometric skew must trigger at least one switch"
    );
    for (rank, (o, report)) in outcomes.iter().enumerate() {
        assert!(o.verify.passed(), "rank {rank}: {:?}", o.verify);
        let report = report.as_ref().expect("all ranks traced");
        assert_eq!(
            report.switches, reference,
            "rank {rank} disagrees on the switch sequence"
        );
        assert_eq!(report.summary.balancer, "adaptive");
        assert_eq!(report.summary.switches, reference.len() as u64);
    }
}
