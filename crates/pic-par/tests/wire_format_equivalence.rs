//! Wire-format equivalence (DESIGN.md §15): the typed zero-copy particle
//! wire is a drop-in replacement for the byte-serialization oracle.
//!
//! The typed lane moves per-destination `Vec<Particle>` buffers through
//! the exchange fabric by ownership — no encode, no decode, no
//! per-particle copy. Nothing about the physics may notice: the final
//! state must be **bit-identical** to the byte wire across distributions,
//! rank counts, rebin intervals, both distributed implementations in this
//! crate, and both exchange modes (the sparse protocol's count wires and
//! escape flags stay on the byte lane in both formats, so the routing
//! decisions are lane-invariant by construction — this suite pins that).
//!
//! The whole file also passes with `PIC_NO_SIMD=1` (CI runs it both ways).

use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::events::{Event, Region};
use pic_core::geometry::Grid;
use pic_core::init::{InitConfig, SimulationSetup};
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel, WireFormat};
use proptest::prelude::*;

const STEPS: u32 = 30;
const N: u64 = 600;

/// Same shape as the rank-kernel equivalence setup: drift (k=1, m=1 ⇒ max
/// stride 3) keeps the exchange busy every step, and the event path
/// (injection and removal mid-run) exercises arrival ordering under
/// population churn.
fn setup(dist: Distribution) -> SimulationSetup {
    InitConfig::new(Grid::new(32).unwrap(), N, dist)
        .with_k(1)
        .with_m(1)
        .build()
        .unwrap()
        .with_event(Event::inject(
            7,
            Region {
                x0: 2,
                x1: 12,
                y0: 2,
                y1: 12,
            },
            40,
            0,
            1,
            1,
        ))
        .with_event(Event::remove(15, Region::whole(32), 25))
}

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Geometric { r: 0.9 },
        Distribution::Sinusoidal,
        Distribution::Linear {
            alpha: 2.0,
            beta: 3.0,
        },
    ]
}

/// Sorted (id, x-bits, y-bits, vx-bits, vy-bits) across all ranks.
fn bit_finals(outcomes: &[ParOutcome]) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut v: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.local_particles.iter())
        .map(|p| {
            (
                p.id,
                p.x.to_bits(),
                p.y.to_bits(),
                p.vx.to_bits(),
                p.vy.to_bits(),
            )
        })
        .collect();
    v.sort_by_key(|t| t.0);
    v
}

fn run_impl(
    dist: Distribution,
    ranks: usize,
    diffusion: bool,
    kernel: RankKernel,
) -> Vec<ParOutcome> {
    let cfg = ParConfig::new(setup(dist), STEPS).with_kernel(kernel);
    run_threads(ranks, |comm| {
        let o = if diffusion {
            run_diffusion(
                &comm,
                &cfg,
                DiffusionParams {
                    interval: 3,
                    tau: 0,
                    border_w: 3,
                },
            )
        } else {
            run_baseline(&comm, &cfg)
        };
        assert!(o.verify.passed(), "{:?}", o.verify);
        o
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole contract: Typed ≡ Bytes, bit for bit, across the
    /// sampled cross product of distribution × rank count × rebin
    /// interval × implementation × exchange mode.
    #[test]
    fn typed_wire_bitwise_matches_byte_oracle(
        dist_i in 0usize..4,
        ranks in prop::sample::select(vec![1usize, 2, 4]),
        rebin in prop::sample::select(vec![1u32, 3, 16]),
        diffusion in any::<bool>(),
    ) {
        let dist = distributions()[dist_i];
        for exchange in [ExchangeMode::DenseSync, ExchangeMode::OverlappedSparse] {
            let base = RankKernel::default()
                .with_rebin_interval(rebin)
                .with_exchange(exchange);
            let bytes = bit_finals(&run_impl(
                dist, ranks, diffusion, base.with_wire(WireFormat::Bytes),
            ));
            let typed = bit_finals(&run_impl(
                dist, ranks, diffusion, base.with_wire(WireFormat::Typed),
            ));
            prop_assert_eq!(
                &bytes, &typed,
                "dist {:?}, {} ranks, rebin {}, diffusion={}, exchange={:?}",
                dist, ranks, rebin, diffusion, exchange
            );
        }
    }
}

/// `--overlap auto` is a pure mode selector: whatever it resolves to for
/// a given topology, the physics is bit-identical to both forced modes
/// (which are themselves bit-identical — rank_kernel_equivalence pins
/// that pair). Checked on both wire formats and across the 1/2/4-rank
/// topologies the auto rule sees differently.
#[test]
fn auto_exchange_matches_forced_modes_bitwise() {
    let dist = Distribution::Geometric { r: 0.9 };
    for ranks in [1usize, 2, 4] {
        for wire in [WireFormat::Bytes, WireFormat::Typed] {
            let dense = bit_finals(&run_impl(
                dist,
                ranks,
                false,
                RankKernel::default()
                    .with_exchange(ExchangeMode::DenseSync)
                    .with_wire(wire),
            ));
            let auto = bit_finals(&run_impl(
                dist,
                ranks,
                false,
                RankKernel::default()
                    .with_exchange(ExchangeMode::Auto)
                    .with_wire(wire),
            ));
            assert_eq!(dense, auto, "{ranks} ranks, wire {}", wire.name());
        }
    }
}

/// The AoS reference loop on the typed wire matches the binned loop on
/// the byte wire — the wire format and the rank path are orthogonal
/// knobs, so the cross-combination must land on the same bits as the
/// matched pairs do.
#[test]
fn wire_format_is_orthogonal_to_rank_path() {
    let dist = Distribution::Sinusoidal;
    let aos_typed = bit_finals(&run_impl(
        dist,
        4,
        true,
        RankKernel::aos().with_wire(WireFormat::Typed),
    ));
    let binned_bytes = bit_finals(&run_impl(
        dist,
        4,
        true,
        RankKernel::default().with_wire(WireFormat::Bytes),
    ));
    assert_eq!(aos_typed, binned_bytes);
}
