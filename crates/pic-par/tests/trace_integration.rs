//! Cross-rank integration tests for the pic-trace telemetry layer and the
//! distributed-verify `failing_ids` gather.

use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::verify::MAX_FAILING_IDS;
use pic_par::decomp::Decomp2d;
use pic_par::diffusion::{run_diffusion_mode_traced, DiffusionMode, DiffusionParams};
use pic_par::runner::{ParConfig, RankKernel, RankState, RankStore};
use pic_trace::{validate_ndjson, Tracer};

fn cfg(n: u64, dist: Distribution, steps: u32) -> ParConfig {
    ParConfig::new(
        InitConfig::new(Grid::new(32).unwrap(), n, dist)
            .with_m(1)
            .build()
            .unwrap(),
        steps,
    )
}

/// Direct mutable access to an AoS rank store (the corruption tests run
/// on the AoS kernel so they can reach into the particle records).
fn aos_particles(st: &mut RankState) -> &mut Vec<pic_core::particle::Particle> {
    match &mut st.store {
        RankStore::Aos(v) => v,
        RankStore::Binned(_) => panic!("test requires the AoS kernel"),
    }
}

/// A corrupted particle on one rank must show up in *every* rank's
/// `failing_ids` — the report is gathered, not rank-local (the bug this
/// guards against: each rank reporting only its own local failures).
#[test]
fn corrupted_particle_reported_on_all_ranks() {
    let c = cfg(400, Distribution::Uniform, 6);
    let results = run_threads(4, |comm| {
        let decomp = Decomp2d::uniform(c.setup.grid.ncells(), comm.size());
        let mut st = RankState::with_kernel(&c.setup, decomp, comm.rank(), RankKernel::aos());
        for _ in 0..c.steps {
            st.step(&comm);
        }
        let corrupted = if comm.rank() == 2 {
            let particles = aos_particles(&mut st);
            assert!(
                !particles.is_empty(),
                "rank 2 must own particles for this test to bite"
            );
            particles[0].x += 1.5;
            Some(particles[0].id)
        } else {
            None
        };
        (st.verify(&comm), corrupted)
    });
    let bad_id = results
        .iter()
        .find_map(|(_, c)| *c)
        .expect("rank 2 corrupted a particle");
    let reference = &results[0].0.failing_ids;
    assert!(!reference.is_empty());
    for (rank, (report, _)) in results.iter().enumerate() {
        assert_eq!(report.position_failures, 1, "rank {rank}: {report:?}");
        assert_eq!(
            &report.failing_ids, reference,
            "rank {rank} sees different failing_ids"
        );
        assert!(
            report.failing_ids.contains(&bad_id),
            "rank {rank} missing corrupted id {bad_id} in {:?}",
            report.failing_ids
        );
    }
}

/// Corrupting more particles than the cap still yields a bounded, sorted,
/// deduplicated, rank-identical sample of `MAX_FAILING_IDS` ids.
#[test]
fn failing_ids_capped_and_identical_across_ranks() {
    let c = cfg(600, Distribution::Uniform, 4);
    let results = run_threads(4, |comm| {
        let decomp = Decomp2d::uniform(c.setup.grid.ncells(), comm.size());
        let mut st = RankState::with_kernel(&c.setup, decomp, comm.rank(), RankKernel::aos());
        for _ in 0..c.steps {
            st.step(&comm);
        }
        // Two ranks corrupt 12 particles each: 24 global failures, above
        // the cap of 16.
        if comm.rank() == 1 || comm.rank() == 3 {
            for p in aos_particles(&mut st).iter_mut().take(12) {
                p.y += 2.5;
            }
        }
        st.verify(&comm)
    });
    let reference = &results[0].failing_ids;
    assert_eq!(reference.len(), MAX_FAILING_IDS);
    assert!(
        reference.windows(2).all(|w| w[0] < w[1]),
        "sorted + deduped"
    );
    for (rank, report) in results.iter().enumerate() {
        assert_eq!(report.position_failures, 24, "rank {rank}");
        assert_eq!(&report.failing_ids, reference, "rank {rank}");
    }
}

/// Acceptance criterion: a traced diffusion run's summary imbalance must
/// match the value recomputed independently from the per-step load
/// snapshots it emitted, and the ndjson stream must parse.
#[test]
fn traced_diffusion_imbalance_matches_recomputed() {
    let c = cfg(800, Distribution::PAPER_SKEW, 24);
    let params = DiffusionParams {
        interval: 4,
        tau: 0,
        border_w: 1,
    };
    let results = run_threads(4, |comm| {
        let mut tracer = if comm.rank() == 0 {
            Tracer::in_memory(2)
        } else {
            Tracer::disabled()
        };
        let out =
            run_diffusion_mode_traced(&comm, &c, params, DiffusionMode::TwoPhase, &mut tracer);
        (out, tracer.finish())
    });
    for (out, _) in &results {
        assert!(out.verify.passed(), "{:?}", out.verify);
    }
    let report = results[0].1.as_ref().expect("rank 0 tracer enabled");

    // The stream is well-formed ndjson with the expected record mix.
    let check = validate_ndjson(&report.ndjson).expect("valid ndjson");
    assert_eq!(check.runs, 1);
    assert_eq!(check.steps, report.steps.len());
    assert!(check.summary.is_some());
    assert!(check.cuts > 0, "interval 4 over 24 steps must emit cuts");

    // Recompute max/mean imbalance straight from the emitted load vectors.
    let mut max_imb = f64::NEG_INFINITY;
    let mut sum_imb = 0.0;
    let mut n = 0usize;
    for rec in &report.steps {
        if rec.loads.is_empty() {
            continue;
        }
        assert_eq!(rec.loads.len(), 4, "one load slot per rank");
        let total: f64 = rec.loads.iter().sum();
        assert_eq!(total as u64, rec.particles, "loads account for everyone");
        let max = rec.loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let imb = max / (total / rec.loads.len() as f64);
        let stats = rec.stats.as_ref().expect("loads imply stats");
        assert!((stats.imbalance - imb).abs() < 1e-12);
        max_imb = max_imb.max(imb);
        sum_imb += imb;
        n += 1;
    }
    assert!(n > 0, "sampling every 2 steps must emit load snapshots");
    assert!((report.summary.max_imbalance - max_imb).abs() < 1e-12);
    assert!((report.summary.mean_imbalance - sum_imb / n as f64).abs() < 1e-12);
    assert!(report.summary.max_imbalance.is_finite());
    assert!(report.summary.max_imbalance >= 1.0);
}

/// Every rank tracing (not just rank 0) must agree on the collective
/// schedule and produce identical load snapshots.
#[test]
fn all_ranks_tracing_agree_on_snapshots() {
    let c = cfg(300, Distribution::Geometric { r: 0.85 }, 12);
    let params = DiffusionParams {
        interval: 3,
        ..DiffusionParams::default()
    };
    let results = run_threads(3, |comm| {
        let mut tracer = Tracer::in_memory(3);
        let out = run_diffusion_mode_traced(&comm, &c, params, DiffusionMode::XOnly, &mut tracer);
        (
            out,
            tracer.finish().expect("enabled tracer yields a report"),
        )
    });
    let reference = &results[0].1;
    for (rank, (out, report)) in results.iter().enumerate() {
        assert!(out.verify.passed(), "rank {rank}");
        assert_eq!(report.steps.len(), reference.steps.len(), "rank {rank}");
        for (a, b) in report.steps.iter().zip(&reference.steps) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.loads, b.loads, "rank {rank} step {}", a.step);
            assert_eq!(a.particles, b.particles);
        }
        assert_eq!(
            report.summary.max_imbalance, reference.summary.max_imbalance,
            "rank {rank}"
        );
    }
}
