//! Seeded pseudo-random number generation, std-only.
//!
//! The kernel needs randomness in exactly one place — [`RowSpread::Random`]
//! particle placement — and the only contract there is *reproducibility*:
//! the same seed must yield the same placement on every platform, and
//! different seeds should yield different placements. SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014; the `java.util.SplittableRandom` finalizer)
//! satisfies both with three lines of mixing, so the kernel carries its own
//! implementation instead of an external RNG crate.
//!
//! [`RowSpread::Random`]: crate::init::RowSpread::Random

use std::ops::Range;

/// A tiny, fast, seedable PRNG with a guaranteed period of 2^64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed is fine, including 0.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// Uses Lemire's multiply-shift reduction without the rejection step;
    /// the bias is < 2^-40 for any grid-sized span, far below anything the
    /// placement distribution tests can observe.
    #[inline]
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_first_outputs() {
        // Reference values from the published SplitMix64 algorithm, seed 0.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all rows should be reachable");
    }
}
