//! Structure-of-arrays particle storage.
//!
//! The hot loop touches `x, y, vx, vy, q` every step but the verification
//! metadata (`x0, y0, k, m, born_at`) only at the end; splitting the record
//! keeps the sweep's working set dense and lets the compiler vectorize the
//! kinematics. The arithmetic per particle is identical (same operation
//! order), so an SoA sweep produces bit-identical state to the AoS sweep —
//! asserted by tests, and the property that lets implementations pick
//! either layout freely.

use crate::charge::{total_force, SimConstants};
use crate::geometry::Grid;
use crate::particle::Particle;
use crate::pool::{self, SyncMutPtr};

/// The one sweep kernel every SoA path runs: eqs. 1–2 over a contiguous
/// span of the arrays. Serial, parallel, and chunked sweeps all reduce to
/// calls of this function over disjoint spans, which is what makes their
/// results bit-identical by construction — per particle, the instruction
/// sequence is the same no matter how the index space was partitioned.
#[inline(always)]
fn advance_span(
    grid: &Grid,
    consts: &SimConstants,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    let dt = consts.dt;
    // Re-slice everything to one length so the bounds checks fold away
    // even when this body is compiled out of line (callers always pass
    // equal-length spans; the serial path's inlining used to prove that
    // implicitly, the outlined path cannot).
    let n = x.len();
    let (y, vx, vy, q) = (&mut y[..n], &mut vx[..n], &mut vy[..n], &q[..n]);
    for i in 0..n {
        let (ax, ay) = total_force(grid, consts, x[i], y[i], q[i]);
        x[i] = grid.wrap_coord(x[i] + (vx[i] + 0.5 * ax * dt) * dt);
        y[i] = grid.wrap_coord(y[i] + (vy[i] + 0.5 * ay * dt) * dt);
        vx[i] += ax * dt;
        vy[i] += ay * dt;
    }
}

/// Out-of-line shell around [`advance_span`] for callers whose spans are
/// reconstructed from raw pointers (the pool closures). The real function
/// boundary is what hands LLVM the `noalias` guarantee on the four
/// `&mut [f64]` parameters; inlined straight into a closure the slices'
/// provenance is four raw pointers whose disjointness is unprovable, every
/// store blocks the next iteration's loads, and the sweep measures ~45%
/// slower at 10⁶ particles. Callers whose slices visibly come from
/// distinct struct fields (the serial path) call `advance_span` directly.
#[inline(never)]
pub(crate) fn advance_span_outlined(
    grid: &Grid,
    consts: &SimConstants,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    advance_span(grid, consts, x, y, vx, vy, q);
}

/// A batch of particles in structure-of-arrays layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleBatch {
    pub id: Vec<u64>,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub vx: Vec<f64>,
    pub vy: Vec<f64>,
    pub q: Vec<f64>,
    pub x0: Vec<f64>,
    pub y0: Vec<f64>,
    pub k: Vec<u32>,
    pub m: Vec<i32>,
    pub born_at: Vec<u32>,
}

impl ParticleBatch {
    pub fn new() -> ParticleBatch {
        ParticleBatch::default()
    }

    pub fn with_capacity(n: usize) -> ParticleBatch {
        ParticleBatch {
            id: Vec::with_capacity(n),
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
            q: Vec::with_capacity(n),
            x0: Vec::with_capacity(n),
            y0: Vec::with_capacity(n),
            k: Vec::with_capacity(n),
            m: Vec::with_capacity(n),
            born_at: Vec::with_capacity(n),
        }
    }

    pub fn from_particles(particles: &[Particle]) -> ParticleBatch {
        let mut b = ParticleBatch::with_capacity(particles.len());
        for p in particles {
            b.push(*p);
        }
        b
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.id.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    pub fn push(&mut self, p: Particle) {
        self.id.push(p.id);
        self.x.push(p.x);
        self.y.push(p.y);
        self.vx.push(p.vx);
        self.vy.push(p.vy);
        self.q.push(p.q);
        self.x0.push(p.x0);
        self.y0.push(p.y0);
        self.k.push(p.k);
        self.m.push(p.m);
        self.born_at.push(p.born_at);
    }

    /// Materialize element `i` as an AoS record.
    pub fn get(&self, i: usize) -> Particle {
        Particle {
            id: self.id[i],
            x: self.x[i],
            y: self.y[i],
            vx: self.vx[i],
            vy: self.vy[i],
            q: self.q[i],
            x0: self.x0[i],
            y0: self.y0[i],
            k: self.k[i],
            m: self.m[i],
            born_at: self.born_at[i],
        }
    }

    /// O(1) removal by swapping with the last element (order not
    /// preserved — fine for a particle bag). Returns the removed particle.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        Particle {
            id: self.id.swap_remove(i),
            x: self.x.swap_remove(i),
            y: self.y.swap_remove(i),
            vx: self.vx.swap_remove(i),
            vy: self.vy.swap_remove(i),
            q: self.q.swap_remove(i),
            x0: self.x0.swap_remove(i),
            y0: self.y0.swap_remove(i),
            k: self.k.swap_remove(i),
            m: self.m.swap_remove(i),
            born_at: self.born_at.swap_remove(i),
        }
    }

    /// Overwrite element `i` from an AoS record (failure-injection and
    /// test harness support).
    pub fn set(&mut self, i: usize, p: Particle) {
        self.id[i] = p.id;
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.vx[i] = p.vx;
        self.vy[i] = p.vy;
        self.q[i] = p.q;
        self.x0[i] = p.x0;
        self.y0[i] = p.y0;
        self.k[i] = p.k;
        self.m[i] = p.m;
        self.born_at[i] = p.born_at;
    }

    /// Remove and return the last particle.
    pub fn pop(&mut self) -> Option<Particle> {
        if self.is_empty() {
            return None;
        }
        Some(self.swap_remove(self.len() - 1))
    }

    /// Remove every particle whose id is in `doomed`, preserving the order
    /// of the survivors (the SoA counterpart of `Vec::retain`, used by
    /// removal events so an SoA-stored run keeps the same particle order
    /// as an AoS-stored one). Returns the removed particles in their
    /// original order.
    pub fn remove_ids(&mut self, doomed: &std::collections::HashSet<u64>) -> Vec<Particle> {
        let n = self.len();
        let mut removed = Vec::with_capacity(doomed.len());
        let mut w = 0;
        for r in 0..n {
            if doomed.contains(&self.id[r]) {
                removed.push(self.get(r));
            } else {
                if w != r {
                    self.id[w] = self.id[r];
                    self.x[w] = self.x[r];
                    self.y[w] = self.y[r];
                    self.vx[w] = self.vx[r];
                    self.vy[w] = self.vy[r];
                    self.q[w] = self.q[r];
                    self.x0[w] = self.x0[r];
                    self.y0[w] = self.y0[r];
                    self.k[w] = self.k[r];
                    self.m[w] = self.m[r];
                    self.born_at[w] = self.born_at[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
        removed
    }

    /// Apply a removal event directly on the SoA store: remove up to
    /// `count` particles inside `region`, lowest ids first — the same
    /// deterministic rule as [`crate::init::apply_removal`] on AoS, so
    /// both layouts shed exactly the same particles.
    pub fn remove_in_region(
        &mut self,
        region: &crate::events::Region,
        count: u64,
    ) -> Vec<Particle> {
        let mut candidate_ids: Vec<u64> = (0..self.len())
            .filter(|&i| region.contains_point(self.x[i], self.y[i]))
            .map(|i| self.id[i])
            .collect();
        candidate_ids.sort_unstable();
        candidate_ids.truncate(count as usize);
        let doomed: std::collections::HashSet<u64> = candidate_ids.into_iter().collect();
        self.remove_ids(&doomed)
    }

    /// Copy element `src` over element `dst` across all eleven arrays —
    /// the stable-compaction step of the binned drain.
    pub(crate) fn copy_element(&mut self, src: usize, dst: usize) {
        self.id[dst] = self.id[src];
        self.x[dst] = self.x[src];
        self.y[dst] = self.y[src];
        self.vx[dst] = self.vx[src];
        self.vy[dst] = self.vy[src];
        self.q[dst] = self.q[src];
        self.x0[dst] = self.x0[src];
        self.y0[dst] = self.y0[src];
        self.k[dst] = self.k[src];
        self.m[dst] = self.m[src];
        self.born_at[dst] = self.born_at[src];
    }

    /// Shorten the batch to `len` particles.
    pub fn truncate(&mut self, len: usize) {
        self.id.truncate(len);
        self.x.truncate(len);
        self.y.truncate(len);
        self.vx.truncate(len);
        self.vy.truncate(len);
        self.q.truncate(len);
        self.x0.truncate(len);
        self.y0.truncate(len);
        self.k.truncate(len);
        self.m.truncate(len);
        self.born_at.truncate(len);
    }

    pub fn to_particles(&self) -> Vec<Particle> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Advance every particle one step — same math, same order as the AoS
    /// sweep, so the resulting state is bit-identical.
    pub fn advance_all(&mut self, grid: &Grid, consts: &SimConstants) {
        let n = self.len();
        advance_span(
            grid,
            consts,
            &mut self.x[..n],
            &mut self.y[..n],
            &mut self.vx[..n],
            &mut self.vy[..n],
            &self.q[..n],
        );
    }

    /// Pool-parallel sweep with the adaptive chunk size; bit-identical to
    /// [`ParticleBatch::advance_all`].
    pub fn advance_all_parallel(&mut self, grid: &Grid, consts: &SimConstants) {
        let chunk = pool::adaptive_chunk(self.len(), pool::global().active_threads());
        self.advance_all_chunked(grid, consts, chunk);
    }

    /// Deterministic chunked parallel sweep: the index space is split into
    /// fixed-size chunks claimed dynamically by the global sweep pool.
    /// Chunk scheduling affects only *where* a particle is processed,
    /// never *how* — every path funnels into [`advance_span`] — so the
    /// result is bit-identical to the serial sweep for any `chunk_size`.
    pub fn advance_all_chunked(&mut self, grid: &Grid, consts: &SimConstants, chunk_size: usize) {
        let n = self.len();
        let xp = SyncMutPtr::new(self.x.as_mut_ptr());
        let yp = SyncMutPtr::new(self.y.as_mut_ptr());
        let vxp = SyncMutPtr::new(self.vx.as_mut_ptr());
        let vyp = SyncMutPtr::new(self.vy.as_mut_ptr());
        let q = &self.q[..n];
        pool::global().run_chunked(n, chunk_size, &|start, end| {
            // Chunks are disjoint, so each span is exclusively owned here.
            let len = end - start;
            let (x, y, vx, vy) = unsafe {
                (
                    std::slice::from_raw_parts_mut(xp.get().add(start), len),
                    std::slice::from_raw_parts_mut(yp.get().add(start), len),
                    std::slice::from_raw_parts_mut(vxp.get().add(start), len),
                    std::slice::from_raw_parts_mut(vyp.get().add(start), len),
                )
            };
            advance_span_outlined(grid, consts, x, y, vx, vy, &q[start..end]);
        });
    }

    /// Remove and return every particle for which `leaves` is true (used
    /// by exchange phases). Order of the survivors is not preserved.
    ///
    /// After a `swap_remove` the element swapped into position `i` has not
    /// been tested yet, so the loop deliberately does **not** advance `i`
    /// on removal — the regression test `drain_retests_swapped_in_leaver`
    /// pins this down.
    pub fn drain_leavers<F>(&mut self, leaves: F) -> Vec<Particle>
    where
        F: Fn(f64, f64) -> bool,
    {
        // Steady state has few leavers (border cells only), but reserving
        // a small slab up front keeps the common case to at most one
        // allocation instead of the doubling ramp from empty.
        let mut out = Vec::with_capacity((self.len() / 8).clamp(4, 1024));
        let mut i = 0;
        while i < self.len() {
            if self.leaves_at(i, &leaves) {
                out.push(self.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Predicate application for [`ParticleBatch::drain_leavers`], kept on
    /// the inline path so the closure call vanishes into the scan loop.
    #[inline(always)]
    fn leaves_at<F: Fn(f64, f64) -> bool>(&self, i: usize, leaves: &F) -> bool {
        leaves(self.x[i], self.y[i])
    }

    /// Sum of ids (checksum contribution).
    pub fn id_sum(&self) -> u128 {
        self.id.iter().map(|&i| i as u128).sum()
    }
}

impl FromIterator<Particle> for ParticleBatch {
    fn from_iter<I: IntoIterator<Item = Particle>>(iter: I) -> Self {
        let mut b = ParticleBatch::new();
        for p in iter {
            b.push(p);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::init::InitConfig;
    use crate::motion::advance_all as advance_all_aos;
    use crate::verify::{triangular_id_sum, verify_all, DEFAULT_TOLERANCE};

    fn population(n: u64) -> (Grid, Vec<Particle>) {
        let grid = Grid::new(32).unwrap();
        let s = InitConfig::new(grid, n, Distribution::Sinusoidal)
            .with_k(1)
            .with_m(-1)
            .build()
            .unwrap();
        (grid, s.particles)
    }

    #[test]
    fn roundtrip_preserves_records() {
        let (_, ps) = population(257);
        let batch = ParticleBatch::from_particles(&ps);
        assert_eq!(batch.len(), 257);
        assert_eq!(batch.to_particles(), ps);
        assert_eq!(batch.id_sum(), triangular_id_sum(257));
    }

    #[test]
    fn soa_sweep_bitwise_matches_aos() {
        let (grid, mut aos) = population(500);
        let consts = SimConstants::CANONICAL;
        let mut soa = ParticleBatch::from_particles(&aos);
        for _ in 0..25 {
            advance_all_aos(&grid, &consts, &mut aos);
            soa.advance_all(&grid, &consts);
        }
        for (i, p) in aos.iter().enumerate() {
            assert_eq!(p.x.to_bits(), soa.x[i].to_bits(), "x[{i}]");
            assert_eq!(p.y.to_bits(), soa.y[i].to_bits());
            assert_eq!(p.vx.to_bits(), soa.vx[i].to_bits());
            assert_eq!(p.vy.to_bits(), soa.vy[i].to_bits());
        }
    }

    #[test]
    fn parallel_soa_sweep_bitwise_matches_serial() {
        let (grid, ps) = population(400);
        let consts = SimConstants::CANONICAL;
        let mut a = ParticleBatch::from_particles(&ps);
        let mut b = a.clone();
        for _ in 0..10 {
            a.advance_all(&grid, &consts);
            b.advance_all_parallel(&grid, &consts);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn soa_run_verifies() {
        let (grid, ps) = population(300);
        let consts = SimConstants::CANONICAL;
        let mut soa = ParticleBatch::from_particles(&ps);
        for _ in 0..60 {
            soa.advance_all(&grid, &consts);
        }
        let report = verify_all(
            &grid,
            &soa.to_particles(),
            60,
            triangular_id_sum(300),
            DEFAULT_TOLERANCE,
        );
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn swap_remove_and_drain() {
        let (grid, ps) = population(100);
        let mut soa = ParticleBatch::from_particles(&ps);
        let victim = soa.get(10);
        let removed = soa.swap_remove(10);
        assert_eq!(victim, removed);
        assert_eq!(soa.len(), 99);
        // Drain everything in the left half of the domain.
        let half = grid.extent() / 2.0;
        let gone = soa.drain_leavers(|x, _| x < half);
        assert!(gone.iter().all(|p| p.x < half));
        assert!((0..soa.len()).all(|i| soa.x[i] >= half));
        assert_eq!(gone.len() + soa.len(), 99);
    }

    #[test]
    fn drain_retests_swapped_in_leaver() {
        // Regression for the swap_remove scan: when position i is drained,
        // the element swapped in from the back may itself be a leaver and
        // must be re-tested at the same index, not skipped. Lay out the
        // batch so every removal at i swaps *another* leaver into i.
        let (_, ps) = population(8);
        let mut soa = ParticleBatch::new();
        // x pattern: leaver, stayer, stayer, ..., then leavers at the back
        // that will be swapped into the holes.
        let xs = [1.0, 10.0, 10.0, 10.0, 2.0, 3.0, 4.0, 0.5];
        for (p, &x) in ps.iter().zip(&xs) {
            let mut p = *p;
            p.x = x;
            soa.push(p);
        }
        let gone = soa.drain_leavers(|x, _| x < 5.0);
        assert_eq!(gone.len(), 5, "all five leavers removed: {gone:?}");
        assert_eq!(soa.len(), 3);
        assert!((0..soa.len()).all(|i| soa.x[i] >= 5.0), "{:?}", soa.x);
        assert!(gone.iter().all(|p| p.x < 5.0));
    }

    #[test]
    fn chunked_sweep_bitwise_matches_serial_for_all_chunk_sizes() {
        let (grid, ps) = population(631);
        let consts = SimConstants::CANONICAL;
        let n = ps.len();
        for chunk in [1, 7, 64, n, n + 100] {
            let mut a = ParticleBatch::from_particles(&ps);
            let mut b = a.clone();
            for _ in 0..8 {
                a.advance_all(&grid, &consts);
                b.advance_all_chunked(&grid, &consts, chunk);
            }
            assert_eq!(a, b, "chunk={chunk} diverged from serial");
        }
    }

    #[test]
    fn from_iterator() {
        let (_, ps) = population(42);
        let batch: ParticleBatch = ps.iter().copied().collect();
        assert_eq!(batch.len(), 42);
    }
}
