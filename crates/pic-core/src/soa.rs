//! Structure-of-arrays particle storage.
//!
//! The hot loop touches `x, y, vx, vy, q` every step but the verification
//! metadata (`x0, y0, k, m, born_at`) only at the end; splitting the record
//! keeps the sweep's working set dense and lets the compiler vectorize the
//! kinematics. The arithmetic per particle is identical (same operation
//! order), so an SoA sweep produces bit-identical state to the AoS sweep —
//! asserted by tests, and the property that lets implementations pick
//! either layout freely.

use crate::charge::{total_force, SimConstants};
use crate::geometry::Grid;
use crate::particle::Particle;

/// A batch of particles in structure-of-arrays layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticleBatch {
    pub id: Vec<u64>,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub vx: Vec<f64>,
    pub vy: Vec<f64>,
    pub q: Vec<f64>,
    pub x0: Vec<f64>,
    pub y0: Vec<f64>,
    pub k: Vec<u32>,
    pub m: Vec<i32>,
    pub born_at: Vec<u32>,
}

impl ParticleBatch {
    pub fn new() -> ParticleBatch {
        ParticleBatch::default()
    }

    pub fn with_capacity(n: usize) -> ParticleBatch {
        ParticleBatch {
            id: Vec::with_capacity(n),
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
            q: Vec::with_capacity(n),
            x0: Vec::with_capacity(n),
            y0: Vec::with_capacity(n),
            k: Vec::with_capacity(n),
            m: Vec::with_capacity(n),
            born_at: Vec::with_capacity(n),
        }
    }

    pub fn from_particles(particles: &[Particle]) -> ParticleBatch {
        let mut b = ParticleBatch::with_capacity(particles.len());
        for p in particles {
            b.push(*p);
        }
        b
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.id.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    pub fn push(&mut self, p: Particle) {
        self.id.push(p.id);
        self.x.push(p.x);
        self.y.push(p.y);
        self.vx.push(p.vx);
        self.vy.push(p.vy);
        self.q.push(p.q);
        self.x0.push(p.x0);
        self.y0.push(p.y0);
        self.k.push(p.k);
        self.m.push(p.m);
        self.born_at.push(p.born_at);
    }

    /// Materialize element `i` as an AoS record.
    pub fn get(&self, i: usize) -> Particle {
        Particle {
            id: self.id[i],
            x: self.x[i],
            y: self.y[i],
            vx: self.vx[i],
            vy: self.vy[i],
            q: self.q[i],
            x0: self.x0[i],
            y0: self.y0[i],
            k: self.k[i],
            m: self.m[i],
            born_at: self.born_at[i],
        }
    }

    /// O(1) removal by swapping with the last element (order not
    /// preserved — fine for a particle bag). Returns the removed particle.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        let p = Particle {
            id: self.id.swap_remove(i),
            x: self.x.swap_remove(i),
            y: self.y.swap_remove(i),
            vx: self.vx.swap_remove(i),
            vy: self.vy.swap_remove(i),
            q: self.q.swap_remove(i),
            x0: self.x0.swap_remove(i),
            y0: self.y0.swap_remove(i),
            k: self.k.swap_remove(i),
            m: self.m.swap_remove(i),
            born_at: self.born_at.swap_remove(i),
        };
        p
    }

    pub fn to_particles(&self) -> Vec<Particle> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Advance every particle one step — same math, same order as the AoS
    /// sweep, so the resulting state is bit-identical.
    pub fn advance_all(&mut self, grid: &Grid, consts: &SimConstants) {
        for i in 0..self.len() {
            let (ax, ay) = total_force(grid, consts, self.x[i], self.y[i], self.q[i]);
            // Inline the eqs. 1–2 update on the arrays.
            let dt = consts.dt;
            self.x[i] = grid.wrap_coord(self.x[i] + (self.vx[i] + 0.5 * ax * dt) * dt);
            self.y[i] = grid.wrap_coord(self.y[i] + (self.vy[i] + 0.5 * ay * dt) * dt);
            self.vx[i] += ax * dt;
            self.vy[i] += ay * dt;
        }
    }

    /// Rayon-parallel sweep; bit-identical to [`ParticleBatch::advance_all`].
    pub fn advance_all_parallel(&mut self, grid: &Grid, consts: &SimConstants) {
        use rayon::prelude::*;
        let q = &self.q;
        self.x
            .par_iter_mut()
            .zip(self.y.par_iter_mut())
            .zip(self.vx.par_iter_mut())
            .zip(self.vy.par_iter_mut())
            .zip(q.par_iter())
            .for_each(|((((x, y), vx), vy), q)| {
                let (ax, ay) = total_force(grid, consts, *x, *y, *q);
                let dt = consts.dt;
                *x = grid.wrap_coord(*x + (*vx + 0.5 * ax * dt) * dt);
                *y = grid.wrap_coord(*y + (*vy + 0.5 * ay * dt) * dt);
                *vx += ax * dt;
                *vy += ay * dt;
            });
    }

    /// Remove and return every particle for which `leaves` is true (used
    /// by exchange phases). Order of the survivors is not preserved.
    pub fn drain_leavers<F>(&mut self, leaves: F) -> Vec<Particle>
    where
        F: Fn(f64, f64) -> bool,
    {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.len() {
            if leaves(self.x[i], self.y[i]) {
                out.push(self.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Sum of ids (checksum contribution).
    pub fn id_sum(&self) -> u128 {
        self.id.iter().map(|&i| i as u128).sum()
    }
}

impl FromIterator<Particle> for ParticleBatch {
    fn from_iter<I: IntoIterator<Item = Particle>>(iter: I) -> Self {
        let mut b = ParticleBatch::new();
        for p in iter {
            b.push(p);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::init::InitConfig;
    use crate::motion::advance_all as advance_all_aos;
    use crate::verify::{verify_all, triangular_id_sum, DEFAULT_TOLERANCE};

    fn population(n: u64) -> (Grid, Vec<Particle>) {
        let grid = Grid::new(32).unwrap();
        let s = InitConfig::new(grid, n, Distribution::Sinusoidal)
            .with_k(1)
            .with_m(-1)
            .build()
            .unwrap();
        (grid, s.particles)
    }

    #[test]
    fn roundtrip_preserves_records() {
        let (_, ps) = population(257);
        let batch = ParticleBatch::from_particles(&ps);
        assert_eq!(batch.len(), 257);
        assert_eq!(batch.to_particles(), ps);
        assert_eq!(batch.id_sum(), triangular_id_sum(257));
    }

    #[test]
    fn soa_sweep_bitwise_matches_aos() {
        let (grid, mut aos) = population(500);
        let consts = SimConstants::CANONICAL;
        let mut soa = ParticleBatch::from_particles(&aos);
        for _ in 0..25 {
            advance_all_aos(&grid, &consts, &mut aos);
            soa.advance_all(&grid, &consts);
        }
        for (i, p) in aos.iter().enumerate() {
            assert_eq!(p.x.to_bits(), soa.x[i].to_bits(), "x[{i}]");
            assert_eq!(p.y.to_bits(), soa.y[i].to_bits());
            assert_eq!(p.vx.to_bits(), soa.vx[i].to_bits());
            assert_eq!(p.vy.to_bits(), soa.vy[i].to_bits());
        }
    }

    #[test]
    fn parallel_soa_sweep_bitwise_matches_serial() {
        let (grid, ps) = population(400);
        let consts = SimConstants::CANONICAL;
        let mut a = ParticleBatch::from_particles(&ps);
        let mut b = a.clone();
        for _ in 0..10 {
            a.advance_all(&grid, &consts);
            b.advance_all_parallel(&grid, &consts);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn soa_run_verifies() {
        let (grid, ps) = population(300);
        let consts = SimConstants::CANONICAL;
        let mut soa = ParticleBatch::from_particles(&ps);
        for _ in 0..60 {
            soa.advance_all(&grid, &consts);
        }
        let report = verify_all(
            &grid,
            &soa.to_particles(),
            60,
            triangular_id_sum(300),
            DEFAULT_TOLERANCE,
        );
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn swap_remove_and_drain() {
        let (grid, ps) = population(100);
        let mut soa = ParticleBatch::from_particles(&ps);
        let victim = soa.get(10);
        let removed = soa.swap_remove(10);
        assert_eq!(victim, removed);
        assert_eq!(soa.len(), 99);
        // Drain everything in the left half of the domain.
        let half = grid.extent() / 2.0;
        let gone = soa.drain_leavers(|x, _| x < half);
        assert!(gone.iter().all(|p| p.x < half));
        assert!((0..soa.len()).all(|i| soa.x[i] >= half));
        assert_eq!(gone.len() + soa.len(), 99);
    }

    #[test]
    fn from_iterator() {
        let (_, ps) = population(42);
        let batch: ParticleBatch = ps.iter().copied().collect();
        assert_eq!(batch.len(), 42);
    }
}
