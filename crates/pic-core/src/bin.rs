//! Cell-binned particle storage: counting-sort locality for the sweep.
//!
//! [`BinnedStore`] keeps a [`ParticleBatch`] physically ordered by cell
//! *column* — bin `c` is the contiguous span `offsets[c]..offsets[c+1]` —
//! so the sweep walks memory in cell order and the per-column load
//! histogram falls out of the prefix sums for free (O(columns) instead of
//! an O(n) scan). The permutation is rebuilt every `rebin_interval` steps
//! with a stable counting sort and one gather pass through a persistent
//! double buffer, so the amortized cost is O(n / R) per step and the
//! steady state allocates nothing (scratch capacity is retained between
//! rebins; when the population is column-homogeneous the permutation is
//! the identity and the gather is skipped entirely).
//!
//! ## The parity invariant (why `q_left` can be hoisted)
//!
//! Between rebins particles drift out of their recorded columns, so the
//! *column* of a bin goes stale after one step. Its *parity* does not
//! stay merely approximately right — it is exactly shared by every
//! particle in the bin at every step: each spec-conforming particle moves
//! exactly `±(2k+1)` columns per step, an **odd** stride, so all
//! particles flip column parity together each step (the periodic wrap
//! preserves parity because the grid has an even number of columns).
//! A bin's parity at sweep time is therefore
//! `bin_column_parity XOR (steps_since_rebin & 1)`, valid for *any*
//! rebin interval, and the corner charges `q_left = ±q`, `q_right =
//! −q_left` hoist out of the inner loop. The actual column (needed for
//! the corner displacement `rx`) is still derived per particle — that is
//! one float-to-int truncation, with the branchy `mesh_charge` lookups
//! gone. Debug builds assert the invariant per particle; populations
//! whose strides are corrupted out-of-spec (failure-injection mutants)
//! must rebin every step to stay exact.
//!
//! ## Bit-exactness
//!
//! [`advance_bin_span`] performs, per particle, the *same sequence of
//! floating-point operations* as the unbinned sweep (`total_force` +
//! eqs. 1–2): same `coulomb` corner evaluations in the same pairing, same
//! integration, same wrap. Binning changes traversal order only, and
//! particles are independent within a step, so the resulting population
//! is bit-identical to every other sweep mode — asserted by the
//! cross-mode property tests for rebin intervals {1, 3, 16}. Canonical
//! (ascending-id) order is restored on export by [`BinnedStore::to_particles`].

use crate::charge::{coulomb, mesh_charge, SimConstants};
use crate::charge_grid::ChargeGrid;
use crate::events::Region;
use crate::geometry::Grid;
use crate::particle::Particle;
use crate::pool::{self, SyncMutPtr};
use crate::simd::{self, SimdBackend};
use crate::soa::ParticleBatch;
use std::collections::HashSet;

/// Default rebin interval, chosen from the measured amortization curve
/// (`BENCH_sweep.json`, rebin sensitivity rows): the counting sort plus
/// 11-array gather costs roughly three binned sweeps, so re-sorting every
/// step erases the locality win while 16 steps of drift still leaves the
/// order column-coherent enough to keep the kernel fast. Set the interval
/// to 1 (`--rebin 1`, [`Simulation::with_rebin_interval`]) when a consumer
/// wants the O(columns) histogram fast path fresh *every* step — e.g. a
/// load balancer invoked more often than every 16 steps; the natural
/// co-tuning is rebin = balancer interval.
///
/// [`Simulation::with_rebin_interval`]: crate::engine::Simulation::with_rebin_interval
pub const DEFAULT_REBIN: u32 = 16;

/// Which force kernel the binned sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelTier {
    /// The bit-identity contract: every backend produces the scalar
    /// reference's bits (DESIGN.md §10). The default.
    #[default]
    Exact,
    /// The fast-math contract: FMA, reciprocal-sqrt, reassociated corner
    /// accumulation (DESIGN.md §12). Verified analytically against
    /// eqs. 5–6 within [`crate::verify::analytic_tolerance`], not
    /// bitwise. The scalar backend ignores this and stays exact, so
    /// `PIC_NO_SIMD=1` forces bit-identity in either tier.
    Fast,
}

impl KernelTier {
    /// Lower-case label for telemetry and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Exact => "exact",
            KernelTier::Fast => "fast",
        }
    }
}

/// Cell-binned structure-of-arrays particle store (see module docs).
#[derive(Debug, Clone)]
pub struct BinnedStore {
    /// Particle data in bin (cell-column) order; within a bin the order is
    /// stable under rebinning.
    batch: ParticleBatch,
    /// Gather target, swapped with `batch` on each non-identity rebin;
    /// retains capacity so steady-state rebins allocate nothing.
    scratch: ParticleBatch,
    /// `ncols + 1` prefix sums: bin `b` (column `col_lo + b`) is
    /// `offsets[b]..offsets[b+1]`. Indices past `offsets[ncols]` are the
    /// *tail*: exchange arrivals appended by [`BinnedStore::push_tail`]
    /// that have not been folded into bin order yet.
    offsets: Vec<usize>,
    /// First grid column this store bins (0 for a whole-grid store; the
    /// rank's subgrid origin for a distributed store).
    col_lo: usize,
    /// Number of binned columns (`col_hi − col_lo`).
    ncols: usize,
    /// Counting-sort destination per source index (reused across rebins).
    perm: Vec<usize>,
    /// Counting-sort write cursors (reused across rebins).
    cursor: Vec<usize>,
    /// Sweeps executed since the last rebin.
    age: u32,
    /// Set by any structural edit (push/remove/mutate); forces a rebin
    /// before the next sweep and disables the histogram fast path.
    dirty: bool,
    rebin_interval: u32,
    /// Lifetime count of [`BinnedStore::rebin`] invocations (telemetry).
    rebins: u64,
    /// Instruction-set backend for the span kernel, selected once at
    /// construction ([`SimdBackend::detect`]); every backend is
    /// bit-identical, so this is a pure throughput knob.
    backend: SimdBackend,
    /// Exact (bit-identical) or fast (analytically-verified) span kernel.
    tier: KernelTier,
    /// Particle–thread binding: when true the sweep dispatches by
    /// [`pool::Pool::run_owned`] slot instead of self-scheduling chunks,
    /// so each pool thread sweeps the same bins every step between
    /// rebins (cache/NUMA locality). Results are identical either way —
    /// binding is pure scheduling.
    bind: bool,
    /// Per-slot `(start, end)` particle spans (bin-aligned, contiguous,
    /// covering `0..n`), recomputed lazily when invalidated by a rebin or
    /// a pool-width change; capacity is retained.
    owner_spans: Vec<(usize, usize)>,
    /// Slot count `owner_spans` was computed for (0 = invalid).
    owner_slots: usize,
}

impl BinnedStore {
    /// Bin `particles` on `grid`. `rebin_interval` is clamped to ≥ 1.
    pub fn new(particles: &[Particle], grid: &Grid, rebin_interval: u32) -> BinnedStore {
        BinnedStore::new_subdomain(particles, grid, rebin_interval, 0, grid.ncells())
    }

    /// Bin `particles` over the column range `[col_lo, col_hi)` only — the
    /// per-rank store of the distributed implementations. Every particle
    /// must lie inside the range whenever a rebin runs (the rank step
    /// drains leavers before rebinning, so this holds by construction).
    pub fn new_subdomain(
        particles: &[Particle],
        grid: &Grid,
        rebin_interval: u32,
        col_lo: usize,
        col_hi: usize,
    ) -> BinnedStore {
        assert!(
            col_lo < col_hi && col_hi <= grid.ncells(),
            "bad column range {col_lo}..{col_hi} on a {}-column grid",
            grid.ncells()
        );
        let ncols = col_hi - col_lo;
        let mut store = BinnedStore {
            batch: ParticleBatch::from_particles(particles),
            scratch: ParticleBatch::new(),
            offsets: vec![0; ncols + 1],
            col_lo,
            ncols,
            perm: Vec::new(),
            cursor: vec![0; ncols],
            age: 0,
            dirty: false,
            rebin_interval: rebin_interval.max(1),
            rebins: 0,
            backend: SimdBackend::detect(),
            tier: KernelTier::Exact,
            bind: false,
            owner_spans: Vec::new(),
            owner_slots: 0,
        };
        store.rebin(grid);
        store
    }

    /// The binned column range `[col_lo, col_hi)`.
    pub fn columns(&self) -> (usize, usize) {
        (self.col_lo, self.col_lo + self.ncols)
    }

    /// Re-anchor the store to a new column range (a load-balancer cut
    /// move) and rebin immediately. All particles must already lie inside
    /// the new range — callers drain leavers under the new decomposition
    /// first.
    pub fn set_columns(&mut self, grid: &Grid, col_lo: usize, col_hi: usize) {
        assert!(
            col_lo < col_hi && col_hi <= grid.ncells(),
            "bad column range {col_lo}..{col_hi} on a {}-column grid",
            grid.ncells()
        );
        self.col_lo = col_lo;
        self.ncols = col_hi - col_lo;
        self.rebin(grid);
    }

    /// The instruction-set backend the sweep kernel runs on.
    pub fn simd_backend(&self) -> SimdBackend {
        self.backend
    }

    /// Override the kernel backend (A/B measurements and the cross-backend
    /// identity tests; results are bit-identical on every backend).
    pub fn set_simd_backend(&mut self, backend: SimdBackend) {
        self.backend = backend;
    }

    /// The force-kernel tier the sweep runs ([`KernelTier::Exact`] unless
    /// overridden).
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Select the force-kernel tier. Switching to [`KernelTier::Fast`]
    /// trades bit-identity for throughput; verify such runs with
    /// [`crate::verify::analytic_tolerance`].
    pub fn set_kernel_tier(&mut self, tier: KernelTier) {
        self.tier = tier;
    }

    /// Whether sweeps use the persistent bin→worker assignment.
    pub fn thread_binding(&self) -> bool {
        self.bind
    }

    /// Enable/disable particle–thread binding (see the `bind` field docs).
    /// Takes effect at the next sweep; never changes results.
    pub fn set_thread_binding(&mut self, bind: bool) {
        self.bind = bind;
        self.owner_slots = 0;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The rebin interval `R` (sweeps between counting sorts).
    pub fn rebin_interval(&self) -> u32 {
        self.rebin_interval
    }

    /// Change the rebin interval (clamped to ≥ 1); takes effect at the
    /// next sweep.
    pub fn set_rebin_interval(&mut self, rebin_interval: u32) {
        self.rebin_interval = rebin_interval.max(1);
    }

    /// Direct view of the underlying batch — **bin order**, not canonical
    /// order; use [`BinnedStore::to_particles`] for the canonical view.
    pub fn batch(&self) -> &ParticleBatch {
        &self.batch
    }

    /// Rebuild the counting-sort permutation from current positions.
    /// Stable (equal columns keep their relative order), skips the gather
    /// when the permutation is the identity, and reuses all scratch
    /// storage — after warm-up this allocates nothing.
    pub fn rebin(&mut self, grid: &Grid) {
        let n = self.batch.len();
        let ncols = self.ncols;
        self.offsets.clear();
        self.offsets.resize(ncols + 1, 0);
        for &x in &self.batch.x {
            let c = grid.cell_of(x);
            debug_assert!(
                (self.col_lo..self.col_lo + ncols).contains(&c),
                "rebin with un-homed particle: column {c} outside {}..{}",
                self.col_lo,
                self.col_lo + ncols
            );
            self.offsets[c - self.col_lo + 1] += 1;
        }
        for c in 0..ncols {
            self.offsets[c + 1] += self.offsets[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..ncols]);
        self.perm.clear();
        self.perm.resize(n, 0);
        let mut identity = true;
        for (i, &x) in self.batch.x.iter().enumerate() {
            let c = grid.cell_of(x) - self.col_lo;
            let dst = self.cursor[c];
            self.cursor[c] += 1;
            self.perm[i] = dst;
            identity &= dst == i;
        }
        if !identity {
            gather(&self.batch, &mut self.scratch, &self.perm);
            std::mem::swap(&mut self.batch, &mut self.scratch);
        }
        self.age = 0;
        self.dirty = false;
        self.rebins += 1;
        // Bin boundaries moved: the persistent bin→worker assignment is
        // recomputed lazily at the next bound sweep. Rebin boundaries are
        // the *only* points where ownership is rebalanced.
        self.owner_slots = 0;
    }

    /// Recompute the per-slot owner spans: a contiguous, bin-aligned
    /// partition of `0..n` whose boundaries sit at the first bin boundary
    /// at or past each ideal `s·n/slots` cut, so slots carry near-equal
    /// particle counts at bin granularity. Capacity-retaining (steady
    /// state allocates nothing once warm).
    fn compute_owner_spans(&mut self, slots: usize) {
        // Spans cover the binned region only; tail arrivals are swept
        // serially by their owner step and merge at the next rebin.
        let n = self.offsets[self.ncols];
        self.owner_spans.clear();
        let mut prev = 0usize;
        for s in 1..=slots {
            let end = if s == slots {
                n
            } else {
                let target = s * n / slots;
                let b = self.offsets.partition_point(|&o| o < target);
                self.offsets[b.min(self.offsets.len() - 1)]
            };
            let end = end.max(prev);
            self.owner_spans.push((prev, end));
            prev = end;
        }
        self.owner_slots = slots;
    }

    /// Lifetime number of counting-sort (rebin) invocations, including the
    /// initial sort at construction. Feeds the trace `rebins` counter.
    pub fn rebin_count(&self) -> u64 {
        self.rebins
    }

    /// Advance every particle one step: rebin if structurally dirty, sweep
    /// bin spans through the pool with the parity-hoisted kernel, then
    /// rebin at the *end* of the sweep if the interval is due — so with
    /// `R = 1` the histogram fast path is always fresh when balancer
    /// layers read it between steps.
    pub fn advance_all(&mut self, grid: &Grid, consts: &SimConstants, chunk_size: usize) {
        if self.dirty {
            self.rebin(grid);
        }
        // Pool dispatch covers the binned region; tail arrivals (absent in
        // the serial engine, where every push marks the store dirty) are
        // swept per-particle afterwards.
        let n = self.offsets[self.ncols];
        let bound = self.bind && n > 0;
        let slots = if bound {
            let slots = pool::global().active_threads();
            // Rebalance the persistent assignment only when invalidated —
            // by a rebin or a pool-width change — never mid-interval.
            if self.owner_slots != slots {
                self.compute_owner_spans(slots);
            }
            slots
        } else {
            0
        };
        let parity = self.age & 1;
        let backend = self.backend;
        let tier = self.tier;
        let col_lo = self.col_lo;
        let offsets = &self.offsets[..];
        let xp = SyncMutPtr::new(self.batch.x.as_mut_ptr());
        let yp = SyncMutPtr::new(self.batch.y.as_mut_ptr());
        let vxp = SyncMutPtr::new(self.batch.vx.as_mut_ptr());
        let vyp = SyncMutPtr::new(self.batch.vy.as_mut_ptr());
        let q = &self.batch.q[..n];
        // Sweep `start..end` one bin-clipped sub-span at a time (empty
        // bins are skipped by the offsets walk). Ranges handed to this
        // closure are disjoint, so each span is exclusively owned here.
        let sweep_range = |start: usize, end: usize| {
            let mut b = offsets.partition_point(|&o| o <= start) - 1;
            let mut i = start;
            while i < end {
                while offsets[b + 1] <= i {
                    b += 1;
                }
                let span_end = end.min(offsets[b + 1]);
                let len = span_end - i;
                let bin_parity = ((col_lo + b) as u32 & 1) ^ parity;
                let q_left = if bin_parity == 0 { consts.q } else { -consts.q };
                let (x, y, vx, vy) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(xp.get().add(i), len),
                        std::slice::from_raw_parts_mut(yp.get().add(i), len),
                        std::slice::from_raw_parts_mut(vxp.get().add(i), len),
                        std::slice::from_raw_parts_mut(vyp.get().add(i), len),
                    )
                };
                match tier {
                    KernelTier::Exact => simd::advance_bin_span_simd(
                        backend,
                        grid,
                        consts,
                        q_left,
                        x,
                        y,
                        vx,
                        vy,
                        &q[i..span_end],
                    ),
                    KernelTier::Fast => {
                        // Pull the next span's columns towards the cache
                        // while this one computes (spans are contiguous
                        // in particle index, so the next span starts at
                        // `span_end`).
                        if span_end < end {
                            unsafe {
                                simd::prefetch_read(xp.get().add(span_end));
                                simd::prefetch_read(yp.get().add(span_end));
                            }
                            simd::prefetch_read(q[span_end..].as_ptr());
                        }
                        simd::advance_bin_span_fast(
                            backend,
                            grid,
                            consts,
                            q_left,
                            x,
                            y,
                            vx,
                            vy,
                            &q[i..span_end],
                        )
                    }
                }
                i = span_end;
            }
        };
        if bound {
            let spans = &self.owner_spans[..];
            pool::global().run_owned(slots, &|s| {
                let (start, end) = spans[s];
                if start < end {
                    sweep_range(start, end);
                }
            });
        } else {
            pool::global().run_chunked(n, chunk_size, &sweep_range);
        }
        self.sweep_tail(grid, consts, None);
        self.age += 1;
        if self.age >= self.rebin_interval {
            self.rebin(grid);
        }
    }

    /// One serial sweep on the *calling* thread — the distributed rank
    /// path, where each rank is already its own parallel unit and pool
    /// dispatch would contend across rank threads. Rebins first if
    /// structurally dirty, runs the tier kernel over every bin span plus
    /// the per-particle tail, and does **not** rebin at the end: the rank
    /// step rebins after the exchange ([`BinnedStore::rebin_due`]) so the
    /// counting sort only ever sees homed particles.
    ///
    /// With `charges`, per-bin corner charges are read from the rank's
    /// ghost-ringed [`ChargeGrid`] window instead of the parity formula.
    /// The two sources are bitwise-identical (the grid stores exactly
    /// `mesh_charge(col, q)`, and the age-parity flip is an exact
    /// negation), so this is a data-path choice, not a numeric one.
    pub fn sweep_local(
        &mut self,
        grid: &Grid,
        consts: &SimConstants,
        charges: Option<&ChargeGrid>,
    ) {
        self.prepare_sweep(grid);
        self.sweep_bins(grid, consts, charges, 0, self.ncols);
        self.sweep_tail_pass(grid, consts, charges);
        self.end_sweep();
    }

    /// First stage of a split sweep: fold any pending structural edits in
    /// (rebin if dirty) so the bin spans are valid for [`Self::sweep_cols`].
    /// [`Self::sweep_local`] is exactly
    /// `prepare_sweep → sweep_cols(all) → sweep_tail_pass → end_sweep`,
    /// so a split sweep is bit-identical to the one-call form no matter
    /// how the column range is partitioned: every bin runs the same tier
    /// kernel with the same age parity against the same fixed per-step
    /// mesh, and particles never interact within a step.
    pub fn prepare_sweep(&mut self, grid: &Grid) {
        if self.dirty {
            self.rebin(grid);
        }
    }

    /// Sweep only the bins of the **global** columns in `cols` (clamped to
    /// this store's slab). The overlapped rank step uses this to advance
    /// border columns first, launch their exchange, then advance the
    /// interior while messages are in flight. Requires
    /// [`Self::prepare_sweep`]; no structural edits may intervene before
    /// [`Self::end_sweep`].
    pub fn sweep_cols(
        &mut self,
        grid: &Grid,
        consts: &SimConstants,
        charges: Option<&ChargeGrid>,
        cols: std::ops::Range<usize>,
    ) {
        assert!(!self.dirty, "sweep_cols requires prepare_sweep");
        let hi = self.col_lo + self.ncols;
        let b_lo = cols.start.clamp(self.col_lo, hi) - self.col_lo;
        let b_hi = cols.end.clamp(self.col_lo, hi) - self.col_lo;
        self.sweep_bins(grid, consts, charges, b_lo, b_hi);
    }

    /// Advance the tail region (exchange arrivals) — the per-particle
    /// stage of a split sweep. Must run before new arrivals are appended
    /// with [`Self::push_tail`].
    pub fn sweep_tail_pass(
        &mut self,
        grid: &Grid,
        consts: &SimConstants,
        charges: Option<&ChargeGrid>,
    ) {
        self.sweep_tail(grid, consts, charges);
    }

    /// Close a split sweep: bump the age so the next sweep flips charge
    /// parity. Call exactly once per step, after every column range and
    /// the tail have been swept.
    pub fn end_sweep(&mut self) {
        self.age += 1;
    }

    /// The tier kernel over bins `b_lo..b_hi` (local bin indices) at the
    /// current age parity.
    fn sweep_bins(
        &mut self,
        grid: &Grid,
        consts: &SimConstants,
        charges: Option<&ChargeGrid>,
        b_lo: usize,
        b_hi: usize,
    ) {
        let parity = self.age & 1;
        let row0 = charges.map(|cg| cg.bounds().1 .0);
        let binned = self.offsets[self.ncols];
        for b in b_lo..b_hi {
            let (i, span_end) = (self.offsets[b], self.offsets[b + 1]);
            if i == span_end {
                continue;
            }
            let col = self.col_lo + b;
            let base = match charges {
                Some(cg) => cg.charge_at(col, row0.unwrap()),
                None => mesh_charge(col, consts.q),
            };
            let q_left = if parity == 1 { -base } else { base };
            if self.tier == KernelTier::Fast && span_end < binned {
                // Pull the next span's columns towards the cache while
                // this one computes (spans are contiguous in index).
                simd::prefetch_read(self.batch.x[span_end..].as_ptr());
                simd::prefetch_read(self.batch.y[span_end..].as_ptr());
                simd::prefetch_read(self.batch.q[span_end..].as_ptr());
            }
            let x = &mut self.batch.x[i..span_end];
            let y = &mut self.batch.y[i..span_end];
            let vx = &mut self.batch.vx[i..span_end];
            let vy = &mut self.batch.vy[i..span_end];
            let q = &self.batch.q[i..span_end];
            match self.tier {
                KernelTier::Exact => {
                    simd::advance_bin_span_simd(self.backend, grid, consts, q_left, x, y, vx, vy, q)
                }
                KernelTier::Fast => {
                    simd::advance_bin_span_fast(self.backend, grid, consts, q_left, x, y, vx, vy, q)
                }
            }
        }
    }

    /// Advance the tail region (exchange arrivals past `offsets[ncols]`)
    /// one step, per particle, through the exact scalar span kernel with
    /// the particle's *live* column charge — no parity flip, because the
    /// column is read fresh rather than remembered from a rebin. Tail
    /// particles are homed on arrival, so with `charges` the lookup stays
    /// inside the ghost-ringed window.
    fn sweep_tail(&mut self, grid: &Grid, consts: &SimConstants, charges: Option<&ChargeGrid>) {
        let n = self.batch.len();
        let start = self.offsets[self.ncols];
        for i in start..n {
            let (col, row) = grid.cell_of_point(self.batch.x[i], self.batch.y[i]);
            let q_left = match charges {
                Some(cg) => cg.charge_at(col, row),
                None => mesh_charge(col, consts.q),
            };
            advance_bin_span(
                grid,
                consts,
                q_left,
                &mut self.batch.x[i..i + 1],
                &mut self.batch.y[i..i + 1],
                &mut self.batch.vx[i..i + 1],
                &mut self.batch.vy[i..i + 1],
                &self.batch.q[i..i + 1],
            );
        }
    }

    /// Sweeps since the last rebin. Between rebins a particle in bin `b`
    /// may have drifted up to `stride · age` columns from `b`, so any
    /// bin-indexed border set must widen by the age (see
    /// [`Self::border_width`]).
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Width (in columns) of the bin-space border that is guaranteed to
    /// contain every possible leaver after the *next* sweep, for a
    /// per-step column stride of `stride`: particles drift `stride` per
    /// sweep away from their bin column, so after `age` sweeps plus the
    /// upcoming one, only bins within `stride · (age + 1)` of a subdomain
    /// edge can hold a particle that exits it.
    pub fn border_width(&self, stride: usize) -> usize {
        stride * (self.age as usize + 1)
    }

    /// Whether the amortized rebin is due (interval elapsed or structural
    /// edits pending). The rank step calls this *after* the exchange so
    /// the counting sort only ever sees homed particles.
    pub fn rebin_due(&self) -> bool {
        self.dirty || self.age >= self.rebin_interval
    }

    /// Number of exchange arrivals not yet folded into bin order.
    pub fn tail_len(&self) -> usize {
        self.batch.len() - self.offsets[self.ncols].min(self.batch.len())
    }

    /// Fill `h` with the per-column particle counts. When the binning is
    /// fresh (just rebinned, no structural edits since) this is the
    /// O(columns) prefix-sum difference; otherwise it falls back to the
    /// O(n) position scan the unbinned stores use.
    pub fn column_histogram_into(&self, grid: &Grid, h: &mut Vec<u64>) {
        h.clear();
        h.resize(grid.ncells(), 0);
        if self.histogram_is_fresh() {
            for (i, w) in self.offsets.windows(2).enumerate() {
                h[self.col_lo + i] = (w[1] - w[0]) as u64;
            }
        } else {
            for &x in &self.batch.x {
                h[grid.cell_of(x)] += 1;
            }
        }
    }

    /// Whether [`BinnedStore::column_histogram_into`] will take the
    /// O(columns) fast path (true whenever the store was rebinned after
    /// the last sweep/edit — always the case in steady state with R = 1).
    pub fn histogram_is_fresh(&self) -> bool {
        self.age == 0 && !self.dirty && self.offsets[self.ncols] == self.batch.len()
    }

    /// Append a particle (goes to the tail, outside bin order → marks the
    /// store dirty; the next sweep rebins first).
    pub fn push(&mut self, p: Particle) {
        self.batch.push(p);
        self.dirty = true;
    }

    pub fn extend(&mut self, particles: Vec<Particle>) {
        for p in particles {
            self.batch.push(p);
        }
        self.dirty = true;
    }

    /// Append an exchange arrival **without** disturbing bin order: the
    /// particle joins the tail region (`offsets[ncols]..len`), is swept
    /// per-particle until the next rebin, and does not force an early
    /// counting sort — this is what keeps the rebin amortized under
    /// steady migration traffic. The particle must be homed (inside this
    /// store's column range) so the eventual rebin stays in range.
    pub fn push_tail(&mut self, p: Particle) {
        self.batch.push(p);
    }

    /// Drain every particle whose *current* cell fails `keep(col, row)`
    /// into `out`, preserving bin order (stable in-place compaction of
    /// all eleven arrays with an offsets fix-up) — the exchange path, run
    /// every step without an AoS round-trip. Returns the drain count.
    pub fn drain_leavers_into(
        &mut self,
        grid: &Grid,
        keep: impl FnMut(usize, usize) -> bool,
        out: impl FnMut(Particle),
    ) -> usize {
        self.drain_leavers_cols_into(grid, |_| true, keep, out)
    }

    /// [`Self::drain_leavers_into`] restricted to the bins of global
    /// columns for which `active(col)` is true, plus the tail region
    /// (arrivals may sit in any column and are always tested). Inactive
    /// bins compact wholesale without the `keep` test — the overlapped
    /// exchange drains only *border* columns this way, because interior
    /// particles cannot out-run the border width in one step. The caller
    /// guarantees inactive columns hold no leavers; when the store is
    /// dirty the binning is stale, so every particle is tested regardless.
    pub fn drain_leavers_cols_into(
        &mut self,
        grid: &Grid,
        mut active: impl FnMut(usize) -> bool,
        mut keep: impl FnMut(usize, usize) -> bool,
        mut out: impl FnMut(Particle),
    ) -> usize {
        let n = self.batch.len();
        let mut w = 0usize;
        let mut r = 0usize;
        if self.dirty {
            // Structural edits queued a rebin: offsets are stale, so the
            // whole batch compacts as one unbinned region and the next
            // sweep's rebin rebuilds the prefix sums.
            while r < n {
                let (c, row) = grid.cell_of_point(self.batch.x[r], self.batch.y[r]);
                if keep(c, row) {
                    if w != r {
                        self.batch.copy_element(r, w);
                    }
                    w += 1;
                } else {
                    out(self.batch.get(r));
                }
                r += 1;
            }
        } else {
            for b in 0..self.ncols {
                // `offsets[b+1]` still holds the *old* end of bin `b`:
                // the fix-up below only rewrites entries already walked.
                let end = self.offsets[b + 1];
                if !active(self.col_lo + b) {
                    // Whole span keeps; shift it left past earlier holes.
                    if w != r {
                        for i in r..end {
                            self.batch.copy_element(i, w + (i - r));
                        }
                    }
                    w += end - r;
                    r = end;
                    self.offsets[b + 1] = w;
                    continue;
                }
                while r < end {
                    let (c, row) = grid.cell_of_point(self.batch.x[r], self.batch.y[r]);
                    if keep(c, row) {
                        if w != r {
                            self.batch.copy_element(r, w);
                        }
                        w += 1;
                    } else {
                        out(self.batch.get(r));
                    }
                    r += 1;
                }
                self.offsets[b + 1] = w;
            }
            // Tail arrivals compact too; they stay outside the offsets.
            while r < n {
                let (c, row) = grid.cell_of_point(self.batch.x[r], self.batch.y[r]);
                if keep(c, row) {
                    if w != r {
                        self.batch.copy_element(r, w);
                    }
                    w += 1;
                } else {
                    out(self.batch.get(r));
                }
                r += 1;
            }
        }
        self.batch.truncate(w);
        let removed = n - w;
        if removed > 0 {
            // Span ends moved: recompute the bin→worker assignment lazily.
            self.owner_slots = 0;
        }
        removed
    }

    /// Apply a removal event: up to `count` particles inside `region`,
    /// lowest ids first — identical selection rule to the other stores.
    pub fn remove_in_region(&mut self, region: &Region, count: u64) -> Vec<Particle> {
        self.dirty = true;
        self.batch.remove_in_region(region, count)
    }

    /// Remove every particle whose id is in `doomed` (the distributed
    /// removal event, where the global lowest-id selection is computed
    /// across ranks first). Order-preserving; marks the store dirty.
    pub fn remove_ids(&mut self, doomed: &HashSet<u64>) -> Vec<Particle> {
        self.dirty = true;
        self.batch.remove_ids(doomed)
    }

    /// Materialize the population in **canonical order** (ascending id —
    /// the order every unbinned store maintains physically). Allocates;
    /// verification/checkpoint path, not the steady state.
    pub fn to_particles(&self) -> Vec<Particle> {
        let mut ps = self.batch.to_particles();
        ps.sort_unstable_by_key(|p| p.id);
        ps
    }

    /// Physical index of the particle at canonical (ascending-id) index
    /// `idx` — failure-injection tests *only* (O(n log n)).
    fn physical_index(&self, idx: usize) -> usize {
        let mut order: Vec<usize> = (0..self.batch.len()).collect();
        order.sort_unstable_by_key(|&i| self.batch.id[i]);
        order[idx]
    }

    /// Read the particle at canonical index `idx` — failure-injection
    /// tests *only*.
    pub fn particle_at(&self, idx: usize) -> Particle {
        self.batch.get(self.physical_index(idx))
    }

    /// Overwrite the particle at canonical index `idx` — failure-injection
    /// tests *only*. Marks the store dirty (the edit may move the particle
    /// out of its bin or off the parity lattice).
    pub fn set(&mut self, idx: usize, p: Particle) {
        let i = self.physical_index(idx);
        self.batch.set(i, p);
        self.dirty = true;
    }

    /// Remove and return the particle with the largest id (the canonical
    /// tail, matching `Vec::pop` on an ascending-id AoS store) —
    /// failure-injection tests *only*.
    pub fn pop(&mut self) -> Option<Particle> {
        if self.batch.is_empty() {
            return None;
        }
        let i = self.physical_index(self.batch.len() - 1);
        self.dirty = true;
        Some(self.batch.swap_remove(i))
    }

    /// Sum of ids (checksum contribution) — order-independent.
    pub fn id_sum(&self) -> u128 {
        self.batch.id_sum()
    }
}

/// Gather `src` into `dst` under `perm` (`dst[perm[i]] = src[i]`),
/// resizing `dst` only when capacity must grow.
fn gather(src: &ParticleBatch, dst: &mut ParticleBatch, perm: &[usize]) {
    let n = src.len();
    macro_rules! gather_field {
        ($f:ident, $zero:expr) => {
            dst.$f.clear();
            dst.$f.resize(n, $zero);
            for (i, &d) in perm.iter().enumerate() {
                dst.$f[d] = src.$f[i];
            }
        };
    }
    gather_field!(id, 0);
    gather_field!(x, 0.0);
    gather_field!(y, 0.0);
    gather_field!(vx, 0.0);
    gather_field!(vy, 0.0);
    gather_field!(q, 0.0);
    gather_field!(x0, 0.0);
    gather_field!(y0, 0.0);
    gather_field!(k, 0);
    gather_field!(m, 0);
    gather_field!(born_at, 0);
}

/// The force-and-integrate half of the parity-specialized sweep kernel
/// ([`advance_bin_span`]), exposed separately so the SIMD layer can run
/// span tails (`len mod 4`) through exactly this code.
#[inline(always)]
pub(crate) fn force_span(
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    let dt = consts.dt;
    let h = consts.h;
    let q_right = -q_left;
    for i in 0..x.len() {
        let xi = x[i];
        let yi = y[i];
        // `cell_of` minus the defensive clamp: wrapped coordinates lie in
        // [0, L), where the truncation alone yields the identical index.
        let col = xi as usize;
        let row = yi as usize;
        // The parity invariant (module docs): every particle in the span
        // agrees with the hoisted corner charge.
        debug_assert_eq!(mesh_charge(col, consts.q), q_left, "parity drift at x={xi}");
        let rx = xi - col as f64;
        let ry = yi - row as f64;
        let qp = q[i];
        let (fx0, fy0) = coulomb(rx, ry, q_left, qp); // bottom-left
        let (fx1, fy1) = coulomb(rx, ry - h, q_left, qp); // top-left
        let (fx2, fy2) = coulomb(rx - h, ry, q_right, qp); // bottom-right
        let (fx3, fy3) = coulomb(rx - h, ry - h, q_right, qp); // top-right
        let ax = (fx0 + fx1) + (fx2 + fx3);
        let ay = (fy0 + fy1) + (fy2 + fy3);
        x[i] = xi + (vx[i] + 0.5 * ax * dt) * dt;
        y[i] = yi + (vy[i] + 0.5 * ay * dt) * dt;
        vx[i] += ax * dt;
        vy[i] += ay * dt;
    }
}

/// The parity-specialized sweep kernel: eqs. 1–2 over one bin-clipped
/// span whose particles all share mesh-corner charges `q_left` (left
/// column) and `−q_left` (right column). This is the scalar reference
/// the SIMD backends ([`crate::simd`]) are proven bit-identical against,
/// and the kernel the `Scalar` backend runs directly.
///
/// Per particle this is the *same operation sequence* as
/// `total_force` + the unbinned `advance_span`: the same four [`coulomb`]
/// corner evaluations in the same pairing, the same half-acceleration
/// integration, the same wrap. What the binning removes is per-particle
/// work that is invariant across the span: the `mesh_charge` parity
/// branches are gone (hoisted to `q_left`), and the force/integrate loop
/// ([`force_span`]) is split from the (branchy) wrap pass so the hot loop
/// is branch-free — `coulomb`'s zero-distance guard is a value select —
/// and eligible for autovectorization. Splitting is bit-neutral:
/// particles are independent and each particle's own operation order is
/// unchanged.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn advance_bin_span(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    #[cfg(debug_assertions)]
    for i in 0..x.len() {
        debug_assert_eq!(
            (x[i] as usize, y[i] as usize),
            grid.cell_of_point(x[i], y[i])
        );
    }
    force_span(consts, q_left, x, y, vx, vy, q);
    for i in 0..x.len() {
        x[i] = grid.wrap_coord(x[i]);
        y[i] = grid.wrap_coord(y[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::init::InitConfig;
    use crate::pool::DEFAULT_CHUNK;
    use crate::verify::{triangular_id_sum, verify_all, DEFAULT_TOLERANCE};

    fn population(n: u64, dist: Distribution) -> (Grid, Vec<Particle>) {
        let grid = Grid::new(32).unwrap();
        let s = InitConfig::new(grid, n, dist)
            .with_k(1)
            .with_m(-1)
            .build()
            .unwrap();
        (grid, s.particles)
    }

    #[test]
    fn binning_orders_by_column_and_is_stable() {
        let (grid, ps) = population(500, Distribution::Geometric { r: 0.9 });
        let store = BinnedStore::new(&ps, &grid, 1);
        let b = store.batch();
        // Non-decreasing column across the batch…
        let cols: Vec<usize> = b.x.iter().map(|&x| grid.cell_of(x)).collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]), "not column-sorted");
        // …ascending id within each bin (stability from canonical order).
        for c in 0..grid.ncells() {
            let span = &b.id[store.offsets[c]..store.offsets[c + 1]];
            assert!(span.windows(2).all(|w| w[0] < w[1]), "bin {c} unstable");
        }
    }

    #[test]
    fn to_particles_restores_canonical_order() {
        let (grid, ps) = population(300, Distribution::Sinusoidal);
        let store = BinnedStore::new(&ps, &grid, 4);
        assert_eq!(store.to_particles(), ps);
        assert_eq!(store.id_sum(), triangular_id_sum(300));
    }

    #[test]
    fn binned_sweep_bitwise_matches_unbinned_for_rebin_intervals() {
        let (grid, ps) = population(400, Distribution::Geometric { r: 0.9 });
        let consts = SimConstants::CANONICAL;
        for rebin in [1u32, 3, 16] {
            let mut reference = ParticleBatch::from_particles(&ps);
            let mut binned = BinnedStore::new(&ps, &grid, rebin);
            for _ in 0..40 {
                reference.advance_all(&grid, &consts);
                binned.advance_all(&grid, &consts, DEFAULT_CHUNK);
            }
            let mut want = reference.to_particles();
            want.sort_unstable_by_key(|p| p.id);
            assert_eq!(want, binned.to_particles(), "rebin={rebin} diverged");
        }
    }

    #[test]
    fn binned_run_verifies() {
        let (grid, ps) = population(300, Distribution::PAPER_SKEW);
        let consts = SimConstants::CANONICAL;
        let mut store = BinnedStore::new(&ps, &grid, 3);
        for _ in 0..60 {
            store.advance_all(&grid, &consts, DEFAULT_CHUNK);
        }
        let report = verify_all(
            &grid,
            &store.to_particles(),
            60,
            triangular_id_sum(300),
            DEFAULT_TOLERANCE,
        );
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn histogram_fast_path_matches_scan() {
        let (grid, ps) = population(700, Distribution::Geometric { r: 0.8 });
        let consts = SimConstants::CANONICAL;
        let mut store = BinnedStore::new(&ps, &grid, 1);
        let mut fast = Vec::new();
        let mut scan = vec![0u64; grid.ncells()];
        for _ in 0..5 {
            store.advance_all(&grid, &consts, DEFAULT_CHUNK);
            assert!(store.histogram_is_fresh(), "R=1 must stay fresh");
            store.column_histogram_into(&grid, &mut fast);
            scan.iter_mut().for_each(|c| *c = 0);
            for &x in &store.batch().x {
                scan[grid.cell_of(x)] += 1;
            }
            assert_eq!(fast, scan);
        }
    }

    #[test]
    fn histogram_falls_back_when_stale() {
        let (grid, ps) = population(200, Distribution::Uniform);
        let consts = SimConstants::CANONICAL;
        let mut store = BinnedStore::new(&ps, &grid, 16);
        store.advance_all(&grid, &consts, DEFAULT_CHUNK);
        assert!(!store.histogram_is_fresh(), "age 1 of 16 is stale");
        let mut h = Vec::new();
        store.column_histogram_into(&grid, &mut h);
        assert_eq!(h.iter().sum::<u64>(), 200);
        // Fallback still reflects *current* positions, not the stale bins.
        let mut scan = vec![0u64; grid.ncells()];
        for &x in &store.batch().x {
            scan[grid.cell_of(x)] += 1;
        }
        assert_eq!(h, scan);
    }

    #[test]
    fn edits_mark_dirty_and_next_sweep_recovers() {
        let (grid, ps) = population(100, Distribution::Uniform);
        let consts = SimConstants::CANONICAL;
        let mut store = BinnedStore::new(&ps, &grid, 8);
        let doomed = store.remove_in_region(&Region::whole(32), 10);
        assert_eq!(doomed.len(), 10);
        assert!(!store.histogram_is_fresh());
        // The dirty rebin runs at the start of the next sweep; the sweep
        // itself then matches an unbinned sweep of the same survivors.
        let mut reference = ParticleBatch::from_particles(&store.to_particles());
        store.advance_all(&grid, &consts, DEFAULT_CHUNK);
        reference.advance_all(&grid, &consts);
        assert_eq!(store.len(), 90);
        assert_eq!(store.offsets[grid.ncells()], 90, "rebin saw the removal");
        assert_eq!(reference.to_particles(), store.to_particles());
    }

    #[test]
    fn fast_tier_stays_within_analytic_bound_and_verifies() {
        use crate::verify::analytic_tolerance;
        let (grid, ps) = population(400, Distribution::PAPER_SKEW);
        let consts = SimConstants::CANONICAL;
        let steps = 40u32;
        for backend in SimdBackend::available() {
            let mut exact = BinnedStore::new(&ps, &grid, 3);
            exact.set_simd_backend(backend);
            let mut fast = BinnedStore::new(&ps, &grid, 3);
            fast.set_simd_backend(backend);
            fast.set_kernel_tier(KernelTier::Fast);
            for _ in 0..steps {
                exact.advance_all(&grid, &consts, DEFAULT_CHUNK);
                fast.advance_all(&grid, &consts, DEFAULT_CHUNK);
            }
            // Drift vs the exact tier is bounded by the derived tolerance
            // (k = 1 → stride 3).
            let tol = analytic_tolerance(steps as u64, 3);
            let we = exact.to_particles();
            let wf = fast.to_particles();
            for (e, f) in we.iter().zip(&wf) {
                let d = grid
                    .periodic_delta(e.x, f.x)
                    .abs()
                    .max(grid.periodic_delta(e.y, f.y).abs());
                assert!(
                    d <= tol,
                    "backend {}: fast tier drifted {d:e} > {tol:e} (id {})",
                    backend.name(),
                    e.id
                );
            }
            // And the fast run itself passes the analytic eqs. 5–6 gate.
            let report = verify_all(&grid, &wf, steps, triangular_id_sum(400), tol);
            assert!(report.passed(), "backend {}: {report:?}", backend.name());
        }
    }

    #[test]
    fn fast_tier_scalar_backend_is_bit_identical() {
        // PIC_NO_SIMD semantics: the scalar backend must run the exact
        // kernel even in fast mode.
        let (grid, ps) = population(300, Distribution::Geometric { r: 0.9 });
        let consts = SimConstants::CANONICAL;
        let mut exact = BinnedStore::new(&ps, &grid, 1);
        exact.set_simd_backend(SimdBackend::Scalar);
        let mut fast = BinnedStore::new(&ps, &grid, 1);
        fast.set_simd_backend(SimdBackend::Scalar);
        fast.set_kernel_tier(KernelTier::Fast);
        for _ in 0..30 {
            exact.advance_all(&grid, &consts, DEFAULT_CHUNK);
            fast.advance_all(&grid, &consts, DEFAULT_CHUNK);
        }
        assert_eq!(exact.to_particles(), fast.to_particles());
    }

    #[test]
    fn thread_binding_is_bit_neutral() {
        // Binding changes scheduling only: an exact-tier bound sweep stays
        // bit-identical to the unbound sweep for every rebin interval.
        let (grid, ps) = population(500, Distribution::Geometric { r: 0.8 });
        let consts = SimConstants::CANONICAL;
        for rebin in [1u32, 3, 16] {
            let mut plain = BinnedStore::new(&ps, &grid, rebin);
            let mut bound = BinnedStore::new(&ps, &grid, rebin);
            bound.set_thread_binding(true);
            assert!(bound.thread_binding());
            for _ in 0..25 {
                plain.advance_all(&grid, &consts, DEFAULT_CHUNK);
                bound.advance_all(&grid, &consts, DEFAULT_CHUNK);
            }
            assert_eq!(
                plain.to_particles(),
                bound.to_particles(),
                "rebin={rebin} binding changed results"
            );
        }
    }

    #[test]
    fn owner_spans_cover_bin_aligned_and_balanced() {
        let (grid, ps) = population(1000, Distribution::Geometric { r: 0.85 });
        let mut store = BinnedStore::new(&ps, &grid, 1);
        for slots in [1usize, 2, 3, 7] {
            store.compute_owner_spans(slots);
            let spans = store.owner_spans.clone();
            assert_eq!(spans.len(), slots);
            // Contiguous cover of 0..n…
            assert_eq!(spans[0].0, 0);
            assert_eq!(spans[slots - 1].1, store.len());
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            // …with every boundary on a bin boundary…
            for &(s, e) in &spans {
                assert!(store.offsets.contains(&s), "start {s} not bin-aligned");
                assert!(store.offsets.contains(&e), "end {e} not bin-aligned");
            }
            // …and no slot overloaded beyond the ideal share plus one bin.
            let max_bin = store
                .offsets
                .windows(2)
                .map(|w| w[1] - w[0])
                .max()
                .unwrap_or(0);
            for &(s, e) in &spans {
                assert!(
                    e - s <= store.len() / slots + max_bin,
                    "slots={slots}: span {s}..{e} overloaded"
                );
            }
        }
    }

    /// Reference rank loop: two subdomain stores exchanging via
    /// drain/push_tail, compared bitwise against the unbinned sweep.
    fn run_split_stores(
        charges: bool,
        rebin: u32,
        steps: u32,
        n: u64,
        dist: Distribution,
    ) -> (Vec<Particle>, Vec<Particle>) {
        let (grid, ps) = population(n, dist);
        let consts = SimConstants::CANONICAL;
        let ncells = grid.ncells();
        let mid = ncells / 2;
        let cg_left = ChargeGrid::build(&grid, &consts, (0, mid), (0, ncells));
        let cg_right = ChargeGrid::build(&grid, &consts, (mid, ncells), (0, ncells));
        let mut reference = ParticleBatch::from_particles(&ps);
        let split = |lo: usize, hi: usize| -> Vec<Particle> {
            ps.iter()
                .copied()
                .filter(|p| (lo..hi).contains(&grid.cell_of(p.x)))
                .collect()
        };
        let mut left = BinnedStore::new_subdomain(&split(0, mid), &grid, rebin, 0, mid);
        let mut right = BinnedStore::new_subdomain(&split(mid, ncells), &grid, rebin, mid, ncells);
        for _ in 0..steps {
            reference.advance_all(&grid, &consts);
            left.sweep_local(&grid, &consts, charges.then_some(&cg_left));
            right.sweep_local(&grid, &consts, charges.then_some(&cg_right));
            let (mut to_right, mut to_left) = (Vec::new(), Vec::new());
            left.drain_leavers_into(&grid, |c, _| c < mid, |p| to_right.push(p));
            right.drain_leavers_into(&grid, |c, _| c >= mid, |p| to_left.push(p));
            to_right.into_iter().for_each(|p| right.push_tail(p));
            to_left.into_iter().for_each(|p| left.push_tail(p));
            if left.rebin_due() {
                left.rebin(&grid);
            }
            if right.rebin_due() {
                right.rebin(&grid);
            }
        }
        let mut got = [left.to_particles(), right.to_particles()].concat();
        got.sort_unstable_by_key(|p| p.id);
        let mut want = reference.to_particles();
        want.sort_unstable_by_key(|p| p.id);
        (want, got)
    }

    #[test]
    fn subdomain_stores_with_drain_match_unbinned_sweep() {
        for rebin in [1u32, 3, 16] {
            let (want, got) =
                run_split_stores(false, rebin, 40, 600, Distribution::Geometric { r: 0.9 });
            assert_eq!(want, got, "rebin={rebin} diverged");
        }
    }

    #[test]
    fn subdomain_charge_grid_source_is_bit_identical() {
        // The ghost-ringed ChargeGrid stores exactly `mesh_charge(col, q)`,
        // so reading per-bin corner charges from it must not change a bit.
        for rebin in [1u32, 3] {
            let (want, got) = run_split_stores(true, rebin, 40, 500, Distribution::PAPER_SKEW);
            assert_eq!(want, got, "rebin={rebin}: charge-grid source diverged");
        }
    }

    /// The overlapped rank ordering — border sweep, tail sweep, border
    /// drain, interior sweep, arrivals, age bump — run on the same
    /// two-store split as [`run_split_stores`].
    fn run_split_stores_overlapped(
        charges: bool,
        rebin: u32,
        steps: u32,
        n: u64,
        dist: Distribution,
        border: usize,
    ) -> Vec<Particle> {
        let (grid, ps) = population(n, dist);
        let consts = SimConstants::CANONICAL;
        let ncells = grid.ncells();
        let mid = ncells / 2;
        let cg_left = ChargeGrid::build(&grid, &consts, (0, mid), (0, ncells));
        let cg_right = ChargeGrid::build(&grid, &consts, (mid, ncells), (0, ncells));
        let split = |lo: usize, hi: usize| -> Vec<Particle> {
            ps.iter()
                .copied()
                .filter(|p| (lo..hi).contains(&grid.cell_of(p.x)))
                .collect()
        };
        let mut left = BinnedStore::new_subdomain(&split(0, mid), &grid, rebin, 0, mid);
        let mut right = BinnedStore::new_subdomain(&split(mid, ncells), &grid, rebin, mid, ncells);
        for _ in 0..steps {
            let (mut to_right, mut to_left) = (Vec::new(), Vec::new());
            for (store, lo, hi, cg, out) in [
                (&mut left, 0, mid, &cg_left, &mut to_right),
                (&mut right, mid, ncells, &cg_right, &mut to_left),
            ] {
                let cg = charges.then_some(cg);
                store.prepare_sweep(&grid);
                // Bins are indexed by the column at the last rebin;
                // particles drift up to stride·age from it, so the border
                // widens with bin age.
                let w = store.border_width(border);
                let b_lo = (lo + w).min(hi);
                let b_hi = hi.saturating_sub(w).max(b_lo);
                store.sweep_cols(&grid, &consts, cg, lo..b_lo);
                store.sweep_cols(&grid, &consts, cg, b_hi..hi);
                store.sweep_tail_pass(&grid, &consts, cg);
                let is_border = |c: usize| !(b_lo..b_hi).contains(&c);
                store.drain_leavers_cols_into(
                    &grid,
                    is_border,
                    |c, _| (lo..hi).contains(&c),
                    |p| out.push(p),
                );
                // Interior advances "while messages are in flight".
                store.sweep_cols(&grid, &consts, cg, b_lo..b_hi);
            }
            to_right.into_iter().for_each(|p| right.push_tail(p));
            to_left.into_iter().for_each(|p| left.push_tail(p));
            left.end_sweep();
            right.end_sweep();
            if left.rebin_due() {
                left.rebin(&grid);
            }
            if right.rebin_due() {
                right.rebin(&grid);
            }
        }
        let mut got = [left.to_particles(), right.to_particles()].concat();
        got.sort_unstable_by_key(|p| p.id);
        got
    }

    #[test]
    fn overlapped_split_sweep_is_bit_identical_to_synchronous() {
        // Border width 3 covers the k = 1 stride (2k + 1); the overlapped
        // ordering must not change a single bit vs the one-call sweep.
        for rebin in [1u32, 3, 16] {
            for charges in [false, true] {
                let (want, got) =
                    run_split_stores(charges, rebin, 40, 600, Distribution::Geometric { r: 0.9 });
                assert_eq!(want, got, "sync harness self-check failed");
                let overlapped = run_split_stores_overlapped(
                    charges,
                    rebin,
                    40,
                    600,
                    Distribution::Geometric { r: 0.9 },
                    3,
                );
                assert_eq!(
                    got, overlapped,
                    "rebin={rebin} charges={charges}: overlapped ordering diverged"
                );
            }
        }
    }

    #[test]
    fn drain_cols_skips_inactive_bins_and_matches_full_drain() {
        let (grid, ps) = population(700, Distribution::Geometric { r: 0.85 });
        let mid = grid.ncells() / 2;
        let mut full = BinnedStore::new(&ps, &grid, 1);
        let mut restricted = BinnedStore::new(&ps, &grid, 1);
        let mut gone_full = Vec::new();
        // Leavers here are exactly the particles in columns ≥ mid, so the
        // active set {c ≥ mid} covers every leaver.
        let a = full.drain_leavers_into(&grid, |c, _| c < mid, |p| gone_full.push(p));
        let mut gone_restricted = Vec::new();
        let mut tested_inactive = false;
        let b = restricted.drain_leavers_cols_into(
            &grid,
            |c| c >= mid,
            |c, _| {
                tested_inactive |= c < mid;
                c < mid
            },
            |p| gone_restricted.push(p),
        );
        assert_eq!(a, b);
        assert!(!tested_inactive, "inactive bins must skip the keep test");
        assert_eq!(gone_full.len(), gone_restricted.len());
        assert_eq!(full.to_particles(), restricted.to_particles());
        assert!(restricted.histogram_is_fresh(), "offsets fixed up");
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        full.column_histogram_into(&grid, &mut fa);
        restricted.column_histogram_into(&grid, &mut fb);
        assert_eq!(fa, fb);
    }

    #[test]
    fn drain_keeps_bins_consistent_and_histogram_fast_path() {
        let (grid, ps) = population(800, Distribution::Geometric { r: 0.85 });
        let mut store = BinnedStore::new(&ps, &grid, 1);
        // Freshly rebinned: drain everything right of the midline.
        let mid = grid.ncells() / 2;
        let mut gone = Vec::new();
        let removed = store.drain_leavers_into(&grid, |c, _| c < mid, |p| gone.push(p));
        assert_eq!(removed, gone.len());
        assert_eq!(store.len() + removed, 800);
        // Offsets were fixed up in place: still fresh, histogram matches a
        // scan and the survivors stay column-sorted.
        assert!(store.histogram_is_fresh());
        let mut fast = Vec::new();
        store.column_histogram_into(&grid, &mut fast);
        let mut scan = vec![0u64; grid.ncells()];
        for &x in &store.batch().x {
            scan[grid.cell_of(x)] += 1;
        }
        assert_eq!(fast, scan);
        assert!(scan[mid..].iter().all(|&c| c == 0));
        let cols: Vec<usize> = store.batch().x.iter().map(|&x| grid.cell_of(x)).collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]), "order broken");
        let gone_sum: u128 = gone.iter().map(|p| p.id as u128).sum();
        assert_eq!(store.id_sum() + gone_sum, triangular_id_sum(800));
    }

    #[test]
    fn push_tail_defers_rebin_and_set_columns_reanchors() {
        let (grid, ps) = population(300, Distribution::Uniform);
        let consts = SimConstants::CANONICAL;
        let ncells = grid.ncells();
        let mid = ncells / 2;
        let left_ps: Vec<Particle> = ps
            .iter()
            .copied()
            .filter(|p| grid.cell_of(p.x) < mid)
            .collect();
        let mut store = BinnedStore::new_subdomain(&left_ps, &grid, 16, 0, mid);
        assert_eq!(store.columns(), (0, mid));
        store.sweep_local(&grid, &consts, None);
        let before = store.rebin_count();
        // A tail arrival must not force an early counting sort…
        let arrival = ps
            .iter()
            .copied()
            .find(|p| grid.cell_of(p.x) < mid)
            .map(|mut p| {
                p.id = 10_000;
                p
            })
            .unwrap();
        store.push_tail(arrival);
        assert_eq!(store.tail_len(), 1);
        store.sweep_local(&grid, &consts, None);
        assert_eq!(store.rebin_count(), before, "tail push forced a rebin");
        // …and a cut move re-anchors the column range (everything is
        // inside [0, mid), so widening the range is always legal).
        store.set_columns(&grid, 0, ncells);
        assert_eq!(store.columns(), (0, ncells));
        assert_eq!(store.tail_len(), 0, "set_columns folds the tail");
        assert!(store.histogram_is_fresh());
    }

    #[test]
    fn pop_removes_largest_id() {
        let (grid, ps) = population(50, Distribution::Sinusoidal);
        let mut store = BinnedStore::new(&ps, &grid, 1);
        let p = store.pop().unwrap();
        assert_eq!(p.id, 50);
        assert_eq!(store.len(), 49);
        assert_eq!(store.particle_at(0).id, 1);
    }

    #[test]
    fn empty_store_is_harmless() {
        let grid = Grid::new(8).unwrap();
        let mut store = BinnedStore::new(&[], &grid, 1);
        store.advance_all(&grid, &SimConstants::CANONICAL, DEFAULT_CHUNK);
        assert!(store.is_empty());
        assert!(store.pop().is_none());
        let mut h = Vec::new();
        store.column_histogram_into(&grid, &mut h);
        assert!(h.iter().all(|&c| c == 0));
    }
}
