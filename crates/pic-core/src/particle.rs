//! Particle records.
//!
//! Following the PRK reference implementations, every particle carries its
//! initial position and the analytic motion parameters (`k`, `m`) alongside
//! its dynamic state, so verification is O(1) per particle and can be
//! performed by *whichever rank holds the particle at the end* — no global
//! gather required.

use crate::charge::direction_from_charge;
use crate::geometry::Grid;

/// A charged particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Unique id in `1..=n` (ids of injected particles continue the range).
    /// The id checksum `Σ id = n(n+1)/2` catches lost or duplicated
    /// particles (paper §III-D).
    pub id: u64,
    /// Current position, in `[0, L)²`.
    pub x: f64,
    pub y: f64,
    /// Current velocity.
    pub vx: f64,
    pub vy: f64,
    /// Fixed particle charge `q_π` (paper eq. 3, possibly an odd multiple).
    pub q: f64,
    /// Initial position (for verification).
    pub x0: f64,
    pub y0: f64,
    /// Horizontal speed parameter: the particle moves `2k+1` cells in x per
    /// step.
    pub k: u32,
    /// Vertical speed parameter: the particle moves `m` cells in y per step
    /// (initial velocity `m·h/dt`, paper eq. 4).
    pub m: i32,
    /// Simulation step at which the particle entered the simulation
    /// (0 for initial particles, `t'` for injected ones).
    pub born_at: u32,
}

impl Particle {
    /// Horizontal drift direction (+1 right / −1 left), derived from the
    /// charge sign and the parity of the initial cell column (paper eq. 5's
    /// `sign(a_x,0)`).
    #[inline]
    pub fn direction(&self, grid: &Grid) -> i8 {
        let col0 = grid.cell_of(self.x0);
        direction_from_charge(col0, self.q)
    }

    /// Signed horizontal displacement in cells per step: `±(2k+1)`.
    #[inline]
    pub fn cells_per_step_x(&self, grid: &Grid) -> i64 {
        self.direction(grid) as i64 * (2 * self.k as i64 + 1)
    }

    /// Vertical displacement in cells per step.
    #[inline]
    pub fn cells_per_step_y(&self) -> i64 {
        self.m as i64
    }

    /// Number of bytes in the wire encoding (see [`Particle::encode`]).
    pub const WIRE_SIZE: usize = 8 * 8 + 4 + 4 + 4; // id + 7 f64 + k + m + born

    /// Encode into a fixed-size little-endian byte record, appending to
    /// `out`. Used by the message-passing substrate; safe (no transmutes)
    /// and bit-exact for all f64 payloads.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
        out.extend_from_slice(&self.vx.to_le_bytes());
        out.extend_from_slice(&self.vy.to_le_bytes());
        out.extend_from_slice(&self.q.to_le_bytes());
        out.extend_from_slice(&self.x0.to_le_bytes());
        out.extend_from_slice(&self.y0.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.born_at.to_le_bytes());
    }

    /// Decode a record previously produced by [`Particle::encode`].
    /// Returns `None` if `buf` is too short.
    pub fn decode(buf: &[u8]) -> Option<Particle> {
        if buf.len() < Self::WIRE_SIZE {
            return None;
        }
        let f = |o: usize| f64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        Some(Particle {
            id: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            x: f(8),
            y: f(16),
            vx: f(24),
            vy: f(32),
            q: f(40),
            x0: f(48),
            y0: f(56),
            k: u32::from_le_bytes(buf[64..68].try_into().unwrap()),
            m: i32::from_le_bytes(buf[68..72].try_into().unwrap()),
            born_at: u32::from_le_bytes(buf[72..76].try_into().unwrap()),
        })
    }

    /// Encode a slice of particles into a byte buffer.
    pub fn encode_all(particles: &[Particle]) -> Vec<u8> {
        let mut out = Vec::with_capacity(particles.len() * Self::WIRE_SIZE);
        for p in particles {
            p.encode(&mut out);
        }
        out
    }

    /// Decode a buffer of concatenated records, handing each particle to
    /// `f` without materializing an intermediate `Vec` — the steady-state
    /// arrival path. Returns the record count, or `None` if the buffer
    /// length is not a multiple of the record size.
    pub fn decode_each(buf: &[u8], mut f: impl FnMut(Particle)) -> Option<usize> {
        if !buf.len().is_multiple_of(Self::WIRE_SIZE) {
            return None;
        }
        let mut n = 0usize;
        for chunk in buf.chunks_exact(Self::WIRE_SIZE) {
            f(Particle::decode(chunk)?);
            n += 1;
        }
        Some(n)
    }

    /// Decode a buffer of concatenated particle records.
    /// Returns `None` if the buffer length is not a multiple of the record
    /// size or any record is malformed.
    pub fn decode_all(buf: &[u8]) -> Option<Vec<Particle>> {
        if !buf.len().is_multiple_of(Self::WIRE_SIZE) {
            return None;
        }
        buf.chunks_exact(Self::WIRE_SIZE)
            .map(Particle::decode)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64) -> Particle {
        Particle {
            id,
            x: 3.5,
            y: 7.5,
            vx: -2.0,
            vy: 1.0,
            q: -0.3535533905932738,
            x0: 1.5,
            y0: 7.5,
            k: 2,
            m: -1,
            born_at: 17,
        }
    }

    #[test]
    fn wire_roundtrip_is_bit_exact() {
        let p = sample(42);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), Particle::WIRE_SIZE);
        let q = Particle::decode(&buf).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn wire_roundtrip_preserves_nan_payload_free_values() {
        let mut p = sample(1);
        p.x = f64::MIN_POSITIVE;
        p.vx = -0.0;
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let q = Particle::decode(&buf).unwrap();
        assert_eq!(p.x.to_bits(), q.x.to_bits());
        assert_eq!(p.vx.to_bits(), q.vx.to_bits());
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(Particle::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn batch_roundtrip() {
        let ps: Vec<Particle> = (1..=9).map(sample).collect();
        let buf = Particle::encode_all(&ps);
        let qs = Particle::decode_all(&buf).unwrap();
        assert_eq!(ps, qs);
        assert!(Particle::decode_all(&buf[..buf.len() - 1]).is_none());
    }

    #[test]
    fn decode_each_rejects_truncated_and_padded_buffers() {
        let ps: Vec<Particle> = (1..=3).map(sample).collect();
        let buf = Particle::encode_all(&ps);

        // Truncated mid-record: nothing is delivered, even the records
        // that were complete — a corrupt exchange must fail loudly as a
        // whole, not deliver a particle subset (the id-sum ledger would
        // otherwise mask the loss until end-of-run verification).
        let mut seen = Vec::new();
        assert!(Particle::decode_each(&buf[..buf.len() - 7], |p| seen.push(p)).is_none());
        assert!(seen.is_empty());

        // Trailing garbage (non-multiple length): same contract.
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0xAB; 5]);
        assert!(Particle::decode_each(&padded, |p| seen.push(p)).is_none());
        assert!(Particle::decode_all(&padded).is_none());
        assert!(seen.is_empty());

        // Exactly one whole record short is still a clean multiple and
        // decodes fine — the length check is per-record, not a checksum.
        let n = Particle::decode_each(&buf[..2 * Particle::WIRE_SIZE], |p| seen.push(p));
        assert_eq!(n, Some(2));
        assert_eq!(seen, ps[..2]);
    }

    #[test]
    fn decode_each_empty_buffer_is_zero_records() {
        let mut called = false;
        assert_eq!(Particle::decode_each(&[], |_| called = true), Some(0));
        assert!(!called);
        assert_eq!(Particle::decode_all(&[]), Some(Vec::new()));
    }

    #[test]
    fn direction_from_initial_cell() {
        let g = Grid::new(8).unwrap();
        // Even initial column + positive charge → right.
        let mut p = sample(1);
        p.x0 = 0.5;
        p.q = 0.35;
        assert_eq!(p.direction(&g), 1);
        assert_eq!(p.cells_per_step_x(&g), 5); // k = 2
        p.q = -0.35;
        assert_eq!(p.direction(&g), -1);
        assert_eq!(p.cells_per_step_x(&g), -5);
        // Odd initial column flips the rule.
        p.x0 = 1.5;
        assert_eq!(p.direction(&g), 1);
    }
}
