//! Materialized mesh-charge subgrids.
//!
//! The kernel's mesh charges are formulaic (column parity), so the physics
//! never *needs* a stored mesh. The paper's implementations nevertheless
//! keep one — "the mesh points on the fringe of the 2D blocks are
//! replicated on the processors that share them (ghost cells)" — and the
//! diffusion balancer migrates border subgrids along with their particles.
//! This module materializes an owned rectangle of mesh-point charges plus a
//! one-point ghost ring, so the functional implementations carry (and
//! migrate) the same data a real port would, and so tests can prove the
//! stored-mesh force path is bit-identical to the formulaic one.

use crate::charge::{coulomb, mesh_charge, SimConstants};
use crate::geometry::Grid;

/// Charges of the mesh points of an owned cell rectangle plus one ghost
/// ring. Owning cells `[x0, x1) × [y0, y1)` requires mesh points
/// `[x0, x1] × [y0, y1]`; with the ghost ring the stored index range is
/// `[x0−1, x1+1] × [y0−1, y1+1]` (periodically wrapped values).
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeGrid {
    x0: usize,
    y0: usize,
    /// Owned cell counts.
    w: usize,
    h: usize,
    /// Row-major `(w + 3) × (h + 3)` mesh-point charges (owned points,
    /// shared fringe, and the ghost ring).
    data: Vec<f64>,
}

impl ChargeGrid {
    /// Materialize the subgrid for owned cells `cols × rows` of `grid`.
    pub fn build(
        grid: &Grid,
        consts: &SimConstants,
        cols: (usize, usize),
        rows: (usize, usize),
    ) -> ChargeGrid {
        assert!(
            cols.0 < cols.1 && cols.1 <= grid.ncells(),
            "bad column range {cols:?}"
        );
        assert!(
            rows.0 < rows.1 && rows.1 <= grid.ncells(),
            "bad row range {rows:?}"
        );
        let w = cols.1 - cols.0;
        let h = rows.1 - rows.0;
        let stride = w + 3;
        let mut data = Vec::with_capacity(stride * (h + 3));
        for dy in 0..h + 3 {
            let _row = grid.wrap_cell(rows.0 as i64 + dy as i64 - 1);
            for dx in 0..w + 3 {
                let col = grid.wrap_cell(cols.0 as i64 + dx as i64 - 1);
                // Charge depends only on the (wrapped) column parity; rows
                // are stored anyway to mirror a real field array.
                data.push(mesh_charge(col, consts.q));
            }
        }
        ChargeGrid {
            x0: cols.0,
            y0: rows.0,
            w,
            h,
            data,
        }
    }

    /// Owned cell rectangle.
    pub fn bounds(&self) -> ((usize, usize), (usize, usize)) {
        ((self.x0, self.x0 + self.w), (self.y0, self.y0 + self.h))
    }

    /// Number of stored mesh points (owned + fringe + ghosts).
    pub fn stored_points(&self) -> usize {
        self.data.len()
    }

    /// Charge at global mesh column/row. The point must lie within the
    /// stored window (owned + one ghost ring); panics otherwise — the
    /// equivalent of reading out of your halo in a real code.
    #[inline]
    pub fn charge_at(&self, col: usize, row: usize) -> f64 {
        let dx = col as i64 - (self.x0 as i64 - 1);
        let dy = row as i64 - (self.y0 as i64 - 1);
        assert!(
            dx >= 0 && (dx as usize) < self.w + 3 && dy >= 0 && (dy as usize) < self.h + 3,
            "mesh point ({col},{row}) outside stored window of owner ({},{})+{}x{}",
            self.x0,
            self.y0,
            self.w,
            self.h
        );
        self.data[dy as usize * (self.w + 3) + dx as usize]
    }

    /// Total Coulomb force on a particle inside the owned rectangle, read
    /// from the stored mesh — the same arithmetic as
    /// [`crate::charge::total_force`], so results are bit-identical.
    #[inline]
    pub fn total_force(
        &self,
        grid: &Grid,
        consts: &SimConstants,
        x: f64,
        y: f64,
        qp: f64,
    ) -> (f64, f64) {
        let (col, row) = grid.cell_of_point(x, y);
        let rx = x - col as f64;
        let ry = y - row as f64;
        let q_left = self.charge_at(col, row);
        // The right corner may be the periodic image; the stored fringe
        // holds the already-wrapped charge value.
        let q_right = self.charge_at_wrapped(grid, col + 1, row);

        let (fx0, fy0) = coulomb(rx, ry, q_left, qp);
        let (fx1, fy1) = coulomb(rx, ry - consts.h, q_left, qp);
        let (fx2, fy2) = coulomb(rx - consts.h, ry, q_right, qp);
        let (fx3, fy3) = coulomb(rx - consts.h, ry - consts.h, q_right, qp);
        ((fx0 + fx1) + (fx2 + fx3), (fy0 + fy1) + (fy2 + fy3))
    }

    #[inline]
    fn charge_at_wrapped(&self, grid: &Grid, col: usize, row: usize) -> f64 {
        // Columns x1 (fringe) are stored directly; beyond that wrap.
        if col <= self.x0 + self.w + 1 {
            self.charge_at(col, row.min(self.y0 + self.h + 1))
        } else {
            self.charge_at(grid.wrap_cell(col as i64), row.min(self.y0 + self.h + 1))
        }
    }

    /// Check every stored point against the formulaic pattern — the
    /// subgrid equivalent of a halo-consistency check.
    pub fn verify_against_formula(&self, grid: &Grid, consts: &SimConstants) -> bool {
        let stride = self.w + 3;
        for dy in 0..self.h + 3 {
            for dx in 0..stride {
                let col = grid.wrap_cell(self.x0 as i64 + dx as i64 - 1);
                let want = mesh_charge(col, consts.q);
                if self.data[dy * stride + dx] != want {
                    return false;
                }
            }
        }
        true
    }

    /// Serialized size in bytes if this subgrid were migrated (one f64 per
    /// stored point) — used by cost accounting and tests.
    pub fn wire_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::total_force;

    fn grid() -> Grid {
        Grid::new(16).unwrap()
    }

    #[test]
    fn build_and_verify_interior_block() {
        let g = grid();
        let c = SimConstants::CANONICAL;
        let cg = ChargeGrid::build(&g, &c, (4, 8), (4, 8));
        assert!(cg.verify_against_formula(&g, &c));
        assert_eq!(cg.bounds(), ((4, 8), (4, 8)));
        assert_eq!(cg.stored_points(), 7 * 7);
        assert_eq!(cg.wire_bytes(), 49 * 8);
    }

    #[test]
    fn ghost_ring_wraps_periodically() {
        let g = grid();
        let c = SimConstants::CANONICAL;
        // Block touching the domain edge: its ghost column −1 is the
        // periodic image of column 15 (odd → −q), which the formula check
        // validates point by point.
        let cg = ChargeGrid::build(&g, &c, (0, 4), (0, 4));
        assert!(cg.verify_against_formula(&g, &c));
        assert_eq!(cg.charge_at(0, 0), 1.0);
        // Fringe mesh points (column x1) are stored and readable.
        assert_eq!(cg.charge_at(4, 4), 1.0);
        assert_eq!(cg.charge_at(5, 2), -1.0); // ghost column x1+1
    }

    #[test]
    #[should_panic(expected = "outside stored window")]
    fn out_of_halo_read_panics() {
        let g = grid();
        let cg = ChargeGrid::build(&g, &SimConstants::CANONICAL, (4, 8), (4, 8));
        let _ = cg.charge_at(12, 5); // two past the fringe
    }

    #[test]
    fn gridded_force_bitwise_matches_formulaic() {
        let g = grid();
        let c = SimConstants::CANONICAL;
        let cg = ChargeGrid::build(&g, &c, (4, 12), (2, 10));
        for &(x, y, qp) in &[
            (4.5, 2.5, 0.3535),
            (11.5, 9.5, -0.7),
            (7.25, 5.75, 1.5),
            (4.0, 2.0, 0.1),
        ] {
            let (fx_a, fy_a) = total_force(&g, &c, x, y, qp);
            let (fx_b, fy_b) = cg.total_force(&g, &c, x, y, qp);
            assert_eq!(fx_a.to_bits(), fx_b.to_bits(), "fx at ({x},{y})");
            assert_eq!(fy_a.to_bits(), fy_b.to_bits(), "fy at ({x},{y})");
        }
    }

    #[test]
    fn last_column_force_uses_wrapped_corner() {
        let g = grid();
        let c = SimConstants::CANONICAL;
        let cg = ChargeGrid::build(&g, &c, (12, 16), (0, 16));
        let (fx_a, fy_a) = total_force(&g, &c, 15.5, 3.5, 0.5);
        let (fx_b, fy_b) = cg.total_force(&g, &c, 15.5, 3.5, 0.5);
        assert_eq!(fx_a.to_bits(), fx_b.to_bits());
        assert_eq!(fy_a.to_bits(), fy_b.to_bits());
    }

    #[test]
    fn whole_domain_grid() {
        let g = grid();
        let c = SimConstants::CANONICAL;
        let cg = ChargeGrid::build(&g, &c, (0, 16), (0, 16));
        assert!(cg.verify_against_formula(&g, &c));
        for col in 0..16 {
            for row in [0usize, 8, 15] {
                assert_eq!(cg.charge_at(col, row), mesh_charge(col, 1.0));
            }
        }
    }
}
