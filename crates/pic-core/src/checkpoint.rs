//! Checkpoint/restart.
//!
//! Long PRK campaigns (the paper's runs are 6,000 steps; production studies
//! sweep many configurations) want restartable state. The format is a
//! versioned little-endian byte stream capturing everything the engine
//! needs to resume *bit-exactly*: constants, step counter, id ledger,
//! particles, and the not-yet-applied event schedule. A resumed run is
//! indistinguishable from an uninterrupted one — asserted by tests.

use crate::charge::SimConstants;
use crate::events::{Event, EventKind, Region};
use crate::geometry::{Grid, GridError};
use crate::particle::Particle;
use std::fmt;

/// Snapshot of a simulation's complete state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    pub grid: Grid,
    pub consts: SimConstants,
    pub step: u32,
    pub next_id: u64,
    pub expected_id_sum: u128,
    pub particles: Vec<Particle>,
    /// Remaining (not yet applied) events, sorted by step.
    pub pending_events: Vec<Event>,
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    Corrupt(&'static str),
    Grid(GridError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a PIC PRK checkpoint"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Grid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

const MAGIC: &[u8; 8] = b"PICPRKv\0";
const VERSION: u32 = 1;

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.off + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, CheckpointError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

impl CheckpointData {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.particles.len() * Particle::WIRE_SIZE);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.grid.ncells() as u64).to_le_bytes());
        out.extend_from_slice(&self.consts.h.to_le_bytes());
        out.extend_from_slice(&self.consts.dt.to_le_bytes());
        out.extend_from_slice(&self.consts.q.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&self.expected_id_sum.to_le_bytes());
        out.extend_from_slice(&(self.particles.len() as u64).to_le_bytes());
        for p in &self.particles {
            p.encode(&mut out);
        }
        out.extend_from_slice(&(self.pending_events.len() as u64).to_le_bytes());
        for e in &self.pending_events {
            out.extend_from_slice(&e.at_step.to_le_bytes());
            for v in [e.region.x0, e.region.x1, e.region.y0, e.region.y1] {
                out.extend_from_slice(&(v as u64).to_le_bytes());
            }
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    out.push(0);
                    out.extend_from_slice(&count.to_le_bytes());
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&m.to_le_bytes());
                    out.push(dir as u8);
                }
                EventKind::Remove { count } => {
                    out.push(1);
                    out.extend_from_slice(&count.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserialize from bytes.
    pub fn decode(buf: &[u8]) -> Result<CheckpointData, CheckpointError> {
        let mut r = Reader { buf, off: 0 };
        if r.take(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let ncells = r.u64()? as usize;
        let grid = Grid::new(ncells).map_err(CheckpointError::Grid)?;
        let consts = SimConstants {
            h: r.f64()?,
            dt: r.f64()?,
            q: r.f64()?,
        };
        let step = r.u32()?;
        let next_id = r.u64()?;
        let expected_id_sum = r.u128()?;
        let n = r.u64()? as usize;
        let mut particles = Vec::with_capacity(n);
        for _ in 0..n {
            let rec = r.take(Particle::WIRE_SIZE)?;
            particles.push(Particle::decode(rec).ok_or(CheckpointError::Corrupt("particle"))?);
        }
        let ne = r.u64()? as usize;
        let mut pending_events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let at_step = r.u32()?;
            let x0 = r.u64()? as usize;
            let x1 = r.u64()? as usize;
            let y0 = r.u64()? as usize;
            let y1 = r.u64()? as usize;
            let region = Region { x0, x1, y0, y1 };
            let kind = match r.take(1)?[0] {
                0 => {
                    let count = r.u64()?;
                    let k = r.u32()?;
                    let m = r.i32()?;
                    let dir = r.take(1)?[0] as i8;
                    EventKind::Inject { count, k, m, dir }
                }
                1 => EventKind::Remove { count: r.u64()? },
                _ => return Err(CheckpointError::Corrupt("event kind")),
            };
            pending_events.push(Event {
                at_step,
                region,
                kind,
            });
        }
        if r.off != buf.len() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        Ok(CheckpointData {
            grid,
            consts,
            step,
            next_id,
            expected_id_sum,
            particles,
            pending_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        use crate::dist::Distribution;
        use crate::init::InitConfig;
        let grid = Grid::new(16).unwrap();
        let setup = InitConfig::new(grid, 50, Distribution::Uniform)
            .build()
            .unwrap();
        CheckpointData {
            grid,
            consts: SimConstants::CANONICAL,
            step: 17,
            next_id: 51,
            expected_id_sum: 1275,
            particles: setup.particles,
            pending_events: vec![
                Event::inject(
                    30,
                    Region {
                        x0: 0,
                        x1: 4,
                        y0: 0,
                        y1: 4,
                    },
                    10,
                    1,
                    -2,
                    -1,
                ),
                Event::remove(40, Region::whole(16), 5),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let cp = sample();
        let bytes = cp.encode();
        let back = CheckpointData::decode(&bytes).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(
            CheckpointData::decode(&bytes),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert!(matches!(
            CheckpointData::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().encode();
        for cut in [4usize, 12, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CheckpointData::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            CheckpointData::decode(&bytes),
            Err(CheckpointError::Corrupt("trailing bytes"))
        );
    }
}
