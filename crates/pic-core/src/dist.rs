//! Initial particle distributions (paper §III-E).
//!
//! Every distribution is reduced to a deterministic vector of **particle
//! counts per cell column** (plus a row range for the patch mode). The same
//! vector drives both the actual particle placement ([`crate::init`]) and
//! the analytic load model used by the full-scale experiments
//! (`pic-cluster::loadmodel`) — the kernel's deterministic drift means
//! per-rank loads at any step are a pure function of this vector.
//!
//! Counts are integerized with the largest-remainder method so the total is
//! *exactly* `n` for every distribution and every grid size.

/// Initial particle distribution over the mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform: every cell column receives `n/c` particles (the `r = 1`
    /// degenerate case of [`Distribution::Geometric`]).
    Uniform,
    /// Exponential/geometric skew (paper §III-E1): a cell in column `i`
    /// holds `p(i) = A·r^i` particles. The paper's experiments use
    /// `r = 0.999`. Per-processor counts form a geometric series with
    /// ratio `r^(c/P)` (paper eq. 8).
    Geometric {
        /// Attenuation per column; `0 < r`. `r < 1` puts the bulk of the
        /// particles in low-index columns.
        r: f64,
    },
    /// Sinusoidal (paper §III-E2): `p(i) ∝ 1 + cos(2πi/(c−1))`.
    Sinusoidal,
    /// Linear ramp (paper §III-E3): `p(i) ∝ β − α·i/(c−1)`; `α ≤ β`
    /// controls the slope (α = 0 degenerates to uniform).
    Linear { alpha: f64, beta: f64 },
    /// Uniform inside the column range `[x0, x1)` × row range `[y0, y1)`
    /// only (paper §III-E4). The relative patch size tunes how hard the
    /// balancing task is.
    Patch {
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
    },
}

impl Distribution {
    /// The paper's experimental skew: geometric with `r = 0.999`.
    pub const PAPER_SKEW: Distribution = Distribution::Geometric { r: 0.999 };

    /// Real-valued weight of cell column `i` of `c` (unnormalized).
    fn weight(&self, i: usize, c: usize) -> f64 {
        match *self {
            Distribution::Uniform => 1.0,
            Distribution::Geometric { r } => r.powi(i as i32),
            Distribution::Sinusoidal => {
                1.0 + (2.0 * std::f64::consts::PI * i as f64 / (c as f64 - 1.0)).cos()
            }
            Distribution::Linear { alpha, beta } => {
                (beta - alpha * i as f64 / (c as f64 - 1.0)).max(0.0)
            }
            Distribution::Patch { x0, x1, .. } => {
                if i >= x0 && i < x1 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Row range `[lo, hi)` that receives particles; the full grid except
    /// for the patch mode.
    pub fn row_range(&self, c: usize) -> (usize, usize) {
        match *self {
            Distribution::Patch { y0, y1, .. } => (y0.min(c), y1.min(c)),
            _ => (0, c),
        }
    }

    /// Deterministic particle count per cell **column**, summing exactly to
    /// `n`, via the largest-remainder (Hamilton) method.
    pub fn column_counts(&self, c: usize, n: u64) -> Vec<u64> {
        assert!(c > 0, "need at least one column");
        let weights: Vec<f64> = (0..c).map(|i| self.weight(i, c)).collect();
        largest_remainder(&weights, n)
    }

    /// Expected *fraction* of particles in columns `[a, b)` (real-valued,
    /// used by closed-form analyses and tests).
    pub fn column_fraction(&self, c: usize, a: usize, b: usize) -> f64 {
        let total: f64 = (0..c).map(|i| self.weight(i, c)).sum();
        if total == 0.0 {
            return 0.0;
        }
        (a..b.min(c)).map(|i| self.weight(i, c)).sum::<f64>() / total
    }
}

/// Apportion `n` items over real-valued weights with the largest-remainder
/// method: exact total, deterministic, and within one item of the ideal
/// share per bucket.
pub fn largest_remainder(weights: &[f64], n: u64) -> Vec<u64> {
    let total: f64 = weights.iter().sum();
    assert!(
        total.is_finite() && total >= 0.0,
        "weights must be finite and non-negative"
    );
    let len = weights.len();
    if total <= 0.0 {
        // Degenerate: spread evenly.
        let mut out = vec![n / len as u64; len];
        for item in out.iter_mut().take((n % len as u64) as usize) {
            *item += 1;
        }
        return out;
    }
    let mut counts = vec![0u64; len];
    let mut assigned: u64 = 0;
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(len);
    for (i, &w) in weights.iter().enumerate() {
        let share = n as f64 * w / total;
        let fl = share.floor();
        counts[i] = fl as u64;
        assigned += counts[i];
        remainders.push((share - fl, i));
    }
    // Give leftover items to the largest fractional parts; ties broken by
    // index for determinism.
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut leftover = n.saturating_sub(assigned);
    let mut idx = 0;
    while leftover > 0 {
        counts[remainders[idx % len].1] += 1;
        leftover -= 1;
        idx += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_sum_and_spread() {
        let counts = Distribution::Uniform.column_counts(10, 1003);
        assert_eq!(counts.iter().sum::<u64>(), 1003);
        assert!(counts.iter().all(|&c| c == 100 || c == 101));
    }

    #[test]
    fn geometric_counts_decay() {
        let d = Distribution::Geometric { r: 0.5 };
        let counts = d.column_counts(8, 10_000);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        for w in counts.windows(2) {
            assert!(
                w[0] >= w[1],
                "geometric counts must be non-increasing: {counts:?}"
            );
        }
        // First column holds about half the particles (1-r = 0.5, c large enough).
        assert!((counts[0] as f64 - 5000.0).abs() < 50.0, "{counts:?}");
    }

    #[test]
    fn geometric_r_one_is_uniform() {
        let d = Distribution::Geometric { r: 1.0 };
        let counts = d.column_counts(6, 600);
        assert_eq!(counts, vec![100; 6]);
    }

    #[test]
    fn geometric_processor_ratio_matches_eq8() {
        // Paper eq. 8: per-block-column counts form a geometric series with
        // ratio r^(c/P).
        let c = 1000;
        let p = 10;
        let r: f64 = 0.995;
        let d = Distribution::Geometric { r };
        let n = 1_000_000u64;
        let counts = d.column_counts(c, n);
        let block: Vec<f64> = (0..p)
            .map(|b| counts[b * c / p..(b + 1) * c / p].iter().sum::<u64>() as f64)
            .collect();
        let want = r.powi((c / p) as i32);
        for w in block.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (ratio - want).abs() < 0.01 * want,
                "ratio {ratio} vs eq.8 {want}"
            );
        }
    }

    #[test]
    fn sinusoidal_peaks_at_edges() {
        let d = Distribution::Sinusoidal;
        let counts = d.column_counts(101, 100_000);
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
        assert!(counts[0] > counts[25], "cos peak at column 0");
        assert!(counts[100] > counts[75], "cos peak at last column");
        assert!(counts[50] < 100, "trough at the middle: {}", counts[50]);
    }

    #[test]
    fn linear_ramp() {
        let d = Distribution::Linear {
            alpha: 1.0,
            beta: 1.0,
        };
        let counts = d.column_counts(100, 50_000);
        assert_eq!(counts.iter().sum::<u64>(), 50_000);
        assert!(counts[0] > counts[50] && counts[50] > counts[98]);
        assert_eq!(counts[99], 0, "weight hits zero at the last column");
    }

    #[test]
    fn patch_restricts_columns_and_rows() {
        let d = Distribution::Patch {
            x0: 10,
            x1: 20,
            y0: 5,
            y1: 8,
        };
        let counts = d.column_counts(50, 1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts[..10].iter().all(|&c| c == 0));
        assert!(counts[20..].iter().all(|&c| c == 0));
        assert!(counts[10..20].iter().all(|&c| c == 100));
        assert_eq!(d.row_range(50), (5, 8));
        assert_eq!(Distribution::Uniform.row_range(50), (0, 50));
    }

    #[test]
    fn largest_remainder_exact_and_fair() {
        let counts = largest_remainder(&[1.0, 1.0, 1.0], 100);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        let counts = largest_remainder(&[3.0, 1.0], 9);
        assert_eq!(counts, vec![7, 2]); // 6.75 → 7 (larger remainder), 2.25 → 2
        let counts = largest_remainder(&[0.0, 0.0], 5);
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn column_fraction_matches_counts() {
        let d = Distribution::Geometric { r: 0.99 };
        let c = 200;
        let n = 1_000_000u64;
        let counts = d.column_counts(c, n);
        let exact: u64 = counts[..50].iter().sum();
        let frac = d.column_fraction(c, 0, 50);
        assert!(((exact as f64 / n as f64) - frac).abs() < 1e-3);
    }
}
