//! Periodic simulation domain geometry.
//!
//! The domain is an `L × L` square with periodic boundaries in both
//! directions, tiled by square cells of size `h × h`. Following the paper's
//! exactness argument (§III-C: "Setting h equal to 1 ...") this
//! implementation fixes `h = 1`, so `L` equals the number of cells per side.
//! The paper requires `L` to be an **even** multiple of `h` so that a
//! particle crossing the periodic boundary sees the same alternating column
//! charge pattern it would in an infinite tiling.

use std::fmt;

/// The periodic cell grid. `ncells` is the number of cells per side (the
/// paper's `L/h`); it must be even and at least 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    ncells: usize,
}

/// Error building a [`Grid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// The paper requires an even number of cells per side so that the
    /// alternating column charges tile the periodic boundary seamlessly.
    OddSize(usize),
    /// Fewer than two cells per side.
    TooSmall(usize),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::OddSize(n) => write!(
                f,
                "grid size {n} is odd; periodic boundaries require an even number of cells"
            ),
            GridError::TooSmall(n) => write!(f, "grid size {n} is too small (minimum 2)"),
        }
    }
}

impl std::error::Error for GridError {}

impl Grid {
    /// Create a grid with `ncells × ncells` cells (`h = 1`).
    pub fn new(ncells: usize) -> Result<Self, GridError> {
        if ncells < 2 {
            return Err(GridError::TooSmall(ncells));
        }
        if !ncells.is_multiple_of(2) {
            return Err(GridError::OddSize(ncells));
        }
        Ok(Grid { ncells })
    }

    /// Number of cells per side.
    #[inline]
    pub fn ncells(&self) -> usize {
        self.ncells
    }

    /// Physical domain extent `L` (equals `ncells` because `h = 1`).
    #[inline]
    pub fn extent(&self) -> f64 {
        self.ncells as f64
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.ncells * self.ncells
    }

    /// Total number of distinct mesh points (one per cell because of
    /// periodicity: the point at column `L` *is* the point at column 0).
    #[inline]
    pub fn mesh_point_count(&self) -> usize {
        self.ncells * self.ncells
    }

    /// Wrap a continuous coordinate into `[0, L)`.
    ///
    /// Particle displacements per step are bounded by `(2k+1) ≤ L` in
    /// practice, but this handles arbitrary overshoot. The wrap adds or
    /// subtracts an exact integer (`L`), so coordinates of the form
    /// `integer + 0.5` stay exact in floating point.
    #[inline]
    pub fn wrap_coord(&self, mut x: f64) -> f64 {
        let l = self.extent();
        if x >= 0.0 && x < l {
            return x;
        }
        // Handle large overshoot without a loop.
        x -= (x / l).floor() * l;
        // `floor` guarantees x in [0, l]; x == l can occur through rounding.
        if x >= l {
            x -= l;
        }
        if x < 0.0 {
            x += l;
        }
        x
    }

    /// Wrap a (possibly negative) cell index into `0..ncells`.
    #[inline]
    pub fn wrap_cell(&self, i: i64) -> usize {
        let n = self.ncells as i64;
        (((i % n) + n) % n) as usize
    }

    /// Cell column containing coordinate `x ∈ [0, L)`.
    #[inline]
    pub fn cell_of(&self, x: f64) -> usize {
        debug_assert!(
            (0.0..self.extent()).contains(&x),
            "coordinate {x} outside [0, {})",
            self.extent()
        );
        let c = x as usize;
        c.min(self.ncells - 1)
    }

    /// Cell (column, row) containing the point `(x, y)`, both in `[0, L)`.
    #[inline]
    pub fn cell_of_point(&self, x: f64, y: f64) -> (usize, usize) {
        (self.cell_of(x), self.cell_of(y))
    }

    /// Center of cell `(col, row)` — the canonical initial particle
    /// position within that cell (`x_π = h/2`, paper §III-C).
    #[inline]
    pub fn cell_center(&self, col: usize, row: usize) -> (f64, f64) {
        debug_assert!(col < self.ncells && row < self.ncells);
        (col as f64 + 0.5, row as f64 + 0.5)
    }

    /// Minimum-image signed distance from `a` to `b` along one axis.
    #[inline]
    pub fn periodic_delta(&self, a: f64, b: f64) -> f64 {
        let l = self.extent();
        let mut d = b - a;
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rejects_odd_and_tiny() {
        assert_eq!(Grid::new(3).unwrap_err(), GridError::OddSize(3));
        assert_eq!(Grid::new(1).unwrap_err(), GridError::TooSmall(1));
        assert_eq!(Grid::new(0).unwrap_err(), GridError::TooSmall(0));
        assert!(Grid::new(2).is_ok());
        assert!(Grid::new(5998).is_ok());
    }

    #[test]
    fn wrap_coord_basic() {
        let g = Grid::new(10).unwrap();
        assert_eq!(g.wrap_coord(0.0), 0.0);
        assert_eq!(g.wrap_coord(9.999), 9.999);
        assert_eq!(g.wrap_coord(10.0), 0.0);
        assert_eq!(g.wrap_coord(12.5), 2.5);
        assert_eq!(g.wrap_coord(-0.5), 9.5);
        assert_eq!(g.wrap_coord(-10.5), 9.5);
        assert_eq!(g.wrap_coord(105.5), 5.5);
    }

    #[test]
    fn wrap_coord_preserves_half_offsets_exactly() {
        let g = Grid::new(5998).unwrap();
        // integer + 0.5 positions must survive wrapping bit-exactly
        for base in [-2.5f64, -5998.5, 6000.5, 11996.5, 0.5] {
            let w = g.wrap_coord(base);
            assert_eq!(w.fract().abs(), 0.5, "wrap of {base} lost exactness: {w}");
            assert!((0.0..g.extent()).contains(&w));
        }
    }

    #[test]
    fn wrap_cell_handles_negatives() {
        let g = Grid::new(8).unwrap();
        assert_eq!(g.wrap_cell(0), 0);
        assert_eq!(g.wrap_cell(7), 7);
        assert_eq!(g.wrap_cell(8), 0);
        assert_eq!(g.wrap_cell(-1), 7);
        assert_eq!(g.wrap_cell(-8), 0);
        assert_eq!(g.wrap_cell(-17), 7);
        assert_eq!(g.wrap_cell(23), 7);
    }

    #[test]
    fn cell_of_point_and_center_roundtrip() {
        let g = Grid::new(16).unwrap();
        for col in 0..16 {
            for row in [0usize, 7, 15] {
                let (x, y) = g.cell_center(col, row);
                assert_eq!(g.cell_of_point(x, y), (col, row));
            }
        }
    }

    #[test]
    fn periodic_delta_minimum_image() {
        let g = Grid::new(10).unwrap();
        assert_eq!(g.periodic_delta(1.0, 2.0), 1.0);
        assert_eq!(g.periodic_delta(9.5, 0.5), 1.0);
        assert_eq!(g.periodic_delta(0.5, 9.5), -1.0);
    }
}
