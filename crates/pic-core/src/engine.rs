//! Serial (and shared-memory parallel) reference engine.
//!
//! The engine is the executable form of the paper-and-pencil specification:
//! it applies scheduled injection/removal events, advances every particle by
//! the constant-acceleration kinematics, and maintains the id-checksum
//! ledger that the final verification compares against. All parallel
//! implementations must produce exactly the population this engine produces
//! (same ids, positions within tolerance).
//!
//! ## Sweep modes and the memory layout contract
//!
//! The particle store follows the sweep mode: [`SweepMode::Serial`] and
//! [`SweepMode::Parallel`] keep the population AoS (`Vec<Particle>`),
//! [`SweepMode::Soa`] and [`SweepMode::SoaChunked`] keep it in the
//! structure-of-arrays [`ParticleBatch`] for the whole run — events,
//! checkpoints and histograms operate on the SoA store natively, with no
//! per-step AoS round-trip. Every mode runs the same per-particle
//! instruction sequence (eqs. 1–2 behind the same force evaluation), and
//! every mode applies events by the same deterministic rules (injections
//! append in build order; removals take lowest ids first,
//! order-preserving), so **all four modes produce bit-identical particle
//! populations in identical order** — asserted by this module's tests and
//! the cross-layout property tests.

use crate::bin::{BinnedStore, KernelTier, DEFAULT_REBIN};
use crate::charge::SimConstants;
use crate::events::{Event, EventKind};
use crate::geometry::Grid;
use crate::init::{apply_removal, build_injection, validate_event, InitError, SimulationSetup};
use crate::motion::{advance_all, advance_all_parallel};
use crate::particle::Particle;
use crate::pool;
use crate::simd::SimdBackend;
use crate::soa::ParticleBatch;
use crate::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE};

/// Execution mode for the per-step particle sweep. Also selects the
/// particle storage layout (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// One thread, AoS storage, deterministic order.
    #[default]
    Serial,
    /// Pool-parallel sweep over AoS storage; bitwise identical results
    /// (particles are independent within a step).
    Parallel,
    /// One thread, structure-of-arrays storage.
    Soa,
    /// Pool-parallel chunked sweep over SoA storage; chunk size is the
    /// [`Simulation::with_chunk_size`] tunable.
    SoaChunked,
    /// Pool-parallel chunked sweep over cell-binned SoA storage
    /// ([`BinnedStore`]): particles are kept counting-sorted by cell
    /// column (re-sorted every [`Simulation::with_rebin_interval`] steps)
    /// and swept with the parity-specialized kernel; the per-column load
    /// histogram becomes an O(columns) read while the binning is fresh.
    SoaBinned,
    /// [`SweepMode::SoaBinned`] with the fast-math kernel tier
    /// ([`KernelTier::Fast`]: FMA, reciprocal-sqrt, reassociated corner
    /// accumulation, widest available vectors) and persistent
    /// particle-thread binding. Results are *not* bit-identical to the
    /// exact tiers; they are gated by the analytic tolerance instead
    /// ([`Simulation::verify_analytic`], DESIGN.md §12).
    SoaBinnedFast,
}

impl SweepMode {
    /// Every sweep mode, in CLI/help order.
    pub const ALL: [SweepMode; 6] = [
        SweepMode::Serial,
        SweepMode::Parallel,
        SweepMode::Soa,
        SweepMode::SoaChunked,
        SweepMode::SoaBinned,
        SweepMode::SoaBinnedFast,
    ];

    /// Whether this mode stores particles in SoA layout.
    pub fn is_soa(self) -> bool {
        matches!(
            self,
            SweepMode::Soa
                | SweepMode::SoaChunked
                | SweepMode::SoaBinned
                | SweepMode::SoaBinnedFast
        )
    }

    /// Whether this mode runs the fast-math kernel tier (not bit-identical
    /// to the exact modes; verified analytically instead).
    pub fn is_fast(self) -> bool {
        matches!(self, SweepMode::SoaBinnedFast)
    }

    /// The name this mode goes by on the `pic --sweep` command line. The
    /// single source for CLI parsing, help text, and the bench harness —
    /// kept here so they can never drift apart.
    pub fn cli_name(self) -> &'static str {
        match self {
            SweepMode::Serial => "serial",
            SweepMode::Parallel => "parallel",
            SweepMode::Soa => "soa",
            SweepMode::SoaChunked => "soa-chunked",
            SweepMode::SoaBinned => "soa-binned",
            SweepMode::SoaBinnedFast => "soa-binned-fast",
        }
    }

    /// Inverse of [`SweepMode::cli_name`].
    pub fn from_cli_name(name: &str) -> Option<SweepMode> {
        SweepMode::ALL
            .iter()
            .copied()
            .find(|m| m.cli_name() == name)
    }
}

/// The particle population in whichever layout the sweep mode selected.
// One store exists per Simulation (never in arrays), so the size gap
// between the 11-vector SoA batch and the single AoS vec is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum ParticleStore {
    Aos(Vec<Particle>),
    Soa(ParticleBatch),
    Binned(BinnedStore),
}

impl ParticleStore {
    /// Build the store layout a sweep mode requires (the constructor and
    /// checkpoint-restore share this, so the mode→layout/tier mapping has
    /// one home).
    fn for_mode(particles: Vec<Particle>, grid: &Grid, mode: SweepMode) -> ParticleStore {
        match mode {
            SweepMode::Serial | SweepMode::Parallel => ParticleStore::Aos(particles),
            SweepMode::Soa | SweepMode::SoaChunked => {
                ParticleStore::Soa(ParticleBatch::from_particles(&particles))
            }
            SweepMode::SoaBinned => {
                ParticleStore::Binned(BinnedStore::new(&particles, grid, DEFAULT_REBIN))
            }
            SweepMode::SoaBinnedFast => {
                let mut b = BinnedStore::new(&particles, grid, DEFAULT_REBIN);
                b.set_kernel_tier(KernelTier::Fast);
                b.set_thread_binding(true);
                ParticleStore::Binned(b)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            ParticleStore::Aos(v) => v.len(),
            ParticleStore::Soa(b) => b.len(),
            ParticleStore::Binned(b) => b.len(),
        }
    }

    /// Canonical (ascending-id) materialization, identical across layouts.
    fn to_particles(&self) -> Vec<Particle> {
        match self {
            ParticleStore::Aos(v) => v.clone(),
            ParticleStore::Soa(b) => b.to_particles(),
            ParticleStore::Binned(b) => b.to_particles(),
        }
    }

    fn extend(&mut self, particles: Vec<Particle>) {
        match self {
            ParticleStore::Aos(v) => v.extend(particles),
            ParticleStore::Soa(b) => {
                for p in particles {
                    b.push(p);
                }
            }
            ParticleStore::Binned(b) => b.extend(particles),
        }
    }
}

/// The reference simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    grid: Grid,
    consts: SimConstants,
    store: ParticleStore,
    events: Vec<Event>,
    next_event: usize,
    step: u32,
    next_id: u64,
    expected_id_sum: u128,
    mode: SweepMode,
    /// Explicit chunk size for the pooled sweeps; `None` (the default)
    /// selects [`pool::adaptive_chunk`] from the population size and the
    /// active thread count at each step.
    chunk_size: Option<usize>,
    rebin_interval: u32,
}

pub use crate::init::SimulationSetup as Setup;

impl Simulation {
    /// Build a simulation from a setup produced by
    /// [`crate::init::InitConfig::build`].
    pub fn new(setup: SimulationSetup) -> Simulation {
        Self::with_mode(setup, SweepMode::Serial)
    }

    /// Build with an explicit sweep mode.
    pub fn with_mode(setup: SimulationSetup, mode: SweepMode) -> Simulation {
        let expected_id_sum = setup.initial_id_sum();
        let mut events = setup.events;
        events.sort_by_key(|e| e.at_step);
        let store = ParticleStore::for_mode(setup.particles, &setup.grid, mode);
        Simulation {
            grid: setup.grid,
            consts: setup.consts,
            store,
            events,
            next_event: 0,
            step: 0,
            next_id: setup.next_id,
            expected_id_sum,
            mode,
            chunk_size: None,
            rebin_interval: DEFAULT_REBIN,
        }
    }

    /// Set an explicit chunk size for [`SweepMode::SoaChunked`] and
    /// [`SweepMode::SoaBinned`] (ignored by the other modes). Values are
    /// clamped to at least 1. Without this, the engine picks an adaptive
    /// default — [`pool::adaptive_chunk`] — that scales with the
    /// population and the active thread count so per-chunk dispatch
    /// overhead never dominates. Chunk size affects scheduling only;
    /// results are bit-identical for any value.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Simulation {
        self.chunk_size = Some(chunk_size.max(1));
        self
    }

    /// The chunk size the next chunked sweep would use (the explicit
    /// setting, or the adaptive default for the current population).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size.unwrap_or_else(|| {
            pool::adaptive_chunk(self.store.len(), pool::global().active_threads())
        })
    }

    /// Set the rebin interval `R` used by [`SweepMode::SoaBinned`]
    /// (ignored by the other modes): the counting sort re-runs every `R`
    /// sweeps. Clamped to at least 1. The result is bit-identical for any
    /// `R`; the trade is sort amortization against histogram freshness
    /// and sweep locality.
    pub fn with_rebin_interval(mut self, rebin_interval: u32) -> Simulation {
        self.rebin_interval = rebin_interval.max(1);
        if let ParticleStore::Binned(b) = &mut self.store {
            b.set_rebin_interval(self.rebin_interval);
        }
        self
    }

    /// The rebin interval the binned sweep would use.
    pub fn rebin_interval(&self) -> u32 {
        self.rebin_interval
    }

    /// Force a specific SIMD backend for the [`SweepMode::SoaBinned`]
    /// kernel (no-op in the other modes, which don't use the explicit
    /// SIMD layer). The default is [`SimdBackend::detect`] at
    /// construction. Every backend is bit-identical; this is the A/B
    /// handle behind the `PIC_NO_SIMD` environment variable and the
    /// cross-backend identity tests.
    pub fn with_simd_backend(mut self, backend: SimdBackend) -> Simulation {
        if let ParticleStore::Binned(b) = &mut self.store {
            b.set_simd_backend(backend);
        }
        self
    }

    /// The SIMD backend the binned sweep kernel runs on (`None` for modes
    /// that don't use the explicit SIMD layer).
    pub fn simd_backend(&self) -> Option<SimdBackend> {
        match &self.store {
            ParticleStore::Binned(b) => Some(b.simd_backend()),
            _ => None,
        }
    }

    /// The kernel tier the binned sweep runs ([`KernelTier::Fast`] for
    /// [`SweepMode::SoaBinnedFast`], [`KernelTier::Exact`] for
    /// [`SweepMode::SoaBinned`]; `None` for the non-binned modes).
    pub fn kernel_tier(&self) -> Option<KernelTier> {
        match &self.store {
            ParticleStore::Binned(b) => Some(b.kernel_tier()),
            _ => None,
        }
    }

    /// Short kernel descriptor for telemetry and driver output:
    /// `"<backend>/<tier>"` for the binned modes (e.g. `"avx512/fast"`,
    /// `"scalar/exact"`), `"none"` for modes outside the explicit SIMD
    /// layer. This is the trace run-header `simd` field.
    pub fn kernel_desc(&self) -> String {
        match (self.simd_backend(), self.kernel_tier()) {
            (Some(b), Some(t)) => format!("{}/{}", b.name(), t.name()),
            _ => "none".to_string(),
        }
    }

    /// The active sweep mode.
    pub fn mode(&self) -> SweepMode {
        self.mode
    }

    /// Validate all scheduled events against the grid.
    pub fn validate_events(&self) -> Result<(), InitError> {
        for e in &self.events {
            validate_event(&self.grid, e)?;
        }
        Ok(())
    }

    /// Current step index (number of steps executed so far).
    pub fn step_index(&self) -> u32 {
        self.step
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn constants(&self) -> &SimConstants {
        &self.consts
    }

    /// The current population, materialized as AoS records (allocates; the
    /// store itself may be SoA). Ordering is identical across all sweep
    /// modes. For allocation-free bulk reads use the histogram `_into`
    /// methods or [`Simulation::batch`].
    pub fn particles(&self) -> Vec<Particle> {
        self.store.to_particles()
    }

    /// Direct view of the SoA store, when the mode keeps one (`None` for
    /// the AoS modes). For [`SweepMode::SoaBinned`] the batch is in bin
    /// order, not canonical order — use [`Simulation::particles`] when
    /// ordering matters.
    pub fn batch(&self) -> Option<&ParticleBatch> {
        match &self.store {
            ParticleStore::Aos(_) => None,
            ParticleStore::Soa(b) => Some(b),
            ParticleStore::Binned(b) => Some(b.batch()),
        }
    }

    pub fn particle_count(&self) -> usize {
        self.store.len()
    }

    /// Lifetime counting-sort (rebin) invocations; 0 for the non-binned
    /// stores. Telemetry hook for the trace `rebins` counter.
    pub fn rebin_count(&self) -> u64 {
        match &self.store {
            ParticleStore::Binned(b) => b.rebin_count(),
            _ => 0,
        }
    }

    /// The checksum ledger: what the id sum of the surviving particles
    /// must equal.
    pub fn expected_id_sum(&self) -> u128 {
        self.expected_id_sum
    }

    /// Apply all events scheduled for the current step. Called by
    /// [`Simulation::step`], exposed for harnesses that drive sub-phases.
    pub fn apply_due_events(&mut self) {
        while self.next_event < self.events.len()
            && self.events[self.next_event].at_step == self.step
        {
            let e = self.events[self.next_event];
            self.next_event += 1;
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    let newcomers = build_injection(
                        self.grid,
                        self.consts,
                        e.region,
                        count,
                        k,
                        m,
                        dir,
                        self.step,
                        &mut self.next_id,
                    );
                    for p in &newcomers {
                        self.expected_id_sum += p.id as u128;
                    }
                    self.store.extend(newcomers);
                }
                EventKind::Remove { count } => {
                    let removed = match &mut self.store {
                        ParticleStore::Aos(v) => apply_removal(v, e.region, count),
                        ParticleStore::Soa(b) => b.remove_in_region(&e.region, count),
                        ParticleStore::Binned(b) => b.remove_in_region(&e.region, count),
                    };
                    for p in &removed {
                        self.expected_id_sum -= p.id as u128;
                    }
                }
            }
        }
    }

    /// Execute one time step: events due at this step, then the particle
    /// sweep (force + eqs. 1–2 + periodic wrap).
    pub fn step(&mut self) {
        self.apply_due_events();
        match (&mut self.store, self.mode) {
            (ParticleStore::Aos(v), SweepMode::Serial) => advance_all(&self.grid, &self.consts, v),
            (ParticleStore::Aos(v), SweepMode::Parallel) => {
                advance_all_parallel(&self.grid, &self.consts, v)
            }
            (ParticleStore::Soa(b), SweepMode::Soa) => b.advance_all(&self.grid, &self.consts),
            (ParticleStore::Soa(b), SweepMode::SoaChunked) => {
                let chunk = self.chunk_size.unwrap_or_else(|| {
                    pool::adaptive_chunk(b.len(), pool::global().active_threads())
                });
                b.advance_all_chunked(&self.grid, &self.consts, chunk)
            }
            (ParticleStore::Binned(b), SweepMode::SoaBinned | SweepMode::SoaBinnedFast) => {
                let chunk = self.chunk_size.unwrap_or_else(|| {
                    pool::adaptive_chunk(b.len(), pool::global().active_threads())
                });
                b.advance_all(&self.grid, &self.consts, chunk)
            }
            // The constructor ties store layout to mode; the pairs above
            // are exhaustive in practice.
            (_, mode) => unreachable!("store layout inconsistent with sweep mode {mode:?}"),
        }
        self.step += 1;
    }

    /// Execute `t` steps.
    pub fn run(&mut self, t: u32) {
        for _ in 0..t {
            self.step();
        }
    }

    /// Verify the current population against eqs. 5–6 and the checksum.
    /// The exact modes check against [`DEFAULT_TOLERANCE`]; the fast tier
    /// ([`SweepMode::SoaBinnedFast`]) checks against the *analytic* bound
    /// ([`Simulation::verify_analytic`]) — which is clamped to never
    /// exceed the default tolerance, so the fast gate is always at least
    /// as strict.
    pub fn verify(&self) -> VerifyReport {
        if self.mode.is_fast() {
            self.verify_analytic()
        } else {
            self.verify_with_tolerance(DEFAULT_TOLERANCE)
        }
    }

    pub fn verify_with_tolerance(&self, tol: f64) -> VerifyReport {
        let particles = self.store.to_particles();
        verify_all(&self.grid, &particles, self.step, self.expected_id_sum, tol)
    }

    /// Verify against the fast-tier analytic drift bound
    /// ([`crate::verify::analytic_tolerance`], DESIGN.md §12): per-step
    /// relative error [`crate::verify::FAST_KERNEL_REL_ERR`] accumulated
    /// quadratically over the run, scaled by the fastest particle stride,
    /// clamped to `[1e-10, DEFAULT_TOLERANCE]`. Usable in any mode (the
    /// exact tiers pass it trivially — their error is at the 1e-13 floor).
    pub fn verify_analytic(&self) -> VerifyReport {
        let particles = self.store.to_particles();
        let max_stride = particles
            .iter()
            .map(|p| (2 * p.k as u64 + 1).max(p.m.unsigned_abs() as u64))
            .max()
            .unwrap_or(1);
        let tol = crate::verify::analytic_tolerance(self.step as u64, max_stride);
        verify_all(&self.grid, &particles, self.step, self.expected_id_sum, tol)
    }

    /// Histogram of particle counts per cell column — the quantity the
    /// x-direction load balancers equalize. Allocates; balancer loops
    /// should use [`Simulation::column_histogram_into`].
    pub fn column_histogram(&self) -> Vec<u64> {
        let mut h = Vec::new();
        self.column_histogram_into(&mut h);
        h
    }

    /// Fill `h` with the per-column histogram, reusing its storage
    /// (allocation-free once `h` has reached grid capacity). In
    /// [`SweepMode::SoaBinned`] with a fresh binning this is an
    /// O(columns) prefix-sum read instead of an O(n) scan — the quantity
    /// the diffusion balancer polls every step comes for free.
    pub fn column_histogram_into(&self, h: &mut Vec<u64>) {
        if let ParticleStore::Binned(b) = &self.store {
            return b.column_histogram_into(&self.grid, h);
        }
        h.clear();
        h.resize(self.grid.ncells(), 0);
        match &self.store {
            ParticleStore::Aos(v) => {
                for p in v {
                    h[self.grid.cell_of(p.x)] += 1;
                }
            }
            ParticleStore::Soa(b) => {
                for &x in &b.x {
                    h[self.grid.cell_of(x)] += 1;
                }
            }
            ParticleStore::Binned(_) => unreachable!(),
        }
    }

    /// Histogram of particle counts per cell row (for rotated workloads
    /// and the two-phase balancer's y phase). Allocates; balancer loops
    /// should use [`Simulation::row_histogram_into`].
    pub fn row_histogram(&self) -> Vec<u64> {
        let mut h = Vec::new();
        self.row_histogram_into(&mut h);
        h
    }

    /// Fill `h` with the per-row histogram, reusing its storage. (Bins
    /// are per *column*, so the binned store has no row fast path — this
    /// is always the O(n) scan.)
    pub fn row_histogram_into(&self, h: &mut Vec<u64>) {
        h.clear();
        h.resize(self.grid.ncells(), 0);
        match &self.store {
            ParticleStore::Aos(v) => {
                for p in v {
                    h[self.grid.cell_of(p.y)] += 1;
                }
            }
            ParticleStore::Soa(b) => {
                for &y in &b.y {
                    h[self.grid.cell_of(y)] += 1;
                }
            }
            ParticleStore::Binned(b) => {
                for &y in &b.batch().y {
                    h[self.grid.cell_of(y)] += 1;
                }
            }
        }
    }

    /// Corrupt one particle in place — failure-injection tests *only*.
    #[doc(hidden)]
    pub fn mutate_particle(&mut self, idx: usize, f: impl FnOnce(&mut Particle)) {
        match &mut self.store {
            ParticleStore::Aos(v) => f(&mut v[idx]),
            ParticleStore::Soa(b) => {
                let mut p = b.get(idx);
                f(&mut p);
                b.set(idx, p);
            }
            ParticleStore::Binned(b) => {
                let mut p = b.particle_at(idx);
                f(&mut p);
                b.set(idx, p);
            }
        }
    }

    /// Read one particle by canonical index — failure-injection tests
    /// *only*. (`idx` addresses the same particle in every sweep mode.)
    #[doc(hidden)]
    pub fn particle_at(&self, idx: usize) -> Particle {
        match &self.store {
            ParticleStore::Aos(v) => v[idx],
            ParticleStore::Soa(b) => b.get(idx),
            ParticleStore::Binned(b) => b.particle_at(idx),
        }
    }

    /// Drop the canonically-last particle — failure-injection tests *only*.
    #[doc(hidden)]
    pub fn pop_particle(&mut self) -> Option<Particle> {
        match &mut self.store {
            ParticleStore::Aos(v) => v.pop(),
            ParticleStore::Soa(b) => b.pop(),
            ParticleStore::Binned(b) => b.pop(),
        }
    }

    /// Append a particle without touching the ledger — failure-injection
    /// tests *only*.
    #[doc(hidden)]
    pub fn push_particle(&mut self, p: Particle) {
        match &mut self.store {
            ParticleStore::Aos(v) => v.push(p),
            ParticleStore::Soa(b) => b.push(p),
            ParticleStore::Binned(b) => b.push(p),
        }
    }

    /// Snapshot the complete state for checkpoint/restart. The wire format
    /// is layout-independent (AoS records), so a checkpoint taken in any
    /// sweep mode restores into any other.
    pub fn checkpoint(&self) -> crate::checkpoint::CheckpointData {
        crate::checkpoint::CheckpointData {
            grid: self.grid,
            consts: self.consts,
            step: self.step,
            next_id: self.next_id,
            expected_id_sum: self.expected_id_sum,
            particles: self.store.to_particles(),
            pending_events: self.events[self.next_event..].to_vec(),
        }
    }

    /// Resume from a checkpoint; the continuation is bit-exact with an
    /// uninterrupted run.
    pub fn restore(cp: crate::checkpoint::CheckpointData, mode: SweepMode) -> Simulation {
        let store = ParticleStore::for_mode(cp.particles, &cp.grid, mode);
        Simulation {
            grid: cp.grid,
            consts: cp.consts,
            store,
            events: cp.pending_events,
            next_event: 0,
            step: cp.step,
            next_id: cp.next_id,
            expected_id_sum: cp.expected_id_sum,
            mode,
            chunk_size: None,
            rebin_interval: DEFAULT_REBIN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::events::Region;
    use crate::init::InitConfig;
    use crate::verify::triangular_id_sum;

    fn setup(n: u64, dist: Distribution) -> SimulationSetup {
        InitConfig::new(Grid::new(32).unwrap(), n, dist)
            .with_m(1)
            .build()
            .unwrap()
    }

    #[test]
    fn event_free_run_verifies() {
        let mut sim = Simulation::new(setup(500, Distribution::PAPER_SKEW));
        sim.run(200);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.checked, 500);
        assert_eq!(report.id_sum, triangular_id_sum(500));
        assert!(report.max_error < 1e-9, "max error {}", report.max_error);
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let s = setup(300, Distribution::Sinusoidal);
        let mut a = Simulation::with_mode(s.clone(), SweepMode::Serial);
        let mut b = Simulation::with_mode(s, SweepMode::Parallel);
        a.run(50);
        b.run(50);
        assert_eq!(a.particles(), b.particles());
    }

    #[test]
    fn all_sweep_modes_match_serial_bitwise() {
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        };
        let s = setup(400, Distribution::Geometric { r: 0.9 })
            .with_event(Event::inject(30, region, 10, 0, 1, 1))
            .with_event(Event::remove(25, Region::whole(32), 25));
        let mut reference = Simulation::with_mode(s.clone(), SweepMode::Serial);
        reference.run(40);
        for mode in [
            SweepMode::Parallel,
            SweepMode::Soa,
            SweepMode::SoaChunked,
            SweepMode::SoaBinned,
        ] {
            let mut sim = Simulation::with_mode(s.clone(), mode)
                .with_chunk_size(37)
                .with_rebin_interval(3);
            sim.run(40);
            assert_eq!(
                reference.particles(),
                sim.particles(),
                "{mode:?} diverged from serial (same order, same bits)"
            );
            assert_eq!(reference.expected_id_sum(), sim.expected_id_sum());
            assert!(sim.verify().passed());
        }
    }

    #[test]
    fn fast_mode_with_events_passes_analytic_gate() {
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        };
        let s = setup(400, Distribution::Geometric { r: 0.9 })
            .with_event(Event::inject(30, region, 10, 0, 1, 1))
            .with_event(Event::remove(25, Region::whole(32), 25));
        let mut sim = Simulation::with_mode(s, SweepMode::SoaBinnedFast).with_rebin_interval(3);
        assert_eq!(sim.kernel_tier(), Some(crate::bin::KernelTier::Fast));
        assert!(sim.mode().is_fast() && sim.mode().is_soa());
        sim.run(40);
        let report = sim.verify(); // routes to the analytic gate
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.id_sum, report.expected_id_sum);
        // The analytic gate is at least as strict as the default gate.
        assert!(sim.verify_analytic().passed());
    }

    #[test]
    fn fast_mode_checkpoint_restores_fast_tier() {
        let s = setup(150, Distribution::Sinusoidal);
        let mut fast = Simulation::with_mode(s, SweepMode::SoaBinnedFast);
        fast.run(10);
        let cp = fast.checkpoint().encode();
        let cp = crate::checkpoint::CheckpointData::decode(&cp).unwrap();
        let resumed = Simulation::restore(cp, SweepMode::SoaBinnedFast);
        assert_eq!(resumed.kernel_tier(), Some(crate::bin::KernelTier::Fast));
        let mut resumed = resumed;
        resumed.run(10);
        assert!(resumed.verify().passed());
    }

    #[test]
    fn cli_names_round_trip_for_every_mode() {
        for mode in SweepMode::ALL {
            assert_eq!(SweepMode::from_cli_name(mode.cli_name()), Some(mode));
        }
        assert_eq!(
            SweepMode::from_cli_name("soa-binned-fast"),
            Some(SweepMode::SoaBinnedFast)
        );
        assert_eq!(SweepMode::from_cli_name("nope"), None);
    }

    #[test]
    fn soa_store_is_native_no_aos_roundtrip() {
        let s = setup(100, Distribution::Uniform);
        let mut sim = Simulation::with_mode(s, SweepMode::Soa);
        assert!(sim.batch().is_some(), "SoA mode exposes the batch");
        sim.run(5);
        assert_eq!(sim.batch().unwrap().len(), 100);
        let mut h = Vec::new();
        sim.column_histogram_into(&mut h);
        assert_eq!(h.iter().sum::<u64>(), 100);
    }

    #[test]
    fn checkpoint_crosses_layouts_bit_exactly() {
        // Checkpoint taken in an SoA-mode run restores into an AoS-mode
        // run (and vice versa) with bit-identical continuation.
        let s = setup(150, Distribution::Sinusoidal);
        let mut soa = Simulation::with_mode(s.clone(), SweepMode::SoaChunked).with_chunk_size(16);
        soa.run(20);
        let cp = soa.checkpoint().encode();
        let cp = crate::checkpoint::CheckpointData::decode(&cp).unwrap();
        let mut aos = Simulation::restore(cp, SweepMode::Serial);
        soa.run(20);
        aos.run(20);
        assert_eq!(soa.particles(), aos.particles());
    }

    #[test]
    fn distribution_drifts_one_cell_per_step() {
        let mut sim = Simulation::new(setup(1000, Distribution::Geometric { r: 0.9 }));
        let before = sim.column_histogram();
        sim.run(3);
        let after = sim.column_histogram();
        // The whole histogram rotates right by 3 (k = 0).
        for col in 0..32 {
            assert_eq!(after[(col + 3) % 32], before[col], "column {col}");
        }
    }

    #[test]
    fn injection_updates_ledger_and_verifies() {
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        };
        let s =
            setup(100, Distribution::Uniform).with_event(Event::inject(10, region, 50, 0, 0, 1));
        let mut sim = Simulation::new(s);
        sim.run(30);
        assert_eq!(sim.particle_count(), 150);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert_eq!(
            sim.expected_id_sum(),
            triangular_id_sum(150),
            "injected ids continue the range"
        );
    }

    #[test]
    fn removal_updates_ledger_and_verifies() {
        let s =
            setup(100, Distribution::Uniform).with_event(Event::remove(5, Region::whole(32), 30));
        let mut sim = Simulation::new(s);
        sim.run(20);
        assert_eq!(sim.particle_count(), 70);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert!(sim.expected_id_sum() < triangular_id_sum(100));
    }

    #[test]
    fn events_fire_in_step_order_even_if_added_unsorted() {
        let region = Region {
            x0: 0,
            x1: 32,
            y0: 0,
            y1: 32,
        };
        let s = setup(10, Distribution::Uniform)
            .with_event(Event::inject(20, region, 5, 0, 0, 1))
            .with_event(Event::inject(5, region, 7, 0, 0, 1));
        let mut sim = Simulation::new(s);
        sim.run(6);
        assert_eq!(sim.particle_count(), 17);
        sim.run(20);
        assert_eq!(sim.particle_count(), 22);
        assert!(sim.verify().passed());
    }

    #[test]
    fn failure_injection_position_corruption_detected() {
        // The paper: verification is "sensitive enough to reveal ... even as
        // minor as a single particle miscalculation in a single time step."
        let mut sim = Simulation::new(setup(200, Distribution::Uniform));
        sim.run(19);
        sim.mutate_particle(77, |p| p.x += 1.0); // one particle, one cell, one step
        sim.run(1);
        let report = sim.verify();
        assert_eq!(report.position_failures, 1);
        assert!(!report.passed());
    }

    #[test]
    fn failure_injection_lost_particle_detected_by_checksum() {
        let mut sim = Simulation::new(setup(50, Distribution::Uniform));
        sim.run(10);
        sim.pop_particle();
        let report = sim.verify();
        assert!(!report.passed());
        assert_eq!(report.position_failures, 0, "positions fine, checksum not");
        assert_ne!(report.id_sum, report.expected_id_sum);
    }

    #[test]
    fn failure_injection_duplicated_particle_detected() {
        let mut sim = Simulation::new(setup(50, Distribution::Uniform));
        sim.run(10);
        let dup = sim.particle_at(0);
        sim.push_particle(dup);
        let report = sim.verify();
        assert!(!report.passed());
    }

    #[test]
    fn zero_step_run_trivially_verifies() {
        let sim = Simulation::new(setup(10, Distribution::Uniform));
        assert!(sim.verify().passed());
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        };
        let setup = setup(200, Distribution::Geometric { r: 0.9 })
            .with_event(Event::inject(25, region, 30, 0, 1, 1))
            .with_event(Event::remove(40, Region::whole(32), 20));
        // Uninterrupted run.
        let mut full = Simulation::new(setup.clone());
        full.run(60);
        // Interrupted at step 20 (before the events), checkpointed, and
        // resumed.
        let mut first = Simulation::new(setup);
        first.run(20);
        let bytes = first.checkpoint().encode();
        let cp = crate::checkpoint::CheckpointData::decode(&bytes).unwrap();
        let mut resumed = Simulation::restore(cp, SweepMode::Serial);
        resumed.run(40);
        assert_eq!(full.step_index(), resumed.step_index());
        assert_eq!(full.particles(), resumed.particles());
        assert_eq!(full.expected_id_sum(), resumed.expected_id_sum());
        assert!(resumed.verify().passed());
    }

    #[test]
    fn checkpoint_mid_events_keeps_pending_only() {
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 8,
        };
        let setup = setup(100, Distribution::Uniform)
            .with_event(Event::inject(5, region, 10, 0, 0, 1))
            .with_event(Event::inject(50, region, 10, 0, 0, 1));
        let mut sim = Simulation::new(setup);
        sim.run(20); // first event applied, second pending
        let cp = sim.checkpoint();
        assert_eq!(cp.pending_events.len(), 1);
        assert_eq!(cp.pending_events[0].at_step, 50);
        assert_eq!(cp.particles.len(), 110);
        let mut resumed = Simulation::restore(cp, SweepMode::Serial);
        resumed.run(40);
        assert_eq!(resumed.particle_count(), 120);
        assert!(resumed.verify().passed());
    }

    #[test]
    fn fast_particles_wrap_many_times_and_verify() {
        let s = InitConfig::new(Grid::new(16).unwrap(), 64, Distribution::Uniform)
            .with_k(3) // 7 cells per step on a 16-cell grid
            .with_m(-5)
            .with_dir(-1)
            .build()
            .unwrap();
        let mut sim = Simulation::new(s);
        sim.run(100);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
    }
}
