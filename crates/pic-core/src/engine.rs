//! Serial (and shared-memory parallel) reference engine.
//!
//! The engine is the executable form of the paper-and-pencil specification:
//! it applies scheduled injection/removal events, advances every particle by
//! the constant-acceleration kinematics, and maintains the id-checksum
//! ledger that the final verification compares against. All parallel
//! implementations must produce exactly the population this engine produces
//! (same ids, positions within tolerance).

use crate::charge::SimConstants;
use crate::events::{Event, EventKind};
use crate::geometry::Grid;
use crate::init::{apply_removal, build_injection, validate_event, InitError, SimulationSetup};
use crate::motion::{advance_all, advance_all_parallel};
use crate::particle::Particle;
use crate::verify::{verify_all, VerifyReport, DEFAULT_TOLERANCE};

/// Execution mode for the per-step particle sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// One thread, deterministic order.
    #[default]
    Serial,
    /// Rayon-parallel sweep; bitwise identical results (particles are
    /// independent within a step).
    Parallel,
}

/// The reference simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    grid: Grid,
    consts: SimConstants,
    particles: Vec<Particle>,
    events: Vec<Event>,
    next_event: usize,
    step: u32,
    next_id: u64,
    expected_id_sum: u128,
    mode: SweepMode,
}

pub use crate::init::SimulationSetup as Setup;

impl Simulation {
    /// Build a simulation from a setup produced by
    /// [`crate::init::InitConfig::build`].
    pub fn new(setup: SimulationSetup) -> Simulation {
        Self::with_mode(setup, SweepMode::Serial)
    }

    /// Build with an explicit sweep mode.
    pub fn with_mode(setup: SimulationSetup, mode: SweepMode) -> Simulation {
        let expected_id_sum = setup.initial_id_sum();
        let mut events = setup.events;
        events.sort_by_key(|e| e.at_step);
        Simulation {
            grid: setup.grid,
            consts: setup.consts,
            particles: setup.particles,
            events,
            next_event: 0,
            step: 0,
            next_id: setup.next_id,
            expected_id_sum,
            mode,
        }
    }

    /// Validate all scheduled events against the grid.
    pub fn validate_events(&self) -> Result<(), InitError> {
        for e in &self.events {
            validate_event(&self.grid, e)?;
        }
        Ok(())
    }

    /// Current step index (number of steps executed so far).
    pub fn step_index(&self) -> u32 {
        self.step
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn constants(&self) -> &SimConstants {
        &self.consts
    }

    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    pub fn particle_count(&self) -> usize {
        self.particles.len()
    }

    /// The checksum ledger: what the id sum of the surviving particles
    /// must equal.
    pub fn expected_id_sum(&self) -> u128 {
        self.expected_id_sum
    }

    /// Apply all events scheduled for the current step. Called by
    /// [`Simulation::step`], exposed for harnesses that drive sub-phases.
    pub fn apply_due_events(&mut self) {
        while self.next_event < self.events.len()
            && self.events[self.next_event].at_step == self.step
        {
            let e = self.events[self.next_event];
            self.next_event += 1;
            match e.kind {
                EventKind::Inject { count, k, m, dir } => {
                    let newcomers = build_injection(
                        self.grid,
                        self.consts,
                        e.region,
                        count,
                        k,
                        m,
                        dir,
                        self.step,
                        &mut self.next_id,
                    );
                    for p in &newcomers {
                        self.expected_id_sum += p.id as u128;
                    }
                    self.particles.extend(newcomers);
                }
                EventKind::Remove { count } => {
                    let removed = apply_removal(&mut self.particles, e.region, count);
                    for p in &removed {
                        self.expected_id_sum -= p.id as u128;
                    }
                }
            }
        }
    }

    /// Execute one time step: events due at this step, then the particle
    /// sweep (force + eqs. 1–2 + periodic wrap).
    pub fn step(&mut self) {
        self.apply_due_events();
        match self.mode {
            SweepMode::Serial => advance_all(&self.grid, &self.consts, &mut self.particles),
            SweepMode::Parallel => {
                advance_all_parallel(&self.grid, &self.consts, &mut self.particles)
            }
        }
        self.step += 1;
    }

    /// Execute `t` steps.
    pub fn run(&mut self, t: u32) {
        for _ in 0..t {
            self.step();
        }
    }

    /// Verify the current population against eqs. 5–6 and the checksum.
    pub fn verify(&self) -> VerifyReport {
        self.verify_with_tolerance(DEFAULT_TOLERANCE)
    }

    pub fn verify_with_tolerance(&self, tol: f64) -> VerifyReport {
        verify_all(
            &self.grid,
            &self.particles,
            self.step,
            self.expected_id_sum,
            tol,
        )
    }

    /// Histogram of particle counts per cell column — the quantity the
    /// x-direction load balancers equalize.
    pub fn column_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.grid.ncells()];
        for p in &self.particles {
            h[self.grid.cell_of(p.x)] += 1;
        }
        h
    }

    /// Histogram of particle counts per cell row (for rotated workloads
    /// and the two-phase balancer's y phase).
    pub fn row_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.grid.ncells()];
        for p in &self.particles {
            h[self.grid.cell_of(p.y)] += 1;
        }
        h
    }

    /// Mutable access for failure-injection tests *only*.
    #[doc(hidden)]
    pub fn particles_mut(&mut self) -> &mut Vec<Particle> {
        &mut self.particles
    }

    /// Snapshot the complete state for checkpoint/restart.
    pub fn checkpoint(&self) -> crate::checkpoint::CheckpointData {
        crate::checkpoint::CheckpointData {
            grid: self.grid,
            consts: self.consts,
            step: self.step,
            next_id: self.next_id,
            expected_id_sum: self.expected_id_sum,
            particles: self.particles.clone(),
            pending_events: self.events[self.next_event..].to_vec(),
        }
    }

    /// Resume from a checkpoint; the continuation is bit-exact with an
    /// uninterrupted run.
    pub fn restore(cp: crate::checkpoint::CheckpointData, mode: SweepMode) -> Simulation {
        Simulation {
            grid: cp.grid,
            consts: cp.consts,
            particles: cp.particles,
            events: cp.pending_events,
            next_event: 0,
            step: cp.step,
            next_id: cp.next_id,
            expected_id_sum: cp.expected_id_sum,
            mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::events::Region;
    use crate::init::InitConfig;
    use crate::verify::triangular_id_sum;

    fn setup(n: u64, dist: Distribution) -> SimulationSetup {
        InitConfig::new(Grid::new(32).unwrap(), n, dist)
            .with_m(1)
            .build()
            .unwrap()
    }

    #[test]
    fn event_free_run_verifies() {
        let mut sim = Simulation::new(setup(500, Distribution::PAPER_SKEW));
        sim.run(200);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.checked, 500);
        assert_eq!(report.id_sum, triangular_id_sum(500));
        assert!(report.max_error < 1e-9, "max error {}", report.max_error);
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        let s = setup(300, Distribution::Sinusoidal);
        let mut a = Simulation::with_mode(s.clone(), SweepMode::Serial);
        let mut b = Simulation::with_mode(s, SweepMode::Parallel);
        a.run(50);
        b.run(50);
        assert_eq!(a.particles(), b.particles());
    }

    #[test]
    fn distribution_drifts_one_cell_per_step() {
        let mut sim = Simulation::new(setup(1000, Distribution::Geometric { r: 0.9 }));
        let before = sim.column_histogram();
        sim.run(3);
        let after = sim.column_histogram();
        // The whole histogram rotates right by 3 (k = 0).
        for col in 0..32 {
            assert_eq!(after[(col + 3) % 32], before[col], "column {col}");
        }
    }

    #[test]
    fn injection_updates_ledger_and_verifies() {
        let region = Region { x0: 0, x1: 8, y0: 0, y1: 8 };
        let s = setup(100, Distribution::Uniform).with_event(Event::inject(10, region, 50, 0, 0, 1));
        let mut sim = Simulation::new(s);
        sim.run(30);
        assert_eq!(sim.particle_count(), 150);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert_eq!(
            sim.expected_id_sum(),
            triangular_id_sum(150),
            "injected ids continue the range"
        );
    }

    #[test]
    fn removal_updates_ledger_and_verifies() {
        let s = setup(100, Distribution::Uniform)
            .with_event(Event::remove(5, Region::whole(32), 30));
        let mut sim = Simulation::new(s);
        sim.run(20);
        assert_eq!(sim.particle_count(), 70);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
        assert!(sim.expected_id_sum() < triangular_id_sum(100));
    }

    #[test]
    fn events_fire_in_step_order_even_if_added_unsorted() {
        let region = Region { x0: 0, x1: 32, y0: 0, y1: 32 };
        let s = setup(10, Distribution::Uniform)
            .with_event(Event::inject(20, region, 5, 0, 0, 1))
            .with_event(Event::inject(5, region, 7, 0, 0, 1));
        let mut sim = Simulation::new(s);
        sim.run(6);
        assert_eq!(sim.particle_count(), 17);
        sim.run(20);
        assert_eq!(sim.particle_count(), 22);
        assert!(sim.verify().passed());
    }

    #[test]
    fn failure_injection_position_corruption_detected() {
        // The paper: verification is "sensitive enough to reveal ... even as
        // minor as a single particle miscalculation in a single time step."
        let mut sim = Simulation::new(setup(200, Distribution::Uniform));
        sim.run(19);
        sim.particles_mut()[77].x += 1.0; // one particle, one cell, one step
        sim.run(1);
        let report = sim.verify();
        assert_eq!(report.position_failures, 1);
        assert!(!report.passed());
    }

    #[test]
    fn failure_injection_lost_particle_detected_by_checksum() {
        let mut sim = Simulation::new(setup(50, Distribution::Uniform));
        sim.run(10);
        sim.particles_mut().pop();
        let report = sim.verify();
        assert!(!report.passed());
        assert_eq!(report.position_failures, 0, "positions fine, checksum not");
        assert_ne!(report.id_sum, report.expected_id_sum);
    }

    #[test]
    fn failure_injection_duplicated_particle_detected() {
        let mut sim = Simulation::new(setup(50, Distribution::Uniform));
        sim.run(10);
        let dup = sim.particles()[0];
        sim.particles_mut().push(dup);
        let report = sim.verify();
        assert!(!report.passed());
    }

    #[test]
    fn zero_step_run_trivially_verifies() {
        let sim = Simulation::new(setup(10, Distribution::Uniform));
        assert!(sim.verify().passed());
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        let region = Region { x0: 0, x1: 8, y0: 0, y1: 8 };
        let setup = setup(200, Distribution::Geometric { r: 0.9 })
            .with_event(Event::inject(25, region, 30, 0, 1, 1))
            .with_event(Event::remove(40, Region::whole(32), 20));
        // Uninterrupted run.
        let mut full = Simulation::new(setup.clone());
        full.run(60);
        // Interrupted at step 20 (before the events), checkpointed, and
        // resumed.
        let mut first = Simulation::new(setup);
        first.run(20);
        let bytes = first.checkpoint().encode();
        let cp = crate::checkpoint::CheckpointData::decode(&bytes).unwrap();
        let mut resumed = Simulation::restore(cp, SweepMode::Serial);
        resumed.run(40);
        assert_eq!(full.step_index(), resumed.step_index());
        assert_eq!(full.particles(), resumed.particles());
        assert_eq!(full.expected_id_sum(), resumed.expected_id_sum());
        assert!(resumed.verify().passed());
    }

    #[test]
    fn checkpoint_mid_events_keeps_pending_only() {
        let region = Region { x0: 0, x1: 8, y0: 0, y1: 8 };
        let setup = setup(100, Distribution::Uniform)
            .with_event(Event::inject(5, region, 10, 0, 0, 1))
            .with_event(Event::inject(50, region, 10, 0, 0, 1));
        let mut sim = Simulation::new(setup);
        sim.run(20); // first event applied, second pending
        let cp = sim.checkpoint();
        assert_eq!(cp.pending_events.len(), 1);
        assert_eq!(cp.pending_events[0].at_step, 50);
        assert_eq!(cp.particles.len(), 110);
        let mut resumed = Simulation::restore(cp, SweepMode::Serial);
        resumed.run(40);
        assert_eq!(resumed.particle_count(), 120);
        assert!(resumed.verify().passed());
    }

    #[test]
    fn fast_particles_wrap_many_times_and_verify() {
        let s = InitConfig::new(Grid::new(16).unwrap(), 64, Distribution::Uniform)
            .with_k(3) // 7 cells per step on a 16-cell grid
            .with_m(-5)
            .with_dir(-1)
            .build()
            .unwrap();
        let mut sim = Simulation::new(s);
        sim.run(100);
        let report = sim.verify();
        assert!(report.passed(), "{report:?}");
    }
}
