//! Self-verification (paper §III-D).
//!
//! Because every particle moves exactly `±(2k+1)` cells in x and `m` cells
//! in y per step, its final position after `s` steps is known in closed form
//! (paper eqs. 5–6):
//!
//! ```text
//! x_s = (x_0 + sign(a_x,0)·(2k+1)·s·h) mod L
//! y_s = (y_0 + m·h·s) mod L
//! ```
//!
//! The check is O(1) per particle, trivially parallel, and "even a single
//! force miscalculation will be reflected rigorously in the final result".
//! A second, independent check — the id checksum `Σ id = n(n+1)/2` — catches
//! particles lost or duplicated in transit between processors.

use crate::charge::SimConstants;
use crate::geometry::Grid;
use crate::particle::Particle;

/// Default absolute position tolerance, matching the PRK reference codes.
pub const DEFAULT_TOLERANCE: f64 = 1e-5;

/// Per-step relative error budget of the fast-math kernel tier
/// (DESIGN.md §12). The refined reciprocal-square-root is within a few
/// ulps (≲ 5e-16 relative) and the FMA/reassociation differences are of
/// the same order; 1e-13 leaves two orders of headroom so the analytic
/// gate never flakes on a conforming kernel while still catching any
/// real force miscalculation, which displaces a particle by ≥ h/2 within
/// a step or two.
pub const FAST_KERNEL_REL_ERR: f64 = 1e-13;

/// Absolute position tolerance for verifying the **fast** kernel tier
/// analytically against eqs. 5–6 after `steps` steps, for particles whose
/// largest per-step displacement is `max_stride` cells.
///
/// Derivation: the fast tier perturbs each step's acceleration by a
/// relative error ε = [`FAST_KERNEL_REL_ERR`] on a displacement of at most
/// `stride · h` per step. An acceleration error at step `i` displaces
/// every later step through the velocity, so after `s` steps the
/// accumulated bound is `Σ_{i=1..s} i · ε · stride · h` ≈
/// `ε · stride · s(s+1)/2 · h` — quadratic in `s`, which is why the fast
/// tier is gated by this *derived* bound rather than a fixed epsilon. The
/// result is clamped to never exceed the paper's [`DEFAULT_TOLERANCE`]
/// (the gate must stay at least as strict as the spec's own check) and to
/// a 1e-10 floor (below which the bound would be tighter than what exact
/// integer-cell positions can even express after periodic wrapping).
pub fn analytic_tolerance(steps: u64, max_stride: u64) -> f64 {
    let s = steps as f64;
    let bound = FAST_KERNEL_REL_ERR * max_stride.max(1) as f64 * s * (s + 1.0) * 0.5;
    bound.clamp(1e-10, DEFAULT_TOLERANCE)
}

/// Cap on `failing_ids` kept for diagnostics, locally and after merging.
pub const MAX_FAILING_IDS: usize = 16;

/// Expected final position of a particle after participating in
/// `steps` time steps, per paper eqs. 5–6. Exact integer-cell arithmetic:
/// the result is an exact cell center, immune to accumulation error.
pub fn expected_position(grid: &Grid, p: &Particle, steps: u64) -> (f64, f64) {
    let col0 = grid.cell_of(p.x0) as i128;
    let row0 = grid.cell_of(p.y0) as i128;
    let dx = p.cells_per_step_x(grid) as i128 * steps as i128;
    let dy = p.cells_per_step_y() as i128 * steps as i128;
    let n = grid.ncells() as i128;
    let col = (((col0 + dx) % n) + n) % n;
    let row = (((row0 + dy) % n) + n) % n;
    // Preserve the sub-cell offset of the initial position (h/2 for
    // spec-conforming placements).
    let fx = p.x0 - p.x0.floor();
    let fy = p.y0 - p.y0.floor();
    (col as f64 + fx, row as f64 + fy)
}

/// Expected velocity after `steps` steps (starting from the spec's rest
/// state in x): the vertical velocity is constant `m·h/dt`; the horizontal
/// velocity alternates between `0` (even step counts — the particle has
/// just decelerated back to rest) and `±2(2k+1)·h/dt` (odd step counts —
/// mid-flight between the accelerate/decelerate pair).
pub fn expected_velocity(
    grid: &Grid,
    consts: &SimConstants,
    p: &Particle,
    steps: u64,
) -> (f64, f64) {
    let vy = p.m as f64 * consts.h / consts.dt;
    let vx = if steps.is_multiple_of(2) {
        0.0
    } else {
        2.0 * p.cells_per_step_x(grid) as f64 * consts.h / consts.dt
    };
    (vx, vy)
}

/// Verify a particle's velocity against the analytic alternation. Separate
/// from the position check because the paper's specification verifies
/// positions only; this is a strictly stronger (optional) test that can
/// catch a corrupted velocity *before* it shows up as a position error in
/// the next step.
pub fn verify_velocity(
    grid: &Grid,
    consts: &SimConstants,
    p: &Particle,
    steps: u64,
    tol: f64,
) -> ParticleVerdict {
    let (evx, evy) = expected_velocity(grid, consts, p, steps);
    let error = (p.vx - evx).abs().max((p.vy - evy).abs());
    ParticleVerdict {
        id: p.id,
        ok: error <= tol,
        error,
    }
}

/// Outcome of verifying one particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleVerdict {
    pub id: u64,
    pub ok: bool,
    /// max(|Δx|, |Δy|) against the analytic position.
    pub error: f64,
}

/// Verify one particle that has participated in `steps` steps.
pub fn verify_particle(grid: &Grid, p: &Particle, steps: u64, tol: f64) -> ParticleVerdict {
    let (ex, ey) = expected_position(grid, p, steps);
    // Compare with minimum-image distance so an actual position of
    // L−ε and expected 0 (or vice versa) count as matching.
    let dx = grid.periodic_delta(p.x, ex).abs();
    let dy = grid.periodic_delta(p.y, ey).abs();
    let error = dx.max(dy);
    ParticleVerdict {
        id: p.id,
        ok: error <= tol,
        error,
    }
}

/// Aggregate verification report.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Number of particles checked.
    pub checked: u64,
    /// Number of particles whose position deviates beyond tolerance.
    pub position_failures: u64,
    /// Largest observed deviation.
    pub max_error: f64,
    /// Ids of the first few failing particles (diagnostics).
    pub failing_ids: Vec<u64>,
    /// Sum of ids of surviving particles.
    pub id_sum: u128,
    /// Expected id sum given the injections/removals that occurred.
    pub expected_id_sum: u128,
    /// Tolerance used.
    pub tolerance: f64,
}

impl VerifyReport {
    /// True if both the trajectory check and the checksum pass.
    pub fn passed(&self) -> bool {
        self.position_failures == 0 && self.id_sum == self.expected_id_sum
    }

    /// Merge reports from disjoint particle subsets (e.g. per-rank
    /// verification in the parallel implementations).
    pub fn merge(mut self, other: &VerifyReport) -> VerifyReport {
        self.checked += other.checked;
        self.position_failures += other.position_failures;
        self.max_error = self.max_error.max(other.max_error);
        self.id_sum += other.id_sum;
        for &id in &other.failing_ids {
            if self.failing_ids.len() < MAX_FAILING_IDS {
                self.failing_ids.push(id);
            }
        }
        self
    }
}

/// Verify a set of particles at final step `final_step`; each particle has
/// participated in `final_step − born_at` steps. `expected_id_sum` comes
/// from the engine's ledger (or `n(n+1)/2` when no events fired).
pub fn verify_all(
    grid: &Grid,
    particles: &[Particle],
    final_step: u32,
    expected_id_sum: u128,
    tol: f64,
) -> VerifyReport {
    let mut report = VerifyReport {
        checked: 0,
        position_failures: 0,
        max_error: 0.0,
        failing_ids: Vec::new(),
        id_sum: 0,
        expected_id_sum,
        tolerance: tol,
    };
    for p in particles {
        let steps = final_step.saturating_sub(p.born_at) as u64;
        let v = verify_particle(grid, p, steps, tol);
        report.checked += 1;
        report.id_sum += p.id as u128;
        report.max_error = report.max_error.max(v.error);
        if !v.ok {
            report.position_failures += 1;
            if report.failing_ids.len() < MAX_FAILING_IDS {
                report.failing_ids.push(p.id);
            }
        }
    }
    report
}

/// Convenience: the closed-form checksum `n(n+1)/2` for an event-free run.
pub fn triangular_id_sum(n: u64) -> u128 {
    n as u128 * (n as u128 + 1) / 2
}

/// Scaled verification constants are not needed: this re-exports the
/// canonical constants for harnesses that want a single import.
pub fn canonical_constants() -> SimConstants {
    SimConstants::CANONICAL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::{particle_charge, sign_for_direction};

    fn particle_at(grid: &Grid, col: usize, row: usize, k: u32, m: i32, dir: i8) -> Particle {
        let c = SimConstants::CANONICAL;
        let (x, y) = grid.cell_center(col, row);
        Particle {
            id: 1,
            x,
            y,
            vx: 0.0,
            vy: m as f64,
            q: particle_charge(&c, 0.5, k, sign_for_direction(col, dir)),
            x0: x,
            y0: y,
            k,
            m,
            born_at: 0,
        }
    }

    #[test]
    fn expected_position_wraps_right() {
        let g = Grid::new(8).unwrap();
        let p = particle_at(&g, 6, 0, 0, 0, 1);
        let (x, y) = expected_position(&g, &p, 3);
        assert_eq!((x, y), (1.5, 0.5)); // 6 + 3 mod 8 = 1
    }

    #[test]
    fn expected_position_wraps_left_and_down() {
        let g = Grid::new(8).unwrap();
        let p = particle_at(&g, 1, 2, 1, -3, -1);
        // dx = −3/step for 5 steps: 1 − 15 = −14 mod 8 = 2.
        // dy = −3·5 = −15: 2 − 15 = −13 mod 8 = 3.
        let (x, y) = expected_position(&g, &p, 5);
        assert_eq!((x, y), (2.5, 3.5));
    }

    #[test]
    fn expected_position_huge_step_count_no_overflow() {
        let g = Grid::new(5998).unwrap();
        let mut p = particle_at(&g, 0, 0, u32::MAX / 2, 1, 1);
        p.k = 1_000_000_000;
        let (x, _) = expected_position(&g, &p, u64::from(u32::MAX));
        assert!((0.0..g.extent()).contains(&x));
    }

    #[test]
    fn verdict_catches_single_cell_error() {
        let g = Grid::new(8).unwrap();
        let mut p = particle_at(&g, 0, 0, 0, 0, 1);
        p.x = 2.5; // pretend it moved 2 cells in 1 step instead of 1
        let v = verify_particle(&g, &p, 1, DEFAULT_TOLERANCE);
        assert!(!v.ok);
        assert!((v.error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn verdict_accepts_exact_position() {
        let g = Grid::new(8).unwrap();
        let mut p = particle_at(&g, 0, 0, 0, 2, 1);
        p.x = 3.5;
        p.y = g.wrap_coord(0.5 + 6.0);
        let v = verify_particle(&g, &p, 3, DEFAULT_TOLERANCE);
        assert!(v.ok, "error = {}", v.error);
        assert_eq!(v.error, 0.0);
    }

    #[test]
    fn periodic_seam_not_a_false_failure() {
        let g = Grid::new(8).unwrap();
        let mut p = particle_at(&g, 7, 0, 0, 0, 1);
        // After one step the particle should be at 0.5; simulate a tiny
        // rounding of the actual slightly below L instead.
        p.x = 8.0 - 1e-9;
        // expected = 0.5 → naive |p.x − 0.5| = 7.5 would fail, but the
        // expected cell for one step from col 7 is col 0 (x = 0.5), and
        // p.x = L−ε is distance 0.5+ε away — that *is* a failure.
        let v = verify_particle(&g, &p, 1, DEFAULT_TOLERANCE);
        assert!(!v.ok);
        // But p.x = 0.5 − tiny wraps cleanly:
        p.x = 0.5 - 1e-9;
        let v = verify_particle(&g, &p, 1, DEFAULT_TOLERANCE);
        assert!(v.ok);
    }

    #[test]
    fn report_checksum_mismatch_fails() {
        let g = Grid::new(8).unwrap();
        let ps = vec![particle_at(&g, 0, 0, 0, 0, 1)];
        let r = verify_all(&g, &ps, 0, 99, DEFAULT_TOLERANCE);
        assert_eq!(r.id_sum, 1);
        assert!(!r.passed(), "wrong checksum must fail");
        let r = verify_all(&g, &ps, 0, 1, DEFAULT_TOLERANCE);
        assert!(r.passed());
    }

    #[test]
    fn merge_accumulates() {
        let g = Grid::new(8).unwrap();
        let a = vec![particle_at(&g, 0, 0, 0, 0, 1)];
        let mut b0 = particle_at(&g, 2, 0, 0, 0, 1);
        b0.id = 2;
        b0.x = 7.5; // wrong
        let ra = verify_all(&g, &a, 0, 0, DEFAULT_TOLERANCE);
        let rb = verify_all(&g, &[b0], 0, 0, DEFAULT_TOLERANCE);
        let mut merged = ra.merge(&rb);
        merged.expected_id_sum = 3;
        assert_eq!(merged.checked, 2);
        assert_eq!(merged.position_failures, 1);
        assert_eq!(merged.id_sum, 3);
        assert_eq!(merged.failing_ids, vec![2]);
        assert!(!merged.passed());
    }

    #[test]
    fn analytic_tolerance_bounds() {
        // Monotone in both arguments, floored, and never looser than the
        // paper's default tolerance.
        assert_eq!(analytic_tolerance(0, 1), 1e-10);
        assert_eq!(analytic_tolerance(10, 1), 1e-10); // still under the floor
        let t_mid = analytic_tolerance(1_000, 3);
        assert!(t_mid > 1e-10 && t_mid < DEFAULT_TOLERANCE, "{t_mid}");
        assert!(analytic_tolerance(2_000, 3) >= analytic_tolerance(1_000, 3));
        assert!(analytic_tolerance(1_000, 9) >= analytic_tolerance(1_000, 3));
        assert_eq!(analytic_tolerance(u32::MAX as u64, 999), DEFAULT_TOLERANCE);
        // Typical CI smoke shape: tiny, far below the spec tolerance.
        assert!(analytic_tolerance(50, 1) < 1e-8);
    }

    #[test]
    fn triangular_sum() {
        assert_eq!(triangular_id_sum(0), 0);
        assert_eq!(triangular_id_sum(1), 1);
        assert_eq!(triangular_id_sum(6_400_000), 6_400_000u128 * 6_400_001 / 2);
    }

    #[test]
    fn velocity_alternates_between_rest_and_double_stride() {
        use crate::motion::advance_particle;
        let g = Grid::new(16).unwrap();
        let c = SimConstants::CANONICAL;
        let mut p = particle_at(&g, 0, 0, 1, 2, 1); // stride 3 rightward
        for s in 1..=9u64 {
            advance_particle(&g, &c, &mut p);
            let v = verify_velocity(&g, &c, &p, s, 1e-9);
            assert!(v.ok, "step {s}: vx = {}, error {}", p.vx, v.error);
            let (evx, _) = expected_velocity(&g, &c, &p, s);
            if s % 2 == 1 {
                assert!((evx - 6.0).abs() < 1e-12, "odd step evx {evx}");
            } else {
                assert_eq!(evx, 0.0);
            }
        }
    }

    #[test]
    fn velocity_corruption_detected() {
        let g = Grid::new(16).unwrap();
        let c = SimConstants::CANONICAL;
        let mut p = particle_at(&g, 0, 0, 0, 1, 1);
        p.vx = 0.5; // should be 0 at step 0
        let v = verify_velocity(&g, &c, &p, 0, DEFAULT_TOLERANCE);
        assert!(!v.ok);
        // Position check alone would NOT see this yet.
        let pos = verify_particle(&g, &p, 0, DEFAULT_TOLERANCE);
        assert!(pos.ok);
    }

    #[test]
    fn injected_particle_verified_over_partial_run() {
        let g = Grid::new(8).unwrap();
        let mut p = particle_at(&g, 0, 0, 0, 0, 1);
        p.born_at = 10;
        // Participates in 5 steps of a 15-step run → expected col 5.
        p.x = 5.5;
        let r = verify_all(&g, &[p], 15, 1, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{r:?}");
    }
}
