//! Process-global chunked worker pool for the particle sweep.
//!
//! This is the kernel's shared-memory parallel substrate: a fixed set of
//! worker threads (spawned once, on first use) that execute a *parallel
//! for* over index ranges. Work is divided into fixed-size chunks and
//! claimed dynamically with a single `fetch_add` per chunk — the classic
//! self-scheduling loop, which is exactly the granularity knob the paper's
//! load-balancing analysis cares about (small chunks = fine-grained
//! balance + more claim traffic, large chunks = the reverse).
//!
//! Properties the engine relies on:
//!
//! * **Determinism of results.** Chunks may execute on any thread in any
//!   order, but each index is processed exactly once and particles are
//!   independent within a step, so the produced state is bit-identical to
//!   a serial sweep regardless of scheduling (asserted by the cross-layout
//!   equivalence tests).
//! * **Zero allocation per dispatch.** Publishing a job takes one mutex
//!   round-trip and two atomic stores; claiming a chunk is one
//!   `fetch_add`. Nothing is heap-allocated after pool construction, which
//!   is what keeps the steady-state step loop allocation-free.
//! * **Caller participation.** The submitting thread claims chunks too, so
//!   a 1-core machine (pool size 0) degenerates to an ordinary inlined
//!   loop with no synchronization at all.
//! * **Stable slots.** Every participant has a fixed slot id — submitter
//!   0, worker `i` (spawn order) `i + 1` — for the lifetime of the
//!   process. [`Pool::run_owned`] dispatches *by slot* instead of by
//!   chunk claim: slot `s` executes exactly `body(s)`, on the same OS
//!   thread every time. This is the substrate for particle–thread
//!   binding: the binned store partitions bins into per-slot spans at
//!   rebin time, and each worker then sweeps the same bins step after
//!   step, keeping their particles hot in that core's cache.
//!
//! Safety model: `run_chunked` publishes a borrowed closure to the workers
//! as a raw pointer and does not return until every worker has finished
//! with it (the drain handshake below), so the borrow never escapes the
//! call. Worker panics are caught, recorded, and re-raised on the
//! submitting thread after the sweep completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default sweep chunk size: big enough that the claim `fetch_add` is
/// amortized to noise, small enough that a skewed tail still spreads over
/// the pool (see `BENCH_sweep.json` for the measured sensitivity). This is
/// also the *floor* of [`adaptive_chunk`] — the engine's default when no
/// explicit chunk size is configured.
pub const DEFAULT_CHUNK: usize = 4096;

/// Chunks-per-thread target of [`adaptive_chunk`]. More than one chunk per
/// thread keeps dynamic self-scheduling meaningful (a late thread can pick
/// up slack); too many re-introduces the per-chunk dispatch overhead the
/// adaptive size exists to amortize.
pub const CHUNK_OVERSUBSCRIPTION: usize = 4;

/// Adaptive default chunk size for a sweep over `len` indices on `threads`
/// participating threads: `max(DEFAULT_CHUNK, len / (threads ·
/// CHUNK_OVERSUBSCRIPTION))`.
///
/// A fixed chunk size couples dispatch overhead to the population size:
/// at `len = 1e5` a 4096-element chunk means ~25 dyn-dispatched closure
/// calls per sweep whether or not there are threads to feed, which is what
/// made the fixed-chunk `soa-chunked` rows trail `soa-serial` in the PR 2
/// baseline. Scaling the chunk with `len / threads` caps the dispatch
/// count at `CHUNK_OVERSUBSCRIPTION` chunks per thread while the
/// `DEFAULT_CHUNK` floor keeps small populations from degenerating into
/// per-particle dispatch. Chunk size never affects results — only
/// scheduling — so the adaptive choice preserves bit-identity trivially.
pub fn adaptive_chunk(len: usize, threads: usize) -> usize {
    let slots = threads.max(1).saturating_mul(CHUNK_OVERSUBSCRIPTION);
    (len / slots).max(DEFAULT_CHUNK)
}

/// A `*mut T` that may be shared across the pool's threads. The pool's
/// drain handshake guarantees exclusive, disjoint use: each chunk of the
/// index space is claimed by exactly one thread.
///
/// The pointer is reachable only through [`SyncMutPtr::get`] so closures
/// capture the whole wrapper (which is `Sync`) rather than the raw
/// pointer field (which is not, under edition-2021 disjoint capture).
pub struct SyncMutPtr<T>(*mut T);

unsafe impl<T> Send for SyncMutPtr<T> {}
unsafe impl<T> Sync for SyncMutPtr<T> {}

impl<T> SyncMutPtr<T> {
    pub fn new(ptr: *mut T) -> SyncMutPtr<T> {
        SyncMutPtr(ptr)
    }

    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// How a published job hands out work.
#[derive(Clone, Copy, PartialEq)]
enum JobKind {
    /// Self-scheduling: any joined thread claims `[fetch_add, +chunk)`
    /// spans until the cursor passes `len`.
    Chunked,
    /// Bound dispatch: the thread with slot `s < len` executes
    /// `body(s, s + 1)` exactly once; nothing is stolen.
    Owned,
}

/// One published job: body + index space + chunk size, copied by each
/// worker under the state mutex while the submitter is known to be alive.
#[derive(Clone, Copy)]
struct JobPtr {
    body: *const (dyn Fn(usize, usize) + Sync),
    len: usize,
    chunk: usize,
    /// Workers allowed to join this job (the submitter participates on
    /// top); the scaling harness caps this below the spawned count. For
    /// [`JobKind::Owned`] jobs eligibility is by slot id instead.
    max_workers: usize,
    kind: JobKind,
}

unsafe impl Send for JobPtr {}

struct State {
    /// Bumped per job so a worker never re-joins a job it already left.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers currently inside the published job's claim loop.
    running: usize,
    /// Workers that joined the current job — never decremented while the
    /// job is live, so the `max_workers` cap is strict even when an early
    /// finisher leaves before a late riser looks at the job.
    joined: usize,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Next unclaimed index; chunks are `[fetch_add(chunk), +chunk)`.
    cursor: AtomicUsize,
    panicked: AtomicBool,
}

pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    /// Workers allowed to join the next job (≤ `workers`); adjusted by
    /// [`Pool::set_active_threads`] for thread-scaling measurements.
    active_cap: AtomicUsize,
    /// Serializes submitters (one job in flight at a time).
    submit: Mutex<()>,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-global pool, spawned on first use with
/// `available_parallelism() - 1` workers (the submitter is the +1). The
/// `PIC_THREADS` environment variable, when set to a positive integer,
/// overrides the hardware count — it both caps a big machine and lets a
/// small one oversubscribe for scaling sanity runs.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(Pool::new)
}

impl Pool {
    fn new() -> Pool {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = std::env::var("PIC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(hw);
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                running: 0,
                joined: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pic-sweep-{i}"))
                // Slot 0 is the submitter; worker i owns slot i + 1 for
                // the lifetime of the process.
                .spawn(move || worker_loop(&shared, i + 1))
                .expect("spawn sweep worker");
        }
        Pool {
            shared,
            workers,
            active_cap: AtomicUsize::new(workers),
            submit: Mutex::new(()),
        }
    }

    /// Total threads that can participate in a sweep (workers + submitter).
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// Cap the number of threads (including the submitter) that take part
    /// in subsequent sweeps, without tearing down workers. Clamped to
    /// `[1, threads()]`; returns the effective value. Results are
    /// bit-identical at any setting — only scheduling changes — which is
    /// what lets the scaling harness scan thread counts in one process.
    pub fn set_active_threads(&self, t: usize) -> usize {
        let t = t.clamp(1, self.workers + 1);
        self.active_cap.store(t - 1, Ordering::SeqCst);
        t
    }

    /// Threads (including the submitter) the next sweep will use.
    pub fn active_threads(&self) -> usize {
        self.active_cap.load(Ordering::SeqCst).min(self.workers) + 1
    }

    /// Run `body(start, end)` over every fixed-size chunk of `0..len`.
    /// Chunks are disjoint, cover the range exactly, and each runs on
    /// exactly one thread. Returns after all chunks complete; panics if
    /// any chunk panicked.
    pub fn run_chunked(&self, len: usize, chunk: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        let chunk = chunk.max(1);
        if len == 0 {
            return;
        }
        let cap = self.active_cap.load(Ordering::SeqCst).min(self.workers);
        // Single chunk, no workers, or capped to the submitter alone:
        // run inline, no synchronization.
        if cap == 0 || len <= chunk {
            let mut start = 0;
            while start < len {
                let end = (start + chunk).min(len);
                body(start, end);
                start = end;
            }
            return;
        }

        let _token = self.submit.lock().unwrap();
        // Publish. The lifetime erasure is sound because this function
        // drains every worker out of the job before returning.
        let job = JobPtr {
            body: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync + '_),
                    *const (dyn Fn(usize, usize) + Sync + 'static),
                >(body)
            },
            len,
            chunk,
            max_workers: cap,
            kind: JobKind::Chunked,
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            self.shared.cursor.store(0, Ordering::SeqCst);
            self.shared.panicked.store(false, Ordering::SeqCst);
            st.epoch += 1;
            st.joined = 0;
            st.job = Some(job);
        }
        self.shared.work_cv.notify_all();

        // Participate from the submitting thread.
        claim_chunks(&self.shared, body, len, chunk);

        // Drain: unpublish so no new worker joins, then wait for the ones
        // already inside to leave. After this, `body` is unreferenced.
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = None;
            while st.running > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
        }
        if self.shared.panicked.load(Ordering::SeqCst) {
            panic!("a sweep chunk panicked on a pool worker");
        }
    }

    /// Run `body(s)` once for every slot `s in 0..slots`, each on the
    /// thread that *owns* that slot: the submitter executes slot 0,
    /// spawned worker `i` executes slot `i + 1`. Unlike [`run_chunked`]
    /// there is no stealing — the slot→thread mapping is fixed for the
    /// process lifetime, so state a slot touches stays on one core's
    /// cache across calls. Returns after every slot completes; panics if
    /// any slot panicked.
    ///
    /// `slots` beyond `threads()` (or a 0-worker pool) run inline on the
    /// submitter — correct, just unbound. Callers that want cap-aware
    /// sizing should pass `active_threads()`.
    ///
    /// [`run_chunked`]: Pool::run_chunked
    pub fn run_owned(&self, slots: usize, body: &(dyn Fn(usize) + Sync)) {
        if slots == 0 {
            return;
        }
        if slots == 1 || self.workers == 0 || slots > self.workers + 1 {
            for s in 0..slots {
                body(s);
            }
            return;
        }

        // Bridge to the published `Fn(usize, usize)` shape; owned workers
        // call it as `(slot, slot + 1)`.
        let bridge = move |s: usize, _e: usize| body(s);
        let bridge: &(dyn Fn(usize, usize) + Sync) = &bridge;

        let _token = self.submit.lock().unwrap();
        let job = JobPtr {
            body: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync + '_),
                    *const (dyn Fn(usize, usize) + Sync + 'static),
                >(bridge)
            },
            len: slots,
            chunk: 1,
            max_workers: slots - 1,
            kind: JobKind::Owned,
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            self.shared.panicked.store(false, Ordering::SeqCst);
            st.epoch += 1;
            st.joined = 0;
            st.job = Some(job);
        }
        self.shared.work_cv.notify_all();

        // The submitter owns slot 0.
        if catch_unwind(AssertUnwindSafe(|| body(0))).is_err() {
            self.shared.panicked.store(true, Ordering::SeqCst);
        }

        // Drain. Every eligible worker *must* run its slot (nobody else
        // will), so wait for all of them to have joined and left before
        // unpublishing — the reverse order of the chunked drain, safe
        // because owned eligibility is by slot and each worker joins an
        // epoch at most once.
        {
            let mut st = self.shared.state.lock().unwrap();
            while st.joined < slots - 1 || st.running > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
        }
        if self.shared.panicked.load(Ordering::SeqCst) {
            panic!("an owned sweep slot panicked on a pool worker");
        }
    }
}

/// The self-scheduling claim loop, shared by workers and the submitter.
fn claim_chunks(shared: &Shared, body: &(dyn Fn(usize, usize) + Sync), len: usize, chunk: usize) {
    loop {
        let start = shared.cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            return;
        }
        let end = (start + chunk).min(len);
        if catch_unwind(AssertUnwindSafe(|| body(start, end))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                match st.job {
                    Some(j) if st.epoch != seen_epoch => {
                        // Mark the epoch seen whether or not we join, so a
                        // capped-out worker doesn't spin on the same job.
                        seen_epoch = st.epoch;
                        let eligible = match j.kind {
                            JobKind::Chunked => st.joined < j.max_workers,
                            // Owned jobs are keyed to slots: this thread
                            // joins iff its slot has work (slot 0 is the
                            // submitter's, executed there).
                            JobKind::Owned => slot < j.len,
                        };
                        if eligible {
                            st.joined += 1;
                            st.running += 1;
                            break j;
                        }
                        st = shared.work_cv.wait(st).unwrap();
                    }
                    _ => st = shared.work_cv.wait(st).unwrap(),
                }
            }
        };
        // The submitter cannot return (and invalidate `body`) until
        // `running` drops back to zero.
        let body = unsafe { &*job.body };
        match job.kind {
            JobKind::Chunked => claim_chunks(shared, body, job.len, job.chunk),
            JobKind::Owned => {
                if catch_unwind(AssertUnwindSafe(|| body(slot, slot + 1))).is_err() {
                    shared.panicked.store(true, Ordering::SeqCst);
                }
            }
        }
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        // Owned drains also wait on `joined`; running hitting zero is the
        // only transition that can complete either predicate.
        if st.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for chunk in [1, 7, 64, 1000, n, n + 5] {
            hits.iter().for_each(|h| h.store(0, Ordering::SeqCst));
            global().run_chunked(n, chunk, &|s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "chunk={chunk}: some index not covered exactly once"
            );
        }
    }

    #[test]
    fn adaptive_chunk_floors_and_scales() {
        // Small populations stay at the floor…
        assert_eq!(adaptive_chunk(0, 4), DEFAULT_CHUNK);
        assert_eq!(adaptive_chunk(10_000, 1), DEFAULT_CHUNK);
        // …large ones scale to CHUNK_OVERSUBSCRIPTION chunks per thread…
        assert_eq!(adaptive_chunk(1_000_000, 1), 250_000);
        assert_eq!(adaptive_chunk(1_000_000, 4), 62_500);
        // …and a degenerate thread count is treated as one thread.
        assert_eq!(adaptive_chunk(1_000_000, 0), 250_000);
    }

    #[test]
    fn zero_len_is_a_no_op() {
        global().run_chunked(0, 64, &|_, _| panic!("must not run"));
    }

    #[test]
    fn chunks_are_aligned_and_sized() {
        let n = 1003;
        let chunk = 64;
        let spans = Mutex::new(Vec::new());
        global().run_chunked(n, chunk, &|s, e| {
            spans.lock().unwrap().push((s, e));
        });
        let mut spans = spans.into_inner().unwrap();
        spans.sort_unstable();
        let mut expect = 0;
        for (s, e) in spans {
            assert_eq!(s, expect);
            assert_eq!(s % chunk, 0);
            assert!(e - s <= chunk);
            expect = e;
        }
        assert_eq!(expect, n);
    }

    #[test]
    fn panic_in_chunk_propagates() {
        let result = std::panic::catch_unwind(|| {
            global().run_chunked(100, 10, &|s, _| {
                if s == 50 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool must remain usable after a panicked sweep.
        global().run_chunked(10, 2, &|_, _| {});
    }

    #[test]
    fn active_thread_cap_clamps_and_restores() {
        let pool = global();
        let full = pool.threads();
        assert_eq!(pool.set_active_threads(1), 1);
        assert_eq!(pool.active_threads(), 1);
        // Capped to the submitter alone the sweep still covers everything.
        let total = AtomicUsize::new(0);
        pool.run_chunked(1000, 16, &|s, e| {
            total.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::SeqCst), 1000);
        // Out-of-range requests clamp instead of panicking.
        assert_eq!(pool.set_active_threads(0), 1);
        assert_eq!(pool.set_active_threads(usize::MAX), full);
        assert_eq!(pool.active_threads(), full);
    }

    #[test]
    fn owned_runs_every_slot_exactly_once() {
        let pool = global();
        for slots in [1, 2, pool.threads(), pool.threads() + 3] {
            let hits: Vec<AtomicUsize> = (0..slots).map(|_| AtomicUsize::new(0)).collect();
            pool.run_owned(slots, &|s| {
                hits[s].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "slots={slots}: some slot not run exactly once"
            );
        }
        pool.run_owned(0, &|_| panic!("zero slots must not run"));
    }

    #[test]
    fn owned_slot_to_thread_mapping_is_stable() {
        // Each slot must land on the same OS thread every dispatch — the
        // whole point of binding. (On a 0-worker pool everything runs
        // inline on the submitter, which satisfies the property trivially.)
        let pool = global();
        let slots = pool.threads();
        let first: Vec<Mutex<Option<std::thread::ThreadId>>> =
            (0..slots).map(|_| Mutex::new(None)).collect();
        for round in 0..20 {
            pool.run_owned(slots, &|s| {
                let me = std::thread::current().id();
                let mut owner = first[s].lock().unwrap();
                match *owner {
                    None => *owner = Some(me),
                    Some(t) => assert_eq!(t, me, "slot {s} moved threads at round {round}"),
                }
            });
        }
    }

    #[test]
    fn owned_panic_propagates_and_pool_survives() {
        let pool = global();
        let result = std::panic::catch_unwind(|| {
            pool.run_owned(pool.threads().max(2), &|s| {
                if s == 0 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        let total = AtomicUsize::new(0);
        pool.run_owned(pool.threads(), &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), pool.threads());
        pool.run_chunked(100, 10, &|_, _| {});
    }

    #[test]
    fn reentrant_use_from_many_sweeps() {
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            global().run_chunked(257, 16, &|s, e| {
                total.fetch_add(e - s, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 257 * 50);
    }
}
