//! # pic-core — the PIC Parallel Research Kernel specification
//!
//! This crate implements the paper-and-pencil specification of the PIC
//! Parallel Research Kernel (Georganas, Van der Wijngaart, Mattson,
//! *"Design and Implementation of a Parallel Research Kernel for Assessing
//! Dynamic Load-Balancing Capabilities"*, IPDPS 2016):
//!
//! * a 2D periodic `L×L` mesh with fixed charges of alternating sign on the
//!   columns of mesh points ([`geometry`], [`charge`]);
//! * free particles whose charges are chosen (paper eq. 3) such that every
//!   particle travels **exactly `2k+1` cells in x per time step** and `m`
//!   cells in y, making the whole simulation analytically verifiable
//!   ([`init`], [`verify`]);
//! * the leapfrog-style equations of motion (paper eqs. 1–2) ([`motion`]);
//! * the initial particle distributions that control the induced load
//!   imbalance — geometric, sinusoidal, linear, patch, uniform ([`dist`]);
//! * dynamic particle injection/removal events (paper §III-E5) ([`events`]);
//! * a serial (and shared-memory parallel) reference engine ([`engine`]).
//!
//! The kernel is deliberately *unphysical*: mesh charges never change and the
//! force on a particle is constant within a macroscopic step. What it is
//! instead is a **workload with exactly controllable load imbalance** and an
//! O(1)-per-particle verification test sensitive to a single miscalculated
//! force or a single lost particle.
//!
//! ## Quick start
//!
//! ```
//! use pic_core::prelude::*;
//!
//! let grid = Grid::new(64).unwrap();
//! let dist = Distribution::Geometric { r: 0.99 };
//! let setup = InitConfig::new(grid, 1_000, dist).with_k(0).with_m(1);
//! let mut sim = Simulation::new(setup.build().unwrap());
//! sim.run(100);
//! let report = sim.verify();
//! assert!(report.passed());
//! ```

pub mod bin;
pub mod charge;
pub mod charge_grid;
pub mod checkpoint;
pub mod dist;
pub mod engine;
pub mod events;
pub mod geometry;
pub mod init;
pub mod motion;
pub mod particle;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod soa;
pub mod trajectory;
pub mod verify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bin::BinnedStore;
    pub use crate::charge::{mesh_charge, total_force, SimConstants};
    pub use crate::charge_grid::ChargeGrid;
    pub use crate::dist::Distribution;
    pub use crate::engine::{Simulation, SweepMode};
    pub use crate::events::{Event, EventKind, Region};
    pub use crate::geometry::Grid;
    pub use crate::init::SimulationSetup;
    pub use crate::init::{InitConfig, InitError, RowSpread, SkewAxis};
    pub use crate::particle::Particle;
    pub use crate::simd::SimdBackend;
    pub use crate::soa::ParticleBatch;
    pub use crate::verify::{verify_particle, VerifyReport};
}

pub use prelude::*;
