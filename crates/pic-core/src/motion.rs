//! Equations of motion (paper eqs. 1–2).
//!
//! Within a time step the force on a particle — hence its acceleration — is
//! held constant (an intentional unphysicality of the kernel), so the update
//! is the exact constant-acceleration kinematics:
//!
//! ```text
//! x(t+dt) = x(t) + v(t)·dt + ½·a(t)·dt²          (eq. 1)
//! v(t+dt) = v(t) + a(t)·dt                        (eq. 2)
//! ```
//!
//! followed by a periodic wrap of the position.

use crate::charge::{total_force, SimConstants};
use crate::geometry::Grid;
use crate::particle::Particle;

/// Advance a single particle by one time step: evaluate the total Coulomb
/// force from the containing cell's corners, integrate eqs. 1–2, and wrap
/// periodically. With `k_e/m = 1` the force *is* the acceleration.
#[inline]
pub fn advance_particle(grid: &Grid, consts: &SimConstants, p: &mut Particle) {
    let (ax, ay) = total_force(grid, consts, p.x, p.y, p.q);
    advance_with_acceleration(grid, consts, p, ax, ay);
}

/// Integrate eqs. 1–2 for a given acceleration. Split out so tests and
/// failure-injection harnesses can feed a corrupted force.
#[inline]
pub fn advance_with_acceleration(
    grid: &Grid,
    consts: &SimConstants,
    p: &mut Particle,
    ax: f64,
    ay: f64,
) {
    let dt = consts.dt;
    p.x = grid.wrap_coord(p.x + (p.vx + 0.5 * ax * dt) * dt);
    p.y = grid.wrap_coord(p.y + (p.vy + 0.5 * ay * dt) * dt);
    p.vx += ax * dt;
    p.vy += ay * dt;
}

/// Advance every particle in a slice by one step (serial).
pub fn advance_all(grid: &Grid, consts: &SimConstants, particles: &mut [Particle]) {
    for p in particles {
        advance_particle(grid, consts, p);
    }
}

/// Advance every particle in a slice by one step using all available cores
/// (shared-memory parallel path; results bit-identical to [`advance_all`]
/// because particles are independent within a step and every index runs
/// the same instruction sequence).
pub fn advance_all_parallel(grid: &Grid, consts: &SimConstants, particles: &mut [Particle]) {
    let len = particles.len();
    let base = crate::pool::SyncMutPtr::new(particles.as_mut_ptr());
    let chunk = crate::pool::adaptive_chunk(len, crate::pool::global().active_threads());
    crate::pool::global().run_chunked(len, chunk, &|start, end| {
        // Chunks are disjoint, so each subslice is exclusively owned here.
        let span = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        for p in span {
            advance_particle(grid, consts, p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::{particle_charge, sign_for_direction};

    fn make(
        grid: &Grid,
        consts: &SimConstants,
        col: usize,
        row: usize,
        k: u32,
        m: i32,
        dir: i8,
    ) -> Particle {
        let (x, y) = grid.cell_center(col, row);
        Particle {
            id: 1,
            x,
            y,
            vx: 0.0,
            vy: m as f64 * consts.h / consts.dt,
            q: particle_charge(consts, 0.5, k, sign_for_direction(col, dir)),
            x0: x,
            y0: y,
            k,
            m,
            born_at: 0,
        }
    }

    #[test]
    fn one_step_moves_exactly_one_cell_right() {
        let g = Grid::new(16).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 2, 3, 0, 0, 1);
        advance_particle(&g, &c, &mut p);
        assert!((p.x - 3.5).abs() < 1e-12, "x = {}", p.x);
        assert_eq!(p.y, 3.5);
        assert!((p.vx - 2.0).abs() < 1e-12, "vx = {}", p.vx);
        assert_eq!(p.vy, 0.0);
    }

    #[test]
    fn second_step_decelerates_back_to_rest() {
        let g = Grid::new(16).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 2, 3, 0, 0, 1);
        advance_particle(&g, &c, &mut p);
        advance_particle(&g, &c, &mut p);
        assert!((p.x - 4.5).abs() < 1e-12, "x = {}", p.x);
        assert!(p.vx.abs() < 1e-12, "vx must return to ~0, got {}", p.vx);
    }

    #[test]
    fn vertical_motion_is_uniform() {
        let g = Grid::new(16).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 4, 0, 0, 3, 1);
        for _ in 0..5 {
            advance_particle(&g, &c, &mut p);
        }
        // 5 steps × 3 cells, starting at 0.5, wrapping at 16.
        assert!(
            (p.y - g.wrap_coord(0.5 + 15.0)).abs() < 1e-12,
            "y = {}",
            p.y
        );
        assert!((p.vy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn leftward_drift_with_flipped_sign() {
        let g = Grid::new(16).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 2, 3, 0, 0, -1);
        advance_particle(&g, &c, &mut p);
        assert!((p.x - 1.5).abs() < 1e-12, "x = {}", p.x);
        advance_particle(&g, &c, &mut p);
        assert!((p.x - 0.5).abs() < 1e-12, "x = {}", p.x);
        advance_particle(&g, &c, &mut p);
        assert!(
            (p.x - 15.5).abs() < 1e-12,
            "periodic wrap leftward, x = {}",
            p.x
        );
    }

    #[test]
    fn k_multiplies_stride_and_preserves_pattern() {
        let g = Grid::new(32).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 1, 0, 1, 0, 1); // stride 3, odd start column
        for step in 1..=6u32 {
            advance_particle(&g, &c, &mut p);
            let want = g.wrap_coord(1.5 + 3.0 * step as f64);
            assert!(
                (p.x - want).abs() < 1e-10,
                "step {step}: x = {}, want {want}",
                p.x
            );
        }
    }

    #[test]
    fn serial_and_parallel_advance_agree_bitwise() {
        let g = Grid::new(32).unwrap();
        let c = SimConstants::default();
        let mut a: Vec<Particle> = (0..200)
            .map(|i| {
                let mut p = make(
                    &g,
                    &c,
                    (i * 7) % 32,
                    (i * 3) % 32,
                    (i % 3) as u32,
                    (i % 5) as i32 - 2,
                    if i % 2 == 0 { 1 } else { -1 },
                );
                p.id = i as u64 + 1;
                p
            })
            .collect();
        let mut b = a.clone();
        for _ in 0..10 {
            advance_all(&g, &c, &mut a);
            advance_all_parallel(&g, &c, &mut b);
        }
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            assert_eq!(pa.vx.to_bits(), pb.vx.to_bits());
            assert_eq!(pa.vy.to_bits(), pb.vy.to_bits());
        }
    }

    #[test]
    fn particle_exactly_on_mesh_point_steps_finite() {
        // Regression for the r² = 0 corner guard in `coulomb`: a particle
        // sitting exactly on a mesh point shares a position with one corner
        // of its cell; a naive 0/0 there would turn the whole trajectory
        // into NaN on the first step. With the guard, the coincident corner
        // contributes zero force and the step stays finite.
        let g = Grid::new(16).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 3, 5, 0, 1, 1);
        let (x, y) = (3.0, 5.0); // bottom-left corner of cell (3, 5)
        p.x = x;
        p.y = y;
        p.x0 = x;
        p.y0 = y;
        for step in 1..=10 {
            advance_particle(&g, &c, &mut p);
            assert!(
                p.x.is_finite() && p.y.is_finite() && p.vx.is_finite() && p.vy.is_finite(),
                "non-finite state at step {step}: {p:?}"
            );
            assert!((0.0..g.extent()).contains(&p.x), "x escaped: {}", p.x);
            assert!((0.0..g.extent()).contains(&p.y), "y escaped: {}", p.y);
        }
    }

    #[test]
    fn long_run_error_stays_bounded() {
        // The xπ = h/2 placement makes the per-step FP error non-amplifying;
        // verify the positional error stays far below the 1e-5 verification
        // tolerance over many steps.
        let g = Grid::new(64).unwrap();
        let c = SimConstants::default();
        let mut p = make(&g, &c, 0, 0, 0, 1, 1);
        let steps = 20_000u32;
        for _ in 0..steps {
            advance_particle(&g, &c, &mut p);
        }
        let want_x = g.wrap_coord(0.5 + steps as f64); // wraps many times
        let want_y = g.wrap_coord(0.5 + steps as f64);
        assert!(
            (p.x - want_x).abs() < 1e-7,
            "x error {} too large after {steps} steps",
            (p.x - want_x).abs()
        );
        assert!((p.y - want_y).abs() < 1e-7);
    }
}
