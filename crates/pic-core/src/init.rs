//! Particle initialization (paper §III-C).
//!
//! Particles are placed at **cell centers** — on the horizontal axis of
//! symmetry at relative position `x_π = h/2` — the configuration the paper
//! singles out for finite-precision exactness. Each particle's charge is
//! assigned per eq. 3 (scaled by an odd multiple `2k+1` for faster drift)
//! and its initial velocity is `(0, m·h/dt)` per eq. 4.
//!
//! Placement is fully deterministic given the configuration: the
//! distribution fixes a count per cell column, and within each column the
//! particles are spread over the row range either evenly (default) or by a
//! seeded RNG. Determinism is what makes the same configuration exactly
//! repeatable across the serial engine, the threaded parallel runs, and the
//! analytic load model.

use crate::charge::{particle_charge, sign_for_direction, SimConstants};
use crate::dist::{largest_remainder, Distribution};
use crate::events::{Event, EventKind, Region};
use crate::geometry::{Grid, GridError};
use crate::particle::Particle;
use crate::rng::SplitMix64;
use std::fmt;

/// Which axis the distribution's profile applies to.
///
/// The paper's distributions skew the particle counts by cell *column*
/// (§III-E), which a 1D block-column decomposition suffers from. §III-E1
/// notes that "efforts to combat load imbalances by switching to a fixed
/// 1D block-row decomposition can easily be defeated by rotating the
/// particle distribution over 90°" — [`SkewAxis::Y`] is that rotation: the
/// profile applies to rows (columns uniform), and the vertical velocity
/// parameter `m` drives the drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkewAxis {
    /// Profile over cell columns (the paper's default orientation).
    #[default]
    X,
    /// Profile over cell rows (the rotated workload).
    Y,
}

/// How particles within a column are spread across its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSpread {
    /// Deterministic even spread (largest-remainder over rows). The particle
    /// count of every cell in a column differs by at most one, matching the
    /// paper's per-column analysis (§III-E1: "a cell lying in the i-th
    /// column ... contains p(i) particles").
    Even,
    /// Rows drawn from a seeded RNG (still reproducible; stresses atomics
    /// and fine-grained imbalance).
    Random { seed: u64 },
}

/// Complete, validated initialization recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitConfig {
    pub grid: Grid,
    pub n: u64,
    pub dist: Distribution,
    pub consts: SimConstants,
    /// Horizontal stride parameter: particles travel `2k+1` cells/step.
    pub k: u32,
    /// Vertical cells per step (eq. 4 velocity multiplier).
    pub m: i32,
    /// Drift direction: +1 → +x, −1 → −x.
    pub dir: i8,
    pub spread: RowSpread,
    /// Axis the distribution profile applies to.
    pub skew_axis: SkewAxis,
}

/// Initialization errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InitError {
    Grid(GridError),
    /// Direction must be +1 or −1.
    BadDirection(i8),
    /// The per-step displacement `2k+1` may not exceed the grid size —
    /// otherwise a particle laps the domain within one step and the
    /// "mirrored charges" deceleration argument breaks down.
    StrideTooLarge {
        stride: u64,
        ncells: usize,
    },
    /// Empty patch/region cannot receive particles.
    EmptyRegion,
}

impl fmt::Display for InitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitError::Grid(e) => write!(f, "{e}"),
            InitError::BadDirection(d) => write!(f, "direction must be ±1, got {d}"),
            InitError::StrideTooLarge { stride, ncells } => {
                write!(f, "per-step stride {stride} exceeds grid size {ncells}")
            }
            InitError::EmptyRegion => write!(f, "target region contains no cells"),
        }
    }
}

impl std::error::Error for InitError {}

impl InitConfig {
    /// Start a configuration with defaults: canonical constants, `k = 0`,
    /// `m = 0`, rightward drift, even row spread.
    pub fn new(grid: Grid, n: u64, dist: Distribution) -> InitConfig {
        InitConfig {
            grid,
            n,
            dist,
            consts: SimConstants::CANONICAL,
            k: 0,
            m: 0,
            dir: 1,
            spread: RowSpread::Even,
            skew_axis: SkewAxis::X,
        }
    }

    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    pub fn with_m(mut self, m: i32) -> Self {
        self.m = m;
        self
    }

    pub fn with_dir(mut self, dir: i8) -> Self {
        self.dir = dir;
        self
    }

    pub fn with_consts(mut self, consts: SimConstants) -> Self {
        self.consts = consts;
        self
    }

    pub fn with_spread(mut self, spread: RowSpread) -> Self {
        self.spread = spread;
        self
    }

    /// Rotate the distribution 90°: profile over rows instead of columns.
    pub fn with_skew_axis(mut self, axis: SkewAxis) -> Self {
        self.skew_axis = axis;
        self
    }

    fn validate(&self) -> Result<(), InitError> {
        if self.dir != 1 && self.dir != -1 {
            return Err(InitError::BadDirection(self.dir));
        }
        let stride = 2 * self.k as u64 + 1;
        if stride > self.grid.ncells() as u64 {
            return Err(InitError::StrideTooLarge {
                stride,
                ncells: self.grid.ncells(),
            });
        }
        if let Distribution::Patch { x0, x1, y0, y1 } = self.dist {
            if x0 >= x1 || y0 >= y1 || x0 >= self.grid.ncells() || y0 >= self.grid.ncells() {
                return Err(InitError::EmptyRegion);
            }
        }
        Ok(())
    }

    /// Produce the full particle population (ids `1..=n`).
    pub fn build(&self) -> Result<SimulationSetup, InitError> {
        self.validate()?;
        let counts = self.dist.column_counts(self.grid.ncells(), self.n);
        let (range_lo, range_hi) = self.dist.row_range(self.grid.ncells());
        let mut placer = Placer::new(self.grid, self.consts, self.spread);
        let mut particles = Vec::with_capacity(self.n as usize);
        let mut next_id = 1u64;
        match self.skew_axis {
            SkewAxis::X => {
                for (col, &count) in counts.iter().enumerate() {
                    placer.place_column(
                        col,
                        range_lo,
                        range_hi,
                        count,
                        self.k,
                        self.m,
                        self.dir,
                        0,
                        &mut next_id,
                        &mut particles,
                    );
                }
            }
            SkewAxis::Y => {
                // Transposed placement: `counts[j]` particles in row `j`,
                // spread across columns `[range_lo, range_hi)`.
                for (row, &count) in counts.iter().enumerate() {
                    placer.place_row(
                        row,
                        range_lo,
                        range_hi,
                        count,
                        self.k,
                        self.m,
                        self.dir,
                        0,
                        &mut next_id,
                        &mut particles,
                    );
                }
            }
        }
        debug_assert_eq!(particles.len() as u64, self.n);
        Ok(SimulationSetup {
            grid: self.grid,
            consts: self.consts,
            particles,
            events: Vec::new(),
            next_id,
        })
    }
}

/// Everything needed to start a simulation: grid, constants, the initial
/// particle population and the (possibly empty) event schedule.
#[derive(Debug, Clone)]
pub struct SimulationSetup {
    pub grid: Grid,
    pub consts: SimConstants,
    pub particles: Vec<Particle>,
    pub events: Vec<Event>,
    /// Next unassigned particle id (for injections).
    pub next_id: u64,
}

impl SimulationSetup {
    /// Append a timed event (injection/removal).
    pub fn with_event(mut self, event: Event) -> Self {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// Sum of ids of the initial population (`n(n+1)/2` for `n` particles).
    pub fn initial_id_sum(&self) -> u128 {
        self.particles.iter().map(|p| p.id as u128).sum()
    }
}

/// Shared placement machinery, also used for injections.
pub(crate) struct Placer {
    grid: Grid,
    consts: SimConstants,
    spread: RowSpread,
    rng: Option<SplitMix64>,
}

impl Placer {
    pub(crate) fn new(grid: Grid, consts: SimConstants, spread: RowSpread) -> Placer {
        let rng = match spread {
            RowSpread::Even => None,
            RowSpread::Random { seed } => Some(SplitMix64::seed_from_u64(seed)),
        };
        Placer {
            grid,
            consts,
            spread,
            rng,
        }
    }

    /// Place `count` particles in column `col`, rows `[row_lo, row_hi)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn place_column(
        &mut self,
        col: usize,
        row_lo: usize,
        row_hi: usize,
        count: u64,
        k: u32,
        m: i32,
        dir: i8,
        born_at: u32,
        next_id: &mut u64,
        out: &mut Vec<Particle>,
    ) {
        if count == 0 || row_hi <= row_lo {
            return;
        }
        let qp = particle_charge(&self.consts, 0.5, k, sign_for_direction(col, dir));
        let vy0 = m as f64 * self.consts.h / self.consts.dt;
        let emit = |row: usize, next_id: &mut u64, out: &mut Vec<Particle>| {
            let (x, y) = self.grid.cell_center(col, row);
            out.push(Particle {
                id: *next_id,
                x,
                y,
                vx: 0.0,
                vy: vy0,
                q: qp,
                x0: x,
                y0: y,
                k,
                m,
                born_at,
            });
            *next_id += 1;
        };
        match self.spread {
            RowSpread::Even => {
                // floor share per row plus a Bresenham-spread remainder, so
                // the extras land evenly across the row range instead of
                // piling onto the first rows (keeps any contiguous row
                // block within ±1 of its uniform share — the property the
                // analytic load model relies on).
                let nrows = (row_hi - row_lo) as u64;
                let base = count / nrows;
                let rem = count % nrows;
                for ri in 0..nrows {
                    let extra = ((ri + 1) * rem) / nrows - (ri * rem) / nrows;
                    for _ in 0..base + extra {
                        emit(row_lo + ri as usize, next_id, out);
                    }
                }
            }
            RowSpread::Random { .. } => {
                let rng = self.rng.as_mut().expect("random spread has an RNG");
                for _ in 0..count {
                    let row = rng.gen_range(row_lo..row_hi);
                    emit(row, next_id, out);
                }
            }
        }
    }
}

impl Placer {
    /// Place `count` particles in row `row`, columns `[col_lo, col_hi)` —
    /// the transposed counterpart of [`Placer::place_column`]. The charge
    /// depends on each particle's *column* parity, so it is computed per
    /// emitted particle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn place_row(
        &mut self,
        row: usize,
        col_lo: usize,
        col_hi: usize,
        count: u64,
        k: u32,
        m: i32,
        dir: i8,
        born_at: u32,
        next_id: &mut u64,
        out: &mut Vec<Particle>,
    ) {
        if count == 0 || col_hi <= col_lo {
            return;
        }
        let vy0 = m as f64 * self.consts.h / self.consts.dt;
        let emit = |col: usize, next_id: &mut u64, out: &mut Vec<Particle>| {
            let qp = particle_charge(&self.consts, 0.5, k, sign_for_direction(col, dir));
            let (x, y) = self.grid.cell_center(col, row);
            out.push(Particle {
                id: *next_id,
                x,
                y,
                vx: 0.0,
                vy: vy0,
                q: qp,
                x0: x,
                y0: y,
                k,
                m,
                born_at,
            });
            *next_id += 1;
        };
        match self.spread {
            RowSpread::Even => {
                let ncols = (col_hi - col_lo) as u64;
                let base = count / ncols;
                let rem = count % ncols;
                for ci in 0..ncols {
                    let extra = ((ci + 1) * rem) / ncols - (ci * rem) / ncols;
                    for _ in 0..base + extra {
                        emit(col_lo + ci as usize, next_id, out);
                    }
                }
            }
            RowSpread::Random { .. } => {
                let rng = self.rng.as_mut().expect("random spread has an RNG");
                for _ in 0..count {
                    let col = rng.gen_range(col_lo..col_hi);
                    emit(col, next_id, out);
                }
            }
        }
    }
}

/// Materialize an injection event into concrete particles (deterministic
/// given `next_id`); used by the serial engine and, rank-locally, by the
/// parallel implementations.
// The argument list mirrors EventKind::Inject field-for-field; bundling
// them into a struct would just duplicate that type.
#[allow(clippy::too_many_arguments)]
pub fn build_injection(
    grid: Grid,
    consts: SimConstants,
    region: Region,
    count: u64,
    k: u32,
    m: i32,
    dir: i8,
    born_at: u32,
    next_id: &mut u64,
) -> Vec<Particle> {
    let ncols = region.x1.saturating_sub(region.x0);
    if ncols == 0 || region.y1 <= region.y0 {
        return Vec::new();
    }
    let weights = vec![1.0f64; ncols];
    let per_col = largest_remainder(&weights, count);
    let mut placer = Placer::new(grid, consts, RowSpread::Even);
    let mut out = Vec::with_capacity(count as usize);
    for (ci, &cnt) in per_col.iter().enumerate() {
        placer.place_column(
            region.x0 + ci,
            region.y0,
            region.y1,
            cnt,
            k,
            m,
            dir,
            born_at,
            next_id,
            &mut out,
        );
    }
    out
}

/// Apply a removal event to a particle vector: remove up to `count`
/// particles inside the region, lowest ids first (deterministic across any
/// partitioning of the particles). Returns the removed particles.
pub fn apply_removal(particles: &mut Vec<Particle>, region: Region, count: u64) -> Vec<Particle> {
    let mut candidate_ids: Vec<u64> = particles
        .iter()
        .filter(|p| region.contains_point(p.x, p.y))
        .map(|p| p.id)
        .collect();
    candidate_ids.sort_unstable();
    candidate_ids.truncate(count as usize);
    let doomed: std::collections::HashSet<u64> = candidate_ids.into_iter().collect();
    let mut removed = Vec::with_capacity(doomed.len());
    particles.retain(|p| {
        if doomed.contains(&p.id) {
            removed.push(*p);
            false
        } else {
            true
        }
    });
    removed
}

/// Validate an event against a grid (regions in range, etc.).
pub fn validate_event(grid: &Grid, event: &Event) -> Result<(), InitError> {
    let r = event.region;
    if r.x0 >= r.x1 || r.y0 >= r.y1 || r.x1 > grid.ncells() || r.y1 > grid.ncells() {
        return Err(InitError::EmptyRegion);
    }
    if let EventKind::Inject { k, dir, .. } = event.kind {
        if dir != 1 && dir != -1 {
            return Err(InitError::BadDirection(dir));
        }
        let stride = 2 * k as u64 + 1;
        if stride > grid.ncells() as u64 {
            return Err(InitError::StrideTooLarge {
                stride,
                ncells: grid.ncells(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(16).unwrap()
    }

    #[test]
    fn build_produces_exactly_n_with_sequential_ids() {
        let cfg = InitConfig::new(grid(), 1234, Distribution::Uniform);
        let setup = cfg.build().unwrap();
        assert_eq!(setup.particles.len(), 1234);
        let mut ids: Vec<u64> = setup.particles.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=1234).collect::<Vec<u64>>());
        assert_eq!(setup.initial_id_sum(), 1234u128 * 1235 / 2);
        assert_eq!(setup.next_id, 1235);
    }

    #[test]
    fn particles_sit_at_cell_centers() {
        let cfg = InitConfig::new(grid(), 500, Distribution::PAPER_SKEW);
        let setup = cfg.build().unwrap();
        for p in &setup.particles {
            assert_eq!(p.x.fract(), 0.5, "x must be a cell center");
            assert_eq!(p.y.fract(), 0.5);
            assert_eq!(p.x, p.x0);
            assert_eq!(p.y, p.y0);
            assert_eq!(p.vx, 0.0);
            assert_eq!(p.born_at, 0);
        }
    }

    #[test]
    fn velocity_and_charge_follow_parameters() {
        let cfg = InitConfig::new(grid(), 100, Distribution::Uniform)
            .with_k(1)
            .with_m(-2);
        let setup = cfg.build().unwrap();
        for p in &setup.particles {
            assert_eq!(p.vy, -2.0);
            assert_eq!(p.k, 1);
            assert_eq!(p.m, -2);
            assert_eq!(p.direction(&grid()), 1);
            assert_eq!(p.cells_per_step_x(&grid()), 3);
        }
    }

    #[test]
    fn even_spread_balances_rows_within_one() {
        let cfg = InitConfig::new(grid(), 16 * 16 * 3 + 7, Distribution::Uniform);
        let setup = cfg.build().unwrap();
        let mut per_cell = std::collections::HashMap::new();
        for p in &setup.particles {
            *per_cell
                .entry(grid().cell_of_point(p.x, p.y))
                .or_insert(0u64) += 1;
        }
        let max = per_cell.values().max().unwrap();
        let min = per_cell.values().min().unwrap();
        assert!(
            max - min <= 2,
            "cells should be near-even: max {max} min {min}"
        );
    }

    #[test]
    fn random_spread_is_reproducible() {
        let mk = |seed| {
            InitConfig::new(grid(), 400, Distribution::Uniform)
                .with_spread(RowSpread::Random { seed })
                .build()
                .unwrap()
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a.particles, b.particles);
        assert_ne!(a.particles, c.particles);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            InitConfig::new(grid(), 10, Distribution::Uniform)
                .with_dir(0)
                .build(),
            Err(InitError::BadDirection(0))
        ));
        assert!(matches!(
            InitConfig::new(grid(), 10, Distribution::Uniform)
                .with_k(8)
                .build(),
            Err(InitError::StrideTooLarge { stride: 17, .. })
        ));
        assert!(matches!(
            InitConfig::new(
                grid(),
                10,
                Distribution::Patch {
                    x0: 5,
                    x1: 5,
                    y0: 0,
                    y1: 4
                }
            )
            .build(),
            Err(InitError::EmptyRegion)
        ));
    }

    #[test]
    fn patch_places_only_inside() {
        let cfg = InitConfig::new(
            grid(),
            300,
            Distribution::Patch {
                x0: 2,
                x1: 6,
                y0: 8,
                y1: 12,
            },
        );
        let setup = cfg.build().unwrap();
        assert_eq!(setup.particles.len(), 300);
        for p in &setup.particles {
            let (c, r) = grid().cell_of_point(p.x, p.y);
            assert!((2..6).contains(&c) && (8..12).contains(&r));
        }
    }

    #[test]
    fn row_skew_transposes_the_profile() {
        let dist = Distribution::Geometric { r: 0.7 };
        let x = InitConfig::new(grid(), 1_000, dist).build().unwrap();
        let y = InitConfig::new(grid(), 1_000, dist)
            .with_skew_axis(SkewAxis::Y)
            .build()
            .unwrap();
        let mut col_hist_x = vec![0u64; 16];
        let mut row_hist_y = vec![0u64; 16];
        for p in &x.particles {
            col_hist_x[grid().cell_of(p.x)] += 1;
        }
        for p in &y.particles {
            row_hist_y[grid().cell_of(p.y)] += 1;
        }
        assert_eq!(
            col_hist_x, row_hist_y,
            "rotation must transpose the profile"
        );
        // And the rotated population is near-uniform in x.
        let mut col_hist_y = vec![0u64; 16];
        for p in &y.particles {
            col_hist_y[grid().cell_of(p.x)] += 1;
        }
        let max = *col_hist_y.iter().max().unwrap();
        let min = *col_hist_y.iter().min().unwrap();
        assert!(
            max - min <= 16,
            "columns near-uniform under Y skew: {col_hist_y:?}"
        );
    }

    #[test]
    fn row_skew_population_verifies_after_run() {
        use crate::engine::Simulation;
        let setup = InitConfig::new(grid(), 500, Distribution::Geometric { r: 0.8 })
            .with_skew_axis(SkewAxis::Y)
            .with_m(1)
            .build()
            .unwrap();
        let mut sim = Simulation::new(setup);
        sim.run(50);
        assert!(sim.verify().passed());
    }

    #[test]
    fn injection_materializes_count_and_ids() {
        let mut next_id = 101;
        let ps = build_injection(
            grid(),
            SimConstants::CANONICAL,
            Region {
                x0: 0,
                x1: 4,
                y0: 0,
                y1: 4,
            },
            37,
            0,
            1,
            1,
            50,
            &mut next_id,
        );
        assert_eq!(ps.len(), 37);
        assert_eq!(next_id, 138);
        assert!(ps.iter().all(|p| p.born_at == 50));
        let ids: std::collections::HashSet<u64> = ps.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), 37);
    }

    #[test]
    fn removal_takes_lowest_ids_in_region() {
        let cfg = InitConfig::new(grid(), 64, Distribution::Uniform);
        let mut particles = cfg.build().unwrap().particles;
        let region = Region {
            x0: 0,
            x1: 8,
            y0: 0,
            y1: 16,
        };
        let inside_before: Vec<u64> = particles
            .iter()
            .filter(|p| region.contains_point(p.x, p.y))
            .map(|p| p.id)
            .collect();
        let removed = apply_removal(&mut particles, region, 5);
        assert_eq!(removed.len(), 5);
        let mut expected = inside_before.clone();
        expected.sort_unstable();
        let removed_ids: Vec<u64> = {
            let mut v: Vec<u64> = removed.iter().map(|p| p.id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(removed_ids, expected[..5].to_vec());
        assert_eq!(particles.len(), 59);
    }

    #[test]
    fn removal_caps_at_population() {
        let cfg = InitConfig::new(grid(), 10, Distribution::Uniform);
        let mut particles = cfg.build().unwrap().particles;
        let removed = apply_removal(&mut particles, Region::whole(16), 1000);
        assert_eq!(removed.len(), 10);
        assert!(particles.is_empty());
    }
}
