//! Closed-form trajectories.
//!
//! The verification equations (paper eqs. 5–6) give the *final* position;
//! the same symmetry argument (paper Figure 2 and §III-D) determines the
//! full state at **every** step: the particle hops `±(2k+1)` cells in x
//! and `m` cells in y per step, with the x velocity alternating between 0
//! and `±2(2k+1)·h/dt`. This module exposes that as an iterator — the
//! oracle tests compare simulated state against, step by step.

use crate::charge::SimConstants;
use crate::geometry::Grid;
use crate::particle::Particle;
use crate::verify::{expected_position, expected_velocity};

/// Full analytic state of a particle at one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Steps since the particle entered the simulation.
    pub step: u64,
    pub x: f64,
    pub y: f64,
    pub vx: f64,
    pub vy: f64,
}

/// Analytic state after `steps` steps.
pub fn state_at(grid: &Grid, consts: &SimConstants, p: &Particle, steps: u64) -> TrajectoryPoint {
    let (x, y) = expected_position(grid, p, steps);
    let (vx, vy) = expected_velocity(grid, consts, p, steps);
    TrajectoryPoint {
        step: steps,
        x,
        y,
        vx,
        vy,
    }
}

/// Iterator over the analytic trajectory, starting at step 0 (the initial
/// state).
pub struct Trajectory<'a> {
    grid: &'a Grid,
    consts: &'a SimConstants,
    particle: Particle,
    next_step: u64,
}

impl<'a> Trajectory<'a> {
    pub fn new(grid: &'a Grid, consts: &'a SimConstants, particle: Particle) -> Trajectory<'a> {
        Trajectory {
            grid,
            consts,
            particle,
            next_step: 0,
        }
    }
}

impl Iterator for Trajectory<'_> {
    type Item = TrajectoryPoint;

    fn next(&mut self) -> Option<TrajectoryPoint> {
        let pt = state_at(self.grid, self.consts, &self.particle, self.next_step);
        self.next_step += 1;
        Some(pt)
    }
}

/// The period of a particle's trajectory in steps: after this many steps
/// the particle returns to its initial state (position *and* velocity).
/// This is `lcm(period_x, period_y, 2)` where `period_x = L / gcd(L, s_x)`
/// etc.; the factor 2 accounts for the velocity alternation.
pub fn period(grid: &Grid, p: &Particle) -> u64 {
    let l = grid.ncells() as u64;
    let sx = p.cells_per_step_x(grid).unsigned_abs();
    let sy = p.cells_per_step_y().unsigned_abs();
    let px = if sx == 0 { 1 } else { l / gcd(l, sx) };
    let py = if sy == 0 { 1 } else { l / gcd(l, sy) };
    lcm(lcm(px, py), 2)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::{particle_charge, sign_for_direction};
    use crate::motion::advance_particle;

    fn make(grid: &Grid, col: usize, row: usize, k: u32, m: i32, dir: i8) -> Particle {
        let c = SimConstants::CANONICAL;
        let (x, y) = grid.cell_center(col, row);
        Particle {
            id: 1,
            x,
            y,
            vx: 0.0,
            vy: m as f64,
            q: particle_charge(&c, 0.5, k, sign_for_direction(col, dir)),
            x0: x,
            y0: y,
            k,
            m,
            born_at: 0,
        }
    }

    #[test]
    fn trajectory_matches_simulation_step_by_step() {
        let grid = Grid::new(16).unwrap();
        let consts = SimConstants::CANONICAL;
        let mut sim_p = make(&grid, 3, 5, 1, -2, -1);
        let mut traj = Trajectory::new(&grid, &consts, sim_p);
        let first = traj.next().unwrap();
        assert_eq!(first.x, sim_p.x);
        assert_eq!(first.vx, 0.0);
        for (s, pt) in traj.take(40).enumerate() {
            advance_particle(&grid, &consts, &mut sim_p);
            assert!(
                grid.periodic_delta(sim_p.x, pt.x).abs() < 1e-9,
                "step {}: x {} vs analytic {}",
                s + 1,
                sim_p.x,
                pt.x
            );
            assert!(grid.periodic_delta(sim_p.y, pt.y).abs() < 1e-9);
            assert!((sim_p.vx - pt.vx).abs() < 1e-9, "step {}: vx", s + 1);
            assert!((sim_p.vy - pt.vy).abs() < 1e-9);
        }
    }

    #[test]
    fn period_returns_to_initial_state() {
        let grid = Grid::new(12).unwrap();
        let consts = SimConstants::CANONICAL;
        for (k, m, dir) in [(0u32, 0i32, 1i8), (1, 1, 1), (0, -3, -1), (2, 4, 1)] {
            let p = make(&grid, 2, 7, k, m, dir);
            let t = period(&grid, &p);
            let at_period = state_at(&grid, &consts, &p, t);
            assert_eq!(at_period.x, p.x, "k={k} m={m}: x after period {t}");
            assert_eq!(at_period.y, p.y);
            assert_eq!(at_period.vx, 0.0);
        }
    }

    #[test]
    fn period_values() {
        let grid = Grid::new(12).unwrap();
        // stride 1, m = 0 → x period 12, total lcm(12, 1, 2) = 12.
        let p = make(&grid, 0, 0, 0, 0, 1);
        assert_eq!(period(&grid, &p), 12);
        // stride 3 → x period 4; m = 2 → y period 6; lcm(4, 6, 2) = 12.
        let p = make(&grid, 0, 0, 1, 2, 1);
        assert_eq!(period(&grid, &p), 12);
        // stride 1, m = 0, but velocity alternation forces even period:
        // grid 6 → lcm(6, 1, 2) = 6 (already even).
        let g6 = Grid::new(6).unwrap();
        let p = make(&g6, 0, 0, 0, 0, 1);
        assert_eq!(period(&g6, &p), 6);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 9), 9);
    }
}
