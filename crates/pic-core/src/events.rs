//! Dynamic particle injection and removal (paper §III-E5).
//!
//! "At a particular time `t'` we uniformly inject/remove particles in/from a
//! subdomain `R'`. This functionality can be used to stress adaptiveness of
//! the load balancing strategy, because injections/removals adjust abruptly
//! the local amount of work."
//!
//! Events are applied deterministically at the *start* of the step whose
//! index they name, before any particle moves in that step, so an injected
//! particle participates in `T − t'` steps.

/// A rectangular cell region `[x0, x1) × [y0, y1)` of the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub x0: usize,
    pub x1: usize,
    pub y0: usize,
    pub y1: usize,
}

impl Region {
    /// Region covering the whole grid.
    pub fn whole(ncells: usize) -> Region {
        Region {
            x0: 0,
            x1: ncells,
            y0: 0,
            y1: ncells,
        }
    }

    /// Number of cells in the region.
    pub fn cell_count(&self) -> usize {
        self.x1.saturating_sub(self.x0) * self.y1.saturating_sub(self.y0)
    }

    /// Whether the cell `(col, row)` lies inside the region.
    #[inline]
    pub fn contains_cell(&self, col: usize, row: usize) -> bool {
        col >= self.x0 && col < self.x1 && row >= self.y0 && row < self.y1
    }

    /// Whether a continuous position lies inside the region.
    #[inline]
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.x0 as f64 && x < self.x1 as f64 && y >= self.y0 as f64 && y < self.y1 as f64
    }

    /// Column span `[x0, x1)`.
    pub fn col_span(&self) -> (usize, usize) {
        (self.x0, self.x1)
    }
}

/// What a timed event does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Uniformly inject `count` new particles into the region; they follow
    /// the usual spec (cell-center placement, eq. 3 charges) with the given
    /// motion parameters.
    Inject {
        count: u64,
        /// Horizontal stride parameter (cells per step = 2k+1).
        k: u32,
        /// Vertical cells per step.
        m: i32,
        /// Drift direction (+1 right, −1 left).
        dir: i8,
    },
    /// Remove up to `count` particles currently inside the region
    /// (deterministically: the lowest-id residents first).
    Remove { count: u64 },
}

/// A timed event: applied at the start of step `at_step`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub at_step: u32,
    pub region: Region,
    pub kind: EventKind,
}

impl Event {
    pub fn inject(at_step: u32, region: Region, count: u64, k: u32, m: i32, dir: i8) -> Event {
        Event {
            at_step,
            region,
            kind: EventKind::Inject { count, k, m, dir },
        }
    }

    pub fn remove(at_step: u32, region: Region, count: u64) -> Event {
        Event {
            at_step,
            region,
            kind: EventKind::Remove { count },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_membership() {
        let r = Region {
            x0: 2,
            x1: 5,
            y0: 1,
            y1: 3,
        };
        assert!(r.contains_cell(2, 1));
        assert!(r.contains_cell(4, 2));
        assert!(!r.contains_cell(5, 2));
        assert!(!r.contains_cell(4, 3));
        assert!(r.contains_point(2.0, 1.0));
        assert!(r.contains_point(4.999, 2.999));
        assert!(!r.contains_point(5.0, 2.0));
        assert_eq!(r.cell_count(), 6);
    }

    #[test]
    fn whole_grid_region() {
        let r = Region::whole(8);
        assert_eq!(r.cell_count(), 64);
        assert!(r.contains_cell(7, 7));
    }

    #[test]
    fn degenerate_region_is_empty() {
        let r = Region {
            x0: 5,
            x1: 5,
            y0: 0,
            y1: 10,
        };
        assert_eq!(r.cell_count(), 0);
        assert!(!r.contains_cell(5, 3));
    }
}
