//! Explicit SIMD backends for the binned sweep kernel.
//!
//! The binned kernel (`advance_bin_span`, see [`crate::bin`]) was shaped
//! branch-free so the compiler *could* vectorize it, but the baseline
//! x86-64 target only licenses 2-lane SSE2 autovectorization and the
//! sqrt/divide chain in [`coulomb`] dominates the critical path. This
//! module vectorizes the kernel by hand, four particles per iteration
//! (**lane-per-particle**), with the widest instruction set the host
//! actually has — selected once at engine construction, not at compile
//! time, so one binary serves every deployment target.
//!
//! ## Backends
//!
//! * [`SimdBackend::Avx512`] — eight f64 lanes in one 512-bit register
//!   (x86-64, runtime-detected via `is_x86_feature_detected!("avx512f")`).
//!   Bit-identity is a **per-lane** property, so the exact kernel runs
//!   unchanged at twice the width — only the grouping of particles into
//!   registers differs, never any lane's arithmetic.
//! * [`SimdBackend::Avx2`] — one 256-bit register per quartet (x86-64,
//!   runtime-detected via `is_x86_feature_detected!`). AVX2 only: the
//!   backend deliberately does **not** enable FMA, because a fused
//!   multiply-add rounds once where the scalar kernel rounds twice and
//!   would break bit-identity.
//! * [`SimdBackend::Sse2`] — two 128-bit registers per quartet; SSE2 is
//!   part of the x86-64 baseline, so this backend needs no detection.
//! * [`SimdBackend::Neon`] — two 128-bit registers per quartet; NEON is
//!   mandatory on aarch64, so this backend needs no detection.
//! * [`SimdBackend::Scalar`] — the scalar reference kernel itself. Always
//!   available, and forcible at runtime with `PIC_NO_SIMD=1` for A/B
//!   measurements and for keeping the fallback path under test on
//!   vector-capable hosts.
//!
//! ## Why the vector path is bit-identical (DESIGN.md §10)
//!
//! Lane-wise `+ − × ÷ sqrt` are IEEE-754 **correctly rounded** on every
//! supported backend, i.e. each lane computes exactly what the scalar
//! instruction computes on that lane's operands. The kernel assigns one
//! particle per lane and performs, per lane, the *same operation sequence
//! in the same order* as the scalar kernel — the four corner evaluations
//! are unrolled across the lane group in the scalar kernel's pairing and
//! summation order, nothing is reassociated across a particle's own
//! arithmetic, and no FMA contraction is permitted. Span tails (`len mod
//! 4`) run the scalar kernel unchanged, and the wrap pass takes each lane
//! through the exact scalar [`Grid::wrap_coord`] whenever any lane left
//! the domain. Particles are independent within a step, so processing
//! them four at a time changes *where* arithmetic happens, never *what*
//! arithmetic happens — asserted by the SIMD-vs-scalar property-test
//! family across every backend the host can run.
//!
//! ## The fast tier (DESIGN.md §12)
//!
//! [`advance_bin_span_fast`] is a second kernel instantiation that trades
//! bit-identity for speed: FMA contraction everywhere ([`Lanes::mul_add`]),
//! the per-corner `sqrt + div` chain replaced by a hardware reciprocal
//! square-root estimate refined with Newton–Raphson ([`Lanes::rsqrt`]),
//! and the four corner contributions reassociated into a factored fused
//! tree-sum. Its results differ from the scalar reference in the last few
//! ulps per step; correctness is gated *analytically* against the paper's
//! eqs. 5–6 (see [`crate::verify::analytic_tolerance`]) instead of
//! bitwise. The scalar backend ignores the tier and runs the exact kernel,
//! so `PIC_NO_SIMD=1` forces full bit-identity even in fast mode.
//!
//! [`coulomb`]: crate::charge::coulomb

use crate::charge::{coulomb_f_over_r_fast, coulomb_lanes, SimConstants};
use crate::geometry::Grid;

/// Number of f64 lanes in the narrowest vector backend (the historical
/// fixed width; AVX-512 runs [`Lanes::WIDTH`] = 8).
pub const LANES: usize = 4;

/// The instruction-set backend driving [`advance_bin_span_simd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// 8 × f64 in one 512-bit register (x86-64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// 4 × f64 in one 256-bit register (x86-64, runtime-detected; FMA
    /// deliberately unused by the exact kernel).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 4 × f64 in two 128-bit registers (x86-64 baseline).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 4 × f64 in two 128-bit registers (aarch64 baseline).
    #[cfg(target_arch = "aarch64")]
    Neon,
    /// The scalar reference kernel (any arch; forced by `PIC_NO_SIMD=1`).
    Scalar,
}

impl SimdBackend {
    /// Pick the widest backend the host supports, honouring the
    /// `PIC_NO_SIMD` escape hatch. Called once per engine construction;
    /// the choice is recorded so benchmarks and logs can report it.
    pub fn detect() -> SimdBackend {
        if scalar_forced_by(std::env::var("PIC_NO_SIMD").ok().as_deref()) {
            return SimdBackend::Scalar;
        }
        Self::widest_available()
    }

    /// The widest backend the host supports, ignoring `PIC_NO_SIMD`.
    pub fn widest_available() -> SimdBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdBackend::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdBackend::Avx2;
            }
            SimdBackend::Sse2
        }
        #[cfg(target_arch = "aarch64")]
        {
            SimdBackend::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimdBackend::Scalar
        }
    }

    /// Every backend the host can execute, scalar last — the test grid
    /// iterates this so vector-vs-scalar identity is proven on whatever
    /// hardware runs the suite.
    pub fn available() -> Vec<SimdBackend> {
        let mut v = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                v.push(SimdBackend::Avx512);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(SimdBackend::Avx2);
            }
            v.push(SimdBackend::Sse2);
        }
        #[cfg(target_arch = "aarch64")]
        v.push(SimdBackend::Neon);
        v.push(SimdBackend::Scalar);
        v
    }

    /// Stable lower-case name for logs and benchmark metadata.
    pub fn name(self) -> &'static str {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => "avx512",
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Sse2 => "sse2",
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => "neon",
            SimdBackend::Scalar => "scalar",
        }
    }

    /// Whether this backend uses vector registers (false only for the
    /// scalar fallback).
    pub fn is_vector(self) -> bool {
        self != SimdBackend::Scalar
    }

    /// f64 lanes per kernel iteration on this backend (1 for scalar).
    pub fn lanes(self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => 8,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 | SimdBackend::Sse2 => LANES,
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => LANES,
            SimdBackend::Scalar => 1,
        }
    }

    /// Whether the *fast tier* on this backend fuses multiply-adds. AVX-512
    /// implies FMA; AVX2 hosts almost always have it but it is detected
    /// separately; NEON fuses natively; SSE2 and scalar never fuse.
    pub fn fast_tier_fuses(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => std::arch::is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Sse2 => false,
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => true,
            SimdBackend::Scalar => false,
        }
    }
}

/// `PIC_NO_SIMD` semantics, factored out so the parse is testable without
/// mutating the process environment: any value other than empty/`0` forces
/// the scalar backend.
fn scalar_forced_by(val: Option<&str>) -> bool {
    match val {
        None => false,
        Some(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
    }
}

/// A group of f64 lanes ([`Lanes::WIDTH`] of them) with correctly-rounded
/// lane-wise arithmetic. Every operation maps to one (or two, for the
/// split-register backends) machine instruction whose per-lane result is
/// bit-identical to the corresponding scalar instruction — the property
/// the whole module rests on. The two provided methods ([`Lanes::mul_add`]
/// and [`Lanes::rsqrt`]) are used **only** by the fast tier and may round
/// differently from the scalar kernel. Implementations are
/// `#[inline(always)]` so they fuse into the per-backend kernel
/// instantiations below.
pub(crate) trait Lanes: Copy {
    /// f64 lanes per group (4 on the 256-bit and split-register backends,
    /// 8 on AVX-512).
    const WIDTH: usize;
    /// Load `WIDTH` lanes from `p` (unaligned).
    ///
    /// # Safety
    /// `p` must be valid for reading `WIDTH` consecutive f64 values.
    unsafe fn load(p: *const f64) -> Self;
    /// Store `WIDTH` lanes to `p` (unaligned).
    ///
    /// # Safety
    /// `p` must be valid for writing `WIDTH` consecutive f64 values.
    unsafe fn store(self, p: *mut f64);
    fn splat(v: f64) -> Self;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn div(self, o: Self) -> Self;
    fn sqrt(self) -> Self;
    /// `self · m + a`, fused where the backend has FMA (fast tier only —
    /// the single rounding breaks bit-identity with the scalar kernel).
    /// The default is the unfused two-rounding form.
    #[inline(always)]
    fn mul_add(self, m: Self, a: Self) -> Self {
        self.mul(m).add(a)
    }
    /// Approximate `1/sqrt(self)` refined to ≲ 1 ulp (fast tier only).
    /// Backends without a hardware estimate fall back to the exact
    /// `1.0 / sqrt(x)`, which costs the very chain the fast tier tries to
    /// avoid but keeps the kernel correct everywhere. Lanes equal to
    /// `+0.0` produce `inf`/`NaN`; the caller's zero-distance guard
    /// ([`Lanes::zero_where_zero`]) must clear them, exactly as with the
    /// exact kernel's `0/0` lanes.
    #[inline(always)]
    fn rsqrt(self) -> Self {
        Self::splat(1.0).div(self.sqrt())
    }
    /// Truncate toward zero through the arch's f64→int→f64 round trip —
    /// exactly the scalar kernel's `x as usize as f64` for in-domain
    /// coordinates (which fit comfortably in the narrowest intermediate,
    /// i32).
    fn trunc(self) -> Self;
    /// Zero every lane of `self` whose lane in `r2` equals `0.0` — the
    /// vector form of [`coulomb`]'s value-select zero-distance guard.
    ///
    /// [`coulomb`]: crate::charge::coulomb
    fn zero_where_zero(self, r2: Self) -> Self;
    /// Whether every lane lies in `[0.0, hi)` — the wrap pass's fast-path
    /// test.
    fn all_in_range(self, hi: f64) -> bool;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Lanes;
    use std::arch::x86_64::*;

    /// 8 × f64 in one zmm register. Exact-kernel use is bit-identical to
    /// scalar (bit-identity is per-lane; only the grouping widens); the
    /// fast tier additionally gets true FMA and `vrsqrt14pd`.
    #[derive(Clone, Copy)]
    pub struct Avx512(__m512d);

    impl Lanes for Avx512 {
        const WIDTH: usize = 8;

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Avx512(_mm512_loadu_pd(p))
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            Avx512(unsafe { _mm512_set1_pd(v) })
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx512(unsafe { _mm512_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx512(unsafe { _mm512_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx512(unsafe { _mm512_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            Avx512(unsafe { _mm512_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sqrt(self) -> Self {
            Avx512(unsafe { _mm512_sqrt_pd(self.0) })
        }

        #[inline(always)]
        fn trunc(self) -> Self {
            Avx512(unsafe { _mm512_cvtepi32_pd(_mm512_cvttpd_epi32(self.0)) })
        }

        #[inline(always)]
        fn zero_where_zero(self, r2: Self) -> Self {
            unsafe {
                let zero = _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(r2.0, _mm512_setzero_pd());
                Avx512(_mm512_maskz_mov_pd(!zero, self.0))
            }
        }

        #[inline(always)]
        fn all_in_range(self, hi: f64) -> bool {
            unsafe {
                let ge = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(self.0, _mm512_setzero_pd());
                let lt = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(self.0, _mm512_set1_pd(hi));
                ge & lt == 0xff
            }
        }

        #[inline(always)]
        fn mul_add(self, m: Self, a: Self) -> Self {
            Avx512(unsafe { _mm512_fmadd_pd(self.0, m.0, a.0) })
        }

        /// `vrsqrt14pd` (2⁻¹⁴ relative error) + two Newton–Raphson steps
        /// `y ← y·(1.5 − 0.5·x·y²)`, each of which squares the relative
        /// error (×1.5): 6.1e-5 → 5.6e-9 → 4.7e-17, i.e. ≲ 1 ulp.
        #[inline(always)]
        fn rsqrt(self) -> Self {
            unsafe {
                let three_half = _mm512_set1_pd(1.5);
                let xh = _mm512_mul_pd(self.0, _mm512_set1_pd(0.5));
                let mut y = _mm512_rsqrt14_pd(self.0);
                for _ in 0..2 {
                    let t = _mm512_fnmadd_pd(_mm512_mul_pd(xh, y), y, three_half);
                    y = _mm512_mul_pd(y, t);
                }
                Avx512(y)
            }
        }
    }

    /// 4 × f64 in one ymm register.
    #[derive(Clone, Copy)]
    pub struct Avx2(__m256d);

    impl Lanes for Avx2 {
        const WIDTH: usize = 4;

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Avx2(_mm256_loadu_pd(p))
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            Avx2(unsafe { _mm256_set1_pd(v) })
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx2(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx2(unsafe { _mm256_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx2(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            Avx2(unsafe { _mm256_div_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sqrt(self) -> Self {
            Avx2(unsafe { _mm256_sqrt_pd(self.0) })
        }

        #[inline(always)]
        fn trunc(self) -> Self {
            Avx2(unsafe { _mm256_cvtepi32_pd(_mm256_cvttpd_epi32(self.0)) })
        }

        #[inline(always)]
        fn zero_where_zero(self, r2: Self) -> Self {
            unsafe {
                let zero_mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(r2.0, _mm256_setzero_pd());
                Avx2(_mm256_andnot_pd(zero_mask, self.0))
            }
        }

        #[inline(always)]
        fn all_in_range(self, hi: f64) -> bool {
            unsafe {
                let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(self.0, _mm256_setzero_pd());
                let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(self.0, _mm256_set1_pd(hi));
                _mm256_movemask_pd(_mm256_and_pd(ge, lt)) == 0b1111
            }
        }

        /// Fused only when inlined under a `fma`-enabled instantiation
        /// (the fast-tier dispatch checks `is_x86_feature_detected!`).
        #[inline(always)]
        fn mul_add(self, m: Self, a: Self) -> Self {
            Avx2(unsafe { _mm256_fmadd_pd(self.0, m.0, a.0) })
        }

        /// No f64 estimate below AVX-512: round-trip through the f32
        /// `rsqrtps` estimate (2⁻¹² relative error) and refine with three
        /// Newton–Raphson steps (6e-4 → 2e-7 → 6e-14 → ≲ 1 ulp).
        #[inline(always)]
        fn rsqrt(self) -> Self {
            unsafe {
                let three_half = _mm256_set1_pd(1.5);
                let xh = _mm256_mul_pd(self.0, _mm256_set1_pd(0.5));
                let mut y = _mm256_cvtps_pd(_mm_rsqrt_ps(_mm256_cvtpd_ps(self.0)));
                for _ in 0..3 {
                    let t = _mm256_mul_pd(_mm256_mul_pd(xh, y), y);
                    y = _mm256_mul_pd(y, _mm256_sub_pd(three_half, t));
                }
                Avx2(y)
            }
        }
    }

    /// 4 × f64 in two xmm registers (x86-64 baseline: no detection needed).
    #[derive(Clone, Copy)]
    pub struct Sse2(__m128d, __m128d);

    impl Lanes for Sse2 {
        const WIDTH: usize = 4;

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Sse2(_mm_loadu_pd(p), _mm_loadu_pd(p.add(2)))
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm_storeu_pd(p, self.0);
            _mm_storeu_pd(p.add(2), self.1);
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            unsafe { Sse2(_mm_set1_pd(v), _mm_set1_pd(v)) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            unsafe { Sse2(_mm_add_pd(self.0, o.0), _mm_add_pd(self.1, o.1)) }
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            unsafe { Sse2(_mm_sub_pd(self.0, o.0), _mm_sub_pd(self.1, o.1)) }
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            unsafe { Sse2(_mm_mul_pd(self.0, o.0), _mm_mul_pd(self.1, o.1)) }
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            unsafe { Sse2(_mm_div_pd(self.0, o.0), _mm_div_pd(self.1, o.1)) }
        }

        #[inline(always)]
        fn sqrt(self) -> Self {
            unsafe { Sse2(_mm_sqrt_pd(self.0), _mm_sqrt_pd(self.1)) }
        }

        #[inline(always)]
        fn trunc(self) -> Self {
            unsafe {
                Sse2(
                    _mm_cvtepi32_pd(_mm_cvttpd_epi32(self.0)),
                    _mm_cvtepi32_pd(_mm_cvttpd_epi32(self.1)),
                )
            }
        }

        #[inline(always)]
        fn zero_where_zero(self, r2: Self) -> Self {
            unsafe {
                let z = _mm_setzero_pd();
                Sse2(
                    _mm_andnot_pd(_mm_cmpeq_pd(r2.0, z), self.0),
                    _mm_andnot_pd(_mm_cmpeq_pd(r2.1, z), self.1),
                )
            }
        }

        #[inline(always)]
        fn all_in_range(self, hi: f64) -> bool {
            unsafe {
                let z = _mm_setzero_pd();
                let h = _mm_set1_pd(hi);
                let lo = _mm_and_pd(_mm_cmpge_pd(self.0, z), _mm_cmplt_pd(self.0, h));
                let hi_half = _mm_and_pd(_mm_cmpge_pd(self.1, z), _mm_cmplt_pd(self.1, h));
                _mm_movemask_pd(lo) == 0b11 && _mm_movemask_pd(hi_half) == 0b11
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::Lanes;
    use std::arch::aarch64::*;

    /// 4 × f64 in two NEON q registers (aarch64 baseline: no detection
    /// needed).
    #[derive(Clone, Copy)]
    pub struct Neon(float64x2_t, float64x2_t);

    impl Lanes for Neon {
        const WIDTH: usize = 4;

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Neon(vld1q_f64(p), vld1q_f64(p.add(2)))
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0);
            vst1q_f64(p.add(2), self.1);
        }

        #[inline(always)]
        fn splat(v: f64) -> Self {
            unsafe { Neon(vdupq_n_f64(v), vdupq_n_f64(v)) }
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            unsafe { Neon(vaddq_f64(self.0, o.0), vaddq_f64(self.1, o.1)) }
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            unsafe { Neon(vsubq_f64(self.0, o.0), vsubq_f64(self.1, o.1)) }
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            unsafe { Neon(vmulq_f64(self.0, o.0), vmulq_f64(self.1, o.1)) }
        }

        #[inline(always)]
        fn div(self, o: Self) -> Self {
            unsafe { Neon(vdivq_f64(self.0, o.0), vdivq_f64(self.1, o.1)) }
        }

        #[inline(always)]
        fn sqrt(self) -> Self {
            unsafe { Neon(vsqrtq_f64(self.0), vsqrtq_f64(self.1)) }
        }

        #[inline(always)]
        fn trunc(self) -> Self {
            unsafe {
                Neon(
                    vcvtq_f64_s64(vcvtq_s64_f64(self.0)),
                    vcvtq_f64_s64(vcvtq_s64_f64(self.1)),
                )
            }
        }

        #[inline(always)]
        fn zero_where_zero(self, r2: Self) -> Self {
            unsafe {
                let z = vdupq_n_f64(0.0);
                Neon(
                    vbslq_f64(vceqq_f64(r2.0, z), z, self.0),
                    vbslq_f64(vceqq_f64(r2.1, z), z, self.1),
                )
            }
        }

        #[inline(always)]
        fn all_in_range(self, hi: f64) -> bool {
            unsafe {
                let z = vdupq_n_f64(0.0);
                let h = vdupq_n_f64(hi);
                let lo = vandq_u64(vcgeq_f64(self.0, z), vcltq_f64(self.0, h));
                let up = vandq_u64(vcgeq_f64(self.1, z), vcltq_f64(self.1, h));
                let both = vandq_u64(lo, up);
                vminvq_u32(vreinterpretq_u32_u64(both)) == u32::MAX
            }
        }

        /// NEON fuses natively (`vfmaq_f64` is baseline aarch64); the
        /// fast tier keeps the exact `1/sqrt` (trait default) — FMA and
        /// reassociation are the NEON fast-tier wins.
        #[inline(always)]
        fn mul_add(self, m: Self, a: Self) -> Self {
            unsafe { Neon(vfmaq_f64(a.0, self.0, m.0), vfmaq_f64(a.1, self.1, m.1)) }
        }
    }
}

/// Software-prefetch the cache line at `p` for reading. The binned fast
/// tier issues this for the next bin span while the current one is in
/// flight, hiding the gather latency of short spans. No-op on
/// architectures without a stable prefetch intrinsic.
#[inline(always)]
pub(crate) fn prefetch_read(p: *const f64) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Force-and-integrate over `groups` quartets starting at the span base —
/// the vector transcription of the scalar kernel's first loop, lane per
/// particle, four corner evaluations unrolled in the scalar pairing and
/// summation order.
///
/// # Safety
/// The pointers must each be valid for `groups * V::WIDTH` elements and
/// the x/y/vx/vy regions must be disjoint (they are distinct SoA columns).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn force_groups<V: Lanes>(
    consts: &SimConstants,
    q_left: f64,
    x: *mut f64,
    y: *mut f64,
    vx: *mut f64,
    vy: *mut f64,
    q: *const f64,
    groups: usize,
) {
    let dt = V::splat(consts.dt);
    let h = V::splat(consts.h);
    let half = V::splat(0.5);
    let ql = V::splat(q_left);
    let qr = V::splat(-q_left);
    for g in 0..groups {
        let o = g * V::WIDTH;
        let xi = V::load(x.add(o));
        let yi = V::load(y.add(o));
        // `cell_of` minus the defensive clamp, as in the scalar kernel:
        // wrapped coordinates lie in [0, L) where truncation alone yields
        // the identical column/row index.
        let col = xi.trunc();
        let row = yi.trunc();
        let rx = xi.sub(col);
        let ry = yi.sub(row);
        let qp = V::load(q.add(o));
        let (fx0, fy0) = coulomb_lanes(rx, ry, ql, qp); // bottom-left
        let (fx1, fy1) = coulomb_lanes(rx, ry.sub(h), ql, qp); // top-left
        let (fx2, fy2) = coulomb_lanes(rx.sub(h), ry, qr, qp); // bottom-right
        let (fx3, fy3) = coulomb_lanes(rx.sub(h), ry.sub(h), qr, qp); // top-right
        let ax = (fx0.add(fx1)).add(fx2.add(fx3));
        let ay = (fy0.add(fy1)).add(fy2.add(fy3));
        let vxi = V::load(vx.add(o));
        let vyi = V::load(vy.add(o));
        // x += (vx + 0.5·ax·dt)·dt — same association as the scalar kernel.
        xi.add(vxi.add(half.mul(ax).mul(dt)).mul(dt))
            .store(x.add(o));
        yi.add(vyi.add(half.mul(ay).mul(dt)).mul(dt))
            .store(y.add(o));
        vxi.add(ax.mul(dt)).store(vx.add(o));
        vyi.add(ay.mul(dt)).store(vy.add(o));
    }
}

/// Periodic wrap over `groups` quartets: a vector range test selects the
/// (overwhelmingly common) all-in-domain fast path; any quartet with an
/// escaped lane goes through the exact scalar [`Grid::wrap_coord`], so the
/// pass is bit-identical to the scalar wrap loop by construction.
///
/// # Safety
/// `c` must be valid for `groups * V::WIDTH` elements.
#[inline(always)]
unsafe fn wrap_groups<V: Lanes>(grid: &Grid, c: *mut f64, groups: usize) {
    let l = grid.extent();
    for g in 0..groups {
        let p = c.add(g * V::WIDTH);
        if V::load(p).all_in_range(l) {
            continue;
        }
        for k in 0..V::WIDTH {
            *p.add(k) = grid.wrap_coord(*p.add(k));
        }
    }
}

/// Fast-tier force-and-integrate: the same lane-per-particle structure as
/// [`force_groups`] with three deliberate departures from bit-identity
/// (DESIGN.md §12):
///
/// 1. the per-corner `1/(r²·√r²)` chain becomes `rs³` with
///    `rs = rsqrt(r²)` ([`coulomb_f_over_r_fast`]);
/// 2. the four corner contributions are factored by shared displacement
///    and accumulated with a fused tree-sum
///    (`ax = rx·(f0+f1) + (rx−h)·(f2+f3)`, outer add fused);
/// 3. the leap-frog integration fuses its multiply-adds.
///
/// # Safety
/// As [`force_groups`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn force_groups_fast<V: Lanes>(
    consts: &SimConstants,
    q_left: f64,
    x: *mut f64,
    y: *mut f64,
    vx: *mut f64,
    vy: *mut f64,
    q: *const f64,
    groups: usize,
) {
    let dt = V::splat(consts.dt);
    let h = V::splat(consts.h);
    let half_dt = V::splat(0.5 * consts.dt);
    let ql = V::splat(q_left);
    let qr = V::splat(-q_left);
    for g in 0..groups {
        let o = g * V::WIDTH;
        let xi = V::load(x.add(o));
        let yi = V::load(y.add(o));
        let col = xi.trunc();
        let row = yi.trunc();
        let rx = xi.sub(col);
        let ry = yi.sub(row);
        let rxh = rx.sub(h);
        let ryh = ry.sub(h);
        let qp = V::load(q.add(o));
        let qlp = ql.mul(qp);
        let qrp = qr.mul(qp);
        let f0 = coulomb_f_over_r_fast(rx, ry, qlp); // bottom-left
        let f1 = coulomb_f_over_r_fast(rx, ryh, qlp); // top-left
        let f2 = coulomb_f_over_r_fast(rxh, ry, qrp); // bottom-right
        let f3 = coulomb_f_over_r_fast(rxh, ryh, qrp); // top-right
        let ax = rx.mul_add(f0.add(f1), rxh.mul(f2.add(f3)));
        let ay = ry.mul_add(f0.add(f2), ryh.mul(f1.add(f3)));
        let vxi = V::load(vx.add(o));
        let vyi = V::load(vy.add(o));
        // x += (vx + (0.5·dt)·ax)·dt, fused.
        ax.mul_add(half_dt, vxi).mul_add(dt, xi).store(x.add(o));
        ay.mul_add(half_dt, vyi).mul_add(dt, yi).store(y.add(o));
        ax.mul_add(dt, vxi).store(vx.add(o));
        ay.mul_add(dt, vyi).store(vy.add(o));
    }
}

/// The full span kernel for one vector backend: quartets through
/// [`force_groups`], the `len mod 4` tail through the scalar kernel, then
/// the wrap pass (vector fast-path test, scalar wrap for escaped lanes).
///
/// # Safety
/// Vector ops of `V` must be executable on the current CPU; the caller
/// guarantees this via [`SimdBackend`] dispatch.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn advance_span_lanes<V: Lanes>(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    let n = x.len();
    debug_assert!(y.len() == n && vx.len() == n && vy.len() == n && q.len() == n);
    // The scalar kernel's per-particle invariant checks, hoisted out of
    // the vector loop (debug builds only).
    #[cfg(debug_assertions)]
    for i in 0..n {
        let (col, row) = grid.cell_of_point(x[i], y[i]);
        debug_assert_eq!((col, row), (x[i] as usize, y[i] as usize));
        debug_assert_eq!(
            crate::charge::mesh_charge(col, consts.q),
            q_left,
            "parity drift at x={}",
            x[i]
        );
    }
    let groups = n / V::WIDTH;
    let tail = groups * V::WIDTH;
    force_groups::<V>(
        consts,
        q_left,
        x.as_mut_ptr(),
        y.as_mut_ptr(),
        vx.as_mut_ptr(),
        vy.as_mut_ptr(),
        q.as_ptr(),
        groups,
    );
    crate::bin::force_span(
        consts,
        q_left,
        &mut x[tail..],
        &mut y[tail..],
        &mut vx[tail..],
        &mut vy[tail..],
        &q[tail..],
    );
    wrap_groups::<V>(grid, x.as_mut_ptr(), groups);
    wrap_groups::<V>(grid, y.as_mut_ptr(), groups);
    for i in tail..n {
        x[i] = grid.wrap_coord(x[i]);
        y[i] = grid.wrap_coord(y[i]);
    }
}

/// The fast-tier span kernel: full groups through [`force_groups_fast`],
/// the `len mod WIDTH` tail through the **exact** scalar kernel (a more
/// accurate subset is always within the analytic bound), and the exact
/// wrap pass — wrapping is control flow, not force arithmetic, and stays
/// identical in both tiers.
///
/// # Safety
/// As [`advance_span_lanes`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn advance_span_lanes_fast<V: Lanes>(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    let n = x.len();
    debug_assert!(y.len() == n && vx.len() == n && vy.len() == n && q.len() == n);
    let groups = n / V::WIDTH;
    let tail = groups * V::WIDTH;
    force_groups_fast::<V>(
        consts,
        q_left,
        x.as_mut_ptr(),
        y.as_mut_ptr(),
        vx.as_mut_ptr(),
        vy.as_mut_ptr(),
        q.as_ptr(),
        groups,
    );
    crate::bin::force_span(
        consts,
        q_left,
        &mut x[tail..],
        &mut y[tail..],
        &mut vx[tail..],
        &mut vy[tail..],
        &q[tail..],
    );
    wrap_groups::<V>(grid, x.as_mut_ptr(), groups);
    wrap_groups::<V>(grid, y.as_mut_ptr(), groups);
    for i in tail..n {
        x[i] = grid.wrap_coord(x[i]);
        y[i] = grid.wrap_coord(y[i]);
    }
}

/// AVX2 instantiation. `#[target_feature]` licenses 256-bit codegen for
/// everything inlined beneath it — but not FMA contraction, which stays
/// disabled to preserve bit-identity.
///
/// # Safety
/// The CPU must support AVX2 (guaranteed by [`SimdBackend::detect`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn advance_span_avx2(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    advance_span_lanes::<x86::Avx2>(grid, consts, q_left, x, y, vx, vy, q)
}

/// Exact-kernel AVX-512 instantiation: 8 lanes per group, still
/// bit-identical (per-lane ops only; no FMA, no reassociation).
///
/// # Safety
/// The CPU must support AVX-512F (guaranteed by [`SimdBackend::detect`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn advance_span_avx512(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    advance_span_lanes::<x86::Avx512>(grid, consts, q_left, x, y, vx, vy, q)
}

/// Fast-tier AVX2 instantiation; `fma` is enabled so [`Lanes::mul_add`]
/// actually fuses (dispatch verifies the CPU has it).
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn advance_span_fast_avx2(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    advance_span_lanes_fast::<x86::Avx2>(grid, consts, q_left, x, y, vx, vy, q)
}

/// Fast-tier AVX-512 instantiation (FMA is part of AVX-512F).
///
/// # Safety
/// The CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn advance_span_fast_avx512(
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    advance_span_lanes_fast::<x86::Avx512>(grid, consts, q_left, x, y, vx, vy, q)
}

/// Advance one bin-clipped span with the selected backend — the SIMD
/// counterpart of [`crate::bin::advance_bin_span`], bit-identical to it
/// (and therefore to every other sweep mode) on every backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_bin_span_simd(
    backend: SimdBackend,
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx512 => unsafe {
            advance_span_avx512(grid, consts, q_left, x, y, vx, vy, q)
        },
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => unsafe { advance_span_avx2(grid, consts, q_left, x, y, vx, vy, q) },
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => unsafe {
            // SSE2 is unconditionally present on x86-64.
            advance_span_lanes::<x86::Sse2>(grid, consts, q_left, x, y, vx, vy, q)
        },
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => unsafe {
            // NEON is unconditionally present on aarch64.
            advance_span_lanes::<arm::Neon>(grid, consts, q_left, x, y, vx, vy, q)
        },
        SimdBackend::Scalar => crate::bin::advance_bin_span(grid, consts, q_left, x, y, vx, vy, q),
    }
}

/// Advance one bin-clipped span with the selected backend's **fast tier**
/// (FMA + rsqrt + reassociated accumulation — see the module docs). Not
/// bit-identical to the exact kernel; gated by the analytic eqs. 5–6
/// verification instead. The scalar backend runs the exact reference
/// kernel, so `PIC_NO_SIMD=1` keeps forcing full bit-identity; an AVX2
/// host without FMA (vanishingly rare) falls back to the exact AVX2 path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_bin_span_fast(
    backend: SimdBackend,
    grid: &Grid,
    consts: &SimConstants,
    q_left: f64,
    x: &mut [f64],
    y: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    q: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx512 => unsafe {
            advance_span_fast_avx512(grid, consts, q_left, x, y, vx, vy, q)
        },
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => {
            if std::arch::is_x86_feature_detected!("fma") {
                unsafe { advance_span_fast_avx2(grid, consts, q_left, x, y, vx, vy, q) }
            } else {
                unsafe { advance_span_avx2(grid, consts, q_left, x, y, vx, vy, q) }
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => unsafe {
            // Unfused `mul_add`/exact `rsqrt` defaults: the SSE2 fast tier
            // is reassociation-only.
            advance_span_lanes_fast::<x86::Sse2>(grid, consts, q_left, x, y, vx, vy, q)
        },
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => unsafe {
            advance_span_lanes_fast::<arm::Neon>(grid, consts, q_left, x, y, vx, vy, q)
        },
        SimdBackend::Scalar => crate::bin::advance_bin_span(grid, consts, q_left, x, y, vx, vy, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::{mesh_charge, particle_charge, sign_for_direction};
    use crate::particle::Particle;
    use crate::soa::ParticleBatch;

    /// `n` spec-conforming particles, all in cell column `col` (distinct
    /// rows, jittered x within the column so corner distances differ).
    fn column_population(grid: &Grid, col: usize, n: usize, k: u32) -> ParticleBatch {
        let consts = SimConstants::CANONICAL;
        let mut b = ParticleBatch::new();
        for i in 0..n {
            let row = i % grid.ncells();
            let x = col as f64 + 0.5;
            let y = row as f64 + 0.5;
            b.push(Particle {
                id: i as u64 + 1,
                x,
                y,
                vx: 0.0,
                vy: 1.0,
                q: particle_charge(&consts, 0.5, k, sign_for_direction(col, 1)),
                x0: x,
                y0: y,
                k,
                m: 1,
                born_at: 0,
            });
        }
        b
    }

    /// Advance `steps` steps through the raw span kernel, recomputing the
    /// hoisted corner charge from the (column-coherent) population each
    /// step. Returns the final batch.
    fn run_kernel(
        mut b: ParticleBatch,
        grid: &Grid,
        steps: u32,
        advance: &mut dyn FnMut(&Grid, f64, &mut ParticleBatch),
    ) -> ParticleBatch {
        let consts = SimConstants::CANONICAL;
        for _ in 0..steps {
            let q_left = if b.is_empty() {
                consts.q
            } else {
                mesh_charge(b.x[0] as usize, consts.q)
            };
            advance(grid, q_left, &mut b);
        }
        b
    }

    /// Every available backend is bit-identical to the scalar kernel for
    /// every span length 0..=16 (covers the empty span, every remainder
    /// tail of both the 4-lane and the 8-lane group widths, and full
    /// groups plus each tail) and a couple of larger spans, including
    /// steps where the particles wrap the boundary.
    #[test]
    fn all_backends_bitwise_match_scalar_for_all_tail_lengths() {
        let grid = Grid::new(8).unwrap();
        let consts = SimConstants::CANONICAL;
        for backend in SimdBackend::available() {
            for len in (0..=16).chain([17, 37]) {
                // Column 6 with stride 1: wraps off the right edge within
                // a few steps, exercising the escaped-lane wrap path.
                let seed = column_population(&grid, 6, len, 0);
                let scalar = run_kernel(seed.clone(), &grid, 5, &mut |g, ql, b| {
                    let n = b.len();
                    crate::bin::advance_bin_span(
                        g,
                        &consts,
                        ql,
                        &mut b.x[..n],
                        &mut b.y[..n],
                        &mut b.vx[..n],
                        &mut b.vy[..n],
                        &b.q[..n],
                    );
                });
                let simd = run_kernel(seed, &grid, 5, &mut |g, ql, b| {
                    let n = b.len();
                    advance_bin_span_simd(
                        backend,
                        g,
                        &consts,
                        ql,
                        &mut b.x[..n],
                        &mut b.y[..n],
                        &mut b.vx[..n],
                        &mut b.vy[..n],
                        &b.q[..n],
                    );
                });
                assert_eq!(
                    scalar,
                    simd,
                    "backend {} diverged at span length {len}",
                    backend.name()
                );
            }
        }
    }

    /// The zero-distance guard survives vectorization: a particle sitting
    /// exactly on a mesh corner gets zero force from that corner in every
    /// lane position — in both kernel tiers (the fast tier's `rsqrt(0)`
    /// produces `inf`/`NaN` lanes that its guard must clear).
    #[test]
    fn corner_particle_is_finite_in_every_lane() {
        let grid = Grid::new(8).unwrap();
        let consts = SimConstants::CANONICAL;
        for backend in SimdBackend::available() {
            let width = backend.lanes().max(LANES);
            for fast in [false, true] {
                for lane in 0..width {
                    let mut b = column_population(&grid, 2, width, 0);
                    b.x[lane] = 2.0; // exactly on the bottom-left corner
                    b.y[lane] = 3.0;
                    let q = b.q.clone();
                    let n = b.len();
                    let advance = if fast {
                        advance_bin_span_fast
                    } else {
                        advance_bin_span_simd
                    };
                    advance(
                        backend,
                        &grid,
                        &consts,
                        mesh_charge(2, consts.q),
                        &mut b.x[..n],
                        &mut b.y[..n],
                        &mut b.vx[..n],
                        &mut b.vy[..n],
                        &q,
                    );
                    for i in 0..n {
                        assert!(
                            b.x[i].is_finite() && b.y[i].is_finite(),
                            "backend {} tier {} lane {lane}: non-finite state",
                            backend.name(),
                            if fast { "fast" } else { "exact" },
                        );
                    }
                }
            }
        }
    }

    /// Fast-tier span kernel across every tail length 0..=16: stays within
    /// a few-ulp-per-step neighbourhood of the exact scalar kernel (the
    /// tail itself runs the exact kernel, so only full groups may differ)
    /// and never desynchronizes the trajectory.
    #[test]
    fn fast_tier_matches_scalar_within_per_step_bound_for_all_tail_lengths() {
        let grid = Grid::new(8).unwrap();
        let consts = SimConstants::CANONICAL;
        let steps = 5u32;
        // 5 steps of stride 1: comfortably inside the derived bound.
        let tol = crate::verify::analytic_tolerance(steps as u64, 1);
        for backend in SimdBackend::available() {
            for len in (0..=16).chain([17, 37]) {
                let seed = column_population(&grid, 6, len, 0);
                let scalar = run_kernel(seed.clone(), &grid, steps, &mut |g, ql, b| {
                    let n = b.len();
                    crate::bin::advance_bin_span(
                        g,
                        &consts,
                        ql,
                        &mut b.x[..n],
                        &mut b.y[..n],
                        &mut b.vx[..n],
                        &mut b.vy[..n],
                        &b.q[..n],
                    );
                });
                let fast = run_kernel(seed, &grid, steps, &mut |g, ql, b| {
                    let n = b.len();
                    advance_bin_span_fast(
                        backend,
                        g,
                        &consts,
                        ql,
                        &mut b.x[..n],
                        &mut b.y[..n],
                        &mut b.vx[..n],
                        &mut b.vy[..n],
                        &b.q[..n],
                    );
                });
                for i in 0..scalar.len() {
                    let d = grid
                        .periodic_delta(scalar.x[i], fast.x[i])
                        .abs()
                        .max(grid.periodic_delta(scalar.y[i], fast.y[i]).abs());
                    assert!(
                        d <= tol,
                        "backend {} len {len} lane {i}: fast drifted {d:e} > {tol:e}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn env_parse_semantics() {
        assert!(!scalar_forced_by(None));
        assert!(!scalar_forced_by(Some("")));
        assert!(!scalar_forced_by(Some("0")));
        assert!(!scalar_forced_by(Some("  0  ")));
        assert!(scalar_forced_by(Some("1")));
        assert!(scalar_forced_by(Some("true")));
        assert!(scalar_forced_by(Some(" yes ")));
    }

    #[test]
    fn available_ends_with_scalar_and_contains_widest() {
        let avail = SimdBackend::available();
        assert_eq!(*avail.last().unwrap(), SimdBackend::Scalar);
        assert!(avail.contains(&SimdBackend::widest_available()));
        // Names are unique and stable.
        let names: std::collections::HashSet<_> = avail.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), avail.len());
    }
}
