//! Mesh charges and the Coulomb force kernel.
//!
//! Mesh points in columns with **even** x-index carry charge `+q`, odd
//! columns carry `−q` (paper §III-C, Figure 2). At every time step, each
//! particle interacts only with the four charges at the corners of the cell
//! containing it; the total Coulomb force determines its acceleration for
//! the whole step (`F = m·a` with `k_e / m = 1`).
//!
//! The arithmetic here is written so that the *same* sequence of operations
//! computes the geometric factor during particle-charge assignment
//! ([`charge_denominator`]) and during the per-step force evaluation
//! ([`total_force`]). That is the paper's "certain reordering constraints":
//! it keeps the realized per-step displacement within one ulp of the exact
//! `(2k+1)·h`, so errors do not accumulate over thousands of steps.

use crate::geometry::Grid;

/// Fixed physical constants of the kernel.
///
/// The paper normalizes `k_e / m = 1`; the reference implementations
/// additionally fix `h = 1`, `dt = 1` and mesh charge magnitude `q = 1`.
/// They are kept symbolic here so tests can probe other values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConstants {
    /// Cell edge length `h`.
    pub h: f64,
    /// Time-step length `dt`.
    pub dt: f64,
    /// Mesh charge magnitude `q`.
    pub q: f64,
}

impl Default for SimConstants {
    fn default() -> Self {
        SimConstants {
            h: 1.0,
            dt: 1.0,
            q: 1.0,
        }
    }
}

impl SimConstants {
    /// The canonical constants used by the paper's experiments.
    pub const CANONICAL: SimConstants = SimConstants {
        h: 1.0,
        dt: 1.0,
        q: 1.0,
    };
}

/// Charge at a mesh point in column `col`: `+q` for even columns, `−q` for
/// odd columns. The row does not matter — all cells in a column are of the
/// same type (paper §III-D).
#[inline]
pub fn mesh_charge(col: usize, q: f64) -> f64 {
    if col.is_multiple_of(2) {
        q
    } else {
        -q
    }
}

/// Sign (+1/−1) of the mesh charge in column `col`.
#[inline]
pub fn column_sign(col: usize) -> f64 {
    if col.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Coulomb force exerted *on* a charge `q2` located at displacement
/// `(dx, dy)` from a charge `q1` (displacement points from `q1` to the
/// particle). Returns the `(fx, fy)` force components with `k_e = 1`.
///
/// Same-sign charges give a force along `(dx, dy)` (repulsive); opposite
/// signs reverse it (attractive).
///
/// The evaluation costs one square root and one division per corner:
/// `f⃗ = q1·q2/(r²·r) · (dx, dy)`. Because this function is the *only*
/// force arithmetic in the kernel — charge assignment
/// ([`charge_denominator`]) and every sweep mode's per-step evaluation all
/// route through it — the paper's reordering constraint (assignment and
/// realized force computed by the same operation sequence) is preserved by
/// construction, and every sweep layout stays bit-identical to the serial
/// reference.
///
/// A particle sitting exactly on a mesh corner (`r² = 0`) receives zero
/// force from that corner instead of the `0/0 → NaN` a naive evaluation
/// would produce; the selection is written value-wise (not as an early
/// return) so the inner sweep loops stay branch-free and vectorizable.
#[inline]
pub fn coulomb(dx: f64, dy: f64, q1: f64, q2: f64) -> (f64, f64) {
    let r2 = dx * dx + dy * dy;
    let f_over_r = q1 * q2 / (r2 * r2.sqrt());
    let f_over_r = if r2 == 0.0 { 0.0 } else { f_over_r };
    (f_over_r * dx, f_over_r * dy)
}

/// Lane-wise [`coulomb`]: the identical operation sequence — two squares,
/// one add, one sqrt, two multiplies, one divide, the zero-distance value
/// select, two multiplies — applied to four particles at once, one per
/// lane. Because every lane operation is IEEE-754 correctly rounded and
/// no term is reassociated or fused, each lane's result is bit-identical
/// to the scalar evaluation on that lane's operands (DESIGN.md §10).
#[inline(always)]
pub(crate) fn coulomb_lanes<V: crate::simd::Lanes>(dx: V, dy: V, q1: V, q2: V) -> (V, V) {
    let r2 = dx.mul(dx).add(dy.mul(dy));
    let f_over_r = q1.mul(q2).div(r2.mul(r2.sqrt()));
    let f_over_r = f_over_r.zero_where_zero(r2);
    (f_over_r.mul(dx), f_over_r.mul(dy))
}

/// Fast-tier [`coulomb`] magnitude: returns only `f/r = q1q2/(r²·√r²)`,
/// computed as `q1q2·rs³` with `rs = rsqrt(r²)` — a hardware reciprocal
/// square-root estimate refined by Newton–Raphson instead of the exact
/// `sqrt + div` chain — with `r²` itself accumulated by a fused
/// multiply-add. Relative error is a few ulps (DESIGN.md §12); the caller
/// multiplies by the displacement components, which lets it factor the
/// four-corner sum. The zero-distance guard is value-selected exactly as
/// in the exact kernel (`rsqrt(0)` lanes come back `inf`/`NaN` and are
/// cleared here).
#[inline(always)]
pub(crate) fn coulomb_f_over_r_fast<V: crate::simd::Lanes>(dx: V, dy: V, q1q2: V) -> V {
    let r2 = dx.mul_add(dx, dy.mul(dy));
    let rs = r2.rsqrt();
    let f_over_r = q1q2.mul(rs).mul(rs.mul(rs));
    f_over_r.zero_where_zero(r2)
}

/// Total Coulomb force on a particle with charge `qp` at position `(x, y)`
/// from the four fixed charges at the corners of its containing cell.
///
/// Corner charges are derived from the column parity rule; no mesh array is
/// required (the mesh is formulaic), though parallel implementations may
/// keep one for fidelity of data-migration costs.
#[inline]
pub fn total_force(grid: &Grid, consts: &SimConstants, x: f64, y: f64, qp: f64) -> (f64, f64) {
    let (col, row) = grid.cell_of_point(x, y);
    // Displacements from the four corners to the particle. Note the right
    // corners sit at column col+1, which may be the periodic image of
    // column 0; because the grid has an even number of columns, the parity
    // of col+1 is the parity of the *physical* mesh column either way.
    let rx = x - col as f64;
    let ry = y - row as f64;
    let q_left = mesh_charge(col, consts.q);
    let q_right = mesh_charge(col + 1, consts.q);

    let (fx0, fy0) = coulomb(rx, ry, q_left, qp); // bottom-left
    let (fx1, fy1) = coulomb(rx, ry - consts.h, q_left, qp); // top-left
    let (fx2, fy2) = coulomb(rx - consts.h, ry, q_right, qp); // bottom-right
    let (fx3, fy3) = coulomb(rx - consts.h, ry - consts.h, q_right, qp); // top-right

    // Pair the symmetric contributions (bottom+top of each column) so the
    // y-components cancel bit-exactly when ry == h/2.
    ((fx0 + fx1) + (fx2 + fx3), (fy0 + fy1) + (fy2 + fy3))
}

/// The denominator of paper eq. 3: `q · (cos θ / d1² + cos φ / d2²)`,
/// evaluated through the same [`coulomb`] kernel used at run time so the
/// assigned charge and the realized force agree to within rounding.
///
/// For a particle on the horizontal axis of symmetry at relative position
/// `x_rel ∈ (0, h)`, this equals half the magnitude of the horizontal
/// acceleration the particle would feel with unit charge (the other half
/// coming from the second corner of each column).
#[inline]
pub fn charge_denominator(consts: &SimConstants, x_rel: f64) -> f64 {
    let h = consts.h;
    // Unit-charge force from one bottom-left corner and one bottom-right
    // corner at vertical offset h/2; cos θ / d1² is exactly the x-component
    // of the unit Coulomb force from the left corner.
    let (fx_left, _) = coulomb(x_rel, h / 2.0, consts.q, 1.0);
    let (fx_right, _) = coulomb(x_rel - h, h / 2.0, -consts.q, 1.0);
    fx_left + fx_right
}

/// Particle charge per paper eq. 3, for relative position `x_rel` and
/// odd multiple `2k+1`, with `sign = ±1` selecting the orientation of the
/// charge relative to the containing column's mesh charge.
///
/// A particle whose charge has the *same* sign as its column's mesh charge
/// is pushed towards increasing x; opposite sign pushes it towards
/// decreasing x.
#[inline]
pub fn particle_charge(consts: &SimConstants, x_rel: f64, k: u32, sign: f64) -> f64 {
    let denom = charge_denominator(consts, x_rel);
    let base = consts.h / (consts.dt * consts.dt * denom);
    sign * (2.0 * k as f64 + 1.0) * base
}

/// Charge sign that makes a particle initially in cell column `col` drift in
/// direction `dir` (+1 → towards increasing x, −1 → decreasing x).
///
/// Paper §III-E1: particles with positive charge in even columns (and
/// negative in odd columns) shift right; flipping the sign flips the drift.
#[inline]
pub fn sign_for_direction(col: usize, dir: i8) -> f64 {
    debug_assert!(dir == 1 || dir == -1);
    column_sign(col) * dir as f64
}

/// Drift direction (+1/−1) implied by a particle's charge sign and its
/// initial cell column — the inverse of [`sign_for_direction`].
#[inline]
pub fn direction_from_charge(col: usize, qp: f64) -> i8 {
    if column_sign(col) * qp > 0.0 {
        1
    } else {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> SimConstants {
        SimConstants::default()
    }

    #[test]
    fn mesh_charge_alternates_by_column() {
        assert_eq!(mesh_charge(0, 1.0), 1.0);
        assert_eq!(mesh_charge(1, 1.0), -1.0);
        assert_eq!(mesh_charge(2, 1.0), 1.0);
        assert_eq!(mesh_charge(5997, 3.5), -3.5);
    }

    #[test]
    fn coulomb_repulsive_same_sign() {
        let (fx, fy) = coulomb(1.0, 0.0, 1.0, 1.0);
        assert!(fx > 0.0, "same-sign charges must repel");
        assert_eq!(fy, 0.0);
        let (fx, _) = coulomb(1.0, 0.0, 1.0, -1.0);
        assert!(fx < 0.0, "opposite-sign charges must attract");
    }

    #[test]
    fn coulomb_coincident_corner_contributes_zero_force() {
        // r² = 0 must not produce 0/0 = NaN: a particle exactly on a mesh
        // corner gets no force contribution from that corner.
        let (fx, fy) = coulomb(0.0, 0.0, 1.0, 1.0);
        assert_eq!(fx, 0.0);
        assert_eq!(fy, 0.0);
        // The other three corners still contribute finite force.
        let g = Grid::new(8).unwrap();
        let c = consts();
        let (ax, ay) = total_force(&g, &c, 3.0, 5.0, 0.7);
        assert!(ax.is_finite() && ay.is_finite(), "ax={ax} ay={ay}");
    }

    #[test]
    fn coulomb_magnitude_inverse_square() {
        let (f1, _) = coulomb(1.0, 0.0, 1.0, 1.0);
        let (f2, _) = coulomb(2.0, 0.0, 1.0, 1.0);
        assert!((f1 / f2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn vertical_force_cancels_on_axis_of_symmetry() {
        let g = Grid::new(8).unwrap();
        let c = consts();
        // Any relative x, y exactly at cell mid-height.
        for x in [0.5, 1.25, 3.75, 6.5] {
            let (_, fy) = total_force(&g, &c, x, 2.5, 0.7);
            assert_eq!(fy, 0.0, "fy must cancel bit-exactly at ry = 0.5 (x={x})");
        }
    }

    #[test]
    fn horizontal_force_direction_matches_column_parity() {
        let g = Grid::new(8).unwrap();
        let c = consts();
        // Positive particle in even column: pushed right.
        let (fx, _) = total_force(&g, &c, 0.5, 0.5, 1.0);
        assert!(fx > 0.0);
        // Positive particle in odd column: pushed left.
        let (fx, _) = total_force(&g, &c, 1.5, 0.5, 1.0);
        assert!(fx < 0.0);
        // Negative particle in odd column: pushed right.
        let (fx, _) = total_force(&g, &c, 1.5, 0.5, -1.0);
        assert!(fx > 0.0);
    }

    #[test]
    fn assigned_charge_yields_exact_unit_acceleration() {
        // With charge from eq. 3 (k = 0), the acceleration magnitude must be
        // 2h/dt² to within an ulp, giving displacement h in the first step.
        let g = Grid::new(8).unwrap();
        let c = consts();
        for col in 0..4usize {
            let qp = particle_charge(&c, 0.5, 0, sign_for_direction(col, 1));
            let (x, y) = g.cell_center(col, 0);
            let (ax, ay) = total_force(&g, &c, x, y, qp);
            assert!(
                (ax - 2.0).abs() < 1e-13,
                "col {col}: ax = {ax}, expected 2h/dt² = 2"
            );
            assert_eq!(ay, 0.0);
        }
    }

    #[test]
    fn k_scales_acceleration_oddly() {
        let g = Grid::new(8).unwrap();
        let c = consts();
        for k in [0u32, 1, 2, 5] {
            let qp = particle_charge(&c, 0.5, k, 1.0);
            let (ax, _) = total_force(&g, &c, 0.5, 0.5, qp);
            let want = 2.0 * (2.0 * k as f64 + 1.0);
            assert!(
                (ax - want).abs() < 1e-12 * want,
                "k={k}: ax={ax}, want {want}"
            );
        }
    }

    #[test]
    fn direction_roundtrip() {
        let c = consts();
        for col in 0..6usize {
            for dir in [1i8, -1] {
                let qp = particle_charge(&c, 0.5, 3, sign_for_direction(col, dir));
                assert_eq!(direction_from_charge(col, qp), dir);
            }
        }
    }

    #[test]
    fn charge_denominator_symmetric_about_half() {
        let c = consts();
        for d in [0.1, 0.2, 0.3, 0.45] {
            let lo = charge_denominator(&c, 0.5 - d);
            let hi = charge_denominator(&c, 0.5 + d);
            assert!((lo - hi).abs() < 1e-12, "denominator must be symmetric");
        }
    }

    #[test]
    fn right_corner_parity_wraps_correctly() {
        // Particle in the last column: its right corners are the periodic
        // image of column 0, whose parity (even) equals that of column L
        // because L is even.
        let g = Grid::new(8).unwrap();
        let c = consts();
        let qp = particle_charge(&c, 0.5, 0, sign_for_direction(7, 1));
        let (ax, _) = total_force(&g, &c, 7.5, 0.5, qp);
        assert!((ax - 2.0).abs() < 1e-13, "ax={ax}");
    }
}
