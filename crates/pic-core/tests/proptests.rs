//! Property-based tests of the kernel specification's invariants.

use pic_core::charge::{
    direction_from_charge, mesh_charge, particle_charge, sign_for_direction, total_force,
    SimConstants,
};
use pic_core::dist::{largest_remainder, Distribution};
use pic_core::engine::Simulation;
use pic_core::events::{Event, Region};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::motion::advance_particle;
use pic_core::particle::Particle;
use pic_core::verify::{expected_position, triangular_id_sum, verify_all, DEFAULT_TOLERANCE};
use proptest::prelude::*;

fn grids() -> impl Strategy<Value = Grid> {
    (1usize..64).prop_map(|half| Grid::new(half * 2).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wrapped coordinates always land in [0, L), and cell-center offsets
    /// survive exactly.
    #[test]
    fn wrap_coord_in_range(grid in grids(), x in -1e6f64..1e6) {
        let w = grid.wrap_coord(x);
        prop_assert!((0.0..grid.extent()).contains(&w), "wrap({x}) = {w}");
    }

    #[test]
    fn wrap_cell_in_range(grid in grids(), i in -100_000i64..100_000) {
        let c = grid.wrap_cell(i);
        prop_assert!(c < grid.ncells());
        // Consistency: wrapping i and i + n agree.
        prop_assert_eq!(c, grid.wrap_cell(i + grid.ncells() as i64));
    }

    /// Mesh charge depends only on column parity.
    #[test]
    fn mesh_charge_parity(col in 0usize..1_000_000, q in 0.1f64..10.0) {
        let c = mesh_charge(col, q);
        prop_assert_eq!(c.abs(), q);
        prop_assert_eq!(c > 0.0, col % 2 == 0);
        prop_assert_eq!(mesh_charge(col + 2, q), c);
    }

    /// The charge assignment of eq. 3 always realizes an acceleration of
    /// ±2(2k+1)·h/dt² at a cell center, whatever the cell and direction.
    #[test]
    fn eq3_realizes_exact_stride_acceleration(
        grid in grids(),
        colfrac in 0.0f64..1.0,
        rowfrac in 0.0f64..1.0,
        k in 0u32..20,
        dir in prop::bool::ANY,
    ) {
        let col = ((grid.ncells() as f64 * colfrac) as usize).min(grid.ncells() - 1);
        let row = ((grid.ncells() as f64 * rowfrac) as usize).min(grid.ncells() - 1);
        let dir = if dir { 1i8 } else { -1 };
        let c = SimConstants::CANONICAL;
        let qp = particle_charge(&c, 0.5, k, sign_for_direction(col, dir));
        let (x, y) = grid.cell_center(col, row);
        let (ax, ay) = total_force(&grid, &c, x, y, qp);
        let want = 2.0 * (2 * k + 1) as f64 * dir as f64;
        prop_assert!((ax - want).abs() < 1e-11 * want.abs().max(1.0), "ax={ax} want={want}");
        prop_assert_eq!(ay, 0.0);
        prop_assert_eq!(direction_from_charge(col, qp), dir);
    }

    /// One integration step from rest moves the particle exactly (2k+1)
    /// cells in x and m cells in y (up to fp tolerance), for any start cell.
    #[test]
    fn single_step_displacement(
        gridhalf in 8usize..40,
        col in 0usize..16,
        row in 0usize..16,
        k in 0u32..3,
        m in -3i32..4,
        dir in prop::bool::ANY,
    ) {
        let grid = Grid::new(gridhalf * 2).unwrap();
        let dir = if dir { 1i8 } else { -1 };
        let c = SimConstants::CANONICAL;
        let (x, y) = grid.cell_center(col, row);
        let mut p = Particle {
            id: 1, x, y, vx: 0.0, vy: m as f64,
            q: particle_charge(&c, 0.5, k, sign_for_direction(col, dir)),
            x0: x, y0: y, k, m, born_at: 0,
        };
        advance_particle(&grid, &c, &mut p);
        let (ex, ey) = expected_position(&grid, &p, 1);
        prop_assert!((grid.periodic_delta(p.x, ex)).abs() < 1e-10, "x={} expected {ex}", p.x);
        prop_assert!((grid.periodic_delta(p.y, ey)).abs() < 1e-10, "y={} expected {ey}", p.y);
    }

    /// Largest-remainder apportionment: exact total, each bucket within one
    /// of its ideal share.
    #[test]
    fn largest_remainder_properties(
        weights in prop::collection::vec(0.0f64..100.0, 1..50),
        n in 0u64..100_000,
    ) {
        let total_w: f64 = weights.iter().sum();
        let counts = largest_remainder(&weights, n);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
        if total_w > 0.0 {
            for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
                let ideal = n as f64 * w / total_w;
                prop_assert!(
                    (c as f64 - ideal).abs() <= 1.0 + 1e-9,
                    "bucket {i}: count {c} vs ideal {ideal}"
                );
            }
        }
    }

    /// Distribution column counts always sum to exactly n.
    #[test]
    fn distribution_totals(
        grid in grids(),
        n in 0u64..50_000,
        which in 0usize..5,
        r in 0.5f64..1.5,
    ) {
        let c = grid.ncells();
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r },
            2 => Distribution::Sinusoidal,
            3 => Distribution::Linear { alpha: 1.0, beta: 2.0 },
            _ => Distribution::Patch { x0: 0, x1: (c / 2).max(1), y0: 0, y1: (c / 2).max(1) },
        };
        let counts = dist.column_counts(c, n);
        prop_assert_eq!(counts.len(), c);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
    }

    /// Full simulation: any spec-conforming configuration verifies after
    /// any number of steps.
    #[test]
    fn any_configuration_verifies(
        gridhalf in 4usize..24,
        n in 1u64..400,
        k in 0u32..3,
        m in -2i32..3,
        dir in prop::bool::ANY,
        steps in 0u32..120,
        which in 0usize..3,
    ) {
        let grid = Grid::new(gridhalf * 2).unwrap();
        prop_assume!(2 * k as u64 + 1 <= grid.ncells() as u64);
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r: 0.93 },
            _ => Distribution::Sinusoidal,
        };
        let cfg = InitConfig::new(grid, n, dist)
            .with_k(k)
            .with_m(m)
            .with_dir(if dir { 1 } else { -1 });
        let mut sim = Simulation::new(cfg.build().unwrap());
        sim.run(steps);
        let report = sim.verify();
        prop_assert!(report.passed(), "{report:?}");
        prop_assert_eq!(report.id_sum, triangular_id_sum(n));
    }

    /// Any single-particle position corruption beyond tolerance is caught.
    #[test]
    fn corruption_always_detected(
        victim_frac in 0.0f64..1.0,
        offset in prop::sample::select(vec![1.0f64, -1.0, 2.0, 0.001, -0.5]),
        steps in 1u32..40,
    ) {
        let grid = Grid::new(32).unwrap();
        let cfg = InitConfig::new(grid, 100, Distribution::Uniform).with_m(1);
        let mut sim = Simulation::new(cfg.build().unwrap());
        sim.run(steps);
        let idx = ((100.0 * victim_frac) as usize).min(99);
        sim.mutate_particle(idx, |p| p.x = grid.wrap_coord(p.x + offset));
        let report = sim.verify();
        prop_assert_eq!(report.position_failures, 1);
        prop_assert!(!report.passed());
    }

    /// Injection/removal events keep the ledger consistent: the run always
    /// verifies and the population size is exactly as scheduled.
    #[test]
    fn events_preserve_verification(
        inject_at in 1u32..20,
        remove_at in 21u32..40,
        inject_n in 1u64..100,
        remove_n in 1u64..100,
        steps in 41u32..80,
    ) {
        let grid = Grid::new(32).unwrap();
        let region = Region { x0: 0, x1: 16, y0: 0, y1: 16 };
        let setup = InitConfig::new(grid, 200, Distribution::Uniform)
            .with_m(1)
            .build()
            .unwrap()
            .with_event(Event::inject(inject_at, region, inject_n, 0, 0, 1))
            .with_event(Event::remove(remove_at, Region::whole(32), remove_n));
        let mut sim = Simulation::new(setup);
        sim.run(steps);
        let report = sim.verify();
        prop_assert!(report.passed(), "{report:?}");
        prop_assert_eq!(sim.particle_count() as u64, 200 + inject_n - remove_n.min(200 + inject_n));
    }

    /// Particle wire encoding round-trips arbitrary field values bit-exactly.
    #[test]
    fn particle_wire_roundtrip(
        id in any::<u64>(),
        x in -1e9f64..1e9,
        y in -1e9f64..1e9,
        vx in -1e9f64..1e9,
        vy in -1e9f64..1e9,
        q in -1e3f64..1e3,
        k in any::<u32>(),
        m in any::<i32>(),
        born in any::<u32>(),
    ) {
        let p = Particle { id, x, y, vx, vy, q, x0: x, y0: y, k, m, born_at: born };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let back = Particle::decode(&buf).unwrap();
        prop_assert_eq!(p, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gridded force (stored mesh) is bit-identical to the formulaic force
    /// for arbitrary subgrids and particle positions inside them.
    #[test]
    fn charge_grid_force_equivalence(
        gridhalf in 4usize..32,
        block in any::<u64>(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        qp in -2.0f64..2.0,
    ) {
        use pic_core::charge_grid::ChargeGrid;
        use pic_core::charge::total_force;
        let grid = Grid::new(gridhalf * 2).unwrap();
        let n = grid.ncells();
        let x0 = (block % n as u64) as usize;
        let w = 1 + ((block >> 16) % (n - x0) as u64) as usize;
        let y0 = ((block >> 32) % n as u64) as usize;
        let h = 1 + ((block >> 48) % (n - y0) as u64) as usize;
        let consts = SimConstants::CANONICAL;
        let cg = ChargeGrid::build(&grid, &consts, (x0, x0 + w), (y0, y0 + h));
        prop_assert!(cg.verify_against_formula(&grid, &consts));
        prop_assume!(qp.abs() > 1e-6);
        // A position inside the owned block.
        let x = x0 as f64 + fx * w as f64 * 0.999;
        let y = y0 as f64 + fy * h as f64 * 0.999;
        let (ax, ay) = total_force(&grid, &consts, x, y, qp);
        let (bx, by) = cg.total_force(&grid, &consts, x, y, qp);
        prop_assert_eq!(ax.to_bits(), bx.to_bits());
        prop_assert_eq!(ay.to_bits(), by.to_bits());
    }

    /// SoA batches behave exactly like Vec<Particle> under random
    /// push/swap_remove sequences.
    #[test]
    fn soa_matches_vec_model(ops in prop::collection::vec(any::<u64>(), 1..120)) {
        use pic_core::soa::ParticleBatch;
        let grid = Grid::new(16).unwrap();
        let seed = InitConfig::new(grid, 30, Distribution::Uniform)
            .build()
            .unwrap()
            .particles;
        let mut model: Vec<Particle> = Vec::new();
        let mut batch = ParticleBatch::new();
        for op in ops {
            if op % 3 != 0 || model.is_empty() {
                let p = seed[(op % 30) as usize];
                model.push(p);
                batch.push(p);
            } else {
                let i = (op as usize / 3) % model.len();
                let a = model.swap_remove(i);
                let b = batch.swap_remove(i);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(model.len(), batch.len());
        }
        prop_assert_eq!(&batch.to_particles(), &model);
    }

    /// Checkpoints round-trip arbitrary simulation states.
    #[test]
    fn checkpoint_roundtrip_random_state(
        n in 1u64..200,
        steps in 0u32..60,
        k in 0u32..3,
        m in -2i32..3,
    ) {
        use pic_core::checkpoint::CheckpointData;
        use pic_core::engine::SweepMode;
        let grid = Grid::new(32).unwrap();
        prop_assume!(2 * k as u64 + 1 <= 32);
        let setup = InitConfig::new(grid, n, Distribution::Geometric { r: 0.93 })
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap();
        let mut sim = Simulation::new(setup);
        sim.run(steps);
        let cp = sim.checkpoint();
        let back = CheckpointData::decode(&cp.encode()).unwrap();
        prop_assert_eq!(&cp, &back);
        let resumed = Simulation::restore(back, SweepMode::Serial);
        prop_assert_eq!(sim.particles(), resumed.particles());
    }

    /// Analytic trajectories agree with simulation for arbitrary particles
    /// at arbitrary steps.
    #[test]
    fn trajectory_oracle(
        gridhalf in 4usize..16,
        col in 0usize..8,
        row in 0usize..8,
        k in 0u32..3,
        m in -3i32..4,
        dirb in prop::bool::ANY,
        probe in 0u64..50,
    ) {
        use pic_core::trajectory::state_at;
        use pic_core::charge::{particle_charge, sign_for_direction};
        use pic_core::motion::advance_particle;
        let grid = Grid::new(gridhalf * 2).unwrap();
        prop_assume!(2 * k as u64 + 1 <= grid.ncells() as u64);
        let consts = SimConstants::CANONICAL;
        let dir = if dirb { 1i8 } else { -1 };
        let (x, y) = grid.cell_center(col, row);
        let mut p = Particle {
            id: 1, x, y, vx: 0.0, vy: m as f64,
            q: particle_charge(&consts, 0.5, k, sign_for_direction(col, dir)),
            x0: x, y0: y, k, m, born_at: 0,
        };
        for _ in 0..probe {
            advance_particle(&grid, &consts, &mut p);
        }
        let oracle = state_at(&grid, &consts, &p, probe);
        prop_assert!(grid.periodic_delta(p.x, oracle.x).abs() < 1e-8);
        prop_assert!(grid.periodic_delta(p.y, oracle.y).abs() < 1e-8);
        prop_assert!((p.vx - oracle.vx).abs() < 1e-8, "vx {} vs {}", p.vx, oracle.vx);
        prop_assert!((p.vy - oracle.vy).abs() < 1e-8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked SoA sweep is bit-identical to the serial AoS sweep for
    /// every distribution family, with injection and removal events firing
    /// mid-run, across degenerate and non-dividing chunk sizes.
    #[test]
    fn chunked_soa_bitwise_matches_aos_serial_all_distributions(
        which in 0usize..5,
        n in 50u64..300,
        k in 0u32..2,
        m in -2i32..3,
        steps in 10u32..50,
        inject_n in 1u64..60,
        remove_n in 1u64..60,
        r in 0.8f64..1.2,
    ) {
        use pic_core::engine::SweepMode;
        let grid = Grid::new(32).unwrap();
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r },
            2 => Distribution::Sinusoidal,
            3 => Distribution::Linear { alpha: 1.0, beta: 2.0 },
            _ => Distribution::Patch { x0: 4, x1: 16, y0: 4, y1: 16 },
        };
        let setup = InitConfig::new(grid, n, dist)
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap()
            .with_event(Event::inject(3, Region { x0: 0, x1: 16, y0: 0, y1: 16 }, inject_n, 0, 0, 1))
            .with_event(Event::remove(7, Region::whole(32), remove_n));
        let mut reference = Simulation::with_mode(setup.clone(), SweepMode::Serial);
        reference.run(steps);
        let expect = reference.particles();
        for chunk in [1usize, 7, 64, n as usize] {
            let mut sim = Simulation::with_mode(setup.clone(), SweepMode::SoaChunked)
                .with_chunk_size(chunk);
            sim.run(steps);
            // PartialEq on Particle is field-exact over the raw f64s, so
            // equality here means bit-for-bit identical trajectories.
            prop_assert_eq!(&sim.particles(), &expect, "chunk {} diverged", chunk);
            prop_assert_eq!(sim.expected_id_sum(), reference.expected_id_sum());
            let report = sim.verify();
            prop_assert!(report.passed(), "chunk {chunk}: {report:?}");
        }
    }
    /// The cell-binned sweep is bit-identical to the serial AoS sweep for
    /// every distribution family, with injection and removal events firing
    /// mid-run, across rebin intervals {1, 3, 16} and across every SIMD
    /// backend executable on this host (widest vector down to forced
    /// scalar) — the counting-sort traversal reorder, the parity-hoisted
    /// kernel, and the lane-per-particle vectorization change scheduling
    /// and bookkeeping only, never arithmetic.
    #[test]
    fn binned_bitwise_matches_aos_serial_all_distributions(
        which in 0usize..5,
        n in 50u64..300,
        k in 0u32..2,
        m in -2i32..3,
        steps in 10u32..50,
        inject_n in 1u64..60,
        remove_n in 1u64..60,
        r in 0.8f64..1.2,
    ) {
        use pic_core::engine::SweepMode;
        let grid = Grid::new(32).unwrap();
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r },
            2 => Distribution::Sinusoidal,
            3 => Distribution::Linear { alpha: 1.0, beta: 2.0 },
            _ => Distribution::Patch { x0: 4, x1: 16, y0: 4, y1: 16 },
        };
        let setup = InitConfig::new(grid, n, dist)
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap()
            .with_event(Event::inject(3, Region { x0: 0, x1: 16, y0: 0, y1: 16 }, inject_n, 0, 0, 1))
            .with_event(Event::remove(7, Region::whole(32), remove_n));
        let mut reference = Simulation::with_mode(setup.clone(), SweepMode::Serial);
        reference.run(steps);
        let expect = reference.particles();
        for rebin in [1u32, 3, 16] {
            for backend in pic_core::simd::SimdBackend::available() {
                let mut sim = Simulation::with_mode(setup.clone(), SweepMode::SoaBinned)
                    .with_rebin_interval(rebin)
                    .with_simd_backend(backend);
                sim.run(steps);
                // PartialEq on Particle is field-exact over the raw f64s, so
                // equality here means bit-for-bit identical trajectories.
                prop_assert_eq!(
                    &sim.particles(), &expect,
                    "rebin {} backend {} diverged", rebin, backend.name()
                );
                prop_assert_eq!(sim.expected_id_sum(), reference.expected_id_sum());
                let report = sim.verify();
                prop_assert!(report.passed(), "rebin {rebin} backend {}: {report:?}", backend.name());
            }
        }
    }

    /// The fast kernel tier (`soa-binned-fast`) never drifts from the
    /// exact binned sweep by more than the analytic tolerance, for every
    /// distribution family, across rebin intervals {1, 3, 16} and every
    /// SIMD backend executable on this host — and with the scalar backend
    /// it is bit-identical (the fast dispatcher falls back to the exact
    /// scalar kernel, which is what `PIC_NO_SIMD=1` forces).
    #[test]
    fn fast_tier_drift_bounded_by_analytic_tolerance(
        which in 0usize..5,
        n in 50u64..300,
        k in 0u32..2,
        m in -2i32..3,
        steps in 10u32..50,
        r in 0.8f64..1.2,
    ) {
        use pic_core::engine::SweepMode;
        use pic_core::simd::SimdBackend;
        use pic_core::verify::analytic_tolerance;
        let grid = Grid::new(32).unwrap();
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r },
            2 => Distribution::Sinusoidal,
            3 => Distribution::Linear { alpha: 1.0, beta: 2.0 },
            _ => Distribution::Patch { x0: 4, x1: 16, y0: 4, y1: 16 },
        };
        let setup = InitConfig::new(grid, n, dist)
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap();
        let max_stride = (2 * k as u64 + 1).max(m.unsigned_abs() as u64);
        for rebin in [1u32, 3, 16] {
            let mut exact = Simulation::with_mode(setup.clone(), SweepMode::SoaBinned)
                .with_rebin_interval(rebin);
            exact.run(steps);
            let expect = exact.particles();
            for backend in SimdBackend::available() {
                let mut sim = Simulation::with_mode(setup.clone(), SweepMode::SoaBinnedFast)
                    .with_rebin_interval(rebin)
                    .with_simd_backend(backend);
                sim.run(steps);
                let got = sim.particles();
                prop_assert_eq!(got.len(), expect.len());
                if backend == SimdBackend::Scalar {
                    prop_assert_eq!(&got, &expect,
                        "scalar fast tier must stay bit-identical (rebin {})", rebin);
                } else {
                    let tol = analytic_tolerance(steps as u64, max_stride);
                    for (g, e) in got.iter().zip(&expect) {
                        prop_assert_eq!(g.id, e.id);
                        let dx = grid.periodic_delta(g.x, e.x).abs();
                        let dy = grid.periodic_delta(g.y, e.y).abs();
                        prop_assert!(dx <= tol && dy <= tol,
                            "id {} drift ({dx:.3e}, {dy:.3e}) > {tol:.3e} \
                             (rebin {}, backend {})", g.id, rebin, backend.name());
                    }
                }
                // The analytic verification gate the CLI applies.
                let report = sim.verify();
                prop_assert!(report.passed(), "rebin {rebin} backend {}: {report:?}", backend.name());
            }
        }
    }

    /// SIMD span tails: a patch distribution narrowed to a single column
    /// yields per-cell spans of every length in 0..=7, exercising the
    /// quartet body (4-lane groups) and the scalar remainder loop at every
    /// possible tail length. All executable backends must be bit-identical
    /// to the serial AoS reference.
    #[test]
    fn simd_span_tails_bitwise_match_aos_serial(
        span_len in 0u64..8,
        extra_cols in 0usize..3,
        k in 0u32..2,
        m in -2i32..3,
        steps in 5u32..25,
    ) {
        use pic_core::engine::SweepMode;
        use pic_core::simd::SimdBackend;
        let grid = Grid::new(32).unwrap();
        // One narrow patch column plus a few neighbours: per-cell spans of
        // length span_len, including the empty-population edge case.
        let x1 = 5 + extra_cols;
        let n = span_len * (1 + extra_cols as u64);
        let setup = InitConfig::new(grid, n, Distribution::Patch { x0: 4, x1, y0: 4, y1: 20 })
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap();
        let mut reference = Simulation::with_mode(setup.clone(), SweepMode::Serial);
        reference.run(steps);
        let expect = reference.particles();
        for backend in SimdBackend::available() {
            let mut sim = Simulation::with_mode(setup.clone(), SweepMode::SoaBinned)
                .with_rebin_interval(1)
                .with_simd_backend(backend);
            sim.run(steps);
            prop_assert_eq!(
                &sim.particles(), &expect,
                "span {} backend {} diverged", span_len, backend.name()
            );
            prop_assert!(sim.verify().passed());
        }
    }

    /// Force-field parity antisymmetry — the invariant behind the binned
    /// kernel's corner-charge hoisting. At the mirrored relative position
    /// (`1 − f`, dyadic so the mirror is exact) in a column of opposite
    /// parity, the x-force negates bit-exactly and the y-force is
    /// bit-identical: negation and squaring are sign-symmetric in IEEE
    /// arithmetic and the kernel's corner pairing is commutative.
    #[test]
    fn force_field_parity_antisymmetry(
        gridhalf in 2usize..32,
        even_col in 0usize..16,
        odd_col in 0usize..16,
        fx_num in 1u64..64,
        fy_num in 0u64..64,
        qp in -5.0f64..5.0,
    ) {
        let grid = Grid::new(gridhalf * 2).unwrap();
        let even_col = (even_col * 2) % grid.ncells();
        let odd_col = (odd_col * 2 + 1) % grid.ncells();
        let f = fx_num as f64 / 64.0; // dyadic: 1 - f is exact
        let row = (fy_num as usize / 8) % grid.ncells();
        let y = row as f64 + (fy_num % 8) as f64 / 8.0;
        // Exact negation up to the sign of zero: a cancelling sum yields
        // +0.0 in both parities (IEEE `-a + a = +0.0`), so a bitwise
        // negation check must treat ±0.0 as one value.
        let negates = |a: f64, b: f64| (a == 0.0 && b == 0.0) || a.to_bits() == (-b).to_bits();
        let (ax_e, ay_e) = total_force(&grid, &SimConstants::CANONICAL, even_col as f64 + f, y, qp);
        let (ax_o, ay_o) = total_force(&grid, &SimConstants::CANONICAL, odd_col as f64 + (1.0 - f), y, qp);
        prop_assert!(negates(ax_e, ax_o), "fx must negate exactly: {ax_e} vs {ax_o}");
        prop_assert_eq!(ay_e.to_bits(), ay_o.to_bits(), "fy must match exactly");
        // Same relative position, opposite parity: every corner charge
        // negates, so the whole force negates bit-exactly.
        let (ax_n, ay_n) = total_force(&grid, &SimConstants::CANONICAL, odd_col as f64 + f, y, qp);
        prop_assert!(negates(ax_e, ax_n), "{ax_e} vs {ax_n}");
        prop_assert!(negates(ay_e, ay_n), "{ay_e} vs {ay_n}");
    }

    /// The binned store's O(columns) histogram fast path agrees with the
    /// O(n) scan for every distribution family with mid-run injection and
    /// removal, at every step of the run.
    #[test]
    fn binned_histogram_matches_scan_all_distributions(
        which in 0usize..5,
        n in 50u64..300,
        k in 0u32..2,
        m in -2i32..3,
        steps in 10u32..30,
        rebin in 1u32..6,
        inject_n in 1u64..60,
        remove_n in 1u64..60,
    ) {
        use pic_core::engine::SweepMode;
        let grid = Grid::new(32).unwrap();
        let dist = match which {
            0 => Distribution::Uniform,
            1 => Distribution::Geometric { r: 0.9 },
            2 => Distribution::Sinusoidal,
            3 => Distribution::Linear { alpha: 1.0, beta: 2.0 },
            _ => Distribution::Patch { x0: 4, x1: 16, y0: 4, y1: 16 },
        };
        let setup = InitConfig::new(grid, n, dist)
            .with_k(k)
            .with_m(m)
            .build()
            .unwrap()
            .with_event(Event::inject(3, Region { x0: 0, x1: 16, y0: 0, y1: 16 }, inject_n, 0, 0, 1))
            .with_event(Event::remove(7, Region::whole(32), remove_n));
        let mut sim = Simulation::with_mode(setup, SweepMode::SoaBinned)
            .with_rebin_interval(rebin);
        let mut h = Vec::new();
        for _ in 0..steps {
            sim.step();
            sim.column_histogram_into(&mut h);
            let mut scan = vec![0u64; grid.ncells()];
            for p in sim.particles() {
                scan[grid.cell_of(p.x)] += 1;
            }
            prop_assert_eq!(&h, &scan, "histogram diverged at step {}", sim.step_index());
        }
    }
}

/// Deterministic regression: same config builds identical populations.
#[test]
fn init_is_deterministic() {
    let grid = Grid::new(64).unwrap();
    let mk = || {
        InitConfig::new(grid, 5_000, Distribution::PAPER_SKEW)
            .with_k(1)
            .with_m(2)
            .build()
            .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.particles, b.particles);
}

/// Verify-all over a partitioned population equals verify over the whole.
#[test]
fn partitioned_verification_merges() {
    let grid = Grid::new(32).unwrap();
    let cfg = InitConfig::new(grid, 300, Distribution::Sinusoidal).with_m(1);
    let mut sim = Simulation::new(cfg.build().unwrap());
    sim.run(25);
    let whole = sim.verify();
    let particles = sim.particles();
    let (a, b) = particles.split_at(100);
    let ra = verify_all(&grid, a, 25, 0, DEFAULT_TOLERANCE);
    let rb = verify_all(&grid, b, 25, 0, DEFAULT_TOLERANCE);
    let mut merged = ra.merge(&rb);
    merged.expected_id_sum = triangular_id_sum(300);
    assert_eq!(merged.checked, whole.checked);
    assert_eq!(merged.id_sum, whole.id_sum);
    assert_eq!(merged.passed(), whole.passed());
}
