//! Steady-state allocation audit for the single-process engine.
//!
//! The perf contract (see `DESIGN.md`, "Sweep modes and the memory layout
//! contract") is that once the simulation is warmed up — events exhausted,
//! sweep pool spawned, histogram scratch sized — the per-step loop performs
//! **zero heap allocations** in every sweep mode. This test installs a
//! counting `#[global_allocator]` and asserts exactly that.
//!
//! The counter is scoped to the test's own thread (const-initialized TLS
//! flag, so reading it never allocates): the libtest harness's main thread
//! allocates while parked waiting for results, and must not pollute the
//! audit.
//!
//! Scope: the counted region is the engine step + histogram readback loop.
//! `verify()` and `checkpoint()` materialize particle vectors by design and
//! are not part of the steady-state loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use pic_core::dist::Distribution;
use pic_core::engine::{Simulation, SweepMode};
use pic_core::events::{Event, Region};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::simd::SimdBackend;

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True only on the auditing thread, only inside the counted region.
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    let counted = IN_SCOPE.try_with(Cell::get).unwrap_or(false);
    if counted {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn warmed_sim(mode: SweepMode, rebin: u32, backend: Option<SimdBackend>) -> Simulation {
    let grid = Grid::new(32).unwrap();
    let setup = InitConfig::new(grid, 3_000, Distribution::Geometric { r: 0.9 })
        .with_m(1)
        .build()
        .unwrap()
        // Events exercise the injection/removal paths during warm-up and
        // are exhausted before the counted region begins.
        .with_event(Event::inject(
            2,
            Region {
                x0: 0,
                x1: 8,
                y0: 0,
                y1: 8,
            },
            64,
            0,
            0,
            1,
        ))
        .with_event(Event::remove(
            4,
            Region {
                x0: 0,
                x1: 32,
                y0: 0,
                y1: 16,
            },
            32,
        ));
    let mut sim = Simulation::with_mode(setup, mode)
        .with_chunk_size(256)
        .with_rebin_interval(rebin);
    if let Some(b) = backend {
        sim = sim.with_simd_backend(b);
    }
    sim.run(8); // past all events; pool spawned; binned scratch warmed
    sim
}

#[test]
fn steady_state_step_loop_allocates_nothing() {
    // SoaBinned runs at rebin 1 (counting sort + gather in *every* counted
    // step — the strictest case) and at 3 (rebins interleave with plain
    // sweeps, exercising both the fresh and stale histogram paths). The
    // binned rows run once on the detected SIMD backend and once with the
    // vector path forced off: the quartet body, the scalar remainder loop,
    // and the forced-scalar kernel must all stay allocation-free. The
    // SoaBinnedFast rows additionally pin the fast-tier kernel and the
    // particle–thread binding bookkeeping (the owner-span partition is
    // recomputed at every rebin and must reuse its capacity).
    for (mode, rebin, backend) in [
        (SweepMode::Serial, 1, None),
        (SweepMode::Parallel, 1, None),
        (SweepMode::Soa, 1, None),
        (SweepMode::SoaChunked, 1, None),
        (SweepMode::SoaBinned, 1, None),
        (SweepMode::SoaBinned, 3, None),
        (SweepMode::SoaBinned, 1, Some(SimdBackend::Scalar)),
        (SweepMode::SoaBinned, 3, Some(SimdBackend::Scalar)),
        (SweepMode::SoaBinnedFast, 1, None),
        (SweepMode::SoaBinnedFast, 3, None),
        (SweepMode::SoaBinnedFast, 1, Some(SimdBackend::Scalar)),
        (SweepMode::SoaBinnedFast, 3, Some(SimdBackend::Scalar)),
    ] {
        let mut sim = warmed_sim(mode, rebin, backend);
        let mut cols = Vec::new();
        let mut rows = Vec::new();
        // Size the histogram scratch once, then go quiet.
        sim.column_histogram_into(&mut cols);
        sim.row_histogram_into(&mut rows);

        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        IN_SCOPE.with(|s| s.set(true));
        for _ in 0..50 {
            sim.step();
            sim.column_histogram_into(&mut cols);
            sim.row_histogram_into(&mut rows);
        }
        IN_SCOPE.with(|s| s.set(false));
        let after = ALLOC_CALLS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{mode:?}: steady-state loop must not allocate ({} allocations in 50 steps)",
            after - before
        );
        // The loop actually did work: the histograms account for every
        // particle.
        assert_eq!(cols.iter().sum::<u64>(), 3_000 + 64 - 32);
    }
}
