//! Microbenchmarks of the kernel's primitive operations: the force
//! evaluation and particle push (the per-particle cost the cost model's
//! `particle_ns` abstracts), verification, wire codec, the analytic load
//! model, and the balancer decision procedures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pic_ampi::balancer::{greedy_assign, refine_assign};
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_core::charge::{total_force, SimConstants};
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::motion::advance_all;
use pic_core::particle::Particle;
use pic_core::verify::{verify_all, DEFAULT_TOLERANCE};
use pic_par::diffusion::diffuse_xcuts;

fn population(n: u64) -> (Grid, Vec<Particle>) {
    let grid = Grid::new(512).unwrap();
    let setup = InitConfig::new(grid, n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    (grid, setup.particles)
}

fn bench_force(c: &mut Criterion) {
    let grid = Grid::new(512).unwrap();
    let consts = SimConstants::CANONICAL;
    c.bench_function("force/total_force", |b| {
        b.iter(|| {
            total_force(
                &grid,
                &consts,
                black_box(137.5),
                black_box(88.5),
                black_box(0.3535),
            )
        })
    });
}

fn bench_advance(c: &mut Criterion) {
    let consts = SimConstants::CANONICAL;
    let mut group = c.benchmark_group("advance");
    for &n in &[1_000u64, 10_000, 100_000] {
        let (grid, particles) = population(n);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("serial", n), &particles, |b, ps| {
            b.iter_batched(
                || ps.clone(),
                |mut ps| advance_all(&grid, &consts, &mut ps),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let (grid, particles) = population(50_000);
    let mut group = c.benchmark_group("verify");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("verify_all/50k", |b| {
        b.iter(|| verify_all(&grid, black_box(&particles), 0, 0, DEFAULT_TOLERANCE))
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let (_, particles) = population(10_000);
    let encoded = Particle::encode_all(&particles);
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode/10k", |b| {
        b.iter(|| Particle::encode_all(black_box(&particles)))
    });
    group.bench_function("decode/10k", |b| {
        b.iter(|| Particle::decode_all(black_box(&encoded)))
    });
    group.finish();
}

fn bench_loadmodel(c: &mut Criterion) {
    let mut model = ColumnLoadModel::new(Distribution::PAPER_SKEW, 11_998, 25_600_000, 0, 1);
    c.bench_function("loadmodel/advance+query", |b| {
        b.iter(|| {
            model.advance(1);
            black_box(model.count_in_rect((1_000, 1_187), (0, 1_499)))
        })
    });
    c.bench_function("loadmodel/crossing_cut", |b| {
        b.iter(|| black_box(model.crossing_cut(black_box(5_000))))
    });
}

fn bench_balancers(c: &mut Criterion) {
    // 3,072 VPs with skewed loads (Figure 7's largest configuration).
    let loads: Vec<f64> = (0..3_072).map(|i| 1.0 + (i % 97) as f64).collect();
    let current: Vec<usize> = (0..3_072).map(|i| i % 192).collect();
    let mut group = c.benchmark_group("balancer");
    group.bench_function("greedy/3072vp_192cores", |b| {
        b.iter(|| greedy_assign(black_box(&loads), 192))
    });
    group.bench_function("refine/3072vp_192cores", |b| {
        b.iter(|| refine_assign(black_box(&loads), black_box(&current), 192, 256))
    });
    group.finish();
}

fn bench_diffusion_decision(c: &mut Criterion) {
    let ncells = 11_998usize;
    let px = 64usize;
    let xcuts: Vec<usize> = (0..=px).map(|i| i * ncells / px).collect();
    let counts: Vec<u64> = (0..px as u64).map(|i| 1_000 + i * 37 % 500).collect();
    c.bench_function("diffusion/diffuse_xcuts_64cols", |b| {
        b.iter(|| diffuse_xcuts(black_box(&xcuts), black_box(&counts), 10, 50, ncells))
    });
}

fn bench_soa_vs_aos(c: &mut Criterion) {
    use pic_core::soa::ParticleBatch;
    let consts = SimConstants::CANONICAL;
    let (grid, particles) = population(100_000);
    let batch = ParticleBatch::from_particles(&particles);
    let mut group = c.benchmark_group("layout");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("aos_advance/100k", |b| {
        b.iter_batched(
            || particles.clone(),
            |mut ps| advance_all(&grid, &consts, &mut ps),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("soa_advance/100k", |b| {
        b.iter_batched(
            || batch.clone(),
            |mut bt| bt.advance_all(&grid, &consts),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_charge_grid(c: &mut Criterion) {
    use pic_core::charge_grid::ChargeGrid;
    let grid = Grid::new(512).unwrap();
    let consts = SimConstants::CANONICAL;
    let mut group = c.benchmark_group("charge_grid");
    group.bench_function("build/128x128", |b| {
        b.iter(|| ChargeGrid::build(&grid, &consts, (128, 256), (128, 256)))
    });
    let cg = ChargeGrid::build(&grid, &consts, (128, 256), (128, 256));
    group.bench_function("gridded_force", |b| {
        b.iter(|| {
            cg.total_force(
                &grid,
                &consts,
                black_box(200.5),
                black_box(200.5),
                black_box(0.35),
            )
        })
    });
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    use pic_core::engine::Simulation;
    let grid = Grid::new(128).unwrap();
    let setup = InitConfig::new(grid, 50_000, Distribution::PAPER_SKEW)
        .build()
        .unwrap();
    let sim = Simulation::new(setup);
    let cp = sim.checkpoint();
    let bytes = cp.encode();
    let mut group = c.benchmark_group("checkpoint");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode/50k", |b| b.iter(|| cp.encode()));
    group.bench_function("decode/50k", |b| {
        b.iter(|| pic_core::checkpoint::CheckpointData::decode(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_balance_stats(c: &mut Criterion) {
    use pic_cluster::stats::BalanceStats;
    let loads: Vec<f64> = (0..3_072).map(|i| ((i * 37) % 997) as f64).collect();
    c.bench_function("stats/balance_3072", |b| {
        b.iter(|| BalanceStats::from_loads(black_box(&loads)))
    });
}

fn bench_init(c: &mut Criterion) {
    let grid = Grid::new(512).unwrap();
    let mut group = c.benchmark_group("init");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("geometric/100k", |b| {
        b.iter(|| {
            InitConfig::new(grid, 100_000, Distribution::PAPER_SKEW)
                .build()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_force,
        bench_advance,
        bench_verify,
        bench_wire_codec,
        bench_loadmodel,
        bench_balancers,
        bench_diffusion_decision,
        bench_soa_vs_aos,
        bench_charge_grid,
        bench_checkpoint,
        bench_balance_stats,
        bench_init
);
criterion_main!(kernels);
