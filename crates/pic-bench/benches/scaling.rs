//! Scaled-down end-to-end benchmarks: one bench per paper figure, running
//! the same drivers as the experiment binaries at 1/100 of the paper's
//! step count, plus functional (threaded) runs of the three
//! implementations. These give `cargo bench` coverage of every
//! table/figure and provide regression tracking for the modeled runs.

use criterion::{criterion_group, criterion_main, Criterion};
use pic_ampi::balancer::Balancer;
use pic_ampi::model::{model_ampi, AmpiParams};
use pic_ampi::runtime::run_ampi;
use pic_bench::{fig5_d_sweep, fig5_f_sweep, fig6_left, fig6_right, fig7, table_max_count};
use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion, DiffusionParams};
use pic_par::model_impl::{model_baseline, model_diffusion, ModelConfig};
use pic_par::runner::ParConfig;

const SCALE: u64 = 100; // 60-step modeled runs

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("f_sweep/scale100", |b| b.iter(|| fig5_f_sweep(SCALE)));
    group.bench_function("d_sweep/scale100", |b| b.iter(|| fig5_d_sweep(SCALE)));
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("left/scale100", |b| b.iter(|| fig6_left(SCALE)));
    group.bench_function("right/scale100", |b| b.iter(|| fig6_right(SCALE)));
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("weak/scale100", |b| b.iter(|| fig7(SCALE)));
    group.finish();
}

fn bench_table_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_e5");
    group.sample_size(10);
    group.bench_function("max_count/scale100", |b| b.iter(|| table_max_count(SCALE)));
    group.finish();
}

fn bench_modeled_single_points(c: &mut Criterion) {
    let cfg = ModelConfig::paper_strong(192).shortened(SCALE);
    let mut group = c.benchmark_group("model_point");
    group.sample_size(10);
    group.bench_function("baseline/192c", |b| b.iter(|| model_baseline(&cfg)));
    group.bench_function("diffusion/192c", |b| {
        b.iter(|| {
            model_diffusion(
                &cfg,
                DiffusionParams {
                    interval: 20,
                    tau: 100,
                    border_w: 20,
                },
            )
        })
    });
    group.bench_function("ampi/192c", |b| {
        b.iter(|| {
            model_ampi(
                &cfg,
                &AmpiParams {
                    d: 4,
                    interval: 160,
                    balancer: Balancer::paper_default(),
                },
            )
        })
    });
    group.finish();
}

fn bench_functional_runs(c: &mut Criterion) {
    // Threaded functional runs at miniature scale: the benches measure
    // substrate overhead and catch regressions in the exchange paths.
    let cfg = ParConfig::new(
        InitConfig::new(Grid::new(64).unwrap(), 4_000, Distribution::PAPER_SKEW)
            .with_m(1)
            .build()
            .unwrap(),
        32,
    );
    let mut group = c.benchmark_group("functional");
    group.sample_size(10);
    group.bench_function("baseline/4ranks", |b| {
        b.iter(|| run_threads(4, |comm| run_baseline(&comm, &cfg).verify.passed()))
    });
    group.bench_function("diffusion/4ranks", |b| {
        b.iter(|| {
            run_threads(4, |comm| {
                run_diffusion(
                    &comm,
                    &cfg,
                    DiffusionParams {
                        interval: 4,
                        tau: 0,
                        border_w: 4,
                    },
                )
                .verify
                .passed()
            })
        })
    });
    group.bench_function("ampi/4ranks", |b| {
        b.iter(|| {
            run_threads(4, |comm| {
                run_ampi(
                    &comm,
                    &cfg,
                    &AmpiParams {
                        d: 4,
                        interval: 8,
                        balancer: Balancer::paper_default(),
                    },
                )
                .verify
                .passed()
            })
        })
    });
    group.finish();
}

criterion_group!(
    name = scaling;
    config = Criterion::default();
    targets = bench_fig5,
        bench_fig6,
        bench_fig7,
        bench_table_e5,
        bench_modeled_single_points,
        bench_functional_runs
);
criterion_main!(scaling);
