//! Guard bench for the pic-trace zero-overhead contract: driving the
//! serial sweep through `trace_simulation` with a disabled tracer must
//! cost the same as calling `Simulation::run` directly. A regression here
//! means telemetry leaked work onto the hot path (allocation, timestamping,
//! or histogram collection behind a disabled tracer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pic_core::dist::Distribution;
use pic_core::engine::Simulation;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_trace::{trace_simulation, Tracer};

const STEPS: u32 = 32;

fn setup(n: u64) -> Simulation {
    let cfg = InitConfig::new(Grid::new(64).unwrap(), n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    let mut sim = Simulation::new(cfg);
    sim.run(4); // warm scratch buffers so both arms measure steady state
    sim
}

fn bench_disabled_tracer(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    for &n in &[1_000u64, 20_000] {
        group.throughput(Throughput::Elements(n * STEPS as u64));
        group.bench_with_input(BenchmarkId::new("untraced", n), &n, |b, &n| {
            b.iter_batched(
                || setup(n),
                |mut sim| sim.run(STEPS),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("disabled", n), &n, |b, &n| {
            b.iter_batched(
                || setup(n),
                |mut sim| trace_simulation(&mut sim, STEPS, &mut Tracer::disabled()),
                criterion::BatchSize::LargeInput,
            )
        });
        // Enabled in-memory tracing at every step, for scale: this is the
        // ceiling of what --trace costs, not part of the no-overhead guard.
        group.bench_with_input(BenchmarkId::new("enabled_every_1", n), &n, |b, &n| {
            b.iter_batched(
                || setup(n),
                |mut sim| {
                    let mut t = Tracer::in_memory(1);
                    trace_simulation(&mut sim, STEPS, &mut t);
                    t.finish()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disabled_tracer);
criterion_main!(benches);
