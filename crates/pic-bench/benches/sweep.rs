//! Sweep-engine benchmark: the four `SweepMode` strategies head-to-head,
//! plus the chunk-size sensitivity of the chunked sweep.
//!
//! This is the microbenchmark behind `BENCH_sweep.json` (see the
//! `bench_sweep` binary for the machine-readable emitter); the Criterion
//! harness here is for interactive `cargo bench sweep` comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pic_core::bin::{BinnedStore, KernelTier};
use pic_core::charge::SimConstants;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::motion::{advance_all, advance_all_parallel};
use pic_core::particle::Particle;
use pic_core::pool::DEFAULT_CHUNK;
use pic_core::soa::ParticleBatch;

fn population(n: u64) -> (Grid, Vec<Particle>) {
    let grid = Grid::new(512).unwrap();
    let setup = InitConfig::new(grid, n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    (grid, setup.particles)
}

fn bench_sweep_modes(c: &mut Criterion) {
    let consts = SimConstants::CANONICAL;
    let mut group = c.benchmark_group("sweep");
    for &n in &[10_000u64, 100_000, 1_000_000] {
        let (grid, particles) = population(n);
        let batch = ParticleBatch::from_particles(&particles);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("aos-serial", n), &n, |b, _| {
            b.iter_batched(
                || particles.clone(),
                |mut ps| advance_all(&grid, &consts, &mut ps),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("aos-parallel", n), &n, |b, _| {
            b.iter_batched(
                || particles.clone(),
                |mut ps| advance_all_parallel(&grid, &consts, &mut ps),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("soa-serial", n), &n, |b, _| {
            b.iter_batched(
                || batch.clone(),
                |mut bt| bt.advance_all(&grid, &consts),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("soa-chunked", n), &n, |b, _| {
            b.iter_batched(
                || batch.clone(),
                |mut bt| bt.advance_all_chunked(&grid, &consts, DEFAULT_CHUNK),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("soa-binned", n), &n, |b, _| {
            b.iter_batched(
                || BinnedStore::new(&particles, &grid, 1),
                |mut st| st.advance_all(&grid, &consts, DEFAULT_CHUNK),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("soa-binned-fast", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut st = BinnedStore::new(&particles, &grid, 1);
                    st.set_kernel_tier(KernelTier::Fast);
                    st
                },
                |mut st| st.advance_all(&grid, &consts, DEFAULT_CHUNK),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_chunk_sensitivity(c: &mut Criterion) {
    let consts = SimConstants::CANONICAL;
    let n = 100_000u64;
    let (grid, particles) = population(n);
    let batch = ParticleBatch::from_particles(&particles);
    let mut group = c.benchmark_group("sweep-chunk");
    group.throughput(Throughput::Elements(n));
    for &chunk in &[64usize, 1_024, 4_096, 16_384, 65_536] {
        group.bench_with_input(
            BenchmarkId::new("soa-chunked-100k", chunk),
            &chunk,
            |b, &ch| {
                b.iter_batched(
                    || batch.clone(),
                    |mut bt| bt.advance_all_chunked(&grid, &consts, ch),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = sweep;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep_modes, bench_chunk_sensitivity
);
criterion_main!(sweep);
