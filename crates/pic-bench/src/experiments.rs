//! The paper's experiments, regenerated.
//!
//! Each experiment tunes the balancers' parameters per data point and keeps
//! the best execution, exactly as the paper's §V did ("For each
//! implementation we tuned the relevant parameters and picked the best
//! performing execution at each level of concurrency").

use pic_ampi::balancer::Balancer;
use pic_ampi::model::{model_ampi, model_ampi_tuned, AmpiParams};
use pic_par::model_impl::{model_baseline, model_diffusion_tuned, ModelConfig, ModelOutcome};

/// A point on one of the scaling figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub cores: usize,
    /// `mpi-2d` (baseline, no LB) modeled seconds.
    pub baseline_s: f64,
    /// `ampi` modeled seconds (best tuned d, F).
    pub ampi_s: f64,
    /// `mpi-2d-LB` (diffusion) modeled seconds (best tuned params).
    pub diffusion_s: f64,
}

impl ScalingPoint {
    pub fn speedup_over_baseline(&self) -> (f64, f64) {
        (
            self.baseline_s / self.ampi_s,
            self.baseline_s / self.diffusion_s,
        )
    }
}

/// A point on one of the Figure 5 tuning sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningPoint {
    /// "Increase factor over baseline" (the paper's x-axis): the swept
    /// parameter divided by its base value (F₀ = 20 or d₀ = 1).
    pub factor: u32,
    /// Swept parameter value (F or d).
    pub value: u32,
    pub seconds: f64,
}

/// Scale an experiment's step count down by `scale` (the drift is
/// periodic, so shapes survive; `scale = 1` reproduces the paper's full
/// 6,000 steps).
fn scaled(cfg: ModelConfig, scale: u64) -> ModelConfig {
    cfg.shortened(scale)
}

// ---------------------------------------------------------------------------
// Figure 5 — AMPI parameter sensitivity
// ---------------------------------------------------------------------------

/// Figure 5, green line: vary the LB interval `F = 20 × factor`
/// (factor 1…64) at fixed `d = 4`. Paper: 180 s at F = 20 vs 43 s at
/// F = 160 — a 4.2× swing.
pub fn fig5_f_sweep(scale: u64) -> Vec<TuningPoint> {
    let cfg = scaled(ModelConfig::paper_tuning(), scale);
    (0..=6u32)
        .map(|e| {
            let factor = 1u32 << e;
            let f = 20 * factor;
            let params = AmpiParams {
                d: 4,
                interval: (f as u64 / scale).max(1) as u32,
                balancer: Balancer::paper_default(),
            };
            TuningPoint {
                factor,
                value: f,
                seconds: model_ampi(&cfg, &params).seconds * scale as f64,
            }
        })
        .collect()
}

/// Figure 5, red line: vary the over-decomposition `d = factor`
/// (factor 1…64) at fixed `F = 1000`. Paper: 104 s without
/// over-decomposition vs 47 s at d = 16 — a 2.2× swing.
pub fn fig5_d_sweep(scale: u64) -> Vec<TuningPoint> {
    let cfg = scaled(ModelConfig::paper_tuning(), scale);
    (0..=6u32)
        .map(|e| {
            let d = 1u32 << e;
            let params = AmpiParams {
                d: d as usize,
                interval: (1000u64 / scale).max(1) as u32,
                balancer: Balancer::paper_default(),
            };
            TuningPoint {
                factor: d,
                value: d,
                seconds: model_ampi(&cfg, &params).seconds * scale as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 6 and 7 — strong and weak scaling
// ---------------------------------------------------------------------------

fn scaling_point(cfg: &ModelConfig, scale: u64) -> ScalingPoint {
    let baseline = model_baseline(cfg);
    let (ampi, _) = model_ampi_tuned(cfg);
    let (diffusion, _) = model_diffusion_tuned(cfg);
    ScalingPoint {
        cores: cfg.cores,
        baseline_s: baseline.seconds * scale as f64,
        ampi_s: ampi.seconds * scale as f64,
        diffusion_s: diffusion.seconds * scale as f64,
    }
}

/// Figure 6 left: strong scaling on a single node (1–24 cores),
/// 2,998² cells / 600 k particles / 6,000 steps, geometric skew.
pub fn fig6_left(scale: u64) -> Vec<ScalingPoint> {
    [1usize, 2, 4, 8, 12, 16, 20, 24]
        .iter()
        .map(|&cores| scaling_point(&scaled(ModelConfig::paper_strong(cores), scale), scale))
        .collect()
}

/// Figure 6 right: strong scaling across nodes (24–384 cores).
pub fn fig6_right(scale: u64) -> Vec<ScalingPoint> {
    [24usize, 48, 96, 192, 384]
        .iter()
        .map(|&cores| scaling_point(&scaled(ModelConfig::paper_strong(cores), scale), scale))
        .collect()
}

/// Figure 7: weak scaling (48–3,072 cores), 11,998² cells, 400 k particles
/// at 48 cores growing proportionally with the core count.
pub fn fig7(scale: u64) -> Vec<ScalingPoint> {
    [48usize, 96, 192, 384, 768, 1536, 3072]
        .iter()
        .map(|&cores| scaling_point(&scaled(ModelConfig::paper_weak(cores), scale), scale))
        .collect()
}

// ---------------------------------------------------------------------------
// §V-B — max particles per core at the end of the 24-core run
// ---------------------------------------------------------------------------

/// The paper's §V-B imbalance indicator at 24 cores: max particles per core
/// at the end of the simulation. Paper: 62,645 (baseline) vs 30,585
/// (diffusion), ideal 25,000.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxCountRow {
    pub baseline_max: f64,
    pub diffusion_max: f64,
    pub ideal: f64,
}

pub fn table_max_count(scale: u64) -> MaxCountRow {
    let cfg = scaled(ModelConfig::paper_strong(24), scale);
    let baseline = model_baseline(&cfg);
    let (diffusion, _) = model_diffusion_tuned(&cfg);
    MaxCountRow {
        baseline_max: baseline.max_particles_end,
        diffusion_max: diffusion.max_particles_end,
        ideal: baseline.ideal_particles,
    }
}

/// Serial reference time for the strong-scaling configuration (speedup
/// denominators).
pub fn strong_serial_seconds(scale: u64) -> f64 {
    model_baseline(&scaled(ModelConfig::paper_strong(1), scale)).seconds * scale as f64
}

/// Convenience wrapper for ablation studies: one modeled diffusion run
/// with explicit parameters.
pub fn diffusion_with(cfg: &ModelConfig, interval: u32, tau: u64, border_w: usize) -> ModelOutcome {
    pic_par::model_impl::model_diffusion(
        cfg,
        pic_par::diffusion::DiffusionParams {
            interval,
            tau,
            border_w,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // All shape tests run at reduced scale (scale = 20 → 300 steps); the
    // full-scale numbers are produced by the `paper_all` binary and
    // recorded in EXPERIMENTS.md.

    #[test]
    fn fig5_f_sweep_is_u_shaped() {
        let pts = fig5_f_sweep(20);
        assert_eq!(pts.len(), 7);
        let first = pts[0].seconds;
        let min = pts.iter().map(|p| p.seconds).fold(f64::MAX, f64::min);
        assert!(
            first > 1.5 * min,
            "F=20 ({first:.1}s) must be well above the best F ({min:.1}s)"
        );
        // The minimum is interior (not at F=20).
        let min_idx = pts
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.seconds.partial_cmp(&b.1.seconds).unwrap())
            .unwrap()
            .0;
        assert!(min_idx > 0, "{pts:?}");
    }

    #[test]
    fn fig5_d_sweep_improves_then_saturates() {
        let pts = fig5_d_sweep(20);
        let d1 = pts[0].seconds;
        let best = pts.iter().map(|p| p.seconds).fold(f64::MAX, f64::min);
        assert!(
            d1 > 1.3 * best,
            "d=1 ({d1:.1}s) must be well above the best d ({best:.1}s)"
        );
    }

    #[test]
    fn fig6_left_ordering_at_24_cores() {
        let pts = fig6_left(20);
        let p24 = pts.last().unwrap();
        assert_eq!(p24.cores, 24);
        // Paper: LB 1.6× over baseline, ampi 1.3× over baseline.
        let (ampi_spd, diff_spd) = p24.speedup_over_baseline();
        assert!(ampi_spd > 1.05, "ampi speedup {ampi_spd}");
        assert!(diff_spd > 1.2, "diffusion speedup {diff_spd}");
        assert!(
            p24.diffusion_s <= p24.ampi_s * 1.05,
            "diffusion should win at 24 cores: {} vs {}",
            p24.diffusion_s,
            p24.ampi_s
        );
    }

    #[test]
    fn fig6_right_diffusion_wins_at_scale() {
        let pts = fig6_right(20);
        let p384 = pts.last().unwrap();
        assert_eq!(p384.cores, 384);
        assert!(
            p384.diffusion_s < p384.ampi_s,
            "diffusion must beat ampi at 384 cores: {} vs {}",
            p384.diffusion_s,
            p384.ampi_s
        );
        assert!(p384.diffusion_s < p384.baseline_s);
    }

    #[test]
    fn fig7_both_beat_baseline_at_scale() {
        let pts = fig7(20);
        let p = pts.last().unwrap();
        assert_eq!(p.cores, 3072);
        let (ampi_spd, diff_spd) = p.speedup_over_baseline();
        assert!(ampi_spd > 1.3, "ampi weak-scaling speedup {ampi_spd}");
        assert!(diff_spd > 1.2, "diffusion weak-scaling speedup {diff_spd}");
    }

    #[test]
    fn max_count_ratios_match_paper_shape() {
        let row = table_max_count(20);
        let base_ratio = row.baseline_max / row.ideal;
        let diff_ratio = row.diffusion_max / row.ideal;
        assert!(
            (1.8..3.5).contains(&base_ratio),
            "baseline max/ideal {base_ratio} (paper: 2.5)"
        );
        assert!(
            diff_ratio < base_ratio * 0.75,
            "diffusion ratio {diff_ratio} vs baseline {base_ratio} (paper: 1.22 vs 2.5)"
        );
    }
}
