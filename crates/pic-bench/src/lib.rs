//! # pic-bench — experiment drivers reproducing the paper's evaluation
//!
//! One module per figure/table of the paper's §V, each exposing a function
//! that regenerates the corresponding data series through the modeled
//! implementations (plus small-scale functional counterparts where the
//! host's single core permits). The binaries under `src/bin/` print the
//! series as CSV/markdown; `paper_all` runs everything and emits the data
//! recorded in `EXPERIMENTS.md`.
//!
//! | Paper artifact | Module entry point |
//! |---|---|
//! | Figure 5 (AMPI tuning: F and d sweeps) | [`experiments::fig5_f_sweep`], [`experiments::fig5_d_sweep`] |
//! | Figure 6 left (strong scaling, 1 node) | [`experiments::fig6_left`] |
//! | Figure 6 right (strong scaling, multi-node) | [`experiments::fig6_right`] |
//! | Figure 7 (weak scaling) | [`experiments::fig7`] |
//! | §V-B max-particles-per-core | [`experiments::table_max_count`] |

pub mod experiments;
pub mod report;

pub use experiments::*;
