//! CSV/markdown emission for the experiment binaries.

use crate::experiments::{MaxCountRow, ScalingPoint, TuningPoint};
use std::fmt::Write as _;

/// Render a scaling series as CSV (`cores,mpi-2d,ampi,mpi-2d-LB`).
pub fn scaling_csv(points: &[ScalingPoint]) -> String {
    let mut out = String::from("cores,mpi-2d_s,ampi_s,mpi-2d-LB_s\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3}",
            p.cores, p.baseline_s, p.ampi_s, p.diffusion_s
        );
    }
    out
}

/// Render a scaling series as a markdown table with speedups.
pub fn scaling_markdown(points: &[ScalingPoint]) -> String {
    let mut out = String::from(
        "| cores | mpi-2d (s) | ampi (s) | mpi-2d-LB (s) | ampi ×base | LB ×base |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        let (a, d) = p.speedup_over_baseline();
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.2}× | {:.2}× |",
            p.cores, p.baseline_s, p.ampi_s, p.diffusion_s, a, d
        );
    }
    out
}

/// Render a tuning sweep as CSV (`factor,value,seconds`).
pub fn tuning_csv(points: &[TuningPoint], param: &str) -> String {
    let mut out = format!("factor,{param},seconds\n");
    for p in points {
        let _ = writeln!(out, "{},{},{:.3}", p.factor, p.value, p.seconds);
    }
    out
}

/// Render the §V-B max-count row.
pub fn max_count_markdown(row: &MaxCountRow) -> String {
    format!(
        "| variant | max particles/core | ×ideal |\n|---|---|---|\n\
         | mpi-2d | {:.0} | {:.2}× |\n| mpi-2d-LB | {:.0} | {:.2}× |\n| ideal | {:.0} | 1.00× |\n",
        row.baseline_max,
        row.baseline_max / row.ideal,
        row.diffusion_max,
        row.diffusion_max / row.ideal,
        row.ideal,
    )
}

/// Render a [`pic_trace::TraceSummary`] as a markdown table: total time
/// per phase, the migration/collective counters, and the imbalance
/// aggregates — the end-of-run digest the experiment binaries append
/// under their results tables.
pub fn trace_summary_markdown(s: &pic_trace::TraceSummary) -> String {
    use pic_trace::{Counter, Phase};
    let mut out = String::from("| metric | value |\n|---|---|\n");
    let _ = writeln!(out, "| steps | {} |", s.steps);
    let _ = writeln!(out, "| step records | {} |", s.records);
    for p in Phase::ALL {
        let _ = writeln!(
            out,
            "| {} time | {:.3} ms |",
            p.name(),
            s.phase_ns[p.idx()] as f64 / 1e6
        );
    }
    for c in Counter::ALL {
        let _ = writeln!(out, "| {} | {} |", c.name(), s.counters[c.idx()]);
    }
    let _ = writeln!(out, "| max imbalance | {:.3} |", s.max_imbalance);
    let _ = writeln!(out, "| mean imbalance | {:.3} |", s.mean_imbalance);
    let _ = writeln!(out, "| max gini | {:.3} |", s.max_gini);
    let _ = writeln!(out, "| final particles | {} |", s.final_particles);
    let _ = writeln!(out, "| balancer | {} |", s.balancer);
    let _ = writeln!(out, "| strategy switches | {} |", s.switches);
    out
}

/// Parse `--scale N` from argv (default 1 = the paper's full 6,000 steps).
pub fn scale_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_formats() {
        let pts = vec![ScalingPoint {
            cores: 24,
            baseline_s: 20.0,
            ampi_s: 15.0,
            diffusion_s: 12.5,
        }];
        let csv = scaling_csv(&pts);
        assert!(csv.contains("24,20.000,15.000,12.500"), "{csv}");
        let md = scaling_markdown(&pts);
        assert!(
            md.contains("| 24 | 20.0 | 15.0 | 12.5 | 1.33× | 1.60× |"),
            "{md}"
        );
    }

    #[test]
    fn tuning_csv_format() {
        let pts = vec![TuningPoint {
            factor: 8,
            value: 160,
            seconds: 43.0,
        }];
        let csv = tuning_csv(&pts, "F");
        assert!(csv.starts_with("factor,F,seconds\n"));
        assert!(csv.contains("8,160,43.000"));
    }

    #[test]
    fn trace_summary_table() {
        let s = pic_trace::TraceSummary {
            steps: 100,
            records: 10,
            phase_ns: [2_000_000, 500_000, 250_000, 1_000_000],
            phase_cpu_ns: [1_900_000, 100_000, 250_000, 1_000_000],
            counters: [1234, 56, 7890, 6, 300, 900, 12_000],
            max_imbalance: 2.345,
            mean_imbalance: 1.5,
            max_gini: 0.25,
            final_particles: 42_000,
            balancer: String::from("adaptive"),
            switches: 2,
        };
        let md = trace_summary_markdown(&s);
        assert!(md.contains("| advance time | 2.000 ms |"), "{md}");
        assert!(md.contains("| rehomed | 1234 |"), "{md}");
        assert!(md.contains("| msgs_sent | 300 |"), "{md}");
        assert!(md.contains("| msgs_skipped | 900 |"), "{md}");
        assert!(md.contains("| overlap_ns | 12000 |"), "{md}");
        assert!(md.contains("| max imbalance | 2.345 |"), "{md}");
        assert!(md.contains("| final particles | 42000 |"), "{md}");
        assert!(md.contains("| balancer | adaptive |"), "{md}");
        assert!(md.contains("| strategy switches | 2 |"), "{md}");
    }

    #[test]
    fn max_count_table() {
        let row = MaxCountRow {
            baseline_max: 62645.0,
            diffusion_max: 30585.0,
            ideal: 25000.0,
        };
        let md = max_count_markdown(&row);
        assert!(md.contains("2.51×"));
        assert!(md.contains("1.22×"));
    }
}
