//! Figure 6 (right): strong scaling across nodes, 24–384 cores.
//! Same configuration as the left panel.

use pic_bench::report::{scale_from_args, scaling_csv, scaling_markdown};
use pic_bench::{fig6_right, strong_serial_seconds};

fn main() {
    let scale = scale_from_args();
    eprintln!("# Figure 6 right — strong scaling, multi-node (6,000/{scale} steps)");
    let pts = fig6_right(scale);
    print!("{}", scaling_csv(&pts));
    eprint!("{}", scaling_markdown(&pts));
    let serial = strong_serial_seconds(scale);
    if let Some(p) = pts.last() {
        eprintln!(
            "max speedup over serial ({serial:.0} s): diffusion {:.0}×, ampi {:.0}×",
            serial / p.diffusion_s,
            serial / p.ampi_s
        );
    }
}
