//! Ablation: the diffusion balancer's three interfering parameters.
//!
//! Paper §IV-B: "The selected strategy includes three parameters: the
//! frequency of load balancing actions, the threshold τ that triggers
//! actual load migration, and the width of the border regions that are
//! exchanged. These parameters have interfering results ... and therefore
//! should be co-tuned." This binary sweeps each around the tuned optimum
//! of the 192-core strong-scaling point.
//!
//! Usage: `ablation_diffusion [--scale N]`

use pic_bench::report::scale_from_args;
use pic_par::diffusion::DiffusionParams;
use pic_par::model_impl::{model_diffusion, ModelConfig};

fn main() {
    let scale = scale_from_args();
    let cfg = ModelConfig::paper_strong(192).shortened(scale);
    let t = |interval: u32, tau: u64, w: usize| {
        let out = model_diffusion(
            &cfg,
            DiffusionParams {
                interval,
                tau,
                border_w: w,
            },
        );
        (out.seconds * scale as f64, out.stats.imbalance)
    };
    let base_tau = (cfg.n / 192 / 20).max(1);

    println!("# interval sweep (w = 2×interval, tau = {base_tau})");
    println!("interval,seconds,imbalance");
    for f in [5u32, 10, 20, 50, 100, 200] {
        let f_s = (f as u64 / scale).max(1) as u32;
        let (s, imb) = t(f_s, base_tau, 2 * f_s as usize);
        println!("{f},{s:.2},{imb:.2}");
    }

    println!("# border-width sweep (interval = 10)");
    println!("border_w_per_step,seconds,imbalance");
    let f_s = (10u64 / scale).max(1) as u32;
    for wps in [1usize, 2, 4, 8, 16, 32] {
        let (s, imb) = t(f_s, base_tau, wps * f_s as usize);
        println!("{wps},{s:.2},{imb:.2}");
    }

    println!("# threshold sweep (interval = 10, w = 2×interval)");
    println!("tau_frac_of_ideal,seconds,imbalance");
    for div in [2u64, 5, 20, 100, 1000] {
        let tau = (cfg.n / 192 / div).max(1);
        let (s, imb) = t(f_s, tau, 2 * f_s as usize);
        println!("1/{div},{s:.2},{imb:.2}");
    }
    eprintln!("\nExpected: a U-shaped interval curve (tracking the drift vs");
    eprintln!("overshoot), an optimal border width near the drift speed, and");
    eprintln!("mild threshold sensitivity.");
}
