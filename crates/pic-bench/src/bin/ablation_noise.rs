//! Ablation: category-1 load imbalance (system non-uniformity).
//!
//! Paper §I classifies imbalance sources; §II argues category 1 can be
//! substituted by the kernel's controllable imbalance. Here we inject it
//! directly in the machine model — a straggler socket and OS-noise jitter —
//! on a *uniform* particle distribution, and show the qualitative split:
//! the count-based diffusion scheme is blind to it, while the
//! runtime-orchestrated balancer (which measures time, not counts)
//! compensates.
//!
//! Usage: `ablation_noise [--scale N]`

use pic_ampi::balancer::Balancer;
use pic_ampi::model::{model_ampi, AmpiParams};
use pic_bench::report::scale_from_args;
use pic_cluster::noise::NoiseModel;
use pic_core::dist::Distribution;
use pic_par::diffusion::DiffusionParams;
use pic_par::model_impl::{model_baseline, model_diffusion, ModelConfig};

fn main() {
    let scale = scale_from_args();
    let cores = 48;
    let mut cfg = ModelConfig::paper_strong(cores).shortened(scale);
    cfg.dist = Distribution::Uniform;

    println!("noise,mpi-2d_s,mpi-2d-LB_s,ampi_s,base_imb,ampi_imb");
    for (name, noise) in [
        ("none", NoiseModel::None),
        ("slow-socket-1.5x", NoiseModel::slow_tail(cores, 12, 1.5)),
        ("slow-socket-2x", NoiseModel::slow_tail(cores, 12, 2.0)),
        (
            "jitter-25%",
            NoiseModel::Jitter {
                amplitude: 0.25,
                seed: 7,
            },
        ),
        (
            "jitter-50%",
            NoiseModel::Jitter {
                amplitude: 0.5,
                seed: 7,
            },
        ),
    ] {
        cfg.noise = noise;
        let base = model_baseline(&cfg);
        let diff = model_diffusion(
            &cfg,
            DiffusionParams {
                interval: 10,
                tau: 0,
                border_w: 10,
            },
        );
        let ampi = model_ampi(
            &cfg,
            &AmpiParams {
                d: 8,
                interval: (600 / scale).max(1) as u32,
                balancer: Balancer::paper_default(),
            },
        );
        println!(
            "{name},{:.3},{:.3},{:.3},{:.2},{:.2}",
            base.seconds * scale as f64,
            diff.seconds * scale as f64,
            ampi.seconds * scale as f64,
            base.stats.imbalance,
            ampi.stats.imbalance,
        );
    }
    eprintln!("\nExpected: diffusion ≈ baseline under noise (counts are already");
    eprintln!("balanced), ampi compensates for persistent stragglers; random");
    eprintln!("per-step jitter is beyond any once-in-a-while balancer.");
}
