//! Figure 6 (left): strong scaling on one node, 1–24 cores.
//! 2,998² cells, 600 k particles, 6,000 steps, geometric skew r = 0.999.

use pic_bench::fig6_left;
use pic_bench::report::{scale_from_args, scaling_csv, scaling_markdown};

fn main() {
    let scale = scale_from_args();
    eprintln!("# Figure 6 left — strong scaling, single node (6,000/{scale} steps)");
    let pts = fig6_left(scale);
    print!("{}", scaling_csv(&pts));
    eprint!("{}", scaling_markdown(&pts));
}
