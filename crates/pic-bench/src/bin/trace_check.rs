//! Validate an ndjson trace file written by `pic --trace` — the CI smoke
//! gate: the stream must parse line-by-line, contain exactly one run
//! header and one summary, and the summary's imbalance aggregates must be
//! finite (a `null` there means a NaN leaked into the load statistics).
//!
//! Usage: `trace_check FILE.ndjson`
//!
//! Exits 0 and prints a one-line digest on success; exits 1 with the
//! reason on any violation.

use pic_trace::validate_ndjson;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    exit(1);
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => fail("usage: trace_check FILE.ndjson"),
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let check =
        validate_ndjson(&text).unwrap_or_else(|e| fail(&format!("{path}: invalid ndjson: {e}")));
    if check.runs != 1 {
        fail(&format!(
            "{path}: expected 1 run header, found {}",
            check.runs
        ));
    }
    let summary = match &check.summary {
        Some(s) => s,
        None => fail(&format!("{path}: no summary record")),
    };
    // `as_f64` returns None for the `null` a non-finite float serializes
    // to, so finiteness and presence are one check.
    for field in ["max_imbalance", "mean_imbalance"] {
        match summary.get(field).and_then(|v| v.as_f64()) {
            Some(v) if v.is_finite() && v >= 1.0 => {}
            Some(v) => fail(&format!("{path}: summary {field} = {v} out of range")),
            None => fail(&format!("{path}: summary {field} missing or non-finite")),
        }
    }
    let steps = summary.get("steps").and_then(|v| v.as_u64()).unwrap_or(0);
    if check.steps == 0 {
        fail(&format!("{path}: no step records"));
    }
    // The summary's switch count must agree with the switch records in the
    // stream, so a truncated trace (or a balancer that lies about its
    // switching) fails the gate.
    let claimed = summary
        .get("switches")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if claimed != check.switches as u64 {
        fail(&format!(
            "{path}: summary claims {claimed} strategy switches, stream has {}",
            check.switches
        ));
    }
    let balancer = summary
        .get("balancer")
        .and_then(|v| v.as_str())
        .unwrap_or("none");
    println!(
        "trace_check: {path} OK — {} lines, {} step records / {steps} steps, {} cut decisions, \
         balancer {balancer} ({} switches)",
        check.lines, check.steps, check.cuts, check.switches
    );
}
