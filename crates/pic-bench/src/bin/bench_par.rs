//! Emit `BENCH_par.json`: the distributed rank loop benchmarked across a
//! thread-rank grid × implementation (`mpi-2d`, `mpi-2d-LB`, `ampi`) ×
//! rank kernel (AoS reference, binned exact, binned fast), with
//! forced-scalar contrast rows isolating the vector kernel's
//! contribution. The headline number is the per-rank *advance-phase*
//! ns/particle-step improvement of the binned fast tier over the AoS
//! loop at the largest population tier.
//!
//! ```text
//! bench_par [--out PATH] [--quick] [--ranks LIST] [--results DIR]
//! ```
//!
//! `--quick` drops the 1e6-particle tier (CI smoke). `--ranks 1,2,4`
//! selects the rank counts (default `1,2,4`). `--results DIR`
//! additionally writes the thread-count analogues of the paper's
//! Fig 6-left (strong scaling) and Fig 7 (weak scaling) as functional
//! runs on thread-ranks — `par_fig6_left.csv`, `par_fig7_weak.csv`, and
//! `par_scaling.md` with a per-rank-count trace summary digest.
//!
//! Ranks are OS threads, so rank counts above the host's core count
//! oversubscribe deliberately; `host_cores` leads the artifact metadata
//! and every row carries an `oversubscribed` flag so readers don't
//! mistake contention for scaling. The advance-phase metric sums each
//! rank's own phase clock, which stays meaningful under
//! oversubscription (it counts work, not wall overlap).

use pic_ampi::balancer::Balancer;
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi_traced;
use pic_bench::report::trace_summary_markdown;
use pic_comm::sparse::{alltoallv_finish_into, alltoallv_start};
use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::particle::Particle;
use pic_core::simd::SimdBackend;
use pic_par::baseline::run_baseline_traced;
use pic_par::diffusion::{run_diffusion_mode_traced, DiffusionMode, DiffusionParams};
use pic_par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel, WireFormat};
use pic_trace::{Counter, Phase, TraceSummary, Tracer};
use std::fmt::Write as _;
use std::time::Instant;

const GRID: usize = 512;

#[derive(Clone, Copy, PartialEq)]
enum Impl {
    Baseline,
    Diffusion,
    Ampi,
}

impl Impl {
    const ALL: [Impl; 3] = [Impl::Baseline, Impl::Diffusion, Impl::Ampi];

    /// Paper naming, matching the other artifacts.
    fn name(self) -> &'static str {
        match self {
            Impl::Baseline => "mpi-2d",
            Impl::Diffusion => "mpi-2d-LB",
            Impl::Ampi => "ampi",
        }
    }
}

#[derive(Clone, Copy)]
enum Kernel {
    Aos,
    Binned,
    BinnedFast,
    /// Binned exact forced to the scalar kernel (contrast row).
    BinnedScalar,
    /// Binned fast forced to the scalar kernel — which *is* the exact
    /// scalar kernel, the fast tier's `PIC_NO_SIMD` baseline.
    BinnedFastScalar,
    /// Binned exact over the dense synchronous exchange (the oracle) —
    /// the before-row for the overlapped-sparse exchange contrast.
    BinnedDense,
    /// Binned exact on the byte-serialized particle wire (the
    /// serialization oracle) — the before-row for the typed zero-copy
    /// wire contrast (every other kernel runs the typed default).
    BinnedBytesWire,
}

impl Kernel {
    fn rank_kernel(self) -> RankKernel {
        use pic_core::engine::SweepMode;
        match self {
            Kernel::Aos => RankKernel::aos(),
            Kernel::Binned => RankKernel::default(),
            Kernel::BinnedFast => RankKernel::from_sweep(SweepMode::SoaBinnedFast),
            Kernel::BinnedScalar => RankKernel::default().with_backend(SimdBackend::Scalar),
            Kernel::BinnedFastScalar => {
                RankKernel::from_sweep(SweepMode::SoaBinnedFast).with_backend(SimdBackend::Scalar)
            }
            Kernel::BinnedDense => RankKernel::default().with_exchange(ExchangeMode::DenseSync),
            Kernel::BinnedBytesWire => RankKernel::default().with_wire(WireFormat::Bytes),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kernel::Aos => "aos",
            Kernel::Binned => "binned",
            Kernel::BinnedFast => "binned-fast",
            Kernel::BinnedScalar => "binned/scalar",
            Kernel::BinnedFastScalar => "binned-fast/scalar",
            Kernel::BinnedDense => "binned/dense-sync",
            Kernel::BinnedBytesWire => "binned/bytes-wire",
        }
    }

    /// The exchange strategy the kernel runs (all kernels except the
    /// dense contrast row use the overlapped-sparse default).
    fn exchange_name(self) -> &'static str {
        match self {
            Kernel::BinnedDense => "dense-sync",
            _ => "sparse-overlap",
        }
    }

    /// The particle wire format (all kernels except the byte-wire
    /// contrast row use the typed zero-copy default).
    fn wire_name(self) -> &'static str {
        match self {
            Kernel::BinnedBytesWire => "bytes",
            _ => "typed",
        }
    }
}

struct Row {
    imp: &'static str,
    kernel: &'static str,
    /// The `<backend>/<tier>` descriptor the runtime actually selected.
    kernel_desc: String,
    /// Exchange strategy: `sparse-overlap` (default) or `dense-sync`.
    exchange: &'static str,
    /// Particle wire format: `typed` (default) or `bytes`.
    wire: &'static str,
    n: u64,
    ranks: usize,
    steps: u32,
    oversubscribed: bool,
    wall_s: f64,
    /// Σ over ranks of the rank's advance-phase clock, per particle-step.
    advance_ns: f64,
    /// Same for the exchange phase (routing + drain + rebin check).
    exchange_ns: f64,
    /// Σ over ranks of the exchange-phase *CPU* clock, per particle-step:
    /// work only — a rank blocked in a receive accrues exchange wall
    /// time but no exchange work (`pic_trace::thread_cpu_ns`).
    exchange_work_ns: f64,
    /// Particles rehomed across ranks per step (global).
    migrants_per_step: f64,
    /// Global wire messages (payload/count/escape/fallback) per step.
    msgs_per_step: f64,
    /// Messages the sparse protocol elided per step (0 under dense).
    msgs_skipped_per_step: f64,
}

struct RunResult {
    outcomes: Vec<(ParOutcome, TraceSummary)>,
    wall_s: f64,
}

fn run_one(imp: Impl, kernel: RankKernel, n: u64, ranks: usize, steps: u32) -> RunResult {
    let setup = InitConfig::new(Grid::new(GRID).unwrap(), n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    let cfg = ParConfig::new(setup, steps).with_kernel(kernel);
    let t = Instant::now();
    let outcomes = run_threads(ranks, |comm| {
        let mut tracer = Tracer::in_memory(steps.max(1));
        let o = match imp {
            Impl::Baseline => run_baseline_traced(&comm, &cfg, &mut tracer),
            Impl::Diffusion => run_diffusion_mode_traced(
                &comm,
                &cfg,
                DiffusionParams {
                    interval: 5,
                    tau: 0,
                    border_w: 2,
                },
                DiffusionMode::XOnly,
                &mut tracer,
            ),
            Impl::Ampi => run_ampi_traced(
                &comm,
                &cfg,
                &AmpiParams {
                    d: 4,
                    interval: 20,
                    balancer: Balancer::paper_default(),
                },
                &mut tracer,
            ),
        };
        assert!(
            o.verify.passed(),
            "{} n={n} ranks={ranks}: verification failed: {:?}",
            imp.name(),
            o.verify
        );
        let summary = tracer.finish().expect("enabled tracer").summary;
        (o, summary)
    });
    RunResult {
        outcomes,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Σ over ranks of `phase` ns, per particle-step. Each rank clocks its
/// own phases, so the sum counts *work* and is oversubscription-safe.
fn phase_ns_per_pstep(r: &RunResult, phase: Phase, n: u64, steps: u32) -> f64 {
    let total: u64 = r
        .outcomes
        .iter()
        .map(|(_, s)| s.phase_ns[phase.idx()])
        .sum();
    total as f64 / (n as f64 * steps as f64)
}

/// Σ over ranks of `phase` *CPU* ns, per particle-step: the work-only
/// twin of [`phase_ns_per_pstep`]. Blocked time (the receive wait that
/// dominates the exchange wall clock whenever load is imbalanced) does
/// not advance a thread's CPU clock, so this is the late-sender-free
/// cost of the phase.
fn phase_work_ns_per_pstep(r: &RunResult, phase: Phase, n: u64, steps: u32) -> f64 {
    let total: u64 = r
        .outcomes
        .iter()
        .map(|(_, s)| s.phase_cpu_ns[phase.idx()])
        .sum();
    total as f64 / (n as f64 * steps as f64)
}

fn measure(imp: Impl, kernel: Kernel, n: u64, ranks: usize, host_cores: usize) -> Row {
    let steps = steps_for(n);
    let r = run_one(imp, kernel.rank_kernel(), n, ranks, steps);
    // The message counters are globally reduced at every telemetry
    // snapshot, so every rank's summary already holds the world totals —
    // read rank 0's rather than summing across ranks.
    let counters = &r.outcomes[0].1.counters;
    let row = Row {
        imp: imp.name(),
        kernel: kernel.name(),
        kernel_desc: r.outcomes[0].0.kernel.clone(),
        exchange: kernel.exchange_name(),
        wire: kernel.wire_name(),
        n,
        ranks,
        steps,
        oversubscribed: ranks > host_cores,
        wall_s: r.wall_s,
        advance_ns: phase_ns_per_pstep(&r, Phase::Advance, n, steps),
        exchange_ns: phase_ns_per_pstep(&r, Phase::Exchange, n, steps),
        exchange_work_ns: phase_work_ns_per_pstep(&r, Phase::Exchange, n, steps),
        migrants_per_step: counters[Counter::Rehomed.idx()] as f64 / steps as f64,
        msgs_per_step: counters[Counter::MsgsSent.idx()] as f64 / steps as f64,
        msgs_skipped_per_step: counters[Counter::MsgsSkipped.idx()] as f64 / steps as f64,
    };
    eprintln!(
        "{:>9} {:<18} n={:<9} ranks={} advance={:.2} exchange={:.2} \
         (work {:.2}) ns/pstep migrants/step={:.0} msgs/step={:.1} \
         (skipped {:.1}) wall={:.2}s",
        row.imp,
        row.kernel_desc,
        row.n,
        row.ranks,
        row.advance_ns,
        row.exchange_ns,
        row.exchange_work_ns,
        row.migrants_per_step,
        row.msgs_per_step,
        row.msgs_skipped_per_step,
        row.wall_s
    );
    row
}

/// Steps per timing run, scaled so every tier takes comparable wall time.
fn steps_for(n: u64) -> u32 {
    match n {
        0..=20_000 => 100,
        20_001..=200_000 => 30,
        _ => 10,
    }
}

fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One migrant for the in-situ transport contrast (field values are
/// irrelevant to timing; the id feeds the sink).
fn sample_migrant(id: u64) -> Particle {
    Particle {
        id,
        x: 1.5 + (id % 97) as f64,
        y: 2.5,
        vx: 3.0,
        vy: -1.0,
        q: 0.3535533905932738,
        x0: 1.5,
        y0: 2.5,
        k: 1,
        m: 1,
        born_at: 0,
    }
}

/// In-situ transport contrast: move `np` particles per rank per
/// exchange — a measured migrant volume — through the byte wire
/// (encode → alltoallv → decode) and the typed wire (buckets cross by
/// ownership) on ring traffic at `ranks` ranks, on the same fabric the
/// runtime uses. Returns max-over-ranks ns per exchange for
/// `(bytes, typed)`. This isolates the serialization the zero-copy
/// lane deletes from the store-side drain/pack work and the receive
/// waits that the end-to-end exchange phase also contains.
fn wire_transport_contrast(ranks: usize, np: usize) -> (f64, f64) {
    const WARM: u32 = 20;
    const ITERS: u32 = 200;
    const REPEATS: usize = 3;
    let np = np.max(2);
    let run_once = |typed: bool| -> f64 {
        let per_rank = run_threads(ranks, move |comm| {
            let size = comm.size();
            let rank = comm.rank();
            let (left, right) = ((rank + size - 1) % size, (rank + 1) % size);
            let mut buckets: Vec<Vec<Particle>> = vec![Vec::new(); size];
            let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); size];
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let mut typed_incoming: Vec<Vec<Particle>> = Vec::new();
            let mut arrivals: Vec<Particle> = Vec::new();
            let mut sink = 0u64;
            let mut t0 = Instant::now();
            for it in 0..(WARM + ITERS) {
                if it == WARM {
                    t0 = Instant::now();
                }
                for (d, b) in buckets.iter_mut().enumerate() {
                    b.clear();
                    if d == left || d == right {
                        b.extend((0..(np / 2) as u64).map(|i| sample_migrant(i + it as u64)));
                    }
                }
                if typed {
                    let h = alltoallv_start(&comm, &mut buckets);
                    alltoallv_finish_into(&comm, h, &mut typed_incoming);
                    arrivals.clear();
                    for b in &typed_incoming {
                        arrivals.extend_from_slice(b);
                    }
                    // Recycle arrival capacity into the staging slots the
                    // way the runtime's spare free-list does.
                    for (slot, b) in buckets.iter_mut().zip(typed_incoming.drain(..)) {
                        *slot = b;
                    }
                } else {
                    for (d, buf) in outgoing.iter_mut().enumerate() {
                        buf.clear();
                        for p in &buckets[d] {
                            p.encode(buf);
                        }
                    }
                    let h = alltoallv_start(&comm, &mut outgoing);
                    alltoallv_finish_into(&comm, h, &mut incoming);
                    arrivals.clear();
                    for buf in &incoming {
                        Particle::decode_each(buf, |p| arrivals.push(p))
                            .expect("wire-aligned buffer");
                    }
                }
                sink ^= arrivals.last().map_or(0, |p| p.id);
            }
            std::hint::black_box(sink);
            t0.elapsed().as_nanos() as f64 / ITERS as f64
        });
        per_rank.into_iter().fold(0.0, f64::max)
    };
    // Min over repeats: scheduler stragglers only ever inflate a
    // max-over-ranks wall measurement, so the best repeat is the
    // cleanest estimate of the wire cost itself.
    let run = |typed: bool| -> f64 {
        (0..REPEATS)
            .map(|_| run_once(typed))
            .fold(f64::INFINITY, f64::min)
    };
    // One throwaway pass warms both lanes (thread pools, allocator,
    // branch predictors) before anything is recorded.
    let _ = run_once(false);
    let _ = run_once(true);
    (run(false), run(true))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_par.json".to_string());
    let rank_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| t.trim().parse().expect("bad --ranks entry"))
        .collect();
    assert!(!rank_counts.is_empty(), "--ranks needs at least one count");
    let results_dir = args
        .iter()
        .position(|a| a == "--results")
        .and_then(|i| args.get(i + 1).cloned());

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_ranks = *rank_counts.iter().max().unwrap();
    if max_ranks > host_cores {
        eprintln!(
            "NOTE: rank counts up to {max_ranks} on a {host_cores}-core host — \
             thread-ranks will oversubscribe; wall times measure contention, \
             per-rank phase clocks still measure work."
        );
    }
    let simd_backend = SimdBackend::detect();
    let git_commit = command_line("git", &["rev-parse", "--short", "HEAD"]);
    let rustc_version = command_line("rustc", &["--version"]);

    let sizes: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut rows = Vec::new();
    for &n in sizes {
        for imp in Impl::ALL {
            for kernel in [Kernel::Aos, Kernel::Binned, Kernel::BinnedFast] {
                for &ranks in &rank_counts {
                    rows.push(measure(imp, kernel, n, ranks, host_cores));
                }
            }
            // Forced-scalar contrast rows at the largest rank count: same
            // configuration as the headline rows with only the backend
            // changed, so the vector kernel's contribution is isolated.
            if simd_backend.is_vector() {
                for kernel in [Kernel::BinnedScalar, Kernel::BinnedFastScalar] {
                    rows.push(measure(imp, kernel, n, max_ranks, host_cores));
                }
            }
            // Dense-exchange contrast row at the largest rank count: the
            // synchronous P²-message oracle against the overlapped-sparse
            // default (same binned kernel, only the exchange changes).
            if max_ranks > 1 {
                rows.push(measure(imp, Kernel::BinnedDense, n, max_ranks, host_cores));
                // Byte-wire contrast row: the serialization oracle
                // against the typed zero-copy wire every headline row
                // runs (same kernel, same exchange, only the wire
                // representation changes).
                rows.push(measure(
                    imp,
                    Kernel::BinnedBytesWire,
                    n,
                    max_ranks,
                    host_cores,
                ));
            }
        }
    }

    // Headline: per-rank advance-phase improvement of the binned fast
    // tier over the AoS reference loop at the largest tier and rank
    // count, per implementation.
    let n_head = *sizes.last().unwrap();
    let advance_of = |imp: &str, kernel: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.imp == imp && r.kernel == kernel && r.n == n_head && r.ranks == max_ranks)
            .map(|r| r.advance_ns)
    };
    let mut headline = Vec::new();
    for imp in Impl::ALL {
        if let (Some(aos), Some(fast)) = (
            advance_of(imp.name(), "aos"),
            advance_of(imp.name(), "binned-fast"),
        ) {
            let speedup = aos / fast;
            eprintln!(
                "headline {:>9} n={n_head}: advance {aos:.2} -> {fast:.2} ns/pstep ({speedup:.2}x)",
                imp.name()
            );
            headline.push((imp.name(), aos, fast, speedup));
        }
    }

    // Exchange headline: dense synchronous oracle vs overlapped sparse on
    // the same binned kernel at the largest tier and rank count —
    // exchange-phase ns/pstep before/after plus the wire-message
    // reduction (the dense path sends ranks² messages per step).
    let row_of = |imp: &str, kernel: &str| -> Option<&Row> {
        rows.iter()
            .find(|r| r.imp == imp && r.kernel == kernel && r.n == n_head && r.ranks == max_ranks)
    };
    // Each headline entry is a preformatted JSON object; the `contrast`
    // key discriminates the two before/after pairs sharing the array.
    let mut exchange_headline: Vec<String> = Vec::new();
    for imp in Impl::ALL {
        if let (Some(dense), Some(sparse)) = (
            row_of(imp.name(), "binned/dense-sync"),
            row_of(imp.name(), "binned"),
        ) {
            eprintln!(
                "exchange {:>9} n={n_head}: dense {:.2} -> sparse {:.2} ns/pstep, \
                 msgs/step {:.1} -> {:.1}",
                imp.name(),
                dense.exchange_ns,
                sparse.exchange_ns,
                dense.msgs_per_step,
                sparse.msgs_per_step
            );
            exchange_headline.push(format!(
                "{{\"impl\": \"{}\", \"contrast\": \"dense-vs-sparse\", \
                 \"n\": {n_head}, \"ranks\": {max_ranks}, \
                 \"dense_exchange_ns_per_particle_step\": {:.3}, \
                 \"sparse_exchange_ns_per_particle_step\": {:.3}, \
                 \"dense_msgs_per_step\": {:.1}, \
                 \"sparse_msgs_per_step\": {:.1}}}",
                imp.name(),
                dense.exchange_ns,
                sparse.exchange_ns,
                dense.msgs_per_step,
                sparse.msgs_per_step
            ));
        }
        // Typed-vs-bytes wire contrast on the same (sparse-overlap)
        // exchange. Three views, most to least end-to-end:
        //   * exchange wall ns/pstep — includes receive waits, which
        //     dominate whenever load is imbalanced and are identical on
        //     both lanes (so the ratio is mostly noise there);
        //   * exchange *work* ns/pstep — CPU-clock phase totals, waits
        //     excluded; still contains the lane-invariant store-side
        //     drain/compaction and arrival-fold work;
        //   * wire transport ns/exchange — the in-situ
        //     [`wire_transport_contrast`] moving this run's measured
        //     per-rank migrant volume through each wire on the same
        //     fabric: exactly the serialization the typed lane deletes.
        //     `wire_speedup` is this ratio.
        if let (Some(bytes), Some(typed)) = (
            row_of(imp.name(), "binned/bytes-wire"),
            row_of(imp.name(), "binned"),
        ) {
            let work_ratio = bytes.exchange_work_ns / typed.exchange_work_ns;
            let np_per_rank = ((typed.migrants_per_step / max_ranks as f64).ceil() as usize).max(2);
            let (wire_bytes_ns, wire_typed_ns) = wire_transport_contrast(max_ranks, np_per_rank);
            let speedup = wire_bytes_ns / wire_typed_ns;
            eprintln!(
                "wire     {:>9} n={n_head}: exchange work bytes {:.2} -> typed {:.2} \
                 ns/pstep ({work_ratio:.2}x); transport at {np_per_rank} \
                 migrants/rank: bytes {:.0} -> typed {:.0} ns/exchange ({speedup:.2}x)",
                imp.name(),
                bytes.exchange_work_ns,
                typed.exchange_work_ns,
                wire_bytes_ns,
                wire_typed_ns
            );
            exchange_headline.push(format!(
                "{{\"impl\": \"{}\", \"contrast\": \"bytes-vs-typed\", \
                 \"n\": {n_head}, \"ranks\": {max_ranks}, \
                 \"bytes_exchange_ns_per_particle_step\": {:.3}, \
                 \"typed_exchange_ns_per_particle_step\": {:.3}, \
                 \"bytes_exchange_work_ns_per_particle_step\": {:.3}, \
                 \"typed_exchange_work_ns_per_particle_step\": {:.3}, \
                 \"exchange_work_ratio\": {work_ratio:.3}, \
                 \"migrants_per_rank_per_step\": {np_per_rank}, \
                 \"wire_payload_bytes\": {}, \
                 \"bytes_wire_ns_per_exchange\": {wire_bytes_ns:.0}, \
                 \"typed_wire_ns_per_exchange\": {wire_typed_ns:.0}, \
                 \"wire_speedup\": {speedup:.3}}}",
                imp.name(),
                bytes.exchange_ns,
                typed.exchange_ns,
                bytes.exchange_work_ns,
                typed.exchange_work_ns,
                np_per_rank * Particle::WIRE_SIZE
            ));
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"par\",");
    // Host capacity leads the metadata: rank counts beyond it mean the
    // wall-clock columns measure oversubscription, not scaling.
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"grid\": {GRID},");
    let _ = writeln!(json, "  \"simd_backend\": \"{}\",", simd_backend.name());
    let _ = writeln!(json, "  \"simd_lanes\": {},", simd_backend.lanes());
    let _ = writeln!(json, "  \"git_commit\": \"{git_commit}\",");
    let _ = writeln!(json, "  \"rustc_version\": \"{rustc_version}\",");
    let _ = writeln!(json, "  \"headline\": [");
    for (i, (imp, aos, fast, speedup)) in headline.iter().enumerate() {
        let comma = if i + 1 == headline.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{imp}\", \"n\": {n_head}, \"ranks\": {max_ranks}, \
             \"aos_advance_ns_per_particle_step\": {aos:.3}, \
             \"binned_fast_advance_ns_per_particle_step\": {fast:.3}, \
             \"advance_speedup\": {speedup:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"exchange_headline\": [");
    for (i, entry) in exchange_headline.iter().enumerate() {
        let comma = if i + 1 == exchange_headline.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    {entry}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{}\", \"kernel\": \"{}\", \"kernel_desc\": \"{}\", \
             \"exchange\": \"{}\", \"wire\": \"{}\", \
             \"n\": {}, \"ranks\": {}, \"steps\": {}, \"oversubscribed\": {}, \
             \"wall_s\": {:.4}, \"advance_ns_per_particle_step\": {:.3}, \
             \"exchange_ns_per_particle_step\": {:.3}, \
             \"exchange_work_ns_per_particle_step\": {:.3}, \
             \"migrants_per_step\": {:.0}, \
             \"msgs_per_step\": {:.1}, \"msgs_skipped_per_step\": {:.1}}}{comma}",
            r.imp,
            r.kernel,
            r.kernel_desc,
            r.exchange,
            r.wire,
            r.n,
            r.ranks,
            r.steps,
            r.oversubscribed,
            r.wall_s,
            r.advance_ns,
            r.exchange_ns,
            r.exchange_work_ns,
            r.migrants_per_step,
            r.msgs_per_step,
            r.msgs_skipped_per_step
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");

    if let Some(dir) = results_dir {
        write_scaling_artifacts(&dir, &rank_counts, host_cores, quick);
    }
}

// ---------------------------------------------------------------------------
// Thread-count analogues of Fig 6-left (strong) and Fig 7 (weak)
// ---------------------------------------------------------------------------

/// Functional strong- and weak-scaling runs across the rank grid with the
/// default (binned) kernel, each rank count traced; writes
/// `par_fig6_left.csv`, `par_fig7_weak.csv`, and `par_scaling.md`.
fn write_scaling_artifacts(dir: &str, rank_counts: &[usize], host_cores: usize, quick: bool) {
    let (strong_n, weak_base, steps) = if quick {
        (50_000u64, 25_000u64, 20u32)
    } else {
        (200_000, 100_000, 30)
    };

    let mut md = String::from("# Thread-rank scaling of the distributed implementations\n\n");
    let _ = writeln!(
        md,
        "Functional analogues of the paper's Fig 6-left (strong) and Fig 7 \
         (weak), on thread-ranks with the default binned kernel \
         (`bench_par --results`). Host: **{host_cores} core(s)** — rank \
         counts above that oversubscribe, so wall times measure contention \
         and correctness of the overlap, not parallel speedup; the paper's \
         modeled figures (`fig6_left.csv`, `fig7_weak.csv`) carry the \
         scaling story. Strong: n={strong_n}, grid {GRID}, {steps} steps. \
         Weak: n={weak_base}/rank.\n"
    );

    let mut strong_csv = String::from("ranks,mpi-2d_s,ampi_s,mpi-2d-LB_s\n");
    let mut weak_csv = String::from("ranks,n,mpi-2d_s,ampi_s,mpi-2d-LB_s\n");
    // Strong-run message counts per step: the overlapped-sparse default
    // vs the dense oracle's ranks·(ranks−1) payload wires.
    let mut msg_md = String::from(
        "| ranks | impl | msgs/step (sparse) | elided/step | dense msgs/step |\n\
         |---|---|---|---|---|\n",
    );
    let mut summaries: Vec<(usize, &'static str, TraceSummary)> = Vec::new();
    // Typed-vs-bytes transport contrast at each strong run's measured
    // migrant volume (mpi-2d's), skipping the degenerate 1-rank ring.
    let mut wire_md = String::from(
        "| ranks | migrants/rank/step | payload B | bytes wire ns | typed wire ns | speedup |\n\
         |---|---|---|---|---|---|\n",
    );

    for &ranks in rank_counts {
        let mut strong = [0.0f64; 3];
        let mut weak = [0.0f64; 3];
        let weak_n = weak_base * ranks as u64;
        for (i, imp) in Impl::ALL.iter().enumerate() {
            let r = run_one(*imp, RankKernel::default(), strong_n, ranks, steps);
            strong[i] = r.wall_s;
            // Keep rank 0's trace digest of the strong run.
            let summary = r.outcomes[0].1.clone();
            let _ = writeln!(
                msg_md,
                "| {ranks} | {} | {:.1} | {:.1} | {} |",
                imp.name(),
                summary.counters[Counter::MsgsSent.idx()] as f64 / steps as f64,
                summary.counters[Counter::MsgsSkipped.idx()] as f64 / steps as f64,
                ranks * ranks.saturating_sub(1),
            );
            if *imp == Impl::Baseline && ranks > 1 {
                let np_per_rank = ((summary.counters[Counter::Rehomed.idx()] as f64
                    / steps as f64
                    / ranks as f64)
                    .ceil() as usize)
                    .max(2);
                let (b_ns, t_ns) = wire_transport_contrast(ranks, np_per_rank);
                let _ = writeln!(
                    wire_md,
                    "| {ranks} | {np_per_rank} | {} | {b_ns:.0} | {t_ns:.0} | {:.2}x |",
                    np_per_rank * Particle::WIRE_SIZE,
                    b_ns / t_ns,
                );
            }
            summaries.push((ranks, imp.name(), summary));
            weak[i] = run_one(*imp, RankKernel::default(), weak_n, ranks, steps).wall_s;
        }
        let _ = writeln!(
            strong_csv,
            "{ranks},{:.3},{:.3},{:.3}",
            strong[0], strong[2], strong[1]
        );
        let _ = writeln!(
            weak_csv,
            "{ranks},{weak_n},{:.3},{:.3},{:.3}",
            weak[0], weak[2], weak[1]
        );
        eprintln!(
            "scaling ranks={ranks}: strong {:.2}/{:.2}/{:.2}s weak {:.2}/{:.2}/{:.2}s",
            strong[0], strong[1], strong[2], weak[0], weak[1], weak[2]
        );
    }

    let _ = writeln!(
        md,
        "## Strong scaling (Fig 6-left analogue)\n\n```\n{strong_csv}```\n"
    );
    let _ = writeln!(
        md,
        "## Weak scaling (Fig 7 analogue)\n\n```\n{weak_csv}```\n"
    );
    let _ = writeln!(
        md,
        "## Exchange wire messages per step (strong runs)\n\n\
         Overlapped-sparse exchange (the default): per-neighbor count \
         wires always travel, payload wires only when non-empty; the \
         *elided* column counts payloads the sparse protocol skipped. The \
         dense oracle (`--overlap off`) would send `ranks·(ranks−1)` \
         payload wires every step regardless of occupancy.\n\n{msg_md}"
    );
    let _ = writeln!(
        md,
        "## Typed wire vs byte wire at measured migrant volume (strong runs)\n\n\
         The in-situ transport contrast: each strong run's per-rank \
         migrant volume moved through the byte wire (encode \u{2192} \
         alltoallv \u{2192} decode) and the typed zero-copy wire \
         (`--wire typed`, the default) on ring traffic over the same \
         in-process fabric. This isolates the serialization the typed \
         lane deletes; the end-to-end exchange-phase clock additionally \
         contains store-side drain/fold work (lane-invariant) and \
         receive waits (load imbalance, also lane-invariant), so its \
         bytes-vs-typed ratio is much closer to 1 \u{2014} see the \
         `exchange_headline` bytes-vs-typed rows in `BENCH_par.json` for \
         both views side by side.\n\n{wire_md}"
    );
    let _ = writeln!(
        md,
        "## Per-rank-count trace summaries (rank 0, strong runs)\n"
    );
    for (ranks, imp, s) in &summaries {
        let _ = writeln!(
            md,
            "### {imp}, {ranks} rank(s)\n\n{}",
            trace_summary_markdown(s)
        );
    }

    std::fs::create_dir_all(dir).expect("create results dir");
    let p1 = format!("{dir}/par_fig6_left.csv");
    let p2 = format!("{dir}/par_fig7_weak.csv");
    let p3 = format!("{dir}/par_scaling.md");
    std::fs::write(&p1, &strong_csv).expect("write strong csv");
    std::fs::write(&p2, &weak_csv).expect("write weak csv");
    std::fs::write(&p3, &md).expect("write scaling md");
    eprintln!("wrote {p1}, {p2}, {p3}");
}
