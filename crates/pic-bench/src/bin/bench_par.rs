//! Emit `BENCH_par.json`: the distributed rank loop benchmarked across a
//! thread-rank grid × implementation (`mpi-2d`, `mpi-2d-LB`, `ampi`) ×
//! rank kernel (AoS reference, binned exact, binned fast), with
//! forced-scalar contrast rows isolating the vector kernel's
//! contribution. The headline number is the per-rank *advance-phase*
//! ns/particle-step improvement of the binned fast tier over the AoS
//! loop at the largest population tier.
//!
//! ```text
//! bench_par [--out PATH] [--quick] [--ranks LIST] [--results DIR]
//! ```
//!
//! `--quick` drops the 1e6-particle tier (CI smoke). `--ranks 1,2,4`
//! selects the rank counts (default `1,2,4`). `--results DIR`
//! additionally writes the thread-count analogues of the paper's
//! Fig 6-left (strong scaling) and Fig 7 (weak scaling) as functional
//! runs on thread-ranks — `par_fig6_left.csv`, `par_fig7_weak.csv`, and
//! `par_scaling.md` with a per-rank-count trace summary digest.
//!
//! Ranks are OS threads, so rank counts above the host's core count
//! oversubscribe deliberately; `host_cores` leads the artifact metadata
//! and every row carries an `oversubscribed` flag so readers don't
//! mistake contention for scaling. The advance-phase metric sums each
//! rank's own phase clock, which stays meaningful under
//! oversubscription (it counts work, not wall overlap).

use pic_ampi::balancer::Balancer;
use pic_ampi::model::AmpiParams;
use pic_ampi::runtime::run_ampi_traced;
use pic_bench::report::trace_summary_markdown;
use pic_comm::world::run_threads;
use pic_core::dist::Distribution;
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::simd::SimdBackend;
use pic_par::baseline::run_baseline_traced;
use pic_par::diffusion::{run_diffusion_mode_traced, DiffusionMode, DiffusionParams};
use pic_par::runner::{ExchangeMode, ParConfig, ParOutcome, RankKernel};
use pic_trace::{Counter, Phase, TraceSummary, Tracer};
use std::fmt::Write as _;
use std::time::Instant;

const GRID: usize = 512;

#[derive(Clone, Copy, PartialEq)]
enum Impl {
    Baseline,
    Diffusion,
    Ampi,
}

impl Impl {
    const ALL: [Impl; 3] = [Impl::Baseline, Impl::Diffusion, Impl::Ampi];

    /// Paper naming, matching the other artifacts.
    fn name(self) -> &'static str {
        match self {
            Impl::Baseline => "mpi-2d",
            Impl::Diffusion => "mpi-2d-LB",
            Impl::Ampi => "ampi",
        }
    }
}

#[derive(Clone, Copy)]
enum Kernel {
    Aos,
    Binned,
    BinnedFast,
    /// Binned exact forced to the scalar kernel (contrast row).
    BinnedScalar,
    /// Binned fast forced to the scalar kernel — which *is* the exact
    /// scalar kernel, the fast tier's `PIC_NO_SIMD` baseline.
    BinnedFastScalar,
    /// Binned exact over the dense synchronous exchange (the oracle) —
    /// the before-row for the overlapped-sparse exchange contrast.
    BinnedDense,
}

impl Kernel {
    fn rank_kernel(self) -> RankKernel {
        use pic_core::engine::SweepMode;
        match self {
            Kernel::Aos => RankKernel::aos(),
            Kernel::Binned => RankKernel::default(),
            Kernel::BinnedFast => RankKernel::from_sweep(SweepMode::SoaBinnedFast),
            Kernel::BinnedScalar => RankKernel::default().with_backend(SimdBackend::Scalar),
            Kernel::BinnedFastScalar => {
                RankKernel::from_sweep(SweepMode::SoaBinnedFast).with_backend(SimdBackend::Scalar)
            }
            Kernel::BinnedDense => RankKernel::default().with_exchange(ExchangeMode::DenseSync),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kernel::Aos => "aos",
            Kernel::Binned => "binned",
            Kernel::BinnedFast => "binned-fast",
            Kernel::BinnedScalar => "binned/scalar",
            Kernel::BinnedFastScalar => "binned-fast/scalar",
            Kernel::BinnedDense => "binned/dense-sync",
        }
    }

    /// The exchange strategy the kernel runs (all kernels except the
    /// dense contrast row use the overlapped-sparse default).
    fn exchange_name(self) -> &'static str {
        match self {
            Kernel::BinnedDense => "dense-sync",
            _ => "sparse-overlap",
        }
    }
}

struct Row {
    imp: &'static str,
    kernel: &'static str,
    /// The `<backend>/<tier>` descriptor the runtime actually selected.
    kernel_desc: String,
    /// Exchange strategy: `sparse-overlap` (default) or `dense-sync`.
    exchange: &'static str,
    n: u64,
    ranks: usize,
    steps: u32,
    oversubscribed: bool,
    wall_s: f64,
    /// Σ over ranks of the rank's advance-phase clock, per particle-step.
    advance_ns: f64,
    /// Same for the exchange phase (routing + drain + rebin check).
    exchange_ns: f64,
    /// Global wire messages (payload/count/escape/fallback) per step.
    msgs_per_step: f64,
    /// Messages the sparse protocol elided per step (0 under dense).
    msgs_skipped_per_step: f64,
}

struct RunResult {
    outcomes: Vec<(ParOutcome, TraceSummary)>,
    wall_s: f64,
}

fn run_one(imp: Impl, kernel: RankKernel, n: u64, ranks: usize, steps: u32) -> RunResult {
    let setup = InitConfig::new(Grid::new(GRID).unwrap(), n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    let cfg = ParConfig::new(setup, steps).with_kernel(kernel);
    let t = Instant::now();
    let outcomes = run_threads(ranks, |comm| {
        let mut tracer = Tracer::in_memory(steps.max(1));
        let o = match imp {
            Impl::Baseline => run_baseline_traced(&comm, &cfg, &mut tracer),
            Impl::Diffusion => run_diffusion_mode_traced(
                &comm,
                &cfg,
                DiffusionParams {
                    interval: 5,
                    tau: 0,
                    border_w: 2,
                },
                DiffusionMode::XOnly,
                &mut tracer,
            ),
            Impl::Ampi => run_ampi_traced(
                &comm,
                &cfg,
                &AmpiParams {
                    d: 4,
                    interval: 20,
                    balancer: Balancer::paper_default(),
                },
                &mut tracer,
            ),
        };
        assert!(
            o.verify.passed(),
            "{} n={n} ranks={ranks}: verification failed: {:?}",
            imp.name(),
            o.verify
        );
        let summary = tracer.finish().expect("enabled tracer").summary;
        (o, summary)
    });
    RunResult {
        outcomes,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Σ over ranks of `phase` ns, per particle-step. Each rank clocks its
/// own phases, so the sum counts *work* and is oversubscription-safe.
fn phase_ns_per_pstep(r: &RunResult, phase: Phase, n: u64, steps: u32) -> f64 {
    let total: u64 = r
        .outcomes
        .iter()
        .map(|(_, s)| s.phase_ns[phase.idx()])
        .sum();
    total as f64 / (n as f64 * steps as f64)
}

fn measure(imp: Impl, kernel: Kernel, n: u64, ranks: usize, host_cores: usize) -> Row {
    let steps = steps_for(n);
    let r = run_one(imp, kernel.rank_kernel(), n, ranks, steps);
    // The message counters are globally reduced at every telemetry
    // snapshot, so every rank's summary already holds the world totals —
    // read rank 0's rather than summing across ranks.
    let counters = &r.outcomes[0].1.counters;
    let row = Row {
        imp: imp.name(),
        kernel: kernel.name(),
        kernel_desc: r.outcomes[0].0.kernel.clone(),
        exchange: kernel.exchange_name(),
        n,
        ranks,
        steps,
        oversubscribed: ranks > host_cores,
        wall_s: r.wall_s,
        advance_ns: phase_ns_per_pstep(&r, Phase::Advance, n, steps),
        exchange_ns: phase_ns_per_pstep(&r, Phase::Exchange, n, steps),
        msgs_per_step: counters[Counter::MsgsSent.idx()] as f64 / steps as f64,
        msgs_skipped_per_step: counters[Counter::MsgsSkipped.idx()] as f64 / steps as f64,
    };
    eprintln!(
        "{:>9} {:<18} n={:<9} ranks={} advance={:.2} exchange={:.2} ns/pstep \
         msgs/step={:.1} (skipped {:.1}) wall={:.2}s",
        row.imp,
        row.kernel_desc,
        row.n,
        row.ranks,
        row.advance_ns,
        row.exchange_ns,
        row.msgs_per_step,
        row.msgs_skipped_per_step,
        row.wall_s
    );
    row
}

/// Steps per timing run, scaled so every tier takes comparable wall time.
fn steps_for(n: u64) -> u32 {
    match n {
        0..=20_000 => 100,
        20_001..=200_000 => 30,
        _ => 10,
    }
}

fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_par.json".to_string());
    let rank_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| t.trim().parse().expect("bad --ranks entry"))
        .collect();
    assert!(!rank_counts.is_empty(), "--ranks needs at least one count");
    let results_dir = args
        .iter()
        .position(|a| a == "--results")
        .and_then(|i| args.get(i + 1).cloned());

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_ranks = *rank_counts.iter().max().unwrap();
    if max_ranks > host_cores {
        eprintln!(
            "NOTE: rank counts up to {max_ranks} on a {host_cores}-core host — \
             thread-ranks will oversubscribe; wall times measure contention, \
             per-rank phase clocks still measure work."
        );
    }
    let simd_backend = SimdBackend::detect();
    let git_commit = command_line("git", &["rev-parse", "--short", "HEAD"]);
    let rustc_version = command_line("rustc", &["--version"]);

    let sizes: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut rows = Vec::new();
    for &n in sizes {
        for imp in Impl::ALL {
            for kernel in [Kernel::Aos, Kernel::Binned, Kernel::BinnedFast] {
                for &ranks in &rank_counts {
                    rows.push(measure(imp, kernel, n, ranks, host_cores));
                }
            }
            // Forced-scalar contrast rows at the largest rank count: same
            // configuration as the headline rows with only the backend
            // changed, so the vector kernel's contribution is isolated.
            if simd_backend.is_vector() {
                for kernel in [Kernel::BinnedScalar, Kernel::BinnedFastScalar] {
                    rows.push(measure(imp, kernel, n, max_ranks, host_cores));
                }
            }
            // Dense-exchange contrast row at the largest rank count: the
            // synchronous P²-message oracle against the overlapped-sparse
            // default (same binned kernel, only the exchange changes).
            if max_ranks > 1 {
                rows.push(measure(imp, Kernel::BinnedDense, n, max_ranks, host_cores));
            }
        }
    }

    // Headline: per-rank advance-phase improvement of the binned fast
    // tier over the AoS reference loop at the largest tier and rank
    // count, per implementation.
    let n_head = *sizes.last().unwrap();
    let advance_of = |imp: &str, kernel: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.imp == imp && r.kernel == kernel && r.n == n_head && r.ranks == max_ranks)
            .map(|r| r.advance_ns)
    };
    let mut headline = Vec::new();
    for imp in Impl::ALL {
        if let (Some(aos), Some(fast)) = (
            advance_of(imp.name(), "aos"),
            advance_of(imp.name(), "binned-fast"),
        ) {
            let speedup = aos / fast;
            eprintln!(
                "headline {:>9} n={n_head}: advance {aos:.2} -> {fast:.2} ns/pstep ({speedup:.2}x)",
                imp.name()
            );
            headline.push((imp.name(), aos, fast, speedup));
        }
    }

    // Exchange headline: dense synchronous oracle vs overlapped sparse on
    // the same binned kernel at the largest tier and rank count —
    // exchange-phase ns/pstep before/after plus the wire-message
    // reduction (the dense path sends ranks² messages per step).
    let row_of = |imp: &str, kernel: &str| -> Option<&Row> {
        rows.iter()
            .find(|r| r.imp == imp && r.kernel == kernel && r.n == n_head && r.ranks == max_ranks)
    };
    let mut exchange_headline = Vec::new();
    for imp in Impl::ALL {
        if let (Some(dense), Some(sparse)) = (
            row_of(imp.name(), "binned/dense-sync"),
            row_of(imp.name(), "binned"),
        ) {
            eprintln!(
                "exchange {:>9} n={n_head}: {:.2} -> {:.2} ns/pstep, \
                 msgs/step {:.1} -> {:.1}",
                imp.name(),
                dense.exchange_ns,
                sparse.exchange_ns,
                dense.msgs_per_step,
                sparse.msgs_per_step
            );
            exchange_headline.push((
                imp.name(),
                dense.exchange_ns,
                sparse.exchange_ns,
                dense.msgs_per_step,
                sparse.msgs_per_step,
            ));
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"par\",");
    // Host capacity leads the metadata: rank counts beyond it mean the
    // wall-clock columns measure oversubscription, not scaling.
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"grid\": {GRID},");
    let _ = writeln!(json, "  \"simd_backend\": \"{}\",", simd_backend.name());
    let _ = writeln!(json, "  \"simd_lanes\": {},", simd_backend.lanes());
    let _ = writeln!(json, "  \"git_commit\": \"{git_commit}\",");
    let _ = writeln!(json, "  \"rustc_version\": \"{rustc_version}\",");
    let _ = writeln!(json, "  \"headline\": [");
    for (i, (imp, aos, fast, speedup)) in headline.iter().enumerate() {
        let comma = if i + 1 == headline.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{imp}\", \"n\": {n_head}, \"ranks\": {max_ranks}, \
             \"aos_advance_ns_per_particle_step\": {aos:.3}, \
             \"binned_fast_advance_ns_per_particle_step\": {fast:.3}, \
             \"advance_speedup\": {speedup:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"exchange_headline\": [");
    for (i, (imp, dense_ns, sparse_ns, dense_msgs, sparse_msgs)) in
        exchange_headline.iter().enumerate()
    {
        let comma = if i + 1 == exchange_headline.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{imp}\", \"n\": {n_head}, \"ranks\": {max_ranks}, \
             \"dense_exchange_ns_per_particle_step\": {dense_ns:.3}, \
             \"sparse_exchange_ns_per_particle_step\": {sparse_ns:.3}, \
             \"dense_msgs_per_step\": {dense_msgs:.1}, \
             \"sparse_msgs_per_step\": {sparse_msgs:.1}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{}\", \"kernel\": \"{}\", \"kernel_desc\": \"{}\", \
             \"exchange\": \"{}\", \
             \"n\": {}, \"ranks\": {}, \"steps\": {}, \"oversubscribed\": {}, \
             \"wall_s\": {:.4}, \"advance_ns_per_particle_step\": {:.3}, \
             \"exchange_ns_per_particle_step\": {:.3}, \
             \"msgs_per_step\": {:.1}, \"msgs_skipped_per_step\": {:.1}}}{comma}",
            r.imp,
            r.kernel,
            r.kernel_desc,
            r.exchange,
            r.n,
            r.ranks,
            r.steps,
            r.oversubscribed,
            r.wall_s,
            r.advance_ns,
            r.exchange_ns,
            r.msgs_per_step,
            r.msgs_skipped_per_step
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");

    if let Some(dir) = results_dir {
        write_scaling_artifacts(&dir, &rank_counts, host_cores, quick);
    }
}

// ---------------------------------------------------------------------------
// Thread-count analogues of Fig 6-left (strong) and Fig 7 (weak)
// ---------------------------------------------------------------------------

/// Functional strong- and weak-scaling runs across the rank grid with the
/// default (binned) kernel, each rank count traced; writes
/// `par_fig6_left.csv`, `par_fig7_weak.csv`, and `par_scaling.md`.
fn write_scaling_artifacts(dir: &str, rank_counts: &[usize], host_cores: usize, quick: bool) {
    let (strong_n, weak_base, steps) = if quick {
        (50_000u64, 25_000u64, 20u32)
    } else {
        (200_000, 100_000, 30)
    };

    let mut md = String::from("# Thread-rank scaling of the distributed implementations\n\n");
    let _ = writeln!(
        md,
        "Functional analogues of the paper's Fig 6-left (strong) and Fig 7 \
         (weak), on thread-ranks with the default binned kernel \
         (`bench_par --results`). Host: **{host_cores} core(s)** — rank \
         counts above that oversubscribe, so wall times measure contention \
         and correctness of the overlap, not parallel speedup; the paper's \
         modeled figures (`fig6_left.csv`, `fig7_weak.csv`) carry the \
         scaling story. Strong: n={strong_n}, grid {GRID}, {steps} steps. \
         Weak: n={weak_base}/rank.\n"
    );

    let mut strong_csv = String::from("ranks,mpi-2d_s,ampi_s,mpi-2d-LB_s\n");
    let mut weak_csv = String::from("ranks,n,mpi-2d_s,ampi_s,mpi-2d-LB_s\n");
    // Strong-run message counts per step: the overlapped-sparse default
    // vs the dense oracle's ranks·(ranks−1) payload wires.
    let mut msg_md = String::from(
        "| ranks | impl | msgs/step (sparse) | elided/step | dense msgs/step |\n\
         |---|---|---|---|---|\n",
    );
    let mut summaries: Vec<(usize, &'static str, TraceSummary)> = Vec::new();

    for &ranks in rank_counts {
        let mut strong = [0.0f64; 3];
        let mut weak = [0.0f64; 3];
        let weak_n = weak_base * ranks as u64;
        for (i, imp) in Impl::ALL.iter().enumerate() {
            let r = run_one(*imp, RankKernel::default(), strong_n, ranks, steps);
            strong[i] = r.wall_s;
            // Keep rank 0's trace digest of the strong run.
            let summary = r.outcomes[0].1.clone();
            let _ = writeln!(
                msg_md,
                "| {ranks} | {} | {:.1} | {:.1} | {} |",
                imp.name(),
                summary.counters[Counter::MsgsSent.idx()] as f64 / steps as f64,
                summary.counters[Counter::MsgsSkipped.idx()] as f64 / steps as f64,
                ranks * ranks.saturating_sub(1),
            );
            summaries.push((ranks, imp.name(), summary));
            weak[i] = run_one(*imp, RankKernel::default(), weak_n, ranks, steps).wall_s;
        }
        let _ = writeln!(
            strong_csv,
            "{ranks},{:.3},{:.3},{:.3}",
            strong[0], strong[2], strong[1]
        );
        let _ = writeln!(
            weak_csv,
            "{ranks},{weak_n},{:.3},{:.3},{:.3}",
            weak[0], weak[2], weak[1]
        );
        eprintln!(
            "scaling ranks={ranks}: strong {:.2}/{:.2}/{:.2}s weak {:.2}/{:.2}/{:.2}s",
            strong[0], strong[1], strong[2], weak[0], weak[1], weak[2]
        );
    }

    let _ = writeln!(
        md,
        "## Strong scaling (Fig 6-left analogue)\n\n```\n{strong_csv}```\n"
    );
    let _ = writeln!(
        md,
        "## Weak scaling (Fig 7 analogue)\n\n```\n{weak_csv}```\n"
    );
    let _ = writeln!(
        md,
        "## Exchange wire messages per step (strong runs)\n\n\
         Overlapped-sparse exchange (the default): per-neighbor count \
         wires always travel, payload wires only when non-empty; the \
         *elided* column counts payloads the sparse protocol skipped. The \
         dense oracle (`--overlap off`) would send `ranks·(ranks−1)` \
         payload wires every step regardless of occupancy.\n\n{msg_md}"
    );
    let _ = writeln!(
        md,
        "## Per-rank-count trace summaries (rank 0, strong runs)\n"
    );
    for (ranks, imp, s) in &summaries {
        let _ = writeln!(
            md,
            "### {imp}, {ranks} rank(s)\n\n{}",
            trace_summary_markdown(s)
        );
    }

    std::fs::create_dir_all(dir).expect("create results dir");
    let p1 = format!("{dir}/par_fig6_left.csv");
    let p2 = format!("{dir}/par_fig7_weak.csv");
    let p3 = format!("{dir}/par_scaling.md");
    std::fs::write(&p1, &strong_csv).expect("write strong csv");
    std::fs::write(&p2, &weak_csv).expect("write weak csv");
    std::fs::write(&p3, &md).expect("write scaling md");
    eprintln!("wrote {p1}, {p2}, {p3}");
}
