//! §V-B scalar result: max particles per core at the end of the 24-core
//! strong-scaling run. Paper: 62,645 (mpi-2d) vs 30,585 (mpi-2d-LB),
//! ideal 25,000.

use pic_bench::report::{max_count_markdown, scale_from_args};
use pic_bench::table_max_count;

fn main() {
    let scale = scale_from_args();
    eprintln!("# §V-B — max particles per core at 24 cores (6,000/{scale} steps)");
    let row = table_max_count(scale);
    print!("{}", max_count_markdown(&row));
}
