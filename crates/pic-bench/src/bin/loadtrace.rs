//! Per-step load traces of the three strategies on the paper's drifting
//! skew — the raw series behind "how well does each balancer track the
//! moving load". Writes one CSV per strategy to `results/`.
//!
//! Usage: `loadtrace [--scale N] [--cores P]`

use pic_ampi::balancer::Balancer;
use pic_ampi::vp::VpGrid;
use pic_bench::report::scale_from_args;
use pic_cluster::loadmodel::ColumnLoadModel;
use pic_cluster::stats::LoadTrace;
use pic_core::dist::Distribution;
use pic_par::decomp::Decomp2d;
use pic_par::diffusion::diffuse_xcuts;
use std::fs;

fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_args().max(1);
    let cores = arg_usize("--cores", 24);
    let ncells = 2998usize;
    let n = 600_000u64;
    let steps = 6_000 / scale;
    let dist = Distribution::PAPER_SKEW;

    fs::create_dir_all("results").unwrap();

    // Baseline: static cuts.
    let decomp = Decomp2d::uniform(ncells, cores);
    let mut load = ColumnLoadModel::new(dist, ncells, n, 0, 1);
    let mut trace = LoadTrace::new();
    for s in 0..steps {
        let loads: Vec<f64> = (0..cores)
            .map(|r| {
                let (cols, rows) = decomp.bounds(r);
                load.count_in_rect(cols, rows)
            })
            .collect();
        trace.push(s, &loads);
        load.advance(1);
    }
    fs::write("results/trace_baseline.csv", trace.to_csv()).unwrap();
    println!("baseline   mean imbalance: {:.2}", trace.mean_imbalance());

    // Diffusion: x-cuts move every 5 steps.
    let mut decomp = Decomp2d::uniform(ncells, cores);
    let mut load = ColumnLoadModel::new(dist, ncells, n, 0, 1);
    let mut trace = LoadTrace::new();
    let (interval, w) = (5u64, 10usize);
    for s in 0..steps {
        let loads: Vec<f64> = (0..cores)
            .map(|r| {
                let (cols, rows) = decomp.bounds(r);
                load.count_in_rect(cols, rows)
            })
            .collect();
        trace.push(s, &loads);
        load.advance(1);
        if (s + 1) % interval == 0 {
            let col_counts: Vec<u64> = (0..decomp.px)
                .map(|cx| {
                    let (a, b) = decomp.col_range(cx);
                    load.count_in_columns(a, b)
                })
                .collect();
            let cuts = diffuse_xcuts(&decomp.xcuts, &col_counts, n / cores as u64 / 20, w, ncells);
            decomp.set_xcuts(cuts);
        }
    }
    fs::write("results/trace_diffusion.csv", trace.to_csv()).unwrap();
    println!("diffusion  mean imbalance: {:.2}", trace.mean_imbalance());

    // AMPI: VP refine every 150 steps.
    let vps = VpGrid::new(ncells, cores, 8);
    let mut assignment = vps.initial_assignment();
    let mut load = ColumnLoadModel::new(dist, ncells, n, 0, 1);
    let mut trace = LoadTrace::new();
    let balancer = Balancer::paper_default();
    let interval = (600 / scale).max(1);
    let mut vp_loads = vec![0.0f64; vps.vp_count()];
    for s in 0..steps {
        let mut loads = vec![0.0f64; cores];
        for vp in 0..vps.vp_count() {
            let (cols, rows) = vps.decomp.bounds(vp);
            vp_loads[vp] = load.count_in_rect(cols, rows);
            loads[assignment[vp]] += vp_loads[vp];
        }
        trace.push(s, &loads);
        load.advance(1);
        if (s + 1) % interval == 0 {
            assignment = balancer.rebalance(&vp_loads, &assignment, cores);
        }
    }
    fs::write("results/trace_ampi.csv", trace.to_csv()).unwrap();
    println!("ampi       mean imbalance: {:.2}", trace.mean_imbalance());
    eprintln!("traces written to results/trace_*.csv");
}
