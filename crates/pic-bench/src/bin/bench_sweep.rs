//! Emit `BENCH_sweep.json`: wall-clock ns/particle/step for every sweep
//! mode of the single-process engine, across a thread-count grid, plus
//! the chunk-size sensitivity of the chunked sweep, the rebin-interval
//! sensitivity of the binned sweep, and a SIMD-on/SIMD-off pair for the
//! binned sweep (vector backend vs forced-scalar kernel).
//!
//! ```text
//! bench_sweep [--out PATH] [--quick] [--threads LIST] [--modes LIST]
//!             [--fast-report PATH]
//! ```
//!
//! `--quick` drops the 1e6-particle tier (for CI smoke runs).
//! `--threads 1,2,4` selects the thread counts to scan (default
//! `1,2,4,8`); the process pre-sizes the worker pool to the largest
//! requested count (via `PIC_THREADS`) and then caps the active threads
//! per measurement, so one process covers the whole scaling grid.
//! `--modes soa-serial,soa-binned` restricts the run to a subset of sweep
//! modes (default: all six; the sensitivity scans only run when their
//! mode is selected). Single-thread-by-construction modes (`aos-serial`,
//! `soa-serial`) are measured once at 1 thread. The output is one JSON
//! object with host metadata (core count, detected SIMD backend and its
//! lane width, FMA availability, git commit, rustc version) and a record
//! per (mode, n, threads, chunk, rebin, simd) configuration;
//! `scripts/bench.sh` runs this from the repository root so the artifact
//! lands next to the other `BENCH_*` files.
//!
//! `--fast-report PATH` additionally writes a markdown exact-vs-fast
//! comparison (`soa-binned` vs `soa-binned-fast`, vector and
//! forced-scalar, per population tier) — the `results/sweep_fast.md`
//! artifact. Requires both binned modes in the run.

use pic_core::bin::DEFAULT_REBIN;
use pic_core::dist::Distribution;
use pic_core::engine::{Simulation, SweepMode};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::pool;
use pic_core::simd::SimdBackend;
use std::fmt::Write as _;
use std::time::Instant;

const GRID: usize = 512;

fn mode_name(mode: SweepMode) -> &'static str {
    match mode {
        SweepMode::Serial => "aos-serial",
        SweepMode::Parallel => "aos-parallel",
        SweepMode::Soa => "soa-serial",
        SweepMode::SoaChunked => "soa-chunked",
        SweepMode::SoaBinned => "soa-binned",
        SweepMode::SoaBinnedFast => "soa-binned-fast",
    }
}

fn mode_from_name(name: &str) -> Option<SweepMode> {
    Some(match name {
        "aos-serial" => SweepMode::Serial,
        "aos-parallel" => SweepMode::Parallel,
        "soa-serial" => SweepMode::Soa,
        "soa-chunked" => SweepMode::SoaChunked,
        "soa-binned" => SweepMode::SoaBinned,
        "soa-binned-fast" => SweepMode::SoaBinnedFast,
        _ => return None,
    })
}

/// Whether a mode's sweep goes through the worker pool (and therefore
/// belongs in the thread-scaling grid).
fn mode_is_pooled(mode: SweepMode) -> bool {
    !matches!(mode, SweepMode::Serial | SweepMode::Soa)
}

#[derive(Clone, Copy)]
struct Record {
    mode: &'static str,
    n: u64,
    threads: usize,
    chunk: usize,
    rebin: u32,
    /// SIMD backend the sweep kernel ran on: a vector ISA name or
    /// "scalar" for `soa-binned`, "-" for modes without a SIMD path.
    simd: &'static str,
    steps: u32,
    ns: f64,
}

/// Measure one configuration: warm up (pool spawn, cache fill, initial
/// binning), then time `steps` steps and return ns per particle per step
/// together with the effective chunk size the run used (`chunk: None`
/// means the adaptive default; the resolved value is what gets recorded).
fn time_mode(
    mode: SweepMode,
    chunk: Option<usize>,
    rebin: u32,
    backend: Option<SimdBackend>,
    n: u64,
    steps: u32,
) -> (f64, usize) {
    let grid = Grid::new(GRID).unwrap();
    let setup = InitConfig::new(grid, n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    let mut sim = Simulation::with_mode(setup, mode).with_rebin_interval(rebin);
    if let Some(chunk) = chunk {
        sim = sim.with_chunk_size(chunk);
    }
    if let Some(backend) = backend {
        sim = sim.with_simd_backend(backend);
    }
    let effective_chunk = sim.chunk_size();
    sim.run(3);
    let t = Instant::now();
    sim.run(steps);
    let ns = t.elapsed().as_nanos() as f64;
    assert!(sim.verify().passed(), "{mode:?} n={n}: verification failed");
    (ns / (steps as f64 * n as f64), effective_chunk)
}

/// Steps per timing run, scaled so every tier takes a comparable wall time.
fn steps_for(n: u64) -> u32 {
    match n {
        0..=20_000 => 200,
        20_001..=200_000 => 40,
        _ => 12,
    }
}

fn run_record(
    mode: SweepMode,
    chunk: Option<usize>,
    rebin: u32,
    backend: Option<SimdBackend>,
    n: u64,
    threads: usize,
) -> Record {
    let threads = pool::global().set_active_threads(threads);
    let steps = steps_for(n);
    let (ns, effective_chunk) = time_mode(mode, chunk, rebin, backend, n, steps);
    let simd = match (mode, backend) {
        (SweepMode::SoaBinned | SweepMode::SoaBinnedFast, Some(b)) => b.name(),
        (SweepMode::SoaBinned | SweepMode::SoaBinnedFast, None) => SimdBackend::detect().name(),
        _ => "-",
    };
    eprintln!(
        "{:>12} n={n:<9} threads={threads} chunk={effective_chunk:<6} rebin={rebin:<3} \
         simd={simd:<6} {ns:.2} ns/particle/step",
        mode_name(mode)
    );
    Record {
        mode: mode_name(mode),
        n,
        threads,
        chunk: effective_chunk,
        rebin,
        simd,
        steps,
        ns,
    }
}

fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let thread_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|t| t.trim().parse().expect("bad --threads entry"))
        .collect();
    assert!(
        !thread_counts.is_empty(),
        "--threads needs at least one count"
    );
    let all_modes = [
        SweepMode::Serial,
        SweepMode::Parallel,
        SweepMode::Soa,
        SweepMode::SoaChunked,
        SweepMode::SoaBinned,
        SweepMode::SoaBinnedFast,
    ];
    let fast_report_path = args
        .iter()
        .position(|a| a == "--fast-report")
        .and_then(|i| args.get(i + 1).cloned());
    let modes: Vec<SweepMode> = match args
        .iter()
        .position(|a| a == "--modes")
        .and_then(|i| args.get(i + 1))
    {
        Some(list) => list
            .split(',')
            .map(|m| {
                mode_from_name(m.trim())
                    .unwrap_or_else(|| panic!("bad --modes entry: {m} (see --help of pic)"))
            })
            .collect(),
        None => all_modes.to_vec(),
    };
    assert!(!modes.is_empty(), "--modes needs at least one mode");

    // Pre-size the pool to the largest requested count before first use;
    // individual measurements then cap the active threads. On hosts with
    // fewer cores this oversubscribes deliberately (the scaling section in
    // results/ is where the numbers are interpreted).
    let max_threads = *thread_counts.iter().max().unwrap();
    if std::env::var("PIC_THREADS").is_err() {
        std::env::set_var("PIC_THREADS", max_threads.to_string());
    }
    let pool_threads = pool::global().threads();

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let simd_backend = SimdBackend::detect();
    let git_commit = command_line("git", &["rev-parse", "--short", "HEAD"]);
    let rustc_version = command_line("rustc", &["--version"]);

    let sizes: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut records = Vec::new();
    for &n in sizes {
        for &mode in &modes {
            if mode_is_pooled(mode) {
                for &t in &thread_counts {
                    records.push(run_record(mode, None, DEFAULT_REBIN, None, n, t));
                }
            } else {
                records.push(run_record(mode, None, DEFAULT_REBIN, None, n, 1));
            }
        }
        // SIMD-off contrast rows: the binned sweeps with the vector path
        // forced to the scalar kernel, at 1 thread so the backend is the
        // only variable. Skipped when the host has no vector backend —
        // the default rows already are the scalar numbers. (For
        // soa-binned-fast the scalar backend runs the *exact* scalar
        // kernel, so its contrast row doubles as the fast tier's
        // PIC_NO_SIMD baseline.)
        for mode in [SweepMode::SoaBinned, SweepMode::SoaBinnedFast] {
            if modes.contains(&mode) && simd_backend.is_vector() {
                records.push(run_record(
                    mode,
                    None,
                    DEFAULT_REBIN,
                    Some(SimdBackend::Scalar),
                    n,
                    1,
                ));
            }
        }
    }
    // Sensitivity scans at the largest tier, single-threaded so the knob
    // under study is the only variable (explicit chunk sizes here; the
    // grid above uses the adaptive default).
    let n = *sizes.last().unwrap();
    if modes.contains(&SweepMode::SoaChunked) {
        for chunk in [256usize, 1_024, 4_096, 16_384, 65_536] {
            records.push(run_record(
                SweepMode::SoaChunked,
                Some(chunk),
                DEFAULT_REBIN,
                None,
                n,
                1,
            ));
        }
    }
    if modes.contains(&SweepMode::SoaBinned) {
        for rebin in [1u32, 3] {
            if rebin == DEFAULT_REBIN {
                continue; // already measured above
            }
            records.push(run_record(SweepMode::SoaBinned, None, rebin, None, n, 1));
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sweep\",");
    let _ = writeln!(json, "  \"grid\": {GRID},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"pool_threads\": {pool_threads},");
    let _ = writeln!(json, "  \"simd_backend\": \"{}\",", simd_backend.name());
    let _ = writeln!(json, "  \"simd_lanes\": {},", simd_backend.lanes());
    let _ = writeln!(json, "  \"fma\": {},", simd_backend.fast_tier_fuses());
    let _ = writeln!(json, "  \"git_commit\": \"{git_commit}\",");
    let _ = writeln!(json, "  \"rustc_version\": \"{rustc_version}\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"chunk\": {}, \"rebin\": {}, \"simd\": \"{}\", \"steps\": {}, \
             \"ns_per_particle_step\": {:.3}}}{comma}",
            r.mode, r.n, r.threads, r.chunk, r.rebin, r.simd, r.steps, r.ns
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");

    if let Some(path) = fast_report_path {
        let md = fast_report(&records, sizes, simd_backend, host_cores);
        std::fs::write(&path, &md).expect("write fast-tier report");
        eprintln!("wrote {path}");
    }
}

/// Markdown exact-vs-fast comparison from the collected records: for each
/// population tier, the lowest-thread-count `soa-binned` and
/// `soa-binned-fast` rows on the vector backend and on the forced-scalar
/// kernel, with the fast/exact speedup.
fn fast_report(
    records: &[Record],
    sizes: &[u64],
    backend: SimdBackend,
    host_cores: usize,
) -> String {
    // Lowest-thread-count default-rebin row for (mode, n, simd).
    let row = |mode: &str, n: u64, simd: &str| -> Option<&Record> {
        records
            .iter()
            .filter(|r| r.mode == mode && r.n == n && r.simd == simd && r.rebin == DEFAULT_REBIN)
            .min_by_key(|r| r.threads)
    };
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Exact vs fast sweep tier (`soa-binned` vs `soa-binned-fast`)\n"
    );
    let _ = writeln!(
        md,
        "Host: {host_cores} core(s), widest backend `{}` ({} lanes, fma: {}). \
         ns/particle/step, lowest measured thread count per row; rebin {DEFAULT_REBIN}.\n",
        backend.name(),
        backend.lanes(),
        backend.fast_tier_fuses(),
    );
    let _ = writeln!(md, "| n | simd | exact ns | fast ns | fast/exact speedup |");
    let _ = writeln!(md, "|---|------|----------|---------|--------------------|");
    for &n in sizes {
        let mut simds: Vec<&str> = vec![backend.name()];
        if backend.is_vector() {
            simds.push("scalar");
        }
        for simd in simds {
            let (exact, fast) = (row("soa-binned", n, simd), row("soa-binned-fast", n, simd));
            let fmt = |r: Option<&Record>| match r {
                Some(r) => format!("{:.2}", r.ns),
                None => "-".to_string(),
            };
            let speedup = match (exact, fast) {
                (Some(e), Some(f)) if f.ns > 0.0 => format!("{:.2}x", e.ns / f.ns),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                md,
                "| {n} | {simd} | {} | {} | {speedup} |",
                fmt(exact),
                fmt(fast)
            );
        }
    }
    let _ = writeln!(
        md,
        "\nThe `scalar` rows run the exact scalar kernel in *both* modes \
         (the fast tier falls back to bit-exact scalar under `PIC_NO_SIMD=1` \
         or a scalar backend override), so they should agree to noise — \
         they isolate the vector-kernel contribution from the tier change."
    );
    let _ = writeln!(
        md,
        "\nThe fast tier relaxes bit-identity (FMA, reciprocal square root, \
         reassociated corner accumulation — DESIGN.md §12) and is verified \
         against the analytic trajectory bound \
         (`pic_core::verify::analytic_tolerance`) instead of bitwise \
         equality; every timed run above passed that gate."
    );
    md
}
