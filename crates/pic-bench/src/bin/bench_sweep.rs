//! Emit `BENCH_sweep.json`: wall-clock ns/particle/step for every sweep
//! mode of the single-process engine, plus the chunk-size sensitivity of
//! the chunked sweep.
//!
//! ```text
//! bench_sweep [--out PATH] [--quick]
//! ```
//!
//! `--quick` drops the 1e6-particle tier (for CI smoke runs). The output
//! is one JSON object with a record per (mode, n, chunk) configuration;
//! `scripts/bench.sh` runs this from the repository root so the artifact
//! lands next to the other `BENCH_*` files.

use pic_core::dist::Distribution;
use pic_core::engine::{Simulation, SweepMode};
use pic_core::geometry::Grid;
use pic_core::init::InitConfig;
use pic_core::pool::{self, DEFAULT_CHUNK};
use std::fmt::Write as _;
use std::time::Instant;

const GRID: usize = 512;

fn mode_name(mode: SweepMode) -> &'static str {
    match mode {
        SweepMode::Serial => "aos-serial",
        SweepMode::Parallel => "aos-parallel",
        SweepMode::Soa => "soa-serial",
        SweepMode::SoaChunked => "soa-chunked",
    }
}

/// Measure one configuration: warm up (pool spawn, cache fill), then time
/// `steps` steps and return ns per particle per step.
fn time_mode(mode: SweepMode, chunk: usize, n: u64, steps: u32) -> f64 {
    let grid = Grid::new(GRID).unwrap();
    let setup = InitConfig::new(grid, n, Distribution::PAPER_SKEW)
        .with_m(1)
        .build()
        .unwrap();
    let mut sim = Simulation::with_mode(setup, mode).with_chunk_size(chunk);
    sim.run(3);
    let t = Instant::now();
    sim.run(steps);
    let ns = t.elapsed().as_nanos() as f64;
    assert!(sim.verify().passed(), "{mode:?} n={n}: verification failed");
    ns / (steps as f64 * n as f64)
}

/// Steps per timing run, scaled so every tier takes a comparable wall time.
fn steps_for(n: u64) -> u32 {
    match n {
        0..=20_000 => 200,
        20_001..=200_000 => 40,
        _ => 12,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let sizes: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let modes = [
        SweepMode::Serial,
        SweepMode::Parallel,
        SweepMode::Soa,
        SweepMode::SoaChunked,
    ];
    let threads = pool::global().threads();

    let mut records = Vec::new();
    for &n in sizes {
        let steps = steps_for(n);
        for mode in modes {
            let ns = time_mode(mode, DEFAULT_CHUNK, n, steps);
            eprintln!("{:>12} n={n:<9} chunk={DEFAULT_CHUNK:<6} {ns:.2} ns/particle/step", mode_name(mode));
            records.push((mode_name(mode), n, DEFAULT_CHUNK, steps, ns));
        }
    }
    // Chunk sensitivity of the chunked sweep at the largest tier.
    let n = *sizes.last().unwrap();
    let steps = steps_for(n);
    for chunk in [256usize, 1_024, 4_096, 16_384, 65_536] {
        if chunk == DEFAULT_CHUNK {
            continue; // already measured above
        }
        let ns = time_mode(SweepMode::SoaChunked, chunk, n, steps);
        eprintln!("{:>12} n={n:<9} chunk={chunk:<6} {ns:.2} ns/particle/step", "soa-chunked");
        records.push(("soa-chunked", n, chunk, steps, ns));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sweep\",");
    let _ = writeln!(json, "  \"grid\": {GRID},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, (mode, n, chunk, steps, ns)) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"n\": {n}, \"threads\": {threads}, \
             \"chunk\": {chunk}, \"steps\": {steps}, \
             \"ns_per_particle_step\": {ns:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");
}
