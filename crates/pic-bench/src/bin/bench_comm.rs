//! `bench_comm` — microbenchmark of the particle-exchange collective:
//! dense synchronous alltoallv vs the sparse neighbor-aware variant vs
//! the sparse *split-phase* form (start → local compute → finish), plus
//! the wire-format contrast pair (byte-serialized particle records vs
//! the typed zero-copy lane), on a neighbor-ring traffic pattern (each
//! rank has payloads only for its two ring neighbors, the shape a PIC
//! column decomposition produces).
//!
//! ```text
//! bench_comm [--out PATH] [--ranks LIST] [--iters N] [--payload LIST]
//! ```
//!
//! `--payload` takes a comma list of payload sizes in bytes (default
//! `1024,4096,16384`); the typed variants carry the equivalent particle
//! count (`payload / 76`, the wire-record size). The rows are spliced
//! into `BENCH_par.json` (default `--out`) as the top-level `"comm"`
//! section, replacing an existing one, so running `bench_par` then
//! `bench_comm` yields one artifact; a dense/sparse crossover table is
//! also spliced into `results/par_scaling.md` when that file exists.
//! All exchange variants perform the identical compute kernel per
//! iteration; only its position relative to the wire traffic moves.
//! Ranks are OS threads, so counts beyond the host's cores
//! oversubscribe — each row carries the same `oversubscribed` flag as
//! the main benchmark.

use pic_comm::collective::allreduce_u64;
use pic_comm::comm::Communicator;
use pic_comm::comm::ReduceOp;
use pic_comm::sparse::{
    alltoallv_finish_into, alltoallv_sparse_finish_into, alltoallv_sparse_start, alltoallv_start,
    SparsePlan,
};
use pic_comm::world::run_threads;
use pic_core::particle::Particle;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    DenseSync,
    SparseSync,
    SparseSplit,
    /// Particle traffic on the byte wire: encode each bucket into its
    /// 76-byte-per-record buffer, alltoallv the bytes, decode each
    /// arrival — the serialization oracle's per-step cost.
    BytesWire,
    /// The same particle traffic on the typed lane: the buckets
    /// themselves cross the fabric by ownership — no encode, no decode,
    /// no per-particle copy.
    TypedWire,
}

impl Variant {
    const ALL: [Variant; 5] = [
        Variant::DenseSync,
        Variant::SparseSync,
        Variant::SparseSplit,
        Variant::BytesWire,
        Variant::TypedWire,
    ];

    fn name(self) -> &'static str {
        match self {
            Variant::DenseSync => "dense-sync",
            Variant::SparseSync => "sparse-sync",
            Variant::SparseSplit => "sparse-split-phase",
            Variant::BytesWire => "bytes-wire",
            Variant::TypedWire => "typed-wire",
        }
    }
}

struct Row {
    variant: &'static str,
    ranks: usize,
    payload: usize,
    oversubscribed: bool,
    /// Max over ranks of the mean wall time per iteration.
    ns_per_iter: f64,
    /// Global wire messages (payload + count + escape rounds) per iteration.
    msgs_per_iter: f64,
    /// Payload messages the sparse protocol elided per iteration.
    skipped_per_iter: f64,
}

/// The stand-in for the interior sweep: enough arithmetic to give the
/// in-flight messages something to hide behind. Returns a value the
/// caller folds into a sink so the loop cannot be optimized away.
fn compute_kernel(seed: u64, work: usize) -> u64 {
    let mut acc = seed;
    for i in 0..work {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc
}

fn sample_particle(id: u64) -> Particle {
    Particle {
        id,
        x: 3.5 + id as f64,
        y: 7.5,
        vx: -2.0,
        vy: 1.0,
        q: -0.3535533905932738,
        x0: 1.5,
        y0: 7.5,
        k: 2,
        m: -1,
        born_at: 0,
    }
}

fn bench_variant(
    comm: &Communicator,
    variant: Variant,
    iters: u32,
    payload: usize,
    work: usize,
) -> (f64, u64, u64) {
    let size = comm.size();
    let rank = comm.rank();
    // Ring neighbors: the traffic of a column decomposition.
    let left = (rank + size - 1) % size;
    let right = (rank + 1) % size;
    let mut plan = SparsePlan::new(size, rank, [left, right]);
    let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); size];
    let mut incoming: Vec<Vec<u8>> = Vec::new();
    // Wire-format contrast state: the same per-neighbor particle count a
    // `payload`-byte message carries, staged as typed buckets.
    let np = (payload / Particle::WIRE_SIZE).max(1);
    let mut buckets: Vec<Vec<Particle>> = vec![Vec::new(); size];
    let mut typed_incoming: Vec<Vec<Particle>> = Vec::new();
    let mut arrivals: Vec<Particle> = Vec::new();
    let mut sink = 0u64;
    let (mut msgs, mut skipped) = (0u64, 0u64);

    let t0 = Instant::now();
    for it in 0..iters {
        match variant {
            Variant::DenseSync | Variant::SparseSync | Variant::SparseSplit => {
                for (d, buf) in outgoing.iter_mut().enumerate() {
                    buf.clear();
                    if d == left || d == right {
                        buf.resize(payload, it as u8);
                    }
                }
            }
            Variant::BytesWire | Variant::TypedWire => {
                for (d, b) in buckets.iter_mut().enumerate() {
                    b.clear();
                    if d == left || d == right {
                        b.extend((0..np).map(|i| sample_particle(i as u64 + it as u64)));
                    }
                }
            }
        }
        match variant {
            Variant::DenseSync => {
                let h = alltoallv_start(comm, &mut outgoing);
                msgs += h.messages_sent();
                alltoallv_finish_into(comm, h, &mut incoming);
                sink ^= compute_kernel(sink.wrapping_add(it as u64), work);
            }
            Variant::SparseSync => {
                let h = alltoallv_sparse_start(comm, &mut outgoing, &mut plan);
                msgs += h.messages_sent();
                skipped += h.messages_skipped();
                alltoallv_sparse_finish_into(comm, h, &mut plan, &mut incoming);
                sink ^= compute_kernel(sink.wrapping_add(it as u64), work);
            }
            Variant::SparseSplit => {
                let h = alltoallv_sparse_start(comm, &mut outgoing, &mut plan);
                msgs += h.messages_sent();
                skipped += h.messages_skipped();
                // The compute runs while the wires drain — the overlap
                // window the split-phase API exists for.
                sink ^= compute_kernel(sink.wrapping_add(it as u64), work);
                alltoallv_sparse_finish_into(comm, h, &mut plan, &mut incoming);
            }
            Variant::BytesWire => {
                // Serialization oracle: encode → wire → decode, the work
                // the typed lane deletes.
                for (d, buf) in outgoing.iter_mut().enumerate() {
                    buf.clear();
                    for p in &buckets[d] {
                        p.encode(buf);
                    }
                }
                let h = alltoallv_start(comm, &mut outgoing);
                msgs += h.messages_sent();
                alltoallv_finish_into(comm, h, &mut incoming);
                arrivals.clear();
                for buf in &incoming {
                    Particle::decode_each(buf, |p| arrivals.push(p)).expect("wire-aligned buffer");
                }
                sink ^= arrivals.last().map_or(0, |p| p.id);
                sink ^= compute_kernel(sink.wrapping_add(it as u64), work);
            }
            Variant::TypedWire => {
                let h = alltoallv_start(comm, &mut buckets);
                msgs += h.messages_sent();
                alltoallv_finish_into(comm, h, &mut typed_incoming);
                arrivals.clear();
                for b in &typed_incoming {
                    arrivals.extend_from_slice(b);
                }
                // Recycle arrival capacity into next iteration's staging
                // slots, the way the runtime's spare free-list does, so
                // steady state stays allocation-free here too.
                for (slot, b) in buckets.iter_mut().zip(typed_incoming.drain(..)) {
                    *slot = b;
                }
                sink ^= arrivals.last().map_or(0, |p| p.id);
                sink ^= compute_kernel(sink.wrapping_add(it as u64), work);
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64 / iters as u64;
    std::hint::black_box(sink);
    (ns as f64, msgs, skipped)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let out_path = get("--out").unwrap_or("BENCH_par.json").to_string();
    let rank_counts: Vec<usize> = get("--ranks")
        .unwrap_or("2,4,8")
        .split(',')
        .map(|t| t.trim().parse().expect("bad --ranks entry"))
        .collect();
    let iters: u32 = get("--iters").map_or(2000, |v| v.parse().expect("bad --iters"));
    let payloads: Vec<usize> = get("--payload")
        .unwrap_or("1024,4096,16384")
        .split(',')
        .map(|t| t.trim().parse().expect("bad --payload entry"))
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for &payload in &payloads {
        // Compute sized to roughly a payload's worth of touches per rank.
        let work = payload;
        for &ranks in &rank_counts {
            for variant in Variant::ALL {
                let results = run_threads(ranks, |comm| {
                    let (ns, msgs, skipped) = bench_variant(&comm, variant, iters, payload, work);
                    // Slowest rank bounds the step; message totals are global.
                    let ns_max = allreduce_u64(&comm, ns as u64, ReduceOp::Max);
                    let msgs_tot = allreduce_u64(&comm, msgs, ReduceOp::Sum);
                    let skip_tot = allreduce_u64(&comm, skipped, ReduceOp::Sum);
                    (ns_max, msgs_tot, skip_tot)
                });
                let (ns_max, msgs_tot, skip_tot) = results[0];
                let row = Row {
                    variant: variant.name(),
                    ranks,
                    payload,
                    oversubscribed: ranks > host_cores,
                    ns_per_iter: ns_max as f64,
                    msgs_per_iter: msgs_tot as f64 / iters as f64,
                    skipped_per_iter: skip_tot as f64 / iters as f64,
                };
                eprintln!(
                    "{:<18} ranks={} payload={:<6} {:>10.0} ns/iter msgs/iter={:.1} \
                     skipped/iter={:.1}",
                    row.variant,
                    row.ranks,
                    row.payload,
                    row.ns_per_iter,
                    row.msgs_per_iter,
                    row.skipped_per_iter
                );
                rows.push(row);
            }
        }
    }

    let mut section = String::new();
    let _ = writeln!(section, "  \"comm\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            section,
            "    {{\"variant\": \"{}\", \"ranks\": {}, \"oversubscribed\": {}, \
             \"iters\": {iters}, \"payload_bytes\": {}, \
             \"ns_per_iter\": {:.0}, \"msgs_per_iter\": {:.1}, \
             \"msgs_skipped_per_iter\": {:.1}}}{comma}",
            r.variant,
            r.ranks,
            r.oversubscribed,
            r.payload,
            r.ns_per_iter,
            r.msgs_per_iter,
            r.skipped_per_iter
        );
    }
    let _ = writeln!(section, "  ],");

    let merged = splice_comm_section(
        std::fs::read_to_string(&out_path).ok().as_deref(),
        &section,
        host_cores,
    );
    std::fs::write(&out_path, merged).expect("write benchmark artifact");
    eprintln!("wrote comm section into {out_path}");

    let md_path = "results/par_scaling.md";
    if let Ok(md) = std::fs::read_to_string(md_path) {
        let spliced = splice_crossover_table(&md, &crossover_table(&rows));
        std::fs::write(md_path, spliced).expect("write crossover table");
        eprintln!("spliced crossover table into {md_path}");
    }
}

/// The dense/sparse crossover and wire-format contrast tables the
/// `--overlap auto` heuristic is tuned against, as a markdown section.
fn crossover_table(rows: &[Row]) -> String {
    let find = |variant: &str, ranks: usize, payload: usize| -> Option<f64> {
        rows.iter()
            .find(|r| r.variant == variant && r.ranks == ranks && r.payload == payload)
            .map(|r| r.ns_per_iter)
    };
    let mut md = String::from(
        "## Exchange microbenchmark crossover (`bench_comm`, ring traffic)\n\n\
         Per-iteration wall time of the dense synchronous alltoallv vs the \
         sparse split-phase protocol, by world size and payload. The sparse \
         protocol's fixed overhead (escape dissemination + per-neighbor \
         count wires) dominates at small world sizes — `--overlap auto` \
         picks dense below the crossover. The wire pair carries the same \
         bytes as particle records: `bytes-wire` encodes/decodes the \
         76-byte oracle format, `typed-wire` moves the buckets by \
         ownership.\n\n\
         | ranks | payload B | dense ns | sparse-split ns | winner | \
         bytes-wire ns | typed-wire ns | typed speedup |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut keys: Vec<(usize, usize)> = rows.iter().map(|r| (r.ranks, r.payload)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (ranks, payload) in keys {
        let (Some(dense), Some(split), Some(bytes), Some(typed)) = (
            find("dense-sync", ranks, payload),
            find("sparse-split-phase", ranks, payload),
            find("bytes-wire", ranks, payload),
            find("typed-wire", ranks, payload),
        ) else {
            continue;
        };
        let winner = if dense <= split { "dense" } else { "sparse" };
        let _ = writeln!(
            md,
            "| {ranks} | {payload} | {dense:.0} | {split:.0} | {winner} | \
             {bytes:.0} | {typed:.0} | {:.2}x |",
            bytes / typed
        );
    }
    md.push('\n');
    md
}

/// Insert (or replace) the crossover section in `par_scaling.md`. The
/// section spans from its `## ` heading to the next `## ` heading (or
/// EOF); `bench_par` rewrites the whole file, so this re-splice keeps the
/// table alive across regenerations in either order.
fn splice_crossover_table(existing: &str, section: &str) -> String {
    const HEADING: &str = "## Exchange microbenchmark crossover";
    let mut out = String::new();
    let mut skipping = false;
    let mut inserted = false;
    for line in existing.lines() {
        if line.starts_with(HEADING) {
            skipping = true;
            out.push_str(section);
            inserted = true;
            continue;
        }
        if skipping {
            if line.starts_with("## ") {
                skipping = false;
            } else {
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    if !inserted {
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(section);
    }
    out
}

/// Insert (or replace) the `"comm"` section in the `bench_par` artifact.
/// The artifact is our own line-oriented emission, so a line-based splice
/// is reliable: the section starts at the `  "comm": [` line and ends at
/// the next `  ],` (or `  ]`) line. Without an existing artifact a
/// minimal wrapper is produced.
fn splice_comm_section(existing: Option<&str>, section: &str, host_cores: usize) -> String {
    let Some(text) = existing else {
        return format!(
            "{{\n  \"benchmark\": \"par\",\n  \"host_cores\": {host_cores},\n{}  \"results\": []\n}}\n",
            section
        );
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::new();
    let mut i = 0;
    let mut inserted = false;
    while i < lines.len() {
        let line = lines[i];
        if line.trim_start().starts_with("\"comm\": [") {
            // Skip the stale section through its closing bracket line.
            while i < lines.len() && lines[i].trim() != "]," && lines[i].trim() != "]" {
                i += 1;
            }
            i += 1; // the bracket line itself
            out.push_str(section);
            inserted = true;
            continue;
        }
        // Insert ahead of the results array on first sight.
        if !inserted && line.trim_start().starts_with("\"results\": [") {
            out.push_str(section);
            inserted = true;
        }
        out.push_str(line);
        out.push('\n');
        i += 1;
    }
    if !inserted {
        // No results array either — degenerate artifact; append before the
        // closing brace.
        let body = out.trim_end().trim_end_matches('}').to_string();
        return format!("{body}{section}}}\n");
    }
    out
}
