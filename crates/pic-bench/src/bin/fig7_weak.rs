//! Figure 7: weak scaling, 48–3,072 cores.
//! 11,998² cells; 400 k particles at 48 cores, scaled with the core count.

use pic_bench::fig7;
use pic_bench::report::{scale_from_args, scaling_csv, scaling_markdown};

fn main() {
    let scale = scale_from_args();
    eprintln!("# Figure 7 — weak scaling (6,000/{scale} steps)");
    let pts = fig7(scale);
    print!("{}", scaling_csv(&pts));
    eprint!("{}", scaling_markdown(&pts));
    if let Some(p) = pts.last() {
        let (a, d) = p.speedup_over_baseline();
        eprintln!(
            "at {} cores: ampi {:.1}× / diffusion {:.1}× over baseline (paper: 2.4× / 1.8×)",
            p.cores, a, d
        );
    }
}
