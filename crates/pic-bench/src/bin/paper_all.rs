//! Run every experiment of the paper's §V and write the results to
//! `results/` (CSV per figure plus a combined markdown summary suitable
//! for pasting into EXPERIMENTS.md).
//!
//! Usage: `paper_all [--scale N] [--out DIR]`

use pic_bench::report::*;
use pic_bench::*;
use std::fs;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--out" {
            if let Some(v) = args.get(i + 1) {
                return PathBuf::from(v);
            }
        }
    }
    PathBuf::from("results")
}

fn main() {
    let scale = scale_from_args();
    let dir = out_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let mut summary = String::new();
    summary.push_str(&format!(
        "# PIC PRK — reproduced evaluation (steps scale 1/{scale})\n\n"
    ));

    eprintln!("[1/5] Figure 5 (AMPI tuning)...");
    let f = fig5_f_sweep(scale);
    let d = fig5_d_sweep(scale);
    fs::write(dir.join("fig5_f_sweep.csv"), tuning_csv(&f, "F")).unwrap();
    fs::write(dir.join("fig5_d_sweep.csv"), tuning_csv(&d, "d")).unwrap();
    let f_best = f
        .iter()
        .cloned()
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
        .unwrap();
    let d_best = d
        .iter()
        .cloned()
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
        .unwrap();
    summary.push_str("## Figure 5 — AMPI parameter sensitivity (192 cores)\n\n");
    summary.push_str(&format!(
        "F sweep (d=4): F=20 → {:.1}s; best F={} → {:.1}s ({:.1}× swing; paper: 180s → 43s, 4.2×)\n\n",
        f[0].seconds, f_best.value, f_best.seconds, f[0].seconds / f_best.seconds
    ));
    summary.push_str(&format!(
        "d sweep (F=1000): d=1 → {:.1}s; best d={} → {:.1}s ({:.1}× swing; paper: 104s → 47s, 2.2×)\n\n",
        d[0].seconds, d_best.value, d_best.seconds, d[0].seconds / d_best.seconds
    ));

    eprintln!("[2/5] Figure 6 left (strong scaling, single node)...");
    let left = fig6_left(scale);
    fs::write(dir.join("fig6_left.csv"), scaling_csv(&left)).unwrap();
    summary.push_str("## Figure 6 left — strong scaling, single node\n\n");
    summary.push_str(&scaling_markdown(&left));
    summary.push('\n');

    eprintln!("[3/5] Figure 6 right (strong scaling, multi-node)...");
    let right = fig6_right(scale);
    fs::write(dir.join("fig6_right.csv"), scaling_csv(&right)).unwrap();
    summary.push_str("## Figure 6 right — strong scaling, multi-node\n\n");
    summary.push_str(&scaling_markdown(&right));
    let serial = strong_serial_seconds(scale);
    if let Some(p) = right.last() {
        summary.push_str(&format!(
            "\nmax speedup over serial ({serial:.0} s): diffusion {:.0}×, ampi {:.0}× (paper: 179× / 92×)\n\n",
            serial / p.diffusion_s,
            serial / p.ampi_s
        ));
    }

    eprintln!("[4/5] Figure 7 (weak scaling)...");
    let weak = fig7(scale);
    fs::write(dir.join("fig7_weak.csv"), scaling_csv(&weak)).unwrap();
    summary.push_str("## Figure 7 — weak scaling\n\n");
    summary.push_str(&scaling_markdown(&weak));
    if let Some(p) = weak.last() {
        let (a, dd) = p.speedup_over_baseline();
        summary.push_str(&format!(
            "\nat {} cores: ampi {:.1}× / diffusion {:.1}× over baseline (paper: 2.4× / 1.8×)\n\n",
            p.cores, a, dd
        ));
    }

    eprintln!("[5/5] §V-B max particles per core...");
    let row = table_max_count(scale);
    summary.push_str("## §V-B — max particles per core, 24-core run\n\n");
    summary.push_str(&max_count_markdown(&row));
    summary.push_str("\n(paper: 62,645 / 30,585 / 25,000)\n");

    fs::write(dir.join("summary.md"), &summary).unwrap();
    println!("{summary}");
    eprintln!("results written to {}", dir.display());
}
