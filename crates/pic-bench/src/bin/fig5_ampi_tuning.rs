//! Figure 5: sensitivity of the AMPI implementation to the LB interval `F`
//! and the over-decomposition degree `d`.
//!
//! Usage: `fig5_ampi_tuning [--scale N]` — N divides the 6,000 steps
//! (default 1 = full scale).

use pic_bench::report::{scale_from_args, tuning_csv};
use pic_bench::{fig5_d_sweep, fig5_f_sweep};

fn main() {
    let scale = scale_from_args();
    eprintln!("# Figure 5 — 5,998² cells, 6.4M particles, 6,000/{scale} steps, 192 cores");
    let f = fig5_f_sweep(scale);
    println!("# F sweep (d = 4)");
    print!("{}", tuning_csv(&f, "F"));
    let d = fig5_d_sweep(scale);
    println!("# d sweep (F = 1000)");
    print!("{}", tuning_csv(&d, "d"));
}
