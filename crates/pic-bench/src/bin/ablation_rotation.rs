//! Ablation: defeating a one-directional balancer by rotating the
//! distribution 90° (paper §III-E1), demonstrated *functionally* on the
//! threaded backend with full verification.
//!
//! The metric is the hardware-independent max-particles-per-rank at the end
//! of the run (the §V-B indicator).

use pic_comm::world::run_threads;
use pic_core::init::SkewAxis;
use pic_core::prelude::*;
use pic_par::baseline::run_baseline;
use pic_par::diffusion::{run_diffusion_mode, DiffusionMode, DiffusionParams};
use pic_par::runner::ParConfig;

fn main() {
    let ranks = 4;
    let params = DiffusionParams {
        interval: 1,
        tau: 0,
        border_w: 2,
    };
    println!("axis,mode,max_per_rank,ideal,verified");
    for (axis_name, axis, m) in [
        ("x-skew", SkewAxis::X, 0i32),
        ("y-skew (rotated)", SkewAxis::Y, 1),
    ] {
        let cfg = ParConfig::new(
            InitConfig::new(
                Grid::new(32).unwrap(),
                4_000,
                Distribution::Geometric { r: 0.8 },
            )
            .with_skew_axis(axis)
            .with_m(m)
            .build()
            .unwrap(),
            48,
        );
        let ideal = 4_000 / ranks as u64;
        let base = run_threads(ranks, |comm| run_baseline(&comm, &cfg));
        println!(
            "{axis_name},none,{},{ideal},{}",
            base[0].max_count,
            base[0].verify.passed()
        );
        for (mode_name, mode) in [
            ("x-only", DiffusionMode::XOnly),
            ("y-only", DiffusionMode::YOnly),
            ("two-phase", DiffusionMode::TwoPhase),
        ] {
            let out = run_threads(ranks, |comm| run_diffusion_mode(&comm, &cfg, params, mode));
            println!(
                "{axis_name},{mode_name},{},{ideal},{}",
                out[0].max_count,
                out[0].verify.passed()
            );
        }
    }
    eprintln!("\nExpected: x-only balancing helps the x-skew but not the rotated");
    eprintln!("workload (and vice versa); the two-phase scheme handles both.");
}
