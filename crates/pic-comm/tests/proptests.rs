//! Property tests of the message-passing substrate: arbitrary payload
//! matrices, random tag/receive orders, and random split geometries must
//! all deliver exactly what was sent.

use pic_comm::collective::{
    allgatherv, allreduce_u64, allreduce_vec_u64, alltoallv, broadcast, split,
};
use pic_comm::comm::ReduceOp;
use pic_comm::world::run_threads;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// alltoallv delivers every payload to exactly the right peer, for
    /// arbitrary (including empty) payload matrices.
    #[test]
    fn alltoallv_arbitrary_matrix(
        p in 1usize..6,
        seed in any::<u64>(),
    ) {
        let sizes: Vec<Vec<usize>> = (0..p)
            .map(|s| (0..p).map(|d| ((seed >> ((s * p + d) % 48)) % 17) as usize).collect())
            .collect();
        let sizes2 = sizes.clone();
        let results = run_threads(p, move |comm| {
            let me = comm.rank();
            let outgoing: Vec<Vec<u8>> = (0..p)
                .map(|d| vec![(me * 31 + d) as u8; sizes2[me][d]])
                .collect();
            alltoallv(&comm, outgoing)
        });
        for (dst, incoming) in results.into_iter().enumerate() {
            for (src, payload) in incoming.into_iter().enumerate() {
                prop_assert_eq!(payload.len(), sizes[src][dst]);
                prop_assert!(payload.iter().all(|&b| b == (src * 31 + dst) as u8));
            }
        }
    }

    /// Vector allreduce equals a serial fold for arbitrary inputs.
    #[test]
    fn allreduce_matches_serial_fold(
        p in 1usize..6,
        base in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        let n = base.len();
        let base2 = base.clone();
        let got = run_threads(p, move |comm| {
            let mine: Vec<u64> = base2.iter().map(|&b| b + comm.rank() as u64).collect();
            allreduce_vec_u64(&comm, &mine, ReduceOp::Sum)
        });
        let expected: Vec<u64> = (0..n)
            .map(|i| (0..p).map(|r| base[i] + r as u64).sum())
            .collect();
        for g in got {
            prop_assert_eq!(&g, &expected);
        }
    }

    /// Broadcast delivers the root's bytes regardless of root and size.
    #[test]
    fn broadcast_any_root(
        p in 1usize..7,
        root_sel in 0usize..7,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let root = root_sel % p;
        let payload2 = payload.clone();
        let got = run_threads(p, move |comm| {
            let data = if comm.rank() == root { payload2.clone() } else { vec![] };
            broadcast(&comm, root, data)
        });
        for g in got {
            prop_assert_eq!(&g, &payload);
        }
    }

    /// split() by arbitrary colors forms consistent groups: every member
    /// of a group computes the same group sum, and group sizes add up.
    #[test]
    fn split_partitions_consistently(
        p in 2usize..7,
        seed in any::<u64>(),
    ) {
        let colors: Vec<u64> = (0..p).map(|r| (seed >> (r % 32)) % 3).collect();
        let colors2 = colors.clone();
        let got = run_threads(p, move |comm| {
            let color = colors2[comm.rank()];
            let sub = split(&comm, color, comm.rank() as u64);
            let sum = allreduce_u64(&sub, comm.rank() as u64, ReduceOp::Sum);
            (color, sub.size(), sum)
        });
        for (r, (color, size, sum)) in got.iter().enumerate() {
            let members: Vec<usize> =
                (0..p).filter(|&q| colors[q] == *color).collect();
            prop_assert_eq!(*size, members.len(), "rank {} group size", r);
            let expect: u64 = members.iter().map(|&q| q as u64).sum();
            prop_assert_eq!(*sum, expect);
        }
    }

    /// allgatherv returns payloads in rank order for arbitrary lengths.
    #[test]
    fn allgatherv_rank_order(
        p in 1usize..6,
        lens in prop::collection::vec(0usize..32, 6),
    ) {
        let lens2 = lens.clone();
        let got = run_threads(p, move |comm| {
            allgatherv(&comm, vec![comm.rank() as u8; lens2[comm.rank()]])
        });
        for g in got {
            prop_assert_eq!(g.len(), p);
            for (src, payload) in g.iter().enumerate() {
                prop_assert_eq!(payload.len(), lens[src]);
                prop_assert!(payload.iter().all(|&b| b == src as u8));
            }
        }
    }
}
