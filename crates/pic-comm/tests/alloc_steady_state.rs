//! Steady-state allocation audit for the exchange fabric itself, on the
//! typed zero-copy particle lane (DESIGN.md §15).
//!
//! The rank-loop audit (`pic-par/tests/alloc_steady_state.rs`) covers the
//! full step; this one isolates the transport: a warmed
//! alltoallv iteration — dense or sparse, with staging buffers recycled
//! the way the runtime's spare free-list does — must not allocate. Typed
//! payload buffers circulate by ownership (send surrenders them, arrivals
//! come back with capacity), the sparse protocol's count/escape wires
//! recycle through the plan's `small_spares` pool, and the channels reuse
//! their queue capacity, so a later measurement window must not allocate
//! more than an earlier one and the absolute budget stays far under one
//! allocation per iteration.
//!
//! Counters are thread-local, so each rank audits exactly its own work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use pic_comm::comm::Communicator;
use pic_comm::sparse::{
    alltoallv_finish_into, alltoallv_sparse_finish_into, alltoallv_sparse_start, alltoallv_start,
    SparsePlan,
};
use pic_comm::world::run_threads;
use pic_core::particle::Particle;

struct CountingAlloc;

thread_local! {
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
    static LOCAL_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn note_alloc() {
    let counted = IN_SCOPE.try_with(Cell::get).unwrap_or(false);
    if counted {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RANKS: usize = 4;
const NP: usize = 50;
const WARM_ITERS: u32 = 12;
const WINDOW_ITERS: u32 = 16;

fn particle(id: u64) -> Particle {
    Particle {
        id,
        x: 1.5 + id as f64,
        y: 2.5,
        vx: 3.0,
        vy: -1.0,
        q: 0.3535533905932738,
        x0: 1.5,
        y0: 2.5,
        k: 1,
        m: 1,
        born_at: 0,
    }
}

/// One typed exchange iteration on ring traffic: stage `NP` particles for
/// each ring neighbor, move the buckets through the fabric, recycle every
/// arrival buffer (capacity included) into the next iteration's staging
/// slots — the same circulation the runtime's spare free-list performs.
fn typed_ring_iter(
    comm: &Communicator,
    sparse: Option<&mut SparsePlan>,
    outgoing: &mut Vec<Vec<Particle>>,
    incoming: &mut Vec<Vec<Particle>>,
    it: u64,
) {
    let size = comm.size();
    let rank = comm.rank();
    let (left, right) = ((rank + size - 1) % size, (rank + 1) % size);
    for (d, bucket) in outgoing.iter_mut().enumerate() {
        bucket.clear();
        if d == left || d == right {
            bucket.extend((0..NP as u64).map(|i| particle(it + i)));
        }
    }
    match sparse {
        Some(plan) => {
            let h = alltoallv_sparse_start(comm, outgoing, plan);
            alltoallv_sparse_finish_into(comm, h, plan, incoming);
        }
        None => {
            let h = alltoallv_start(comm, outgoing);
            alltoallv_finish_into(comm, h, incoming);
        }
    }
    let arrived: usize = incoming.iter().map(Vec::len).sum();
    assert_eq!(arrived, 2 * NP, "rank {rank}: lost typed particles");
    for (slot, buf) in outgoing.iter_mut().zip(incoming.drain(..)) {
        *slot = buf;
    }
}

fn audit(use_sparse: bool) -> Vec<(usize, usize)> {
    run_threads(RANKS, move |comm| {
        let rank = comm.rank();
        let mut plan = use_sparse.then(|| {
            SparsePlan::new(
                RANKS,
                rank,
                [(rank + 1) % RANKS, (rank + RANKS - 1) % RANKS],
            )
        });
        let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); RANKS];
        let mut incoming: Vec<Vec<Particle>> = Vec::new();
        let mut it = 0u64;
        let mut window = |n: u32, outgoing: &mut _, incoming: &mut _, plan: &mut Option<_>| {
            LOCAL_ALLOCS.with(|c| c.set(0));
            IN_SCOPE.with(|s| s.set(true));
            for _ in 0..n {
                typed_ring_iter(&comm, plan.as_mut(), outgoing, incoming, it);
                it += 1;
            }
            IN_SCOPE.with(|s| s.set(false));
            LOCAL_ALLOCS.with(Cell::get)
        };
        let _ = window(WARM_ITERS, &mut outgoing, &mut incoming, &mut plan);
        let first = window(WINDOW_ITERS, &mut outgoing, &mut incoming, &mut plan);
        let second = window(WINDOW_ITERS, &mut outgoing, &mut incoming, &mut plan);
        (first, second)
    })
}

#[test]
fn typed_wire_exchange_reaches_allocation_steady_state() {
    for use_sparse in [false, true] {
        let windows = audit(use_sparse);
        for (rank, &(first, second)) in windows.iter().enumerate() {
            // Steady state: no growth between warmed windows, modulo
            // transport-queue jitter (channel queue depth depends on
            // thread interleaving, not on the lane under audit).
            assert!(
                second <= first + 2,
                "sparse={use_sparse} rank {rank}: allocation growth between \
                 warmed windows ({first} then {second})"
            );
            // Absolute budget: a serializing lane would pay at least one
            // encode buffer and one decode vector per iteration; the
            // typed lane's residue is rare capacity growth only.
            assert!(
                second as u32 <= WINDOW_ITERS / 2,
                "sparse={use_sparse} rank {rank}: {second} allocations in a \
                 {WINDOW_ITERS}-iteration warmed window"
            );
        }
    }
}
