//! Split-phase and sparse neighbor-aware personalized all-to-all.
//!
//! The dense [`crate::collective::alltoallv`] sends `P` messages per rank
//! per call — most of them empty markers, because particles hop at most a
//! few cells per step and so almost all traffic goes to the Cartesian
//! neighbors of the sending rank. This module provides:
//!
//! * a **split-phase** pair ([`alltoallv_start`] / [`alltoallv_finish_into`])
//!   so callers can launch the exchange, overlap computation, and complete
//!   the receives later;
//! * a **sparse** variant ([`alltoallv_sparse_start`] /
//!   [`alltoallv_sparse_finish_into`]) that first runs a small escape-flag
//!   dissemination ("did *any* rank produce a payload for a non-neighbor?"),
//!   then exchanges per-destination counts only with the plan's neighbors so
//!   **only non-empty payloads travel**. If the global escape flag is set
//!   (a fast particle hopped past the neighbor stencil) the call degrades
//!   to the dense pattern for that step — correctness never depends on the
//!   neighbor plan being adequate.
//!
//! Protocol tags within one collective tag block (`base = next_coll_base()`):
//! `base + round` for the escape dissemination rounds (`round < 20`),
//! `base + TAG_COUNT` for the 8-byte per-neighbor count messages,
//! `base + TAG_PAYLOAD` for non-empty neighbor payloads, and
//! `base + TAG_FALLBACK` for the dense-fallback payloads. All ranks make
//! the same dense/sparse decision (the escape flag is a global OR), so no
//! message can leak across steps.
//!
//! Small message buffers (escape flags, counts) cycle through a spare pool
//! in [`SparsePlan`], so a steady-state exchange allocates nothing.

use crate::comm::Communicator;
use crate::payload::{Payload, PayloadKind, WirePayload};

/// Tag offset of the per-neighbor count messages.
const TAG_COUNT: u64 = 32;
/// Tag offset of the non-empty neighbor payload messages.
const TAG_PAYLOAD: u64 = 33;
/// Tag offset of the dense-fallback payload messages.
const TAG_FALLBACK: u64 = 34;
/// Cap on pooled small-message buffers.
const MAX_SMALL_SPARES: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandleKind {
    /// Dense split-phase: every rank sent `P` payloads on `base`.
    Dense,
    /// Sparse call that hit the escape flag: dense payloads on
    /// `base + TAG_FALLBACK`.
    Fallback,
    /// Sparse: counts to neighbors, payloads only where non-empty.
    Sparse,
}

/// Completion handle for an in-flight (split-phase) all-to-all. All sends
/// have been posted when the handle exists; dropping it without calling a
/// finish function strands the matching receives, so it is `#[must_use]`.
#[derive(Debug)]
#[must_use = "an alltoallv start must be completed with a finish call"]
pub struct AlltoallvHandle {
    base: u64,
    kind: HandleKind,
    /// Wire lane the start call put on the wire; the finish call must
    /// claim the same lane (asserted) — the receives would otherwise
    /// panic deep in the payload layer or, worse, mis-deliver.
    payload_kind: PayloadKind,
    sent: u64,
    skipped: u64,
}

impl AlltoallvHandle {
    /// Payload messages this rank put on the wire (the dense exchange
    /// always sends `P`, counting the self-delivery).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Payload messages a dense exchange would have sent that the sparse
    /// protocol elided (zero for dense and escaped calls).
    pub fn messages_skipped(&self) -> u64 {
        self.skipped
    }

    /// Did the sparse call fall back to the dense pattern because some
    /// rank had a payload for a non-neighbor?
    pub fn escaped(&self) -> bool {
        self.kind == HandleKind::Fallback
    }
}

/// Start a dense split-phase all-to-all: `outgoing[d]` is surrendered to
/// the transport (replaced by `P::empty()`) and sent to rank `d` —
/// including empty payloads, which serve as "nothing for you" markers.
/// Generic over the wire lane (`Vec<u8>` or `Vec<Particle>`); complete
/// with [`alltoallv_finish_into`] naming the same lane.
pub fn alltoallv_start<P: WirePayload>(comm: &Communicator, outgoing: &mut [P]) -> AlltoallvHandle {
    assert_eq!(
        outgoing.len(),
        comm.size(),
        "alltoallv needs one payload per rank"
    );
    let base = comm.next_coll_base();
    for (dst, payload) in outgoing.iter_mut().enumerate() {
        comm.send_coll(dst, base, std::mem::replace(payload, P::empty()));
    }
    AlltoallvHandle {
        base,
        kind: HandleKind::Dense,
        payload_kind: P::KIND,
        sent: comm.size() as u64,
        skipped: 0,
    }
}

/// Complete a dense split-phase all-to-all: receives one payload from every
/// rank, in rank order, into `incoming` (cleared, capacity retained).
/// Sparse handles carry plan state and must use
/// [`alltoallv_sparse_finish_into`].
pub fn alltoallv_finish_into<P: WirePayload>(
    comm: &Communicator,
    handle: AlltoallvHandle,
    incoming: &mut Vec<P>,
) {
    assert_eq!(
        handle.payload_kind,
        P::KIND,
        "alltoallv started on the {} lane but finished on the {} lane",
        handle.payload_kind.name(),
        P::KIND.name()
    );
    incoming.clear();
    let tag = match handle.kind {
        HandleKind::Dense => handle.base,
        HandleKind::Fallback => handle.base + TAG_FALLBACK,
        HandleKind::Sparse => panic!("sparse handle requires alltoallv_sparse_finish_into"),
    };
    incoming.extend((0..comm.size()).map(|src| comm.recv_coll::<P>(src, tag)));
}

/// Reusable neighbor topology + scratch for the sparse exchange. Build it
/// once (or whenever the topology changes) and pass it to every
/// `alltoallv_sparse_start` / `finish` pair; in steady state it recycles
/// all of its small-message buffers instead of allocating.
///
/// The neighbor relation **must be symmetric across ranks** (if `a` lists
/// `b`, `b` lists `a`) — count messages are paired per edge and an
/// asymmetric plan would deadlock.
#[derive(Debug)]
pub struct SparsePlan {
    size: usize,
    my_rank: usize,
    neighbors: Vec<usize>,
    is_neighbor: Vec<bool>,
    /// Expected payload length (wire-equivalent bytes) per source for the
    /// in-flight exchange.
    counts: Vec<u64>,
    /// Self-destined payload stashed between start and finish (delivered
    /// without a message; either lane).
    self_payload: Payload,
    /// Recycled small (flag/count) message buffers.
    small_spares: Vec<Vec<u8>>,
}

impl SparsePlan {
    /// Build a plan for a `size`-rank communicator where this rank is
    /// `my_rank` and exchanges payloads with `neighbors` (communicator
    /// ranks; self entries and duplicates are dropped).
    pub fn new(size: usize, my_rank: usize, neighbors: impl IntoIterator<Item = usize>) -> Self {
        assert!(my_rank < size);
        let mut is_neighbor = vec![false; size];
        for n in neighbors {
            assert!(n < size, "neighbor {n} out of range for size {size}");
            if n != my_rank {
                is_neighbor[n] = true;
            }
        }
        let neighbors: Vec<usize> = (0..size).filter(|&r| is_neighbor[r]).collect();
        SparsePlan {
            size,
            my_rank,
            neighbors,
            is_neighbor,
            counts: Vec::new(),
            self_payload: Payload::default(),
            small_spares: Vec::new(),
        }
    }

    /// Plan where every other rank is a neighbor — no escape is ever
    /// possible, and the exchange still elides empty payloads.
    pub fn all_pairs(size: usize, my_rank: usize) -> Self {
        SparsePlan::new(size, my_rank, 0..size)
    }

    /// The neighbor ranks, sorted ascending, self excluded.
    pub fn neighbors(&self) -> &[usize] {
        &self.neighbors
    }

    /// Replace the neighbor set (topology change, e.g. after a VP
    /// rebalance) while keeping the recycled scratch.
    pub fn set_neighbors(&mut self, neighbors: impl IntoIterator<Item = usize>) {
        self.is_neighbor.clear();
        self.is_neighbor.resize(self.size, false);
        for n in neighbors {
            assert!(n < self.size, "neighbor {n} out of range");
            if n != self.my_rank {
                self.is_neighbor[n] = true;
            }
        }
        self.neighbors.clear();
        let is_neighbor = &self.is_neighbor;
        self.neighbors
            .extend((0..self.size).filter(|&r| is_neighbor[r]));
    }

    fn take_small(&mut self) -> Vec<u8> {
        self.small_spares.pop().unwrap_or_default()
    }

    fn recycle_small(&mut self, mut buf: Vec<u8>) {
        if self.small_spares.len() < MAX_SMALL_SPARES {
            buf.clear();
            self.small_spares.push(buf);
        }
    }
}

/// Dissemination all-reduce of a single boolean (logical OR): `⌈log₂ P⌉`
/// rounds of 1-byte pairwise exchanges on tags `base + round`.
fn escape_or(comm: &Communicator, plan: &mut SparsePlan, mut flag: bool, base: u64) -> bool {
    let size = comm.size();
    let rank = comm.rank();
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < size {
        let dst = (rank + dist) % size;
        let src = (rank + size - dist) % size;
        let mut buf = plan.take_small();
        buf.push(flag as u8);
        comm.send_coll(dst, base + round, buf);
        let got: Vec<u8> = comm.recv_coll(src, base + round);
        flag |= got[0] != 0;
        plan.recycle_small(got);
        dist <<= 1;
        round += 1;
    }
    flag
}

/// Start a sparse neighbor-aware all-to-all. Every rank must call this
/// with the same communicator state and a symmetric `plan`. Payloads for
/// non-neighbors raise a global escape flag (one small dissemination) and
/// degrade the call to the dense pattern; otherwise per-destination counts
/// go to each neighbor and only non-empty payloads travel. The
/// self-destined payload never touches the wire.
pub fn alltoallv_sparse_start<P: WirePayload>(
    comm: &Communicator,
    outgoing: &mut [P],
    plan: &mut SparsePlan,
) -> AlltoallvHandle {
    let size = comm.size();
    let rank = comm.rank();
    assert_eq!(outgoing.len(), size, "alltoallv needs one payload per rank");
    assert_eq!(plan.size, size, "plan built for a different world size");
    assert_eq!(plan.my_rank, rank, "plan built for a different rank");
    let base = comm.next_coll_base();

    let local_escape = outgoing
        .iter()
        .enumerate()
        .any(|(d, p)| !p.is_empty() && d != rank && !plan.is_neighbor[d]);
    if escape_or(comm, plan, local_escape, base) {
        for (dst, payload) in outgoing.iter_mut().enumerate() {
            comm.send_coll(
                dst,
                base + TAG_FALLBACK,
                std::mem::replace(payload, P::empty()),
            );
        }
        return AlltoallvHandle {
            base,
            kind: HandleKind::Fallback,
            payload_kind: P::KIND,
            sent: size as u64,
            skipped: 0,
        };
    }

    plan.self_payload = std::mem::replace(&mut outgoing[rank], P::empty()).into_payload();
    let mut sent = 0u64;
    for i in 0..plan.neighbors.len() {
        let dst = plan.neighbors[i];
        let len = outgoing[dst].len_bytes() as u64;
        let mut cbuf = plan.take_small();
        cbuf.extend_from_slice(&len.to_le_bytes());
        comm.send_coll(dst, base + TAG_COUNT, cbuf);
        if len > 0 {
            comm.send_coll(
                dst,
                base + TAG_PAYLOAD,
                std::mem::replace(&mut outgoing[dst], P::empty()),
            );
            sent += 1;
        }
    }
    AlltoallvHandle {
        base,
        kind: HandleKind::Sparse,
        payload_kind: P::KIND,
        sent,
        skipped: size as u64 - sent,
    }
}

/// Complete a sparse (or escaped) all-to-all started with
/// [`alltoallv_sparse_start`], with the same `plan`. `incoming` is cleared
/// and filled with one payload per source rank in rank order — `Vec::new()`
/// for sources that had nothing for us (no allocation).
pub fn alltoallv_sparse_finish_into<P: WirePayload>(
    comm: &Communicator,
    handle: AlltoallvHandle,
    plan: &mut SparsePlan,
    incoming: &mut Vec<P>,
) {
    assert_eq!(
        handle.payload_kind,
        P::KIND,
        "alltoallv started on the {} lane but finished on the {} lane",
        handle.payload_kind.name(),
        P::KIND.name()
    );
    let size = comm.size();
    incoming.clear();
    match handle.kind {
        HandleKind::Dense | HandleKind::Fallback => {
            let tag = if handle.kind == HandleKind::Dense {
                handle.base
            } else {
                handle.base + TAG_FALLBACK
            };
            incoming.extend((0..size).map(|src| comm.recv_coll::<P>(src, tag)));
        }
        HandleKind::Sparse => {
            plan.counts.clear();
            plan.counts.resize(size, 0);
            for i in 0..plan.neighbors.len() {
                let src = plan.neighbors[i];
                let cbuf: Vec<u8> = comm.recv_coll(src, handle.base + TAG_COUNT);
                plan.counts[src] = u64::from_le_bytes(cbuf[..8].try_into().unwrap());
                plan.recycle_small(cbuf);
            }
            for src in 0..size {
                if src == comm.rank() {
                    let stashed = std::mem::take(&mut plan.self_payload);
                    incoming.push(P::from_payload(stashed));
                } else if plan.counts[src] > 0 {
                    let payload: P = comm.recv_coll(src, handle.base + TAG_PAYLOAD);
                    debug_assert_eq!(payload.len_bytes() as u64, plan.counts[src]);
                    incoming.push(payload);
                } else {
                    incoming.push(P::empty());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_threads;

    fn expected_incoming(
        rank: usize,
        size: usize,
        make: impl Fn(usize, usize) -> Vec<u8>,
    ) -> Vec<Vec<u8>> {
        (0..size).map(|src| make(src, rank)).collect()
    }

    #[test]
    fn dense_split_phase_matches_alltoallv() {
        let got = run_threads(4, |comm| {
            let mut outgoing: Vec<Vec<u8>> =
                (0..4).map(|d| vec![(10 * comm.rank() + d) as u8]).collect();
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let h = alltoallv_start(&comm, &mut outgoing);
            assert_eq!(h.messages_sent(), 4);
            assert_eq!(h.messages_skipped(), 0);
            alltoallv_finish_into(&comm, h, &mut incoming);
            assert!(outgoing.iter().all(|p| p.is_empty()), "payloads taken");
            incoming
        });
        for (r, incoming) in got.into_iter().enumerate() {
            assert_eq!(
                incoming,
                expected_incoming(r, 4, |s, d| vec![(10 * s + d) as u8])
            );
        }
    }

    #[test]
    fn sparse_ring_matches_dense() {
        let p = 5usize;
        let got = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            // Payloads only to the ring neighbors and self.
            let mut outgoing: Vec<Vec<u8>> = (0..p)
                .map(|d| {
                    if d == rank || d == (rank + 1) % p || d == (rank + p - 1) % p {
                        vec![(10 * rank + d) as u8]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
            assert!(!h.escaped());
            assert_eq!(h.messages_sent(), 2, "two non-empty neighbor payloads");
            assert_eq!(h.messages_skipped(), (p - 2) as u64);
            alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            incoming
        });
        for (r, incoming) in got.into_iter().enumerate() {
            let want = expected_incoming(r, p, |s, d| {
                if s == d || d == (s + 1) % p || d == (s + p - 1) % p {
                    vec![(10 * s + d) as u8]
                } else {
                    Vec::new()
                }
            });
            assert_eq!(incoming, want);
        }
    }

    #[test]
    fn non_neighbor_payload_escapes_and_routes() {
        // Rank 0 targets rank 2, which is not in anyone's neighbor plan:
        // the escape flag must go global and the exchange must still
        // deliver everything.
        let p = 4usize;
        let got = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); p];
            if rank == 0 {
                outgoing[2] = vec![42];
            }
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
            assert!(
                h.escaped(),
                "non-neighbor payload must raise the flag everywhere"
            );
            alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            incoming
        });
        for (r, incoming) in got.into_iter().enumerate() {
            for (s, payload) in incoming.into_iter().enumerate() {
                if r == 2 && s == 0 {
                    assert_eq!(payload, vec![42]);
                } else {
                    assert!(payload.is_empty());
                }
            }
        }
    }

    #[test]
    fn sparse_single_rank_degenerate() {
        let got = run_threads(1, |comm| {
            let mut plan = SparsePlan::all_pairs(1, 0);
            let mut outgoing = vec![vec![7u8, 8]];
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
            assert_eq!(h.messages_sent(), 0);
            alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            incoming
        });
        assert_eq!(got[0], vec![vec![7, 8]]);
    }

    #[test]
    fn sparse_empty_world_sends_no_payloads() {
        let p = 4usize;
        let got = run_threads(p, move |comm| {
            let mut plan = SparsePlan::all_pairs(p, comm.rank());
            let mut outgoing = vec![Vec::<u8>::new(); p];
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let before = comm.metrics();
            let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
            assert_eq!(h.messages_sent(), 0);
            assert_eq!(h.messages_skipped(), p as u64);
            alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            let after = comm.metrics();
            assert!(incoming.iter().all(|i| i.is_empty()));
            // Only escape rounds + count messages traveled, no payloads:
            // counts are 8-byte messages, payloads would be larger.
            (
                (after.messages_sent - before.messages_sent) as usize,
                incoming.len(),
            )
        });
        // 2 escape rounds + 3 neighbor counts per rank at P=4 (all-pairs).
        for (msgs, len) in got {
            assert_eq!(msgs, 2 + 3);
            assert_eq!(len, p);
        }
    }

    #[test]
    fn dense_split_phase_single_rank_and_empty() {
        let got = run_threads(1, |comm| {
            let mut outgoing = vec![Vec::<u8>::new()];
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let h = alltoallv_start(&comm, &mut outgoing);
            alltoallv_finish_into(&comm, h, &mut incoming);
            incoming
        });
        assert_eq!(got[0], vec![Vec::<u8>::new()]);
    }

    #[test]
    fn sparse_steady_state_recycles_small_buffers() {
        let p = 4usize;
        let got = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            for step in 0..6 {
                let mut outgoing: Vec<Vec<u8>> = (0..p)
                    .map(|d| {
                        if d == (rank + 1) % p {
                            vec![step as u8; 3]
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
                alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            }
            plan.small_spares.len()
        });
        // Sends and receives are balanced per step, so the spare pool
        // reaches a fixed point instead of growing.
        for spares in got {
            assert!(spares <= MAX_SMALL_SPARES);
            assert!(spares >= 1, "pool should have recycled buffers");
        }
    }

    fn tp(id: u64) -> pic_core::particle::Particle {
        pic_core::particle::Particle {
            id,
            x: id as f64 * 0.25,
            y: 1.5,
            vx: -1.0,
            vy: 2.0,
            q: 0.5,
            x0: 0.5,
            y0: 1.5,
            k: 1,
            m: -1,
            born_at: 3,
        }
    }

    #[test]
    fn typed_sparse_ring_matches_bytes_lane_and_recycles() {
        use pic_core::particle::Particle;
        // The same ring traffic on both lanes must deliver identical
        // particles; the typed lane must also reach a small-spare fixed
        // point (counts and escape flags stay byte messages either way).
        let p = 4usize;
        let steps = 6;
        let run_typed = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut incoming: Vec<Vec<Particle>> = Vec::new();
            let mut all_got: Vec<Particle> = Vec::new();
            for step in 0..steps {
                let mut outgoing: Vec<Vec<Particle>> = (0..p)
                    .map(|d| {
                        if d == (rank + 1) % p {
                            vec![tp((100 * step + 10 * rank + d) as u64)]
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
                assert!(!h.escaped());
                alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
                for buf in &mut incoming {
                    all_got.append(buf);
                }
            }
            assert!(
                !plan.small_spares.is_empty(),
                "typed lane must recycle count buffers"
            );
            all_got
        });
        let run_bytes = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut incoming: Vec<Vec<u8>> = Vec::new();
            let mut all_got: Vec<Particle> = Vec::new();
            for step in 0..steps {
                let mut outgoing: Vec<Vec<u8>> = (0..p)
                    .map(|d| {
                        if d == (rank + 1) % p {
                            Particle::encode_all(&[tp((100 * step + 10 * rank + d) as u64)])
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
                alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
                for buf in &incoming {
                    all_got.extend(Particle::decode_all(buf).unwrap());
                }
            }
            all_got
        });
        assert_eq!(run_typed, run_bytes, "typed lane diverged from byte lane");
    }

    #[test]
    fn typed_escape_fallback_delivers_with_self_payload() {
        use pic_core::particle::Particle;
        // Rank 0 targets non-neighbor rank 2 (escape → dense fallback) and
        // every rank also keeps a self-destined typed payload — both must
        // arrive intact on the typed lane.
        let p = 4usize;
        let got = run_threads(p, move |comm| {
            let rank = comm.rank();
            let mut plan = SparsePlan::new(p, rank, [(rank + 1) % p, (rank + p - 1) % p]);
            let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); p];
            outgoing[rank] = vec![tp(1000 + rank as u64)];
            if rank == 0 {
                outgoing[2] = vec![tp(42)];
            }
            let mut incoming: Vec<Vec<Particle>> = Vec::new();
            let h = alltoallv_sparse_start(&comm, &mut outgoing, &mut plan);
            assert!(h.escaped());
            alltoallv_sparse_finish_into(&comm, h, &mut plan, &mut incoming);
            incoming
                .into_iter()
                .flatten()
                .map(|q| q.id)
                .collect::<Vec<_>>()
        });
        for (r, ids) in got.into_iter().enumerate() {
            let mut want = vec![1000 + r as u64];
            if r == 2 {
                want.push(42);
            }
            let mut ids = ids;
            ids.sort_unstable();
            want.sort_unstable();
            assert_eq!(ids, want, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "started on the typed lane but finished on the bytes lane")]
    fn lane_mismatch_between_start_and_finish_is_loud() {
        // Single-rank world on the test thread itself, so the panic is the
        // test's own (run_threads would wrap a rank-thread panic).
        let eps = crate::endpoint::Endpoint::world(1);
        let comm = Communicator::world(eps[0].clone());
        let mut outgoing: Vec<Vec<pic_core::particle::Particle>> = vec![Vec::new()];
        let mut incoming: Vec<Vec<u8>> = Vec::new();
        let h = alltoallv_start(&comm, &mut outgoing);
        alltoallv_finish_into(&comm, h, &mut incoming);
    }

    #[test]
    fn plan_set_neighbors_replaces_topology() {
        let mut plan = SparsePlan::new(4, 1, [0, 2]);
        assert_eq!(plan.neighbors(), &[0, 2]);
        plan.set_neighbors([3, 3, 1]);
        assert_eq!(plan.neighbors(), &[3], "self and duplicates dropped");
    }
}
