//! Spawning a world of ranks as OS threads.

use crate::comm::Communicator;
use crate::endpoint::{CommMetrics, Endpoint};
use std::sync::Arc;

/// A constructed world: one communicator handle per rank, to be moved into
/// rank threads (or driven round-robin by a test).
pub struct ThreadWorld {
    comms: Vec<Communicator>,
    endpoints: Vec<Arc<Endpoint>>,
}

impl ThreadWorld {
    /// Create a `size`-rank world.
    pub fn new(size: usize) -> ThreadWorld {
        let endpoints = Endpoint::world(size);
        let comms = endpoints
            .iter()
            .map(|ep| Communicator::world(ep.clone()))
            .collect();
        ThreadWorld { comms, endpoints }
    }

    /// Take the per-rank communicators (consumes the handles).
    pub fn into_comms(self) -> Vec<Communicator> {
        self.comms
    }

    /// Aggregate traffic metrics across all ranks.
    pub fn total_metrics(&self) -> CommMetrics {
        let mut total = CommMetrics::default();
        for ep in &self.endpoints {
            let m = ep.metrics();
            total.messages_sent += m.messages_sent;
            total.bytes_sent += m.bytes_sent;
            total.messages_received += m.messages_received;
            total.bytes_received += m.bytes_received;
        }
        total
    }
}

/// Run `f(comm)` on `size` rank threads and return the per-rank results in
/// rank order. This is the substrate's `mpiexec`.
///
/// Panics in any rank propagate (the join unwraps), so a deadlock-free
/// failing assertion in one rank fails the whole run.
pub fn run_threads<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    let comms = ThreadWorld::new(size).into_comms();
    let mut slots: Vec<Option<R>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, comm) in comms.into_iter().enumerate() {
            let fref = &f;
            handles.push((rank, scope.spawn(move || fref(comm))));
        }
        for (rank, h) in handles {
            slots[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    slots.into_iter().map(|s| s.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_threads_returns_in_rank_order() {
        let got = run_threads(6, |comm| comm.rank() * 10);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn ranks_know_their_world() {
        let got = run_threads(3, |comm| (comm.rank(), comm.size()));
        assert_eq!(got, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn pingpong_through_world() {
        let got = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![7]);
                comm.recv(1, 2)
            } else {
                let v = comm.recv(0, 1);
                comm.send(0, 2, v.iter().map(|x| x + 1).collect());
                vec![]
            }
        });
        assert_eq!(got[0], vec![8]);
    }

    #[test]
    fn metrics_accumulate() {
        let world = ThreadWorld::new(2);
        let comms = world.comms.iter().collect::<Vec<_>>();
        comms[0].send(1, 3, vec![0; 100]);
        let _ = comms[1].recv(0, 3);
        let m = world.total_metrics();
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.bytes_sent, 100);
        assert_eq!(m.bytes_received, 100);
    }

    #[test]
    fn single_rank_world_works() {
        let got = run_threads(1, |comm| {
            comm.send(0, 1, vec![42]);
            comm.recv(0, 1)
        });
        assert_eq!(got, vec![vec![42]]);
    }

    #[test]
    fn heavy_traffic_no_loss() {
        let got = run_threads(4, |comm| {
            let n = 500usize;
            for i in 0..n {
                for dst in 0..comm.size() {
                    comm.send(dst, (i % 7) as u64, vec![(i % 251) as u8]);
                }
            }
            let mut sum = 0u64;
            for i in 0..n {
                for src in 0..comm.size() {
                    let v = comm.recv(src, (i % 7) as u64);
                    sum += v[0] as u64;
                }
            }
            sum
        });
        let expected: u64 = (0..500u64).map(|i| (i % 251) * 4).sum();
        assert!(got.iter().all(|&g| g == expected));
    }
}
