//! An unbounded MPMC channel on `Mutex` + `Condvar`, std-only.
//!
//! This is the wire under [`Endpoint`](crate::endpoint::Endpoint). The
//! message-passing substrate needs exactly three things from a channel:
//! unbounded buffering (eager-protocol sends never block), blocking
//! receive, and disconnect detection so a dropped world turns into a clear
//! panic instead of a deadlock. A mutex-guarded `VecDeque` provides all
//! three; per-message lock traffic is irrelevant next to the simulated
//! work per message, and the kernel's *hot* path (the particle sweep) does
//! not touch channels at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the queue is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message. Never blocks; fails only if every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.inner.queue.lock().unwrap().push_back(value);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they can error
            // out instead of waiting forever.
            let _guard = self.inner.queue.lock().unwrap();
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive: returns the next message, or [`RecvError`] once
    /// the queue is drained and no sender remains.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.inner.ready.wait(queue).unwrap();
        }
    }

    /// Non-blocking receive; `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.lock().unwrap().pop_front()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9u8), Err(SendError(9)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(std::time::Duration::from_millis(20));
        tx.send(123u32).unwrap();
        assert_eq!(t.join().unwrap(), 123);
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(got.len(), 1000);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 1000, "no message lost or duplicated");
    }
}
