//! Wire payloads: what a message can carry.
//!
//! The transport is in-process, so a message need not be a byte string —
//! ownership of any `Send` buffer can move through the channel. [`Payload`]
//! is the closed set of buffer types the fabric routes: raw bytes (the
//! oracle encoding, and what every control-plane collective uses) and
//! *typed particle buffers* (the zero-copy fast lane: no serialization, no
//! per-particle copies — the staging bucket itself crosses the channel).
//!
//! [`WirePayload`] is the static side of the same contract: the alltoallv
//! family and the point-to-point send/recv lanes are generic over it, so
//! one protocol implementation serves both encodings. Byte accounting
//! ([`WirePayload::len_bytes`]) is defined per type — a typed buffer
//! accounts as if it had been encoded — keeping the `collective_bytes` and
//! endpoint byte counters truthful across lanes.
//!
//! A receive must name the payload type it expects; a kind mismatch (a
//! typed message arriving where bytes were posted, or vice versa) is a
//! protocol bug and panics loudly rather than silently dropping or
//! re-interpreting the message.

use pic_core::particle::Particle;

/// Discriminant of a [`Payload`] — which lane a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Raw little-endian bytes ([`Particle::encode`] records on the
    /// particle wire; ad-hoc encodings in the collectives).
    Bytes,
    /// An owned particle buffer, moved through the channel as-is.
    Typed,
}

impl PayloadKind {
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::Bytes => "bytes",
            PayloadKind::Typed => "typed",
        }
    }
}

/// An owned message body. See the module docs for the closed-set rationale;
/// an enum (rather than type erasure) keeps the transport allocation-free —
/// no box per message — and makes kind mismatches detectable.
#[derive(Debug)]
pub enum Payload {
    Bytes(Vec<u8>),
    Typed(Vec<Particle>),
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::Bytes(Vec::new())
    }
}

impl Payload {
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Bytes(_) => PayloadKind::Bytes,
            Payload::Typed(_) => PayloadKind::Typed,
        }
    }

    /// Wire-equivalent size: what this payload would occupy as bytes. The
    /// basis of all traffic accounting, identical across lanes so telemetry
    /// does not change when the lane does.
    pub fn len_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Typed(p) => p.len() * Particle::WIRE_SIZE,
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            Payload::Bytes(b) => b.is_empty(),
            Payload::Typed(p) => p.is_empty(),
        }
    }
}

/// A buffer type the fabric can route. Implemented by `Vec<u8>` (oracle
/// lane) and `Vec<Particle>` (typed lane); the protocol code is generic
/// over this trait and never inspects the contents.
pub trait WirePayload: Sized + Send + 'static {
    /// The [`Payload`] variant this type travels as.
    const KIND: PayloadKind;

    /// Wire-equivalent size in bytes (see [`Payload::len_bytes`]).
    fn len_bytes(&self) -> usize;

    /// A fresh empty buffer (no allocation).
    fn empty() -> Self;

    fn is_empty(&self) -> bool;

    /// Surrender this buffer to the transport.
    fn into_payload(self) -> Payload;

    /// Claim a buffer back from the transport. Panics (loudly, with both
    /// kinds named) if the message on the wire is not of this type — a
    /// lane mismatch must never be silently coerced.
    fn from_payload(p: Payload) -> Self;
}

impl WirePayload for Vec<u8> {
    const KIND: PayloadKind = PayloadKind::Bytes;

    fn len_bytes(&self) -> usize {
        self.len()
    }

    fn empty() -> Self {
        Vec::new()
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn into_payload(self) -> Payload {
        Payload::Bytes(self)
    }

    fn from_payload(p: Payload) -> Self {
        match p {
            Payload::Bytes(b) => b,
            other => panic!(
                "payload kind mismatch: expected bytes, received {} message",
                other.kind().name()
            ),
        }
    }
}

impl WirePayload for Vec<Particle> {
    const KIND: PayloadKind = PayloadKind::Typed;

    fn len_bytes(&self) -> usize {
        self.len() * Particle::WIRE_SIZE
    }

    fn empty() -> Self {
        Vec::new()
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn into_payload(self) -> Payload {
        Payload::Typed(self)
    }

    fn from_payload(p: Payload) -> Self {
        match p {
            Payload::Typed(t) => t,
            other => panic!(
                "payload kind mismatch: expected typed, received {} message",
                other.kind().name()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle(id: u64) -> Particle {
        Particle {
            id,
            x: 1.0,
            y: 2.0,
            vx: 3.0,
            vy: 4.0,
            q: 0.5,
            x0: 1.0,
            y0: 2.0,
            k: 1,
            m: -1,
            born_at: 0,
        }
    }

    #[test]
    fn byte_accounting_is_lane_invariant() {
        let ps = vec![particle(1), particle(2), particle(3)];
        let encoded = Particle::encode_all(&ps);
        assert_eq!(WirePayload::len_bytes(&ps), encoded.len());
        assert_eq!(ps.clone().into_payload().len_bytes(), encoded.len());
        assert_eq!(encoded.clone().into_payload().len_bytes(), encoded.len());
    }

    #[test]
    fn roundtrip_through_payload() {
        let ps = vec![particle(7)];
        let back = <Vec<Particle>>::from_payload(ps.clone().into_payload());
        assert_eq!(back, ps);
        let bytes = vec![1u8, 2, 3];
        let back = <Vec<u8>>::from_payload(bytes.clone().into_payload());
        assert_eq!(back, bytes);
    }

    #[test]
    #[should_panic(expected = "payload kind mismatch: expected bytes")]
    fn typed_message_where_bytes_expected_is_loud() {
        let _ = <Vec<u8>>::from_payload(vec![particle(1)].into_payload());
    }

    #[test]
    #[should_panic(expected = "payload kind mismatch: expected typed")]
    fn byte_message_where_typed_expected_is_loud() {
        let _ = <Vec<Particle>>::from_payload(vec![1u8].into_payload());
    }
}
