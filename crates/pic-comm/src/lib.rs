//! # pic-comm — an MPI-like message-passing substrate
//!
//! The paper's reference implementations are MPI programs. This crate
//! provides the subset of MPI semantics they need, with a **threads
//! backend**: each rank is an OS thread, point-to-point messages are
//! tag-matched byte payloads over in-process channels, and the collectives
//! (barrier, broadcast, reduce/allreduce, gather/allgather, alltoallv) are
//! built on top of point-to-point exactly as a textbook MPI would build
//! them — so the communication *structure* of the ported kernels is
//! faithful even though the transport is shared memory.
//!
//! Key MPI semantics preserved:
//!
//! * **Tag + source matching with out-of-order delivery tolerance** — a
//!   receive for `(src, tag)` skips over and queues non-matching messages.
//! * **Communicator contexts** — messages sent on one communicator can
//!   never be matched by receives on another (each communicator carries a
//!   distinct context id, like `MPI_Comm` contexts).
//! * **`split`** — collective sub-communicator creation by color/key, used
//!   by the diffusion load balancer for per-processor-column reductions.
//! * **Deterministic collectives** — reductions are performed in rank
//!   order, so floating-point results are reproducible run to run.
//!
//! ```
//! use pic_comm::world::run_threads;
//! use pic_comm::collective::allreduce_u64;
//! use pic_comm::comm::ReduceOp;
//!
//! let sums = run_threads(4, |comm| {
//!     allreduce_u64(&comm, comm.rank() as u64, ReduceOp::Sum)
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod chan;
pub mod collective;
pub mod comm;
pub mod endpoint;
pub mod payload;
pub mod sparse;
pub mod world;

pub use collective::*;
pub use comm::{Communicator, RecvHandle, ReduceOp, SendHandle, Tag};
pub use payload::{Payload, PayloadKind, WirePayload};
pub use sparse::{
    alltoallv_finish_into, alltoallv_sparse_finish_into, alltoallv_sparse_start, alltoallv_start,
    AlltoallvHandle, SparsePlan,
};
pub use world::{run_threads, ThreadWorld};
