//! Per-rank communication endpoint: channels + tag matching + counters.

use crate::chan::{unbounded, Receiver, Sender};
use crate::payload::{Payload, WirePayload};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A raw wire message. `ctx` isolates communicators, `src` is the sender's
/// *world* rank, `tag` is the user/collective tag. The body is a
/// [`Payload`] — matching is on `(ctx, src, tag)` only; the *receiver*
/// names the type it expects and a kind mismatch panics at claim time.
#[derive(Debug)]
pub struct RawMsg {
    pub ctx: u64,
    pub src: usize,
    pub tag: u64,
    pub data: Payload,
}

/// Snapshot of an endpoint's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommMetrics {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub messages_received: u64,
    pub bytes_received: u64,
}

/// One rank's attachment to the world: senders to every rank (including
/// itself) and its own inbox. Unmatched messages park in `pending` until a
/// matching receive is posted — MPI's unexpected-message queue.
pub struct Endpoint {
    world_rank: usize,
    senders: Vec<Sender<RawMsg>>,
    inbox: Receiver<RawMsg>,
    pending: Mutex<VecDeque<RawMsg>>,
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
}

impl Endpoint {
    /// Build all endpoints of a `size`-rank world.
    pub fn world(size: usize) -> Vec<Arc<Endpoint>> {
        assert!(size > 0, "world must have at least one rank");
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                Arc::new(Endpoint {
                    world_rank: rank,
                    senders: txs.clone(),
                    inbox,
                    pending: Mutex::new(VecDeque::new()),
                    msgs_sent: AtomicU64::new(0),
                    bytes_sent: AtomicU64::new(0),
                    msgs_recv: AtomicU64::new(0),
                    bytes_recv: AtomicU64::new(0),
                })
            })
            .collect()
    }

    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    pub fn world_size(&self) -> usize {
        self.senders.len()
    }

    /// Send a buffer to a world rank, surrendering its ownership to the
    /// transport. Never blocks (unbounded channels, like an eager-protocol
    /// MPI for the message sizes this kernel uses).
    pub fn send_payload<P: WirePayload>(&self, dst_world: usize, ctx: u64, tag: u64, data: P) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(data.len_bytes() as u64, Ordering::Relaxed);
        self.senders[dst_world]
            .send(RawMsg {
                ctx,
                src: self.world_rank,
                tag,
                data: data.into_payload(),
            })
            .expect("receiver endpoint dropped while ranks still sending");
    }

    /// [`Endpoint::send_payload`] on the byte lane.
    pub fn send(&self, dst_world: usize, ctx: u64, tag: u64, data: Vec<u8>) {
        self.send_payload(dst_world, ctx, tag, data);
    }

    /// Blocking receive matching `(ctx, src_world, tag)`, claiming the
    /// message as buffer type `P`. Non-matching arrivals are parked for
    /// later receives; a matching message of the wrong payload kind panics
    /// (see [`WirePayload::from_payload`]).
    pub fn recv_payload<P: WirePayload>(&self, src_world: usize, ctx: u64, tag: u64) -> P {
        // First scan the unexpected-message queue.
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|m| m.ctx == ctx && m.src == src_world && m.tag == tag)
            {
                let m = pending.remove(pos).unwrap();
                self.note_recv(&m);
                return P::from_payload(m.data);
            }
        }
        // Then pull from the wire until the match arrives.
        loop {
            let m = self
                .inbox
                .recv()
                .expect("all senders dropped while a receive was outstanding");
            if m.ctx == ctx && m.src == src_world && m.tag == tag {
                self.note_recv(&m);
                return P::from_payload(m.data);
            }
            self.pending.lock().unwrap().push_back(m);
        }
    }

    /// [`Endpoint::recv_payload`] on the byte lane.
    pub fn recv(&self, src_world: usize, ctx: u64, tag: u64) -> Vec<u8> {
        self.recv_payload(src_world, ctx, tag)
    }

    /// Non-blocking receive matching `(ctx, src_world, tag)`. Drains the
    /// wire into the unexpected-message queue but never waits; returns
    /// `None` when no matching message has arrived yet.
    pub fn try_recv_payload<P: WirePayload>(
        &self,
        src_world: usize,
        ctx: u64,
        tag: u64,
    ) -> Option<P> {
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|m| m.ctx == ctx && m.src == src_world && m.tag == tag)
            {
                let m = pending.remove(pos).unwrap();
                self.note_recv(&m);
                return Some(P::from_payload(m.data));
            }
        }
        while let Some(m) = self.inbox.try_recv() {
            if m.ctx == ctx && m.src == src_world && m.tag == tag {
                self.note_recv(&m);
                return Some(P::from_payload(m.data));
            }
            self.pending.lock().unwrap().push_back(m);
        }
        None
    }

    /// [`Endpoint::try_recv_payload`] on the byte lane.
    pub fn try_recv(&self, src_world: usize, ctx: u64, tag: u64) -> Option<Vec<u8>> {
        self.try_recv_payload(src_world, ctx, tag)
    }

    fn note_recv(&self, m: &RawMsg) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv
            .fetch_add(m.data.len_bytes() as u64, Ordering::Relaxed);
    }

    /// Traffic counters so far.
    pub fn metrics(&self) -> CommMetrics {
        CommMetrics {
            messages_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.msgs_recv.load(Ordering::Relaxed),
            bytes_received: self.bytes_recv.load(Ordering::Relaxed),
        }
    }

    /// Number of parked (unexpected) messages — should be zero at clean
    /// shutdown; tests assert on this to catch protocol leaks.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn self_send_and_recv() {
        let eps = Endpoint::world(1);
        eps[0].send(0, 7, 42, vec![1, 2, 3]);
        assert_eq!(eps[0].recv(0, 7, 42), vec![1, 2, 3]);
        let m = eps[0].metrics();
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.bytes_sent, 3);
        assert_eq!(m.messages_received, 1);
    }

    #[test]
    fn out_of_order_matching() {
        let eps = Endpoint::world(1);
        eps[0].send(0, 1, 10, vec![10]);
        eps[0].send(0, 1, 20, vec![20]);
        eps[0].send(0, 1, 30, vec![30]);
        assert_eq!(eps[0].recv(0, 1, 30), vec![30]);
        assert_eq!(eps[0].recv(0, 1, 10), vec![10]);
        assert_eq!(eps[0].recv(0, 1, 20), vec![20]);
        assert_eq!(eps[0].pending_count(), 0);
    }

    #[test]
    fn context_isolation() {
        let eps = Endpoint::world(1);
        eps[0].send(0, 100, 5, vec![1]);
        eps[0].send(0, 200, 5, vec![2]);
        assert_eq!(eps[0].recv(0, 200, 5), vec![2]);
        assert_eq!(eps[0].recv(0, 100, 5), vec![1]);
    }

    #[test]
    fn cross_thread_pingpong() {
        let eps = Endpoint::world(2);
        let a = eps[0].clone();
        let b = eps[1].clone();
        let t = thread::spawn(move || {
            let got = b.recv(0, 0, 1);
            b.send(0, 0, 2, got.iter().map(|x| x * 2).collect());
        });
        a.send(1, 0, 1, vec![5, 6]);
        assert_eq!(a.recv(1, 0, 2), vec![10, 12]);
        t.join().unwrap();
    }

    #[test]
    fn try_recv_nonblocking() {
        let eps = Endpoint::world(1);
        assert_eq!(eps[0].try_recv(0, 3, 1), None);
        eps[0].send(0, 3, 2, vec![9]);
        eps[0].send(0, 3, 1, vec![7]);
        // Match arrives after a non-match; the non-match parks.
        assert_eq!(eps[0].try_recv(0, 3, 1), Some(vec![7]));
        assert_eq!(eps[0].pending_count(), 1);
        assert_eq!(eps[0].try_recv(0, 3, 2), Some(vec![9]));
        assert_eq!(eps[0].pending_count(), 0);
        assert_eq!(eps[0].try_recv(0, 3, 2), None);
    }

    #[test]
    fn typed_lane_moves_buffers_and_accounts_bytes() {
        use pic_core::particle::Particle;
        let p = Particle {
            id: 9,
            x: 0.5,
            y: 0.5,
            vx: 1.0,
            vy: -1.0,
            q: 0.25,
            x0: 0.5,
            y0: 0.5,
            k: 0,
            m: 0,
            born_at: 0,
        };
        let eps = Endpoint::world(1);
        eps[0].send_payload(0, 4, 11, vec![p, p]);
        let got: Vec<Particle> = eps[0].recv_payload(0, 4, 11);
        assert_eq!(got, vec![p, p]);
        let m = eps[0].metrics();
        assert_eq!(m.bytes_sent, 2 * Particle::WIRE_SIZE as u64);
        assert_eq!(m.bytes_received, 2 * Particle::WIRE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "payload kind mismatch")]
    fn typed_message_claimed_as_bytes_panics() {
        use pic_core::particle::Particle;
        let eps = Endpoint::world(1);
        eps[0].send_payload(0, 0, 1, Vec::<Particle>::new());
        let _ = eps[0].recv(0, 0, 1);
    }

    #[test]
    fn fifo_per_same_signature() {
        // Two messages with identical (ctx, src, tag) are received in send
        // order (MPI non-overtaking rule).
        let eps = Endpoint::world(1);
        eps[0].send(0, 0, 9, vec![1]);
        eps[0].send(0, 0, 9, vec![2]);
        assert_eq!(eps[0].recv(0, 0, 9), vec![1]);
        assert_eq!(eps[0].recv(0, 0, 9), vec![2]);
    }
}
